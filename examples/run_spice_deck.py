#!/usr/bin/env python3
"""Run the NV-SRAM store/shutdown/restore sequence from a SPICE deck.

The library's cell builders are the convenient API, but everything they
construct can also be expressed as a plain SPICE netlist and fed through
:mod:`repro.spice` — useful for interoperating with decks from the
literature.  This example loads ``decks/nvsram_store_restore.sp``
(the paper's Fig. 2 cell plus a scripted store → super-cutoff shutdown →
restore timeline), simulates it, and narrates the outcome.

Run:  python examples/run_spice_deck.py
"""

from pathlib import Path

from repro.spice import parse_file, run_deck
from repro.units import format_eng

DECK = Path(__file__).parent / "decks" / "nvsram_store_restore.sp"


def main() -> None:
    deck = parse_file(DECK)
    print(f"deck:     {deck.title}")
    print(f"netlist:  {len(deck.circuit)} elements, "
          f"{len(deck.subcircuits)} subcircuit template(s), "
          f"{len(deck.analyses)} analysis card(s)")

    results = run_deck(deck)
    tr = results.transients()[0]
    print(f"transient: {len(tr)} accepted points over "
          f"{format_eng(float(tr.time[-1]), 's')}")

    print("\nMTJ switching events:")
    for t, name, event in tr.events:
        print(f"  {format_eng(t, 's'):>10}  {name}: {event}")

    # Walk the scripted timeline.
    checkpoints = [
        (0.5e-9, "hold '1' (normal mode)"),
        (8e-9, "H-store in progress"),
        (16e-9, "L-store in progress"),
        (35e-9, "shutdown (super cutoff)"),
        (47e-9, "after restore"),
    ]
    print(f"\n{'time':>8}  {'VVDD':>7} {'Q':>7} {'QB':>7}  phase")
    for t, label in checkpoints:
        print(f"{format_eng(t, 's'):>8}  "
              f"{tr.sample('vvdd', t):7.3f} "
              f"{tr.sample('xcell.q', t):7.3f} "
              f"{tr.sample('xcell.qb', t):7.3f}  {label}")

    mtj_q = deck.circuit["xcell.ymtjq"]
    mtj_qb = deck.circuit["xcell.ymtjqb"]
    final = tr.final_solution()
    data_back = final.voltage("xcell.q") > final.voltage("xcell.qb")
    print(f"\nMTJ states after the run: Q-side {mtj_q.state.value}, "
          f"QB-side {mtj_qb.state.value}")
    print(f"latch data after wake-up: {'1' if data_back else '0'} "
          "(stored a 1 before the shutdown)")


if __name__ == "__main__":
    main()
