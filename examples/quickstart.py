#!/usr/bin/env python3
"""Quickstart: simulate the NV-SRAM cell through a full power-gating cycle.

Builds the Fig. 2 cell on the standard testbench, then runs one complete
NVPG sequence as a transient simulation: normal write, the two-step MTJ
store, super-cutoff shutdown, and nonvolatile restore — printing what
happens at each stage.

Run:  python examples/quickstart.py
"""

from repro import OperatingConditions, PowerDomain
from repro.analysis import transient
from repro.analysis.transient import TransientOptions
from repro.characterize.testbench import SUPPLY_SOURCES, build_cell_testbench
from repro.pg.modes import Mode
from repro.pg.scheduler import Schedule, ScheduleStep
from repro.units import format_eng


def main() -> None:
    cond = OperatingConditions()            # Table I defaults
    domain = PowerDomain(n_wordlines=512, word_bits=32)   # a 2 kB domain

    print("== NV-SRAM quickstart ==")
    print(f"conditions: VDD={cond.vdd} V, {format_eng(cond.frequency, 'Hz')}"
          f" read/write, V_SR={cond.v_sr} V, store step ="
          f" {format_eng(cond.t_store_step, 's')}")
    print(f"domain:     {domain}")

    tb = build_cell_testbench("nv", cond, domain)
    # The latch starts holding a 1; the MTJs hold the complement so the
    # store visibly has to switch both junctions.
    tb.set_mtj_data(False)

    schedule = Schedule(
        [
            ScheduleStep(Mode.STANDBY, 2e-9),
            ScheduleStep(Mode.WRITE, cond.t_cycle, data=True),
            ScheduleStep(Mode.STORE_H, cond.t_store_step),
            ScheduleStep(Mode.STORE_L, cond.t_store_step),
            ScheduleStep(Mode.SHUTDOWN, 20e-9),
            ScheduleStep(Mode.RESTORE, cond.t_restore),
            ScheduleStep(Mode.STANDBY, 3e-9),
        ],
        cond,
    )
    tb.apply_waveforms(schedule.line_waveforms())

    print("\nrunning transient "
          f"({format_eng(schedule.total_duration, 's')} of circuit time)...")
    result = transient(
        tb.circuit, schedule.total_duration,
        ic=tb.initial_conditions(True),
        options=TransientOptions(dt_initial=20e-12),
    )
    print(f"done: {len(result)} accepted timepoints, "
          f"{int(result.stats['rejected_steps'])} rejected")

    print("\nMTJ switching events (CIMS):")
    for t, element, event in result.events:
        print(f"  t = {format_eng(t, 's'):>10}  {element}: {event}")

    print("\nper-phase energy drawn from the supplies:")
    for window in schedule.windows():
        energy = result.energy(SUPPLY_SOURCES, window.t_start, window.t_end)
        print(f"  {window.mode.value:<10} {format_eng(energy, 'J'):>12}"
              f"   ({format_eng(window.duration, 's')})")
    print("  (a negative write figure means the discharged bitline returned"
          "\n   charge to the driver; the recharge lands in the next phase)")

    final = result.final_solution()
    cell = tb.nv_cell
    print("\nafter wake-up:")
    print(f"  V(Q)  = {final.voltage(cell.q):.3f} V,"
          f"  V(QB) = {final.voltage(cell.qb):.3f} V")
    print(f"  latch data restored: {cell.read_data(final, cond.vdd)}"
          "  (wrote True before the shutdown)")
    print(f"  MTJ pair encodes:    {cell.stored_data(tb.circuit)}")


if __name__ == "__main__":
    main()
