NV-SRAM cell: two-step store followed by shutdown and restore
* The paper's Fig. 2 cell written as a plain SPICE deck.
* Sequence: hold '1' -> H-store (SR on, CTRL low) -> L-store (CTRL at
* 0.5 V) -> power switch to super cutoff -> wake-up restore.

.param vdd=0.9 vsr=0.65 vctrlst=0.5 vsuper=1.0

.subckt nvcell vvdd bl blb wl sr ctrl
* 6T core
mpul q qb vvdd pfet20hp
mpur qb q vvdd pfet20hp
mpdl q qb 0 nfet20hp
mpdr qb q 0 nfet20hp
mpgl bl wl q nfet20hp
mpgr blb wl qb nfet20hp
cq q 0 0.14f
cqb qb 0 0.14f
* PS-FinFET + MTJ retention branches
mpsq q sr nq nfet20hp
mpsqb qb sr nqb nfet20hp
ymtjq ctrl nq mtj_table1 state=P
ymtjqb ctrl nqb mtj_table1 state=AP
.ends nvcell

* supplies and control lines
vdd vdd 0 {vdd}
vpg pg 0 pwl(0 0  22n 0  22.2n {vsuper}  40n {vsuper}  40.2n 0)
msw vvdd pg vdd pfet20hp nfin=7
cvv vvdd 0 0.2f
vbl bl 0 pwl(0 {vdd}  21n {vdd}  21.2n 0)
vblb blb 0 pwl(0 {vdd}  21n {vdd}  21.2n 0)
vwl wl 0 0
vsr sr 0 pwl(0 0  1n 0  1.1n {vsr}  45n {vsr})
vctrl ctrl 0 pwl(0 0  11n 0  11.1n {vctrlst}  21n {vctrlst}  21.2n 0)

xcell vvdd bl blb wl sr ctrl nvcell

.ic v(xcell.q)=0.9 v(xcell.qb)=0 v(vvdd)=0.9
.tran 48n
.end
