#!/usr/bin/env python3
"""Trace-driven, per-domain power gating of an NV-SRAM cache level.

The previous examples use summary statistics; this one starts from an
*address trace*: a Zipf-popular access stream spread over the sixteen
2 kB power domains of a 32 kB cache level.  Each domain sees its own
access bursts and idle gaps, so each makes its own BET-gating decisions
— the "fine-grained power management" the paper closes with.

Run:  python examples/trace_driven_gating.py
"""

import numpy as np

from repro.cells import PowerDomain
from repro.experiments import ExperimentContext
from repro.pg.bet import break_even_time
from repro.pg.sequences import Architecture
from repro.pg.workload import epochs_from_access_times, zipf_domain_trace
from repro.units import format_eng

NUM_DOMAINS = 16
RNG_SEED = 20150313


def main() -> None:
    ctx = ExperimentContext()
    domain = PowerDomain(n_wordlines=512, word_bits=32)
    model = ctx.energy_model(domain)
    nv = model.nv
    bet = break_even_time(model, Architecture.NVPG, n_rw=10,
                          store_free=True).bet
    overhead = nv.e_restore * domain.num_cells   # store-free shutdowns

    print("== Trace-driven per-domain gating ==")
    print(f"level: {NUM_DOMAINS} x {format_eng(domain.size_bytes, 'B')} "
          f"domains; store-free BET = {format_eng(bet, 's')}\n")

    rng = np.random.default_rng(RNG_SEED)
    trace = zipf_domain_trace(rng, num_domains=NUM_DOMAINS,
                              num_accesses=30_000, mean_interval=200e-9)
    total_time = max(max(ts) for ts in trace.domain_accesses.values())
    print(f"trace: 30k accesses over {format_eng(total_time, 's')}, "
          f"Zipf(1.2) over {NUM_DOMAINS} domains; hottest 4 domains take "
          f"{trace.coverage(NUM_DOMAINS, 4):.0%} of the traffic\n")

    header = (f"{'dom':>4} {'accesses':>9} {'median idle':>12} "
              f"{'gated':>7} {'E idle (gated)':>15} {'E idle (never)':>15} "
              f"{'saving':>8}")
    print(header)
    print("-" * len(header))

    total_gated = total_never = 0.0
    for dom in range(NUM_DOMAINS):
        epochs = trace.epochs(dom, merge_gap=2e-6, tail_idle=0.0)
        idles = [e.idle for e in epochs[:-1]] or [0.0]
        gated_count = sum(1 for t in idles if t > bet)
        e_gated = sum(
            overhead / domain.num_cells * domain.num_cells
            + nv.p_shutdown * domain.num_cells * t
            if t > bet else nv.p_sleep * domain.num_cells * t
            for t in idles
        )
        e_never = sum(nv.p_sleep * domain.num_cells * t for t in idles)
        total_gated += e_gated
        total_never += e_never
        saving = 0.0 if e_never == 0 else 1 - e_gated / e_never
        print(f"{dom:>4} {len(trace.domain_accesses.get(dom, [])):>9} "
              f"{format_eng(float(np.median(idles)), 's'):>12} "
              f"{gated_count:>4}/{len(idles):<3}"
              f"{format_eng(e_gated, 'J'):>15} "
              f"{format_eng(e_never, 'J'):>15} {saving:>7.1%}")

    print("-" * len(header))
    print(f"level idle energy: {format_eng(total_gated, 'J')} gated vs "
          f"{format_eng(total_never, 'J')} never-gated "
          f"({1 - total_gated / total_never:.1%} saved)")
    print("\nThe cold domains gate almost every gap while the hot ones")
    print("stay lit — per-domain BET decisions capture the locality that")
    print("a whole-level on/off switch would waste.")


if __name__ == "__main__":
    main()
