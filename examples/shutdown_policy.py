#!/usr/bin/env python3
"""Choosing a shutdown policy from an idle-interval distribution.

The BET is only a threshold; a runtime power manager also needs to know
*how much* energy a policy saves on a real workload.  This example draws
a synthetic idle-interval distribution (a log-normal mix of short
inter-access gaps and long quiescent periods, the usual shape for cache
traffic), then compares three policies over the same trace:

* **never gate** (OSR: sleep through every idle interval),
* **always gate** (NOF-ish: power off for every interval),
* **BET-gated NVPG** (power off only when the predicted interval exceeds
  the break-even time — the paper's intended usage).

Run:  python examples/shutdown_policy.py
"""

import numpy as np

from repro import Architecture, PowerDomain
from repro.experiments import ExperimentContext
from repro.pg.bet import break_even_time
from repro.units import format_eng

RNG_SEED = 20150309      # DATE 2015 conference date
N_INTERVALS = 20_000


def synth_idle_intervals(rng: np.random.Generator) -> np.ndarray:
    """Bimodal idle intervals: mostly ~1 us gaps, occasionally ~1 ms."""
    short = rng.lognormal(mean=np.log(1e-6), sigma=0.8,
                          size=int(N_INTERVALS * 0.9))
    long = rng.lognormal(mean=np.log(1e-3), sigma=0.7,
                         size=int(N_INTERVALS * 0.1))
    return np.concatenate([short, long])


def main() -> None:
    ctx = ExperimentContext()
    domain = PowerDomain(n_wordlines=512, word_bits=32)
    model = ctx.energy_model(domain)
    nv = model.nv
    vt = model.volatile

    bet = break_even_time(model, Architecture.NVPG, n_rw=1).bet
    overhead = (nv.e_store + nv.p_normal * (domain.n_wordlines - 1)
                * nv.t_store + nv.e_restore)

    rng = np.random.default_rng(RNG_SEED)
    intervals = synth_idle_intervals(rng)

    # Energy per idle interval under each policy (per cell).
    e_never = vt.p_sleep * intervals
    e_always = overhead + nv.p_shutdown * intervals
    gated = intervals > bet
    e_bet = np.where(gated, overhead + nv.p_shutdown * intervals,
                     nv.p_sleep * intervals)

    print("== Shutdown-policy comparison (per cell, idle time only) ==")
    print(f"domain: {domain};  BET = {format_eng(bet, 's')};  "
          f"PG overhead = {format_eng(overhead, 'J')}")
    print(f"idle trace: {len(intervals)} intervals, "
          f"median {format_eng(float(np.median(intervals)), 's')}, "
          f"{gated.mean():.1%} exceed the BET\n")

    baseline = e_never.sum()
    rows = [
        ("never gate (OSR sleep)", e_never.sum()),
        ("always gate (NOF-style)", e_always.sum()),
        ("BET-gated NVPG", e_bet.sum()),
    ]
    for name, total in rows:
        saving = 1.0 - total / baseline
        print(f"  {name:<26} {format_eng(total, 'J'):>12}   "
              f"({saving:+.1%} vs never gating)")

    print("\nThe BET-gated policy always dominates: it only pays the store/")
    print("restore overhead when the interval is long enough to amortise it,")
    print("whereas gating every interval loses energy on the short ones —")
    print("the quantitative core of the paper's NVPG-vs-NOF argument.")


if __name__ == "__main__":
    main()
