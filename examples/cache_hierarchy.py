#!/usr/bin/env python3
"""Fine-grained NVPG across a two-level cache hierarchy.

The paper's closing argument: organise every cache level as NV-SRAM
power domains, use store-free shutdown where the data is clean, and the
whole hierarchy can ride a bursty workload with most of it powered off.
This example builds that system — a 4-domain L1 (dirty data: full
stores) over a 16-domain L2 (inclusive/clean: store-free) — and runs a
bursty epoch workload through it.

Run:  python examples/cache_hierarchy.py
"""

import numpy as np

from repro.cells import PowerDomain
from repro.experiments import ExperimentContext
from repro.pg.hierarchy import CacheLevel, SystemModel
from repro.units import format_eng

RNG_SEED = 7


def main() -> None:
    ctx = ExperimentContext()
    print("== Cache-hierarchy power gating ==\n")
    print("characterising domains (cached after the first run)...")

    l1 = CacheLevel(
        name="L1",
        model=ctx.energy_model(PowerDomain(n_wordlines=64, word_bits=32)),
        num_domains=4,          # 4 x 256 B = 1 kB
        n_rw_per_epoch=500,     # hot: touched heavily while running
        active_fraction=1.0,
        store_free=False,       # dirty data must be stored
    )
    l2 = CacheLevel(
        name="L2",
        model=ctx.energy_model(PowerDomain(n_wordlines=512, word_bits=32)),
        num_domains=16,         # 16 x 2 kB = 32 kB
        n_rw_per_epoch=50,      # filtered traffic
        active_fraction=0.25,   # locality: most L2 domains stay quiet
        store_free=True,        # inclusive level: clean copies
    )
    system = SystemModel([l1, l2])

    print(f"\n{'level':>6} {'capacity':>10} {'domain':>10} {'BET':>10}  notes")
    for level in system.levels:
        note = "store-free" if level.store_free else "full store"
        print(f"{level.name:>6} "
              f"{format_eng(level.capacity_bytes, 'B'):>10} "
              f"{format_eng(level.domain.size_bytes, 'B'):>10} "
              f"{format_eng(level.bet(), 's'):>10}  {note}")
    print("\nNote the inversion: the L2 domain is 8x larger yet breaks even")
    print("sooner, because store-free shutdown removes the serialised store")
    print("phase that grows with N — the paper's Fig. 9(a) effect at work.")

    # Bursty workload: compute bursts separated by variable gaps.
    rng = np.random.default_rng(RNG_SEED)
    actives = rng.uniform(50e-6, 300e-6, size=40)
    idles = rng.lognormal(np.log(400e-6), 1.0, size=40)
    epochs = list(zip(actives, idles))
    total_time = float(np.sum(actives) + np.sum(idles))
    print(f"\nworkload: {len(epochs)} epochs over "
          f"{format_eng(total_time, 's')}, median gap "
          f"{format_eng(float(np.median(idles)), 's')}")

    print(f"\n{'level':>6} {'E (BET-gated)':>14} {'E (never gate)':>15} "
          f"{'saving':>8}")
    for report in system.evaluate(epochs):
        print(f"{report.name:>6} {format_eng(report.energy, 'J'):>14} "
              f"{format_eng(report.energy_never_gate, 'J'):>15} "
              f"{report.savings:>7.1%}")
    print(f"\nsystem-wide saving: {system.total_savings(epochs):.1%}")


if __name__ == "__main__":
    main()
