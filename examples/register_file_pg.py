#!/usr/bin/env python3
"""Power-gating a register file built from NV flip-flops.

The paper's architecture stores pipeline/register state in NV-FFs so a
core can power off between tasks.  This example characterises the NV-FF
(a transient-simulation pass, cached), builds a 1024-bit register-file
model, and answers the runtime questions: what does the bank cost while
clocking, idling and powered off; what is its break-even time; and how
much energy does BET-thresholded gating save on a bursty duty cycle?

Run:  python examples/register_file_pg.py
"""

import numpy as np

from repro.characterize.ff_runner import characterize_nvff
from repro.pg.modes import OperatingConditions
from repro.pg.registers import RegisterBankModel
from repro.units import format_eng

BANK_BITS = 1024
RNG_SEED = 42


def main() -> None:
    cond = OperatingConditions()
    print("== NV-FF register-file power gating ==\n")
    print("characterising the NV-FF (cached after the first run)...")
    ff = characterize_nvff(cond)
    print(f"  per-FF: clk-to-Q {format_eng(ff.clk_to_q_delay, 's')}, "
          f"{format_eng(ff.e_clock_toggle, 'J')}/toggle cycle, "
          f"store {format_eng(ff.e_store, 'J')}, "
          f"restore {format_eng(ff.e_restore, 'J')}")
    print(f"  static: {format_eng(ff.p_normal, 'W')} powered, "
          f"{format_eng(ff.p_shutdown, 'W')} super cutoff\n")

    bank = RegisterBankModel(ff, num_ffs=BANK_BITS)
    print(f"{BANK_BITS}-bit bank at "
          f"{format_eng(cond.frequency, 'Hz')} clock:")
    for label, value in [
        ("active (50% activity)", bank.active_power(0.5)),
        ("idle (clock gated)", bank.idle_power()),
        ("off (super cutoff)", bank.shutdown_power()),
    ]:
        print(f"  {label:<24} {format_eng(value, 'W'):>12}")
    print(f"  gating overhead          "
          f"{format_eng(bank.gating_overhead, 'J'):>12}  "
          f"(store+restore, all bits in parallel)")
    print(f"  break-even time          "
          f"{format_eng(bank.break_even_time(), 's'):>12}  "
          "(independent of bank width)\n")

    # A bursty duty cycle: compute 10 us, idle a random interval.
    rng = np.random.default_rng(RNG_SEED)
    idles = rng.lognormal(np.log(20e-6), 1.2, size=5000)
    gated_frac = float(np.mean(idles > bank.break_even_time()))
    savings = bank.savings_vs_idle(idles)
    print(f"workload: {len(idles)} idle intervals, median "
          f"{format_eng(float(np.median(idles)), 's')}; "
          f"{gated_frac:.0%} exceed the BET")
    print(f"BET-thresholded gating saves {savings:.1%} of the idle energy"
          "\nversus keeping the register file powered.")

    print("\nCompare with the SRAM domain (examples/cache_power_domain.py):")
    print("registers break even much sooner because every FF stores in")
    print("parallel — no N-row serialisation — which is why the paper")
    print("extends NVPG from caches down to individual registers.")


if __name__ == "__main__":
    main()
