#!/usr/bin/env python3
"""Evaluating a custom MTJ technology in the NV-SRAM cell.

The MTJ card is a first-class parameter of the library: this example
defines a hypothetical next-generation junction (lower critical current
density, higher TMR, slightly higher RA), re-derives the store biases
from the Fig. 3 methodology, and compares store energy, static power and
break-even time against the paper's Table I device.

This is exactly the Fig. 9(b) workflow generalised to any device card.

Run:  python examples/custom_mtj.py
"""

from repro import Architecture, MTJParams, MTJ_TABLE1, PowerDomain
from repro.characterize.store import derive_store_biases
from repro.experiments import ExperimentContext
from repro.pg.bet import break_even_time
from repro.units import format_eng

#: A hypothetical scaled STT-MTJ: Jc down 4x, TMR up to 150 %.
NEXT_GEN_MTJ = MTJParams(
    tmr0=1.5,
    ra_product=3.0e-12,      # 3 ohm.um^2
    v_half=0.55,
    jc=1.25e10,              # 1.25e6 A/cm^2
    diameter=20e-9,
    label="mtj-next-gen",
)

DOMAIN = PowerDomain(n_wordlines=512, word_bits=32)
SMALL = PowerDomain(n_wordlines=32, word_bits=32)


def describe(card: MTJParams) -> None:
    print(f"  {card.label}:")
    print(f"    R_P = {format_eng(card.r_parallel, 'ohm')},  "
          f"R_AP(0) = {format_eng(card.r_antiparallel_zero_bias, 'ohm')},  "
          f"Ic = {format_eng(card.critical_current, 'A')}")


def evaluate(ctx: ExperimentContext, card: MTJParams):
    # Paper methodology: pick V_SR / V_CTRL from the store-current sweeps
    # so the store reaches 1.5 x Ic for *this* junction.
    cond = derive_store_biases(ctx.cond, SMALL, mtj_params=card)
    nv = ctx.characterization("nv", DOMAIN, cond=cond, mtj_params=card)
    model = ctx.energy_model(DOMAIN, cond=cond, mtj_params=card)
    bet = break_even_time(model, Architecture.NVPG, n_rw=100,
                          t_sl=100e-9).bet
    return cond, nv, bet


def main() -> None:
    ctx = ExperimentContext()
    print("== Custom MTJ technology evaluation ==\n")
    print("device cards:")
    describe(MTJ_TABLE1)
    describe(NEXT_GEN_MTJ)

    rows = []
    for card in (MTJ_TABLE1, NEXT_GEN_MTJ):
        cond, nv, bet = evaluate(ctx, card)
        rows.append((card.label, cond, nv, bet))

    print(f"\n{'card':<16} {'V_SR':>6} {'V_CTRL':>7} {'E_store':>10} "
          f"{'P_normal':>10} {'BET(n_RW=100)':>14}")
    for label, cond, nv, bet in rows:
        print(f"{label:<16} {cond.v_sr:>5.2f}V {cond.v_ctrl_store:>6.2f}V "
              f"{format_eng(nv.e_store, 'J'):>10} "
              f"{format_eng(nv.p_normal, 'W'):>10} "
              f"{format_eng(bet, 's'):>14}")

    base, nxt = rows[0], rows[1]
    print(f"\nstore energy ratio (next-gen / Table I): "
          f"{nxt[2].e_store / base[2].e_store:.2f}")
    print(f"BET ratio:                               "
          f"{nxt[3] / base[3]:.2f}")
    print("\nA lower-Jc junction stores with a weaker bias, cutting the")
    print("store energy and pulling the break-even time in — enabling")
    print("finer-grained power gating without the store-free trick.")


if __name__ == "__main__":
    main()
