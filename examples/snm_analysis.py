#!/usr/bin/env python3
"""Static-noise-margin exploration of the FinFET bitcell sizing.

Section II of the paper picks the area-minimal (N_FL, N_FD) = (1, 1) fin
assignment and notes it lowers cell stability — quantified by the static
noise margin (SNM).  This example traces the hold- and read-mode
butterfly curves for the base design and tabulates how fin reassignment
trades area for read stability.

Run:  python examples/snm_analysis.py
"""

from repro.characterize.snm import butterfly_curve, static_noise_margin
from repro.pg.modes import OperatingConditions


def ascii_butterfly(curve, width=56, height=22) -> str:
    """Render a butterfly plot (VTC + mirror) as ASCII art."""
    vdd = max(curve.vin.max(), curve.vout.max())
    grid = [[" "] * width for _ in range(height)]

    def plot(x, y, ch):
        col = int(x / vdd * (width - 1))
        row = int((1.0 - y / vdd) * (height - 1))
        if 0 <= row < height and 0 <= col < width:
            grid[row][col] = ch

    for x, y in zip(curve.vin, curve.vout):
        plot(x, y, "*")     # the VTC
        plot(y, x, "o")     # its mirror
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    cond = OperatingConditions()
    print("== Bitcell static-noise-margin analysis ==\n")

    hold = butterfly_curve(cond, read_mode=False)
    read = butterfly_curve(cond, read_mode=True)
    print(f"hold SNM (N_FL,N_FD,N_FP = 1,1,1): {hold.snm * 1e3:.0f} mV")
    print(f"read SNM (N_FL,N_FD,N_FP = 1,1,1): {read.snm * 1e3:.0f} mV")
    print("\nread-mode butterfly ('*' = VTC, 'o' = mirror):\n")
    print(ascii_butterfly(read))

    print("\nfin-assignment trade-offs (read SNM, relative cell area):")
    print(f"{'(N_FL, N_FD, N_FP)':>20} {'read SNM':>10} {'fins':>6}")
    for nfl, nfd, nfp in [(1, 1, 1), (1, 2, 1), (2, 2, 1), (1, 2, 2),
                          (2, 3, 2)]:
        snm = static_noise_margin(cond, read_mode=True,
                                  nfl=nfl, nfd=nfd, nfp=nfp)
        fins = 2 * (nfl + nfd + nfp)
        print(f"{str((nfl, nfd, nfp)):>20} {snm * 1e3:>8.0f} mV {fins:>6}")

    print("\nThe (1,1,1) cell is area-minimal but has the slimmest read")
    print("margin — the paper relies on the fact that the PS-FinFETs are")
    print("OFF during normal operation, so the NV additions do not degrade")
    print("it further, and notes word-line underdrive as the assist knob.")


if __name__ == "__main__":
    main()
