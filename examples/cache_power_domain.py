#!/usr/bin/env python3
"""Sizing a cache power domain for nonvolatile power-gating.

The paper's motivating application is a cache whose lower levels are
built from NV-SRAM and power-gated per domain.  This example answers the
architect's question: *how large can a power domain be before its
break-even time exceeds the idle intervals my workload actually has?*

It sweeps the domain depth N (word length fixed at 32 bits), reports
E_cyc and BET for each size, and picks the largest domain that breaks
even within a target idle interval — with and without the store-free
shutdown optimisation.

Run:  python examples/cache_power_domain.py
"""

from repro import Architecture, PowerDomain
from repro.experiments import ExperimentContext
from repro.pg.bet import break_even_time
from repro.pg.sequences import BenchmarkSpec
from repro.units import format_eng

#: Idle interval the workload reliably offers between bursts.
TARGET_IDLE = 100e-6
#: Accesses per wake interval (passes of the Fig. 5 benchmark).
N_RW = 100


def main() -> None:
    ctx = ExperimentContext()
    print("== Cache power-domain sizing ==")
    print(f"target idle interval: {format_eng(TARGET_IDLE, 's')}, "
          f"n_RW = {N_RW} accesses per wake\n")

    header = (f"{'N':>6} {'size':>8} {'E_cyc NVPG':>12} {'E_cyc OSR':>12} "
              f"{'BET':>10} {'BET(store-free)':>16}")
    print(header)
    print("-" * len(header))

    best = None
    best_store_free = None
    for n in (64, 128, 256, 512, 1024, 2048, 4096):
        domain = PowerDomain(n_wordlines=n, word_bits=32)
        model = ctx.energy_model(domain)
        spec = BenchmarkSpec(Architecture.NVPG, n_rw=N_RW, t_sl=100e-9,
                             t_sd=TARGET_IDLE)
        e_nvpg = model.e_cyc(spec)
        e_osr = model.e_cyc(BenchmarkSpec(Architecture.OSR, n_rw=N_RW,
                                          t_sl=100e-9, t_sd=TARGET_IDLE))
        bet = break_even_time(model, Architecture.NVPG, n_rw=N_RW,
                              t_sl=100e-9).bet
        bet_sf = break_even_time(model, Architecture.NVPG, n_rw=N_RW,
                                 t_sl=100e-9, store_free=True).bet
        print(f"{n:>6} {format_eng(domain.size_bytes, 'B'):>8} "
              f"{format_eng(e_nvpg, 'J'):>12} {format_eng(e_osr, 'J'):>12} "
              f"{format_eng(bet, 's'):>10} {format_eng(bet_sf, 's'):>16}")
        if bet <= TARGET_IDLE:
            best = domain
        if bet_sf <= TARGET_IDLE:
            best_store_free = domain

    print()
    if best is None:
        print("no swept domain breaks even inside the idle target "
              "with a full store")
    else:
        print(f"largest domain with BET <= target (full store):     {best}")
    if best_store_free is not None:
        print(f"largest domain with BET <= target (store-free):     "
              f"{best_store_free}")
    print("\nInterpretation: shutting down a domain pays off only when the")
    print("idle interval exceeds its BET; store-free shutdown (data already")
    print("in the MTJs) lets much larger domains qualify — the paper's")
    print("fine-grained power-management argument.")


if __name__ == "__main__":
    main()
