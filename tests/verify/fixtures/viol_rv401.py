"""RV401 fixture: exact float equality on a physical quantity."""


def rail_is_nominal(v_rail):
    return v_rail == 0.9


def not_at_retention(v_rail):
    return v_rail != 0.45


def allowed_idioms(value, total):
    nan = value != value        # whitelisted NaN idiom
    zero = total == 0.0         # whitelisted exact-zero guard
    return nan or zero
