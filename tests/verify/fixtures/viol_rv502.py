"""format_eng unit symbols contradicting the value's dimension (RV502)."""

from repro.units import format_eng


def render_power_bad(e_store):
    return format_eng(e_store, "W")        # energy rendered as W -> RV502


def render_energy_ok(e_store):
    return format_eng(e_store, "J")        # matching unit; quiet


def render_derived_ok(leak_power, t_sl):
    # W * s = J: the dataflow proves the product is an energy.
    return format_eng(leak_power * t_sl, "J")


def render_unknown_ok(value):
    return format_eng(value, "J")          # unknown dimension; quiet
