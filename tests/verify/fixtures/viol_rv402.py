"""RV402 fixture: NaN-unsafe reductions over partial sweep results."""

import numpy as np

from repro.analysis.sweep import dc_sweep


def worst_store_current(circuit, mtj, options):
    sweep = dc_sweep(circuit, "vdd", (0.0, 0.9, 0.1),
                     on_error="skip", options=options)
    current = np.abs(sweep.measure(mtj.current))
    return current.max()                      # NaN-unsafe reduction


def first_above_threshold(circuit, options):
    sweep = dc_sweep(circuit, "vdd", (0.0, 0.9, 0.1),
                     on_error="skip", options=options)
    vout = sweep.voltage("out")
    return min(v for v in vout if v > 0.1)    # min() + ordering compare


def guarded_is_fine(circuit, mtj, options):
    sweep = dc_sweep(circuit, "vdd", (0.0, 0.9, 0.1),
                     on_error="skip", options=options)
    current = np.abs(sweep.measure(mtj.current))
    if sweep.num_skipped:
        current = current[~np.isnan(current)]
    return current.max()
