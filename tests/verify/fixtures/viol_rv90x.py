"""Concurrency/crash-safety patterns the RV9xx band reports (900-905).

Reach-dependent rules (RV902 shared-file RMW, RV903 global reads) need
a package tree with a ``"module:function"`` task reference; those live
in ``test_rules_effects.py`` synthetic trees.  Everything here is
reach-independent.
"""

import json
import multiprocessing as mp
import os
import signal
import tempfile
from pathlib import Path


def save_cache_in_place(cache_dir, key, payload):
    path = Path(cache_dir) / f"{key}.json"
    path.write_text(json.dumps(payload))        # RV900: torn on crash


def overwrite_journal(journal_path, lines):
    with open(journal_path, "w") as fh:         # RV900: mode "w"
        fh.write("\n".join(lines))


def rename_before_fsync(cache_dir, key, text):
    fd, tmp = tempfile.mkstemp(dir=cache_dir)
    with os.fdopen(fd, "w") as fh:
        fh.write(text)
    os.replace(tmp, os.path.join(cache_dir, key))   # RV901: no fsync
    fd2 = os.open(os.path.join(cache_dir, key), os.O_RDONLY)
    os.fsync(fd2)                               # ...and too late
    os.close(fd2)


def append_without_fsync(journal_path, line):
    with open(journal_path, "a") as fh:         # RV901: tail droppable
        fh.write(line)
        fh.flush()


def launch_nested_target(n):
    def worker():                               # closure: not picklable
        return n * 2

    proc = mp.Process(target=worker)            # RV903 under spawn
    proc.start()
    return proc


def drain_after_join(fn, items):
    queue = mp.Queue()
    proc = mp.Process(target=fn, args=(queue, items))
    proc.start()
    proc.join()                                 # RV904: child may block
    return [queue.get() for _ in items]


def join_without_task_done(fn):
    queue = mp.JoinableQueue()
    proc = mp.Process(target=fn, args=(queue,))
    proc.start()
    queue.join()                                # RV904: never acked
    return queue


def install_printing_handler():
    def on_sig(signum, frame):
        print("stopping")                       # RV905: reentrant IO

    signal.signal(signal.SIGINT, on_sig)


def install_lambda_handler(state):
    signal.signal(signal.SIGTERM,
                  lambda s, f: state.append(s))  # RV905: uncheckable


# -- clean counterparts (must stay quiet) -----------------------------------


def atomic_store_is_quiet(cache_dir, key, text):
    fd, tmp = tempfile.mkstemp(dir=cache_dir)
    with os.fdopen(fd, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, os.path.join(cache_dir, key))


def journal_append_with_fsync_is_quiet(journal_path, line):
    with open(journal_path, "a") as fh:
        fh.write(line)
        fh.flush()
        os.fsync(fh.fileno())


def drain_before_join_is_quiet(fn, items):
    queue = mp.Queue()
    proc = mp.Process(target=fn, args=(queue, items))
    proc.start()
    results = [queue.get() for _ in items]
    proc.join()
    return results


def flag_only_handler_is_quiet(run):
    def on_sig(signum, frame):
        run.interrupt_level += 1
        run.interrupt_signal = signal.Signals(signum).name

    signal.signal(signal.SIGINT, on_sig)


def scratch_write_is_quiet(out_dir, name, text):
    # No durable-store token anywhere near the path: not RV900's
    # business (RV603 owns task-reachable stray writes).
    (Path(out_dir) / name).write_text(text)
