"""Hot-path patterns the RV7xx perf inventory reports (701/702/703)."""

import numpy as np


def stamp_all(A, elements, x):
    for el in elements:                    # RV701: .stamp() per element
        el.stamp(A, x)
    return A


def fill_entries(A, entries):
    for i, j, g in entries:                # RV701: entry-by-entry fill
        A[i, j] += g
    return A


def alloc_per_step(n, steps):
    out = []
    for _ in range(steps):
        out.append(np.zeros(n))            # RV702: dense alloc in loop
    return out


def reassemble_per_point(circuit, points):
    rows = []
    for _ in range(points):
        rows.append(circuit.compile())     # RV703: invariant reassembly
    return rows


def hoisted_is_fine(circuit, n, points):
    pattern = circuit.compile()            # hoisted; quiet
    buffer = np.zeros(n)                   # allocated once; quiet
    total = 0.0
    for _ in range(points):
        total += float(buffer.sum())
    return pattern, total
