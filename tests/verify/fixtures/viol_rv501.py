"""Dimension-mixing arithmetic the RV501 units dataflow flags."""


def total_energy_bad(e_store, leak_power):
    return e_store + leak_power            # energy + power -> RV501


def compare_bad(t_pulse, switching_frequency):
    return t_pulse < switching_frequency   # time vs frequency -> RV501


def helper_power(vdd, leakage_current):
    return vdd * leakage_current           # V * A -> power fact


def cross_call_bad(e_cyc):
    # The mix is only visible through helper_power's fixpointed
    # return dimension: energy + power -> RV501.
    return e_cyc + helper_power(0.9, 1e-6)


def ratio_is_fine(e_store, e_restore):
    return e_store / e_restore + 1.0       # dimensionless; quiet


def same_dimension_is_fine(e_store, e_restore):
    return 2.0 * e_store + e_restore       # both energies; quiet


def unknown_stays_quiet(e_store, mystery):
    return e_store + mystery               # optimistic lattice; quiet
