"""RV406 fixture: mutable default arguments on public functions."""


def collect_rows(row, rows=[]):
    rows.append(row)
    return rows


def tag_point(value, labels={}):
    labels[value] = True
    return labels


def _private_is_exempt(row, rows=[]):
    rows.append(row)
    return rows


def none_default_is_fine(row, rows=None):
    if rows is None:
        rows = []
    rows.append(row)
    return rows
