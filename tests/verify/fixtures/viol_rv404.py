"""RV404 fixture: raw SPICE quantity strings in float positions."""

from repro.circuit import Capacitor, Resistor


def build_load(circuit):
    circuit.add(Resistor("rload", "out", "0", "10k"))
    circuit.add(Capacitor("cload", "out", "0", "5f"))


def store_window_seconds():
    return float("10n")


def longer_than(duration):
    return duration > 10e-9 and "1.5meg" / 2.0
