"""Array-semantics patterns the RV8xx band reports (800-804)."""

import numpy as np


def broadcast_mismatch():
    a = np.zeros((3, 4))
    b = np.ones((3, 5))
    return a + b                       # RV800: 4 vs 5


def matmul_mismatch():
    a = np.zeros((3, 4))
    b = np.zeros((5, 2))
    return a @ b                       # RV800: inner 4 vs 5


def demote_store():
    acc = np.zeros(8, dtype=np.float32)
    acc += np.ones(8)                  # RV801: f64 into f32 accumulator
    return acc


def dot_in_loop(a, b, steps):
    total = 0.0
    for _ in range(steps):
        total += np.dot(a, b)          # RV802: np.dot in a hot loop
    return total


def lost_fancy_write(A):
    pick = np.array([0, 0, 1])
    rows = A[pick]                     # fancy indexing: a copy
    rows += 1.0                        # RV802: A is never updated
    return A


def alias_hazard(state):
    ix = np.array([0, 0, 2])
    state[ix] += np.ones(3)            # RV803: repeated index collapses
    return state


def solve_cell(A: "(n, n)"):
    return A


def batch_drift():
    batch = np.zeros((4, 3, 3))
    return solve_cell(batch)           # RV804: rank 3 into rank-2 decl


def widened_if_is_quiet(flag):
    x = np.zeros((3, 4))
    if flag:
        x = np.zeros((3, 5))           # join widens dim 1 to unknown
    return x + np.ones((3, 4))         # quiet: not provable


def unique_index_is_quiet(state):
    ix = np.arange(3)
    state[ix] += np.ones(3)            # arange is duplicate-free: quiet
    return state
