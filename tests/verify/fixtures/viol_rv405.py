"""RV405 fixture: handlers that swallow solver forensics."""


def run_quietly(solve, circuit):
    try:
        return solve(circuit)
    except Exception:
        return None


def run_silently(solve, circuit):
    try:
        return solve(circuit)
    except:  # noqa: E722
        pass


def reraising_is_fine(solve, circuit, log):
    try:
        return solve(circuit)
    except Exception as exc:
        log(exc)
        raise
