"""RV403 fixture: stamp() writes entries stamp_pattern() omits."""


class DriftingResistor:
    """Pattern forgot the off-diagonal conductance entries."""

    def stamp(self, stamper, ctx):
        p, n = self.node_index
        stamper.conductance(p, n, self.g)

    def stamp_pattern(self, mode="dc"):
        p, n = self.node_index
        return [(p, p), (n, n)]


class DriftingSource:
    """Raw matrix write to a branch row the pattern never declares."""

    def stamp(self, stamper, ctx):
        p, n = self.node_index
        (k,) = self.branch_index
        stamper.matrix(p, k, 1.0)
        stamper.matrix(k, p, 1.0)
        stamper.rhs(k, self.level)

    def stamp_pattern(self, mode="dc"):
        p, n = self.node_index
        (k,) = self.branch_index
        return [(p, k)]


class ConsistentElement:
    """Matching contract: no finding expected."""

    def stamp(self, stamper, ctx):
        p, n = self.node_index
        stamper.conductance(p, n, self.g)

    def stamp_pattern(self, mode="dc"):
        p, n = self.node_index
        return [(p, p), (p, n), (n, p), (n, n)]
