"""Deliberately-violating modules exercised by test_rules_source.py.

Each ``viol_rv40x.py`` file trips exactly the rule its name says (plus
nothing else), so the detection tests can assert precise diagnostics.
They are fixtures, not importable code — never import them.
"""
