"""Arithmetic on / comparison against format_eng strings (RV503)."""

from repro.units import format_eng


def engstr_arithmetic_bad(e_store, e_restore):
    pretty = format_eng(e_store, "J")
    return pretty + e_restore              # concat, not a sum -> RV503


def engstr_compare_bad(e_store, e_limit):
    pretty = format_eng(e_store, "J")
    return pretty < e_limit                # lexical compare -> RV503


def format_for_display_ok(e_store):
    return format_eng(e_store, "J")        # presentation only; quiet
