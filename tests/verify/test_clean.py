"""Every netlist the repo ships must lint clean (no error findings).

These are the dogfood tests for the lint-before-simulate hooks: if a
rule change starts flagging the shipped cells, or a cell change trips
a rule, this file names the offending rule and target.
"""

from pathlib import Path

import pytest

from repro.cells import build_cell_array
from repro.characterize.ff_runner import _build_ff_bench
from repro.characterize.testbench import build_cell_testbench
from repro.devices.mtj import MTJ_TABLE1
from repro.devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from repro.pg.modes import OperatingConditions
from repro.verify import assert_clean, lint_enabled, verify_deck_file

REPO = Path(__file__).resolve().parent.parent.parent
DECKS = sorted((REPO / "examples" / "decks").glob("*.sp"))


def bench(name):
    if name in ("nv", "6t"):
        return build_cell_testbench(name).circuit
    if name == "nvff":
        circuit, _ff = _build_ff_bench(OperatingConditions(),
                                       NFET_20NM_HP, PFET_20NM_HP,
                                       MTJ_TABLE1)
        return circuit
    return build_cell_array(2, 2, lint=False).circuit


@pytest.mark.lint
@pytest.mark.parametrize("name", ["nv", "6t", "nvff", "array"])
def test_shipped_bench_lints_clean(name):
    report = assert_clean(bench(name), target=f"cell:{name}")
    assert not report.has_errors


@pytest.mark.lint
@pytest.mark.parametrize("deck", DECKS, ids=lambda p: p.name)
def test_shipped_deck_lints_clean(deck):
    report = verify_deck_file(deck)
    assert not report.has_errors, [str(d) for d in report.errors()]


@pytest.mark.lint
def test_example_decks_exist():
    # parametrize silently collects nothing if the glob breaks.
    assert DECKS


class TestHookEscapeHatch:
    def test_repro_lint_env_disables_hooks(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINT", "0")
        assert not lint_enabled()
        # With the gate off, assert_clean skips analysis entirely.
        report = assert_clean(bench("nv"), target="cell:nv")
        assert len(report) == 0

    def test_lint_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LINT", raising=False)
        assert lint_enabled()
