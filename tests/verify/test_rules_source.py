"""RV4xx source-lint rules: one detection test per rule, plus the
self-clean guarantee over the shipped tree."""

from pathlib import Path

import pytest

from repro.verify import (
    REGISTRY,
    VerifyConfig,
    default_source_paths,
    verify_source,
    verify_source_file,
    verify_source_text,
)

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name, **kwargs):
    return verify_source_file(FIXTURES / name, **kwargs)


def codes(report):
    return [d.code for d in report]


# -- band registration ------------------------------------------------------


def test_rv4xx_band_registered():
    source_rules = REGISTRY.rules("source")
    assert [r.code for r in source_rules] == [
        "RV400", "RV401", "RV402", "RV403", "RV404", "RV405", "RV406"]
    for rule_ in source_rules:
        assert rule_.description
        assert rule_.rationale


# -- one detection test per rule --------------------------------------------


def test_rv400_syntax_error():
    report = verify_source_text("def broken(:\n    pass\n",
                                path="broken.py")
    assert codes(report) == ["RV400"]
    diag = report.diagnostics[0]
    assert diag.severity.value == "error"
    assert diag.location is not None and diag.location.line >= 1
    assert "syntax error" in diag.message


def test_rv401_float_equality():
    report = lint_fixture("viol_rv401.py")
    assert codes(report) == ["RV401", "RV401"]
    subjects = {d.subject for d in report}
    assert subjects == {"rail_is_nominal", "not_at_retention"}
    # The NaN idiom and the exact-zero guard never fire.
    assert all("allowed_idioms" != d.subject for d in report)


def test_rv402_nan_skip_hazard():
    report = lint_fixture("viol_rv402.py")
    assert set(codes(report)) == {"RV402"}
    subjects = {d.subject for d in report}
    assert "worst_store_current" in subjects
    assert "first_above_threshold" in subjects
    # A function that consults .num_skipped / np.isnan is exempt.
    assert "guarded_is_fine" not in subjects


def test_rv403_stamp_contract_drift():
    report = lint_fixture("viol_rv403.py")
    assert set(codes(report)) == {"RV403"}
    subjects = {d.subject for d in report}
    assert subjects == {"DriftingResistor", "DriftingSource"}
    # DriftingResistor: (p,n) and (n,p) written, only diagonals declared.
    drifting = [d for d in report if d.subject == "DriftingResistor"]
    assert len(drifting) == 2
    # DriftingSource: the (branch, node) backward write is undeclared.
    assert any("branch_index[0]" in d.message for d in report
               if d.subject == "DriftingSource")


def test_rv404_raw_quantity_strings():
    report = lint_fixture("viol_rv404.py")
    assert set(codes(report)) == {"RV404"}
    flagged = {d.message.split("'")[1] for d in report}
    assert flagged == {"10k", "5f", "10n", "1.5meg"}
    assert all("parse_quantity" in d.message for d in report)


def test_rv405_swallowed_forensics():
    report = lint_fixture("viol_rv405.py")
    assert set(codes(report)) == {"RV405"}
    by_subject = {d.subject: d for d in report}
    assert set(by_subject) == {"run_quietly", "run_silently"}
    # The bare form is promoted to error; broad-with-return is a warning.
    assert by_subject["run_silently"].severity.value == "error"
    assert by_subject["run_quietly"].severity.value == "warning"
    assert "reraising_is_fine" not in by_subject


def test_rv406_mutable_defaults():
    report = lint_fixture("viol_rv406.py")
    assert set(codes(report)) == {"RV406"}
    subjects = {d.subject for d in report}
    assert subjects == {"collect_rows", "tag_point"}


# -- suppression mechanics ---------------------------------------------------


def test_inline_pragma_suppresses_one_line():
    text = ("def f(v):\n"
            "    a = v == 0.9  # lint: skip=RV401\n"
            "    b = v == 0.8\n"
            "    return a or b\n")
    report = verify_source_text(text, path="pragma.py")
    assert codes(report) == ["RV401"]
    assert report.diagnostics[0].location.line == 3


def test_path_glob_suppression_matches_target():
    config = VerifyConfig(suppress=("RV401:*viol_rv401.py",))
    report = lint_fixture("viol_rv401.py", config=config)
    assert codes(report) == []


def test_disable_rule_by_code():
    config = VerifyConfig(disable=frozenset({"RV401"}))
    report = lint_fixture("viol_rv401.py", config=config)
    assert codes(report) == []


# -- walking and merging -----------------------------------------------------


def test_verify_source_merges_directory(tmp_path):
    (tmp_path / "one.py").write_text("def f(v):\n    return v == 0.9\n")
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "two.py").write_text("def g(w=[]):\n    return w\n")
    report = verify_source([str(tmp_path)])
    assert sorted(codes(report)) == ["RV401", "RV406"]
    targets = {d.target for d in report}
    assert any(t.endswith("one.py") for t in targets)
    assert any(t.endswith("two.py") for t in targets)
    assert "2 modules" in report.target


# -- the acceptance guarantee ------------------------------------------------


def test_shipped_source_tree_is_clean():
    """`repro lint-source` exits 0 on the shipped package.

    Clean means no errors and no warnings.  Info-severity findings are
    allowed: the RV7xx band deliberately emits an informational
    inventory of vectorization targets (pinned by
    ``test_rules_perf.test_rv701_inventory_matches_hand_audit``), and
    ``--strict`` CI gates only errors/warnings.
    """
    report = verify_source(default_source_paths())
    noisy = report.errors() + report.warnings()
    assert noisy == [], "\n".join(str(d) for d in noisy)
