"""Tests for the RV0xx hygiene rules, including the multigraph fix."""

from repro.circuit import Capacitor, Circuit, Resistor, VoltageSource
from repro.verify import verify_circuit


def codes(report):
    return {d.code for d in report}


def by_code(report, code):
    return [d for d in report if d.code == code]


class TestCompileGate:
    def test_uncompilable_circuit_yields_rv006_only(self):
        c = Circuit("no ground")
        c.add(Resistor("r1", "a", "b", 1e3))
        report = verify_circuit(c)
        assert codes(report) == {"RV006"}
        assert report.has_errors


class TestVoltageLoops:
    def test_self_loop_source_flagged(self):
        # The seed linter's collapsed graph dropped this entirely.
        c = Circuit()
        c.add(VoltageSource("vshort", "a", "a", dc=0.0))
        c.add(VoltageSource("v1", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        loops = by_code(verify_circuit(c), "RV004")
        assert [d.subject for d in loops] == ["vshort"]

    def test_three_node_loop_flagged(self):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", dc=1.0))
        c.add(VoltageSource("v2", "b", "a", dc=0.5))
        c.add(VoltageSource("v3", "b", "0", dc=1.5))
        c.add(Resistor("r", "b", "0", 1e3))
        assert len(by_code(verify_circuit(c), "RV004")) == 1

    def test_parallel_pair_reported_once_by_rv005(self):
        # Two sources on one node pair is one RV005 finding, not an
        # additional RV004 loop: the rules partition the cycle space.
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", dc=1.0))
        c.add(VoltageSource("v2", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        report = verify_circuit(c)
        assert len(by_code(report, "RV005")) == 1
        assert not by_code(report, "RV004")

    def test_parallel_pair_plus_third_path_both_reported(self):
        # The seed bug: v1 || v2 between (a, 0) collapsed to one edge,
        # so the a-b-0 loop through v3/v4 went unreported.
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", dc=1.0))
        c.add(VoltageSource("v2", "a", "0", dc=1.0))
        c.add(VoltageSource("v3", "b", "a", dc=0.5))
        c.add(VoltageSource("v4", "b", "0", dc=1.5))
        c.add(Resistor("r", "b", "0", 1e3))
        report = verify_circuit(c)
        assert len(by_code(report, "RV005")) == 1
        assert len(by_code(report, "RV004")) == 1

    def test_ground_aliases_merged(self):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", dc=1.0))
        c.add(VoltageSource("v2", "a", "gnd", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        assert len(by_code(verify_circuit(c), "RV005")) == 1

    def test_series_sources_clean(self):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", dc=1.0))
        c.add(VoltageSource("v2", "b", "a", dc=0.5))
        c.add(Resistor("r", "b", "0", 1e3))
        report = verify_circuit(c)
        assert not by_code(report, "RV004")
        assert not by_code(report, "RV005")


class TestHygiene:
    def test_floating_node_warning(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r1", "in", "typo", 1e3))
        diag = by_code(verify_circuit(c), "RV001")[0]
        assert diag.subject == "typo"
        assert diag.severity.value == "warning"

    def test_cap_only_node_warning(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r", "in", "0", 1e3))
        c.add(Capacitor("c1", "in", "dyn", 1e-15))
        c.add(Capacitor("c2", "dyn", "0", 1e-15))
        assert by_code(verify_circuit(c), "RV002")

    def test_shorted_element_warning(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("rshort", "a", "a", 1e3))
        c.add(Resistor("rload", "a", "0", 1e3))
        assert by_code(verify_circuit(c), "RV003")
