"""RV7xx hot-path perf inventory: per-pattern fixtures, the
interprocedural loop-called allocation check, and the acceptance
cross-check of the shipped RV701 inventory against a hand audit."""

import textwrap
from pathlib import Path

import pytest

from repro.verify import default_source_paths, verify_source, \
    verify_source_file

FIXTURES = Path(__file__).parent / "fixtures"

#: Every per-element stamping loop shipped in analysis/ and devices/,
#: audited by hand (see ROADMAP item 1).  The RV701 band must report
#: exactly these — a new stamping loop extends this list consciously,
#: a vectorized one strikes it.
HAND_AUDITED_STAMP_LOOPS = {
    ("analysis/ac.py", 118),       # element.stamp() over the netlist
    ("analysis/ac.py", 132),       # per-capacitor conductance stamps
    ("analysis/dc.py", 135),       # clamp stamper in _make_clamp_stamper
    ("analysis/mna.py", 61),       # vccs quad fill
    ("analysis/solver.py", 87),    # _restamp element.stamp() loop
    ("devices/finfet.py", 264),    # FinFET 4x4 Jacobian entry fill
}


def codes(report):
    return [d.code for d in report]


def test_rv7xx_fixture_findings():
    report = verify_source_file(FIXTURES / "viol_rv70x.py")
    assert sorted(codes(report)) == ["RV701", "RV701", "RV702", "RV703"]
    by_subject = {}
    for d in report:
        by_subject.setdefault(d.subject.split(":")[1], d)
    assert ".stamp() per element" in by_subject["stamp_all"].message
    assert "entry-by-entry" in by_subject["fill_entries"].message
    assert "zeros() inside a loop" in by_subject["alloc_per_step"].message
    assert ".compile() inside a loop" in \
        by_subject["reassemble_per_point"].message
    # hoisted_is_fine allocates and compiles outside the loop: quiet.
    assert "hoisted_is_fine" not in by_subject
    assert all(d.severity.value == "info" for d in report)


def test_rv702_flags_loop_called_function(tmp_path):
    """The allocation sits in a helper; the loop is in another module."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "alloc.py").write_text(textwrap.dedent('''\
        import numpy as np


        def fresh_state(n):
            return np.zeros(n)
        '''))
    (pkg / "sweep.py").write_text(textwrap.dedent('''\
        from pkg.alloc import fresh_state


        def run(points, n):
            out = []
            for _ in range(points):
                out.append(fresh_state(n))
            return out
        '''))
    report = verify_source([str(pkg)])
    hits = [d for d in report if d.code == "RV702"]
    assert len(hits) == 1
    # Attributed to the *calling loop* (like RV701), naming the callee:
    # that is where the per-iteration cost is paid and where the fix
    # (hoist or thread a buffer) lands.
    assert hits[0].target.endswith("sweep.py")
    assert hits[0].subject == "pkg.sweep:run"
    assert "loop calls pkg.alloc:fresh_state per iteration" \
        in hits[0].message
    assert "zeros() at line 5" in hits[0].message


def test_rv702_stays_quiet_without_looping_caller(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "alloc.py").write_text(textwrap.dedent('''\
        import numpy as np


        def fresh_state(n):
            return np.zeros(n)
        '''))
    (pkg / "once.py").write_text(textwrap.dedent('''\
        from pkg.alloc import fresh_state


        def run(n):
            return fresh_state(n)
        '''))
    report = verify_source([str(pkg)])
    assert [d for d in report if d.code == "RV702"] == []


def test_rv701_inventory_matches_hand_audit():
    """Acceptance: the shipped RV701 inventory is exactly the audited
    stamping-loop list for analysis/ and devices/."""
    report = verify_source(default_source_paths())
    found = set()
    for d in report:
        if d.code != "RV701":
            continue
        target = d.target.replace("\\", "/")
        if "/analysis/" in target or "/devices/" in target:
            rel = target.split("/repro/", 1)[1]
            found.add((rel, d.location.line))
    assert found == HAND_AUDITED_STAMP_LOOPS, (
        "RV701 inventory drifted from the hand audit.\n"
        f"  unexpected: {sorted(found - HAND_AUDITED_STAMP_LOOPS)}\n"
        f"  missing:    {sorted(HAND_AUDITED_STAMP_LOOPS - found)}\n"
        "A new stamping loop must be added to the audit list above; a "
        "vectorized one must be struck from it.")
