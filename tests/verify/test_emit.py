"""Tests for the text/JSON/SARIF report emitters."""

import json

from repro.circuit import Circuit, Resistor, VoltageSource
from repro.verify import (
    REGISTRY,
    render_json,
    render_sarif,
    render_text,
    verify_circuit,
    verify_deck,
)


def sample_circuit_report():
    c = Circuit()
    c.add(VoltageSource("v1", "a", "0", dc=1.0))
    c.add(VoltageSource("v2", "a", "0", dc=1.0))
    c.add(Resistor("r", "a", "dangle", 1e3))
    return verify_circuit(c, target="tb")


def sample_deck_report():
    return verify_deck("t\nr1 a 0 10x\nv1 a 0 1\n.end\n",
                       path="bad.sp", include_circuit=False)


class TestText:
    def test_one_line_per_diag_plus_summary(self):
        report = sample_circuit_report()
        lines = render_text(report).splitlines()
        assert len(lines) == len(report) + 1
        assert lines[0].startswith("tb: [error] RV005")
        assert "error(s)" in lines[-1] and lines[-1].startswith("tb:")

    def test_empty_report_still_summarises(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        text = render_text(verify_circuit(c, target="ok"))
        assert text == "ok: 0 error(s), 0 warning(s), 0 info"


class TestJson:
    def test_payload_round_trips(self):
        report = sample_circuit_report()
        payload = json.loads(render_json(report))
        assert payload["target"] == "tb"
        assert payload["counts"]["error"] == len(report.errors())
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "RV005" in codes and "RV001" in codes

    def test_deck_findings_carry_lines(self):
        payload = json.loads(render_json(sample_deck_report()))
        suspicious = [d for d in payload["diagnostics"]
                      if d["code"] == "RV306"][0]
        assert suspicious["line"] == 2
        assert "10x" in suspicious["text"]


class TestSarif:
    def test_skeleton(self):
        log = json.loads(render_sarif(sample_circuit_report()))
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["tool"]["driver"]["rules"]) == len(REGISTRY)

    def test_rule_metadata_and_levels(self):
        log = json.loads(render_sarif(sample_circuit_report()))
        rules = {r["id"]: r for r in
                 log["runs"][0]["tool"]["driver"]["rules"]}
        assert rules["RV005"]["defaultConfiguration"]["level"] == "error"
        assert rules["RV001"]["defaultConfiguration"]["level"] == "warning"
        assert rules["RV101"]["shortDescription"]["text"]

    def test_results_reference_registered_rules(self):
        log = json.loads(render_sarif(sample_circuit_report()))
        run = log["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["level"] in ("error", "warning", "note")
            assert result["message"]["text"]

    def test_physical_location_for_deck_findings(self):
        log = json.loads(render_sarif(sample_deck_report()))
        results = [r for r in log["runs"][0]["results"]
                   if r["ruleId"] == "RV306"]
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2

    def test_logical_location_for_circuit_findings(self):
        log = json.loads(render_sarif(sample_circuit_report()))
        result = [r for r in log["runs"][0]["results"]
                  if r["ruleId"] == "RV001"][0]
        logical = result["locations"][0]["logicalLocations"]
        assert logical[0]["name"] == "dangle"
