"""Shared lint policy: pyproject loading, layering, suppression globs."""

import pytest

from repro.verify import Severity, VerifyConfig, verify_source_text
from repro.verify.config import (
    config_from_table,
    effective_config,
    find_pyproject,
    load_project_config,
)
from repro.verify.core import Diagnostic

RV401_TEXT = "def f(v):\n    return v == 0.9\n"


def make_diag(code="RV401", subject="f", target="src/repro/pg/bet.py"):
    return Diagnostic(code=code, name="float-equality",
                      severity=Severity.WARNING, message="m",
                      subject=subject, target=target)


class TestMerge:
    def test_sets_union_and_overrides_layer(self):
        base = VerifyConfig(disable=frozenset({"RV001"}),
                            suppress=("RV401:a*",),
                            severity_overrides={"RV402": Severity.WARNING})
        top = VerifyConfig(disable=frozenset({"RV104"}),
                           suppress=("RV404:b*",),
                           severity_overrides={"RV402": Severity.INFO})
        merged = base.merge(top)
        assert merged.disable == {"RV001", "RV104"}
        assert merged.suppress == ("RV401:a*", "RV404:b*")
        # Later layer wins on severity conflicts.
        assert merged.severity_overrides["RV402"] is Severity.INFO

    def test_merge_dedups_suppressions(self):
        base = VerifyConfig(suppress=("RV401:a*",))
        merged = base.merge(VerifyConfig(suppress=("RV401:a*",)))
        assert merged.suppress == ("RV401:a*",)


class TestSuppressionGlobs:
    def test_subject_glob_still_matches(self):
        config = VerifyConfig(suppress=("RV401:f",))
        assert config.suppressed(make_diag())

    def test_target_path_glob_matches(self):
        config = VerifyConfig(suppress=("RV401:src/repro/pg/*",))
        assert config.suppressed(make_diag())

    def test_other_path_does_not_match(self):
        config = VerifyConfig(suppress=("RV401:src/repro/devices/*",))
        assert not config.suppressed(make_diag())

    def test_code_must_match_too(self):
        config = VerifyConfig(suppress=("RV404:src/repro/pg/*",))
        assert not config.suppressed(make_diag())


class TestPyprojectLoading:
    def test_table_parsing(self):
        config = config_from_table({
            "disable": ["RV104"],
            "suppress": ["RV401:src/repro/legacy/*"],
            "severity": {"RV406": "info"},
        })
        assert config.disable == {"RV104"}
        assert config.suppress == ("RV401:src/repro/legacy/*",)
        assert config.severity_overrides["RV406"] is Severity.INFO

    def test_bad_severity_raises(self):
        with pytest.raises(ValueError):
            config_from_table({"severity": {"RV406": "loud"}})

    def test_load_from_file(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.verify]\ndisable = [\"RV401\"]\n")
        config = load_project_config(tmp_path / "pyproject.toml")
        assert config.disable == {"RV401"}

    def test_search_walks_upward(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.verify]\ndisable = [\"RV401\"]\n")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_pyproject(nested) == tmp_path / "pyproject.toml"
        assert load_project_config(nested).disable == {"RV401"}

    def test_missing_table_is_permissive(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname = \"x\"\n")
        config = load_project_config(tmp_path / "pyproject.toml")
        assert config == VerifyConfig()

    def test_missing_file_is_permissive(self, tmp_path):
        assert load_project_config(tmp_path) == VerifyConfig()


class TestEffectiveConfig:
    def test_policy_disables_rule_end_to_end(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.verify]\ndisable = [\"RV401\"]\n")
        config = effective_config(project_path=tmp_path)
        report = verify_source_text(RV401_TEXT, path="mod.py",
                                    config=config)
        assert list(report) == []

    def test_policy_suppresses_by_path_end_to_end(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.verify]\nsuppress = [\"RV401:legacy/*\"]\n")
        config = effective_config(project_path=tmp_path)
        flagged = verify_source_text(RV401_TEXT, path="fresh/mod.py",
                                     config=config)
        assert [d.code for d in flagged] == ["RV401"]
        quiet = verify_source_text(RV401_TEXT, path="legacy/mod.py",
                                   config=config)
        assert list(quiet) == []

    def test_env_layer_adds_disables(self, tmp_path, monkeypatch):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.verify]\ndisable = [\"RV104\"]\n")
        monkeypatch.setenv("REPRO_LINT_DISABLE", "RV401")
        config = effective_config(project_path=tmp_path)
        assert {"RV104", "RV401"} <= set(config.disable)

    def test_cli_layer_adds_disables(self, tmp_path):
        config = effective_config(cli_disable=frozenset({"RV406"}),
                                  project_path=tmp_path)
        assert "RV406" in config.disable

    def test_severity_override_downgrades_finding(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.verify.severity]\nRV401 = \"info\"\n")
        config = effective_config(project_path=tmp_path)
        report = verify_source_text(RV401_TEXT, path="mod.py",
                                    config=config)
        assert [d.severity.value for d in report] == ["info"]
