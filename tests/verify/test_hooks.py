"""The lint-before-simulate hooks must fail fast on broken netlists."""

import pytest

from repro.cells import build_cell_array
from repro.errors import VerificationError
from repro.spice import parse_deck
from repro.spice.runner import run_deck

#: Parses fine, simulates fine (gmin pins the island), but is wrong:
#: nodes isl_a/isl_b float in every operating mode (RV101).
ISLAND_DECK = """islanded deck
v1 vdd 0 0.9
r1 vdd out 1k
r2 out 0 1k
risl isl_a isl_b 1k
risl2 isl_b isl_a 2k
.op
.end
"""


class TestRunDeckHook:
    def test_error_findings_block_simulation(self):
        with pytest.raises(VerificationError) as excinfo:
            run_deck(parse_deck(ISLAND_DECK))
        assert any(d.code == "RV101" for d in excinfo.value.diagnostics)

    def test_lint_kwarg_bypasses_gate(self):
        result = run_deck(parse_deck(ISLAND_DECK), lint=False)
        assert len(result.operating_points()) == 1

    def test_env_kill_switch_bypasses_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINT", "0")
        result = run_deck(parse_deck(ISLAND_DECK))
        assert len(result.operating_points()) == 1


class TestBuilderHook:
    def test_clean_array_builds(self):
        tb = build_cell_array(2, 2)
        assert tb.circuit is not None

    def test_array_error_message_names_target(self):
        # Sanity-check the error text a broken builder would produce by
        # injecting a bypass into a built array and re-asserting.
        from repro.circuit import Resistor
        from repro.verify import assert_clean

        tb = build_cell_array(1, 1)
        tb.circuit.add(Resistor("rleak", "vdd", "vvdd0", 10e3))
        with pytest.raises(VerificationError) as excinfo:
            assert_clean(tb.circuit, target="array:1x1")
        assert "array:1x1" in str(excinfo.value)
        assert any(d.code == "RV105" for d in excinfo.value.diagnostics)
