"""Tests for the RV201 structural MNA-singularity check."""

from repro.circuit import (
    Capacitor,
    Circuit,
    CurrentSource,
    Resistor,
    VoltageSource,
)
from repro.devices.finfet import FinFET
from repro.devices.ptm20 import NFET_20NM_HP
from repro.verify import verify_circuit
from repro.verify.rules_mna import stamp_incidence, structural_deficiency


def by_code(report, code):
    return [d for d in report if d.code == code]


class TestStructuralDeficiency:
    def test_divider_is_nonsingular(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r1", "in", "mid", 1e3))
        c.add(Resistor("r2", "mid", "0", 1e3))
        assert structural_deficiency(c) == []

    def test_current_source_only_node(self):
        # Nothing stamps a row for n1's voltage: singular for every
        # parameter value, not just an unlucky operating point.
        c = Circuit()
        c.add(CurrentSource("i1", "0", "n1", dc=1e-6))
        c.add(CurrentSource("i2", "n1", "0", dc=1e-6))
        c.add(Resistor("r", "ref", "0", 1e3))
        c.add(VoltageSource("v", "ref", "0", dc=1.0))
        deficient = structural_deficiency(c)
        c.compile()
        assert c.index_of("n1") in deficient

    def test_floating_finfet_gate(self):
        # FinFETs draw zero gate current, so a gate node nothing else
        # touches has an empty KCL row.
        c = Circuit()
        c.add(VoltageSource("v", "vdd", "0", dc=0.9))
        c.add(Resistor("rload", "vdd", "d", 10e3))
        c.add(FinFET("m1", "d", "gfloat", "0", NFET_20NM_HP))
        deficient = structural_deficiency(c)
        c.compile()
        assert c.index_of("gfloat") in deficient

    def test_cap_only_node_exempt_at_dc(self):
        # gmin territory: RV002 warns, RV201 must stay silent.
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r", "in", "0", 1e3))
        c.add(Capacitor("c1", "in", "dyn", 1e-15))
        c.add(Capacitor("c2", "dyn", "0", 1e-15))
        assert structural_deficiency(c, mode="dc") == []

    def test_cap_only_node_counted_in_transient_mode(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r", "in", "0", 1e3))
        c.add(Capacitor("c1", "in", "dyn", 1e-15))
        c.add(Capacitor("c2", "dyn", "0", 1e-15))
        assert structural_deficiency(c, mode="tran") == []


class TestStampIncidence:
    def test_ground_entries_dropped(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r", "in", "0", 1e3))
        c.compile()
        incidence = stamp_incidence(c)
        for row, cols in incidence.items():
            assert row >= 0
            assert all(col >= 0 for col in cols)

    def test_capacitor_stamps_nothing_at_dc(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Capacitor("c1", "in", "out", 1e-15))
        c.add(Resistor("r", "out", "0", 1e3))
        c.compile()
        dc = stamp_incidence(c, mode="dc")
        tran = stamp_incidence(c, mode="tran")
        out = c.index_of("out")
        # At DC only the resistor touches "out"'s row; in transient mode
        # the capacitor couples it to "in" as well.
        assert dc[out] == {out}
        assert c.index_of("in") in tran[out]


class TestRule:
    def test_rv201_reports_node_by_name(self):
        c = Circuit()
        c.add(CurrentSource("i1", "0", "n1", dc=1e-6))
        c.add(CurrentSource("i2", "n1", "0", dc=1e-6))
        c.add(Resistor("r", "ref", "0", 1e3))
        c.add(VoltageSource("v", "ref", "0", dc=1.0))
        diags = by_code(verify_circuit(c), "RV201")
        assert diags
        assert any(d.subject == "n1" for d in diags)
        assert diags[0].severity.value == "error"

    def test_source_topology_errors_also_structural(self):
        # Parallel sources and V-loops are structurally deficient, so
        # RV201 backs up the specific RV004/RV005 diagnoses.
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", dc=1.0))
        c.add(VoltageSource("v2", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        report = verify_circuit(c)
        assert by_code(report, "RV005")
        assert by_code(report, "RV201")

    def test_healthy_cell_bench_has_no_rv201(self):
        from repro.characterize.testbench import build_cell_testbench

        report = verify_circuit(build_cell_testbench("nv").circuit)
        assert not by_code(report, "RV201")
