"""RV5xx physical-units dataflow: per-rule fixtures plus the
cross-module fixpoint that makes the band interprocedural."""

import textwrap
from pathlib import Path

import pytest

from repro.verify import REGISTRY, VerifyConfig, verify_source, \
    verify_source_file, verify_source_text

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name, **kwargs):
    return verify_source_file(FIXTURES / name, **kwargs)


def codes(report):
    return [d.code for d in report]


# -- band registration ------------------------------------------------------


def test_project_band_registered():
    project_rules = REGISTRY.rules("project")
    assert [r.code for r in project_rules] == [
        "RV501", "RV502", "RV503",
        "RV600", "RV601", "RV602", "RV603", "RV604",
        "RV701", "RV702", "RV703",
        "RV800", "RV801", "RV802", "RV803", "RV804",
        "RV900", "RV901", "RV902", "RV903", "RV904", "RV905"]
    for rule_ in project_rules:
        assert rule_.description
        assert rule_.rationale


# -- RV501: dimension mixing -------------------------------------------------


def test_rv501_dimension_mix():
    report = lint_fixture("viol_rv501.py")
    assert codes(report) == ["RV501"] * 3
    by_subject = {d.subject.split(":")[1]: d for d in report}
    assert set(by_subject) == {"total_energy_bad", "compare_bad",
                               "cross_call_bad"}
    assert "energy and power" in by_subject["total_energy_bad"].message
    assert "frequency vs time" in by_subject["compare_bad"].message
    # The quiet functions stay quiet: ratios, same-dimension sums and
    # unknown operands never fire (optimistic lattice).
    noisy = {d.subject for d in report}
    for quiet in ("ratio_is_fine", "same_dimension_is_fine",
                  "unknown_stays_quiet"):
        assert all(not s.endswith(quiet) for s in noisy)


def test_rv501_crosses_function_boundaries():
    """cross_call_bad mixes only via helper_power's return fact."""
    report = lint_fixture("viol_rv501.py")
    cross = [d for d in report if d.subject.endswith("cross_call_bad")]
    assert len(cross) == 1
    assert "energy and power" in cross[0].message


def test_rv501_annotation_seeds():
    report = verify_source_text(textwrap.dedent('''\
        def f(stored: "J", drawn: "W"):
            return stored + drawn
        '''), path="annot.py")
    assert codes(report) == ["RV501"]


def test_rv501_cross_module_fixpoint(tmp_path):
    """A mix spanning two modules fires at the offending expression."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "rails.py").write_text(textwrap.dedent('''\
        def leak_power(vdd, leakage_current):
            return vdd * leakage_current
        '''))
    (pkg / "budget.py").write_text(textwrap.dedent('''\
        from pkg.rails import leak_power


        def cycle_total(e_cyc):
            return e_cyc + leak_power(0.9, 1e-6)
        '''))
    report = verify_source([str(pkg)])
    mixes = [d for d in report if d.code == "RV501"]
    assert len(mixes) == 1
    assert mixes[0].target.endswith("budget.py")
    assert mixes[0].subject == "pkg.budget:cycle_total"
    assert "energy and power" in mixes[0].message


# -- RV502: format_eng unit mismatch ----------------------------------------


def test_rv502_unit_api_mismatch():
    report = lint_fixture("viol_rv502.py")
    assert codes(report) == ["RV502"]
    diag = report.diagnostics[0]
    assert diag.subject.endswith("render_power_bad")
    assert "formats a power unit, but the value is energy" in diag.message
    assert diag.severity.value == "warning"


# -- RV503: engstr arithmetic ------------------------------------------------


def test_rv503_engstr_arithmetic():
    report = lint_fixture("viol_rv503.py")
    assert codes(report) == ["RV503", "RV503"]
    by_subject = {d.subject.split(":")[1]: d for d in report}
    assert "arithmetic on a format_eng string" in \
        by_subject["engstr_arithmetic_bad"].message
    assert "comparing a format_eng string" in \
        by_subject["engstr_compare_bad"].message
    assert all(d.severity.value == "error" for d in report)


# -- suppression works for the project band too -----------------------------


def test_rv5xx_inline_pragma():
    report = verify_source_text(textwrap.dedent('''\
        def f(e_store, leak_power):
            return e_store + leak_power  # lint: skip=RV501
        '''), path="pragma.py")
    assert codes(report) == []


def test_rv5xx_disable():
    config = VerifyConfig(disable=frozenset({"RV501"}))
    report = lint_fixture("viol_rv501.py", config=config)
    assert codes(report) == []
