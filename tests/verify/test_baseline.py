"""Baseline workflow: record today's findings, suppress them on later
runs, fail only on new ones.  Fingerprints are line-number-free so
unrelated edits never resurrect a baselined finding."""

import json
import textwrap

import pytest

from repro.cli import main
from repro.verify import (
    apply_baseline,
    baseline_fingerprint,
    load_baseline,
    verify_source_text,
    write_baseline,
)
from repro.verify.baseline import BASELINE_SCHEMA
from repro.verify.core import Diagnostic, Severity, SourceLocation

VIOLATIONS = ("def f(v):\n"
              "    return v == 0.9\n"
              "\n"
              "\n"
              "def g(row, rows=[]):\n"
              "    rows.append(row)\n"
              "    return rows\n")


def make_diag(code="RV401", line=2, message="float equality",
              subject="f", target="mod.py"):
    return Diagnostic(code=code, name="x", severity=Severity.WARNING,
                      message=message, subject=subject, target=target,
                      location=SourceLocation(line=line, text="..."))


# -- fingerprints ------------------------------------------------------------


def test_fingerprint_ignores_line_numbers():
    assert baseline_fingerprint(make_diag(line=2)) == \
        baseline_fingerprint(make_diag(line=40))


def test_fingerprint_distinguishes_content():
    base = baseline_fingerprint(make_diag())
    assert baseline_fingerprint(make_diag(code="RV406")) != base
    assert baseline_fingerprint(make_diag(subject="g")) != base
    assert baseline_fingerprint(make_diag(message="other")) != base
    assert baseline_fingerprint(make_diag(target="else.py")) != base


# -- write / load / apply ----------------------------------------------------


def test_round_trip_suppresses_everything(tmp_path):
    report = verify_source_text(VIOLATIONS, path="mod.py")
    assert len(report) == 2
    path = tmp_path / "lint-baseline.json"
    write_baseline(path, report)

    fingerprints = load_baseline(path)
    assert len(fingerprints) == 2
    filtered, suppressed, stale = apply_baseline(report, fingerprints)
    assert list(filtered) == []
    assert suppressed == 2
    assert stale == 0


def test_new_findings_pass_through(tmp_path):
    old = verify_source_text("def f(v):\n    return v == 0.9\n",
                             path="mod.py")
    path = tmp_path / "baseline.json"
    write_baseline(path, old)
    new = verify_source_text(VIOLATIONS, path="mod.py")
    filtered, suppressed, stale = apply_baseline(new,
                                                 load_baseline(path))
    assert [d.code for d in filtered] == ["RV406"]
    assert suppressed == 1
    assert stale == 0


def test_stale_entries_are_counted(tmp_path):
    report = verify_source_text(VIOLATIONS, path="mod.py")
    path = tmp_path / "baseline.json"
    write_baseline(path, report)
    clean = verify_source_text("def f():\n    return 1\n", path="mod.py")
    filtered, suppressed, stale = apply_baseline(clean,
                                                 load_baseline(path))
    assert list(filtered) == []
    assert suppressed == 0
    assert stale == 2


def test_baseline_file_is_human_auditable(tmp_path):
    report = verify_source_text(VIOLATIONS, path="mod.py")
    path = tmp_path / "baseline.json"
    write_baseline(path, report)
    payload = json.loads(path.read_text())
    assert payload["schema"] == BASELINE_SCHEMA
    entries = payload["entries"]
    assert len(entries) == 2
    for entry in entries.values():
        assert entry["code"].startswith("RV")
        assert entry["target"] == "mod.py"
        assert entry["message"]


def test_info_findings_are_never_recorded(tmp_path):
    """The RV7xx inventory is a worklist, not a gate: baselining it
    would suppress the machine-readable output for no gain."""
    from repro.verify import Report

    report = Report(target="t", diagnostics=[
        make_diag(code="RV401"),
        Diagnostic(code="RV701", name="x", severity=Severity.INFO,
                   message="inventory", subject="f", target="mod.py"),
    ])
    path = tmp_path / "baseline.json"
    assert write_baseline(path, report) == 1
    entries = json.loads(path.read_text())["entries"]
    assert [e["code"] for e in entries.values()] == ["RV401"]


def test_corrupt_baseline_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{ nope")
    with pytest.raises(ValueError):
        load_baseline(path)
    path.write_text(json.dumps({"schema": 999, "entries": {}}))
    with pytest.raises(ValueError):
        load_baseline(path)


# -- CLI wiring --------------------------------------------------------------


class TestCliBaseline:
    def _module(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("def f():\n    return float(\"10n\")\n")
        return mod

    def test_update_then_suppress(self, tmp_path, capsys):
        mod = self._module(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint-source", str(mod)]) == 1    # RV404 fails
        assert main(["lint-source", str(mod),
                     "--update-baseline", str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["lint-source", str(mod),
                     "--baseline", str(baseline)]) == 0
        assert "suppressed" in capsys.readouterr().err

    def test_new_finding_still_fails(self, tmp_path):
        mod = self._module(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint-source", str(mod),
                     "--update-baseline", str(baseline)]) == 0
        mod.write_text(mod.read_text()
                       + "\n\ndef g():\n    return float(\"5f\")\n")
        assert main(["lint-source", str(mod),
                     "--baseline", str(baseline)]) == 1

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        mod = self._module(tmp_path)
        assert main(["lint-source", str(mod),
                     "--baseline", str(tmp_path / "nope.json")]) == 2

    def test_deck_lint_baseline(self, tmp_path, capsys):
        deck = tmp_path / "bad.sp"
        deck.write_text("t\nv1 a 0 1\nv2 a 0 1\n.end\n")
        baseline = tmp_path / "deck-baseline.json"
        assert main(["lint", str(deck)]) == 1          # RV005 fails
        assert main(["lint", str(deck),
                     "--update-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["lint", str(deck),
                     "--baseline", str(baseline)]) == 0


# -- prune -------------------------------------------------------------------


def test_prune_removes_only_stale_entries(tmp_path):
    from repro.verify import prune_baseline

    report = verify_source_text(VIOLATIONS, path="mod.py")
    path = tmp_path / "baseline.json"
    write_baseline(path, report)
    assert len(load_baseline(path)) == 2
    # One violation fixed: its entry is stale and gets pruned.
    fixed = VIOLATIONS.replace("rows=[]", "rows=()")
    removed = prune_baseline(path, verify_source_text(fixed,
                                                      path="mod.py"))
    assert removed == 1
    remaining = load_baseline(path)
    assert remaining == {baseline_fingerprint(d)
                         for d in verify_source_text(fixed,
                                                     path="mod.py")}
    payload = json.loads(path.read_text())
    assert payload["count"] == 1


def test_prune_never_adds_entries(tmp_path):
    from repro.verify import prune_baseline

    report = verify_source_text(VIOLATIONS, path="mod.py")
    path = tmp_path / "baseline.json"
    write_baseline(path, report)
    regressed = VIOLATIONS + ("\n\ndef h(x):\n"
                              "    return x == 1.8\n")
    removed = prune_baseline(path, verify_source_text(regressed,
                                                      path="mod.py"))
    assert removed == 0
    # The regression is NOT swallowed into the baseline.
    assert len(load_baseline(path)) == 2


def test_prune_rejects_corrupt_baseline(tmp_path):
    from repro.verify import prune_baseline

    path = tmp_path / "baseline.json"
    path.write_text("{\"schema\": 99, \"entries\": {}}")
    with pytest.raises(ValueError, match="schema"):
        prune_baseline(path, verify_source_text(VIOLATIONS,
                                                path="mod.py"))


class TestPruneCli:
    def _module(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("def f():\n    return float(\"10n\")\n"
                       "\n\ndef g():\n    return float(\"5f\")\n")
        return mod

    def test_prune_round_trip(self, tmp_path, capsys):
        mod = self._module(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint-source", "--no-cache", str(mod),
                     "--update-baseline", str(baseline)]) == 0
        # Fix one of the two findings; its entry goes stale.
        mod.write_text("def f():\n    return float(\"10n\")\n")
        capsys.readouterr()
        assert main(["lint-source", "--no-cache", str(mod),
                     "--baseline", str(baseline), "--prune"]) == 0
        err = capsys.readouterr().err
        assert "pruned 1 stale" in err
        assert json.loads(baseline.read_text())["count"] == 1
        # Round trip: the pruned file still suppresses, with no stale
        # warning left.
        assert main(["lint-source", "--no-cache", str(mod),
                     "--baseline", str(baseline)]) == 0
        assert "matched nothing" not in capsys.readouterr().err

    def test_prune_requires_baseline(self, tmp_path, capsys):
        mod = self._module(tmp_path)
        assert main(["lint-source", "--no-cache", str(mod), "--prune"]) == 2
        assert "--prune requires --baseline" in capsys.readouterr().err
