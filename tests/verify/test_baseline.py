"""Baseline workflow: record today's findings, suppress them on later
runs, fail only on new ones.  Fingerprints are line-number-free so
unrelated edits never resurrect a baselined finding."""

import json
import textwrap

import pytest

from repro.cli import main
from repro.verify import (
    apply_baseline,
    baseline_fingerprint,
    load_baseline,
    verify_source_text,
    write_baseline,
)
from repro.verify.baseline import BASELINE_SCHEMA
from repro.verify.core import Diagnostic, Severity, SourceLocation

VIOLATIONS = ("def f(v):\n"
              "    return v == 0.9\n"
              "\n"
              "\n"
              "def g(row, rows=[]):\n"
              "    rows.append(row)\n"
              "    return rows\n")


def make_diag(code="RV401", line=2, message="float equality",
              subject="f", target="mod.py"):
    return Diagnostic(code=code, name="x", severity=Severity.WARNING,
                      message=message, subject=subject, target=target,
                      location=SourceLocation(line=line, text="..."))


# -- fingerprints ------------------------------------------------------------


def test_fingerprint_ignores_line_numbers():
    assert baseline_fingerprint(make_diag(line=2)) == \
        baseline_fingerprint(make_diag(line=40))


def test_fingerprint_distinguishes_content():
    base = baseline_fingerprint(make_diag())
    assert baseline_fingerprint(make_diag(code="RV406")) != base
    assert baseline_fingerprint(make_diag(subject="g")) != base
    assert baseline_fingerprint(make_diag(message="other")) != base
    assert baseline_fingerprint(make_diag(target="else.py")) != base


# -- write / load / apply ----------------------------------------------------


def test_round_trip_suppresses_everything(tmp_path):
    report = verify_source_text(VIOLATIONS, path="mod.py")
    assert len(report) == 2
    path = tmp_path / "lint-baseline.json"
    write_baseline(path, report)

    fingerprints = load_baseline(path)
    assert len(fingerprints) == 2
    filtered, suppressed, stale = apply_baseline(report, fingerprints)
    assert list(filtered) == []
    assert suppressed == 2
    assert stale == 0


def test_new_findings_pass_through(tmp_path):
    old = verify_source_text("def f(v):\n    return v == 0.9\n",
                             path="mod.py")
    path = tmp_path / "baseline.json"
    write_baseline(path, old)
    new = verify_source_text(VIOLATIONS, path="mod.py")
    filtered, suppressed, stale = apply_baseline(new,
                                                 load_baseline(path))
    assert [d.code for d in filtered] == ["RV406"]
    assert suppressed == 1
    assert stale == 0


def test_stale_entries_are_counted(tmp_path):
    report = verify_source_text(VIOLATIONS, path="mod.py")
    path = tmp_path / "baseline.json"
    write_baseline(path, report)
    clean = verify_source_text("def f():\n    return 1\n", path="mod.py")
    filtered, suppressed, stale = apply_baseline(clean,
                                                 load_baseline(path))
    assert list(filtered) == []
    assert suppressed == 0
    assert stale == 2


def test_baseline_file_is_human_auditable(tmp_path):
    report = verify_source_text(VIOLATIONS, path="mod.py")
    path = tmp_path / "baseline.json"
    write_baseline(path, report)
    payload = json.loads(path.read_text())
    assert payload["schema"] == BASELINE_SCHEMA
    entries = payload["entries"]
    assert len(entries) == 2
    for entry in entries.values():
        assert entry["code"].startswith("RV")
        assert entry["target"] == "mod.py"
        assert entry["message"]


def test_info_findings_are_never_recorded(tmp_path):
    """The RV7xx inventory is a worklist, not a gate: baselining it
    would suppress the machine-readable output for no gain."""
    from repro.verify import Report

    report = Report(target="t", diagnostics=[
        make_diag(code="RV401"),
        Diagnostic(code="RV701", name="x", severity=Severity.INFO,
                   message="inventory", subject="f", target="mod.py"),
    ])
    path = tmp_path / "baseline.json"
    assert write_baseline(path, report) == 1
    entries = json.loads(path.read_text())["entries"]
    assert [e["code"] for e in entries.values()] == ["RV401"]


def test_corrupt_baseline_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{ nope")
    with pytest.raises(ValueError):
        load_baseline(path)
    path.write_text(json.dumps({"schema": 999, "entries": {}}))
    with pytest.raises(ValueError):
        load_baseline(path)


# -- CLI wiring --------------------------------------------------------------


class TestCliBaseline:
    def _module(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("def f():\n    return float(\"10n\")\n")
        return mod

    def test_update_then_suppress(self, tmp_path, capsys):
        mod = self._module(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint-source", str(mod)]) == 1    # RV404 fails
        assert main(["lint-source", str(mod),
                     "--update-baseline", str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["lint-source", str(mod),
                     "--baseline", str(baseline)]) == 0
        assert "suppressed" in capsys.readouterr().err

    def test_new_finding_still_fails(self, tmp_path):
        mod = self._module(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint-source", str(mod),
                     "--update-baseline", str(baseline)]) == 0
        mod.write_text(mod.read_text()
                       + "\n\ndef g():\n    return float(\"5f\")\n")
        assert main(["lint-source", str(mod),
                     "--baseline", str(baseline)]) == 1

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        mod = self._module(tmp_path)
        assert main(["lint-source", str(mod),
                     "--baseline", str(tmp_path / "nope.json")]) == 2

    def test_deck_lint_baseline(self, tmp_path, capsys):
        deck = tmp_path / "bad.sp"
        deck.write_text("t\nv1 a 0 1\nv2 a 0 1\n.end\n")
        baseline = tmp_path / "deck-baseline.json"
        assert main(["lint", str(deck)]) == 1          # RV005 fails
        assert main(["lint", str(deck),
                     "--update-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["lint", str(deck),
                     "--baseline", str(baseline)]) == 0
