"""SARIF 2.1.0 emitter conformance: required fields + golden files.

Two layers:

* structural tests assert every field GitHub code scanning requires
  (runs/tool/driver/rules, result levels, locations) on full-registry
  output for a deck report and a source report;
* golden tests pin the exact serialisation against checked-in files,
  using a registry restricted to the rules that fire so the goldens
  survive future rule-band additions.  Regenerate deliberately with
  ``REPRO_UPDATE_GOLDEN=1 pytest tests/verify/test_sarif_golden.py``.
"""

import json
import os
from pathlib import Path

import pytest

from repro.verify import (
    REGISTRY,
    RuleRegistry,
    render_sarif,
    verify_deck,
    verify_source_text,
)
from repro.verify.emit import SARIF_SCHEMA, SARIF_VERSION

GOLDEN = Path(__file__).parent / "golden"

#: Deterministic deck input: a suspicious value token and a dangling
#: subcircuit-less deck line the RV3xx band flags.
DECK_TEXT = "t\nr1 a 0 10x\nv1 a 0 1\n.end\n"

#: Deterministic source input: one RV401, one RV406.
SOURCE_TEXT = (
    "def rail_is_nominal(v_rail):\n"
    "    return v_rail == 0.9\n"
    "\n"
    "\n"
    "def collect(row, rows=[]):\n"
    "    rows.append(row)\n"
    "    return rows\n"
)


#: Deterministic units input: RV501 + RV502 + RV503, one function each.
UNITS_TEXT = (
    "from repro.units import format_eng\n"
    "\n"
    "\n"
    "def mix(e_store, leak_power):\n"
    "    return e_store + leak_power\n"
    "\n"
    "\n"
    "def mislabel(e_store):\n"
    "    return format_eng(e_store, \"W\")\n"
    "\n"
    "\n"
    "def concat(e_store, e_restore):\n"
    "    return format_eng(e_store, \"J\") + e_restore\n"
)

#: Deterministic purity input.  The dotted file stem makes the module a
#: referenceable task module: RV600 (dangling ref), RV601 (module-state
#: mutation), RV602 (wall clock) and RV604 (two required params).
PURITY_TEXT = (
    "import time\n"
    "\n"
    "TASK_FN = \"bad_pkg.tasks:my_task\"\n"
    "DANGLING = \"bad_pkg.tasks:missing\"\n"
    "STATE = {}\n"
    "\n"
    "\n"
    "def my_task(params, extra):\n"
    "    STATE[\"last\"] = params\n"
    "    return {\"t\": time.time()}\n"
)

#: Deterministic perf input: RV701 + RV702 + RV703.
PERF_TEXT = (
    "import numpy as np\n"
    "\n"
    "\n"
    "def restamp(A, elements, circuit, points):\n"
    "    for el in elements:\n"
    "        el.stamp(A)\n"
    "    for _ in range(points):\n"
    "        pattern = circuit.compile()\n"
    "        work = np.zeros(4)\n"
    "    return pattern, work\n"
)


#: Deterministic array-semantics input: RV800 + RV803.
ARRAY_TEXT = (
    "import numpy as np\n"
    "\n"
    "\n"
    "def clash():\n"
    "    a = np.zeros((3, 4))\n"
    "    b = np.ones((3, 5))\n"
    "    return a + b\n"
    "\n"
    "\n"
    "def alias(state):\n"
    "    ix = np.array([0, 0, 2])\n"
    "    state[ix] += np.ones(3)\n"
    "    return state\n"
)


def deck_report():
    return verify_deck(DECK_TEXT, path="bad.sp", include_circuit=False)


def source_report():
    return verify_source_text(SOURCE_TEXT, path="bad_module.py")


def units_report():
    return verify_source_text(UNITS_TEXT, path="bad_units.py")


def purity_report():
    return verify_source_text(PURITY_TEXT, path="bad_pkg.tasks.py")


def perf_report():
    return verify_source_text(PERF_TEXT, path="bad_perf.py")


def array_report():
    return verify_source_text(ARRAY_TEXT, path="bad_array.py")


def restricted_registry(report) -> RuleRegistry:
    """A registry holding only the rules that fired in ``report``."""
    fired = {d.code for d in report}
    registry = RuleRegistry()
    for rule_ in REGISTRY.rules():
        if rule_.code in fired:
            registry.register(rule_)
    return registry


# -- required SARIF 2.1.0 structure -----------------------------------------


@pytest.mark.parametrize("make_report",
                         [deck_report, source_report, units_report,
                          purity_report, perf_report, array_report],
                         ids=["deck", "source", "units", "purity",
                              "perf", "array"])
def test_required_sarif_fields(make_report):
    report = make_report()
    assert len(report) > 0, "fixture input no longer trips any rule"
    log = json.loads(render_sarif(report))

    assert log["$schema"] == SARIF_SCHEMA
    assert log["version"] == SARIF_VERSION
    assert len(log["runs"]) == 1
    run = log["runs"][0]

    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert driver["rules"], "rule metadata must be present"
    rule_ids = set()
    for rule in driver["rules"]:
        assert rule["id"].startswith("RV")
        assert rule["name"]
        assert rule["shortDescription"]["text"]
        assert rule["fullDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in (
            "error", "warning", "note")
        rule_ids.add(rule["id"])

    assert run["results"], "diagnostics must serialise as results"
    for result in run["results"]:
        # Every result's ruleId must resolve in the driver's rule list.
        assert result["ruleId"] in rule_ids
        assert result["level"] in ("error", "warning", "note")
        assert result["message"]["text"]
        assert result["locations"]
        location = result["locations"][0]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"]
        if "region" in physical:
            assert physical["region"]["startLine"] >= 1
            assert "text" in physical["region"]["snippet"]


def test_source_results_point_at_module_artifact():
    log = json.loads(render_sarif(source_report()))
    uris = {r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in log["runs"][0]["results"]}
    assert uris == {"bad_module.py"}
    lines = {r["locations"][0]["physicalLocation"]["region"]["startLine"]
             for r in log["runs"][0]["results"]}
    assert lines == {2, 5}


# -- golden files ------------------------------------------------------------


@pytest.mark.parametrize("make_report,golden_name",
                         [(deck_report, "deck.sarif.json"),
                          (source_report, "source.sarif.json"),
                          (units_report, "units.sarif.json"),
                          (purity_report, "purity.sarif.json"),
                          (perf_report, "perf.sarif.json"),
                          (array_report, "array.sarif.json")],
                         ids=["deck", "source", "units", "purity",
                              "perf", "array"])
def test_sarif_matches_golden(make_report, golden_name):
    report = make_report()
    rendered = render_sarif(report,
                            registry=restricted_registry(report)) + "\n"
    golden_path = GOLDEN / golden_name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden_path.write_text(rendered)
        pytest.skip(f"regenerated {golden_path.name}")
    assert golden_path.exists(), (
        f"golden file missing; run REPRO_UPDATE_GOLDEN=1 pytest {__file__}")
    assert json.loads(rendered) == json.loads(golden_path.read_text()), (
        f"SARIF output drifted from {golden_path.name}; inspect the diff "
        "and regenerate with REPRO_UPDATE_GOLDEN=1 if intentional")
