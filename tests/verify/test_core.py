"""Tests for the rule registry, policy config and report aggregation."""

import pytest

from repro.circuit import Circuit, Resistor, VoltageSource
from repro.errors import VerificationError
from repro.verify import verify_circuit
from repro.verify.core import (
    REGISTRY,
    Diagnostic,
    Finding,
    Report,
    Rule,
    RuleRegistry,
    Severity,
    VerifyConfig,
    run_rules,
)


def divider_with_dangle():
    """A clean divider plus one floating node (RV001 warning)."""
    c = Circuit()
    c.add(VoltageSource("v", "in", "0", dc=1.0))
    c.add(Resistor("r1", "in", "mid", 1e3))
    c.add(Resistor("r2", "mid", "0", 1e3))
    c.add(Resistor("r3", "in", "dangle", 1e3))
    return c


class TestSeverity:
    def test_rank_orders_errors_first(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank

    def test_parse(self):
        assert Severity.parse("Error") is Severity.ERROR
        assert Severity.parse(Severity.WARNING) is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.parse("fatal")


class TestRegistry:
    def test_shipped_rules_registered(self):
        for code in ("RV001", "RV006", "RV101", "RV105",
                     "RV201", "RV300", "RV307"):
            assert code in REGISTRY

    def test_lookup_by_code_and_name(self):
        assert REGISTRY.get("rv101").code == "RV101"
        assert REGISTRY.get("islanded-node").code == "RV101"
        with pytest.raises(KeyError):
            REGISTRY.get("RV999")

    def test_scope_filter(self):
        deck_rules = REGISTRY.rules("deck")
        assert deck_rules and all(r.scope == "deck" for r in deck_rules)
        assert [r.code for r in deck_rules] == sorted(
            r.code for r in deck_rules
        )

    def test_duplicate_code_rejected(self):
        reg = RuleRegistry()
        mk = lambda code, name: Rule(code, name, "circuit",
                                     Severity.WARNING, "d",
                                     check=lambda c: ())
        reg.register(mk("RV900", "a"))
        with pytest.raises(ValueError):
            reg.register(mk("RV900", "b"))
        with pytest.raises(ValueError):
            reg.register(mk("RV901", "a"))


class TestVerifyConfig:
    def test_disable_by_code_and_name(self):
        c = divider_with_dangle()
        assert "RV001" in {d.code for d in verify_circuit(c)}
        for token in ("RV001", "rv001", "floating-node"):
            report = verify_circuit(
                c, config=VerifyConfig(disable=frozenset([token]))
            )
            assert "RV001" not in {d.code for d in report}

    def test_only_restricts_rules(self):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", dc=1.0))
        c.add(VoltageSource("v2", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "dangle", 1e3))
        report = verify_circuit(
            c, config=VerifyConfig(only=frozenset(["RV005"]))
        )
        assert {d.code for d in report} == {"RV005"}

    def test_severity_override(self):
        c = divider_with_dangle()
        report = verify_circuit(
            c, config=VerifyConfig(severity_overrides={"RV001": "error"})
        )
        assert report.has_errors
        assert report.errors()[0].code == "RV001"

    def test_subject_glob_suppression(self):
        c = divider_with_dangle()
        report = verify_circuit(
            c, config=VerifyConfig(suppress=("RV001:dang*",))
        )
        assert "RV001" not in {d.code for d in report}
        # A non-matching glob leaves the finding alone.
        report = verify_circuit(
            c, config=VerifyConfig(suppress=("RV001:tb.*",))
        )
        assert "RV001" in {d.code for d in report}

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINT_DISABLE", "RV001, rv104")
        config = VerifyConfig.from_env()
        assert config.disable == frozenset({"RV001", "rv104"})


class TestReport:
    def test_extend_merges_and_sorts(self):
        warn = Diagnostic("RV001", "floating-node", Severity.WARNING,
                          "m", "n1")
        err = Diagnostic("RV101", "islanded-node", Severity.ERROR,
                         "m", "n2")
        report = Report(target="a")
        report.diagnostics.append(warn)
        report.extend(Report(target="b", diagnostics=[err]))
        assert [d.code for d in report] == ["RV101", "RV001"]
        assert len(report) == 2

    def test_raise_on_errors(self):
        report = Report(diagnostics=[
            Diagnostic("RV101", "islanded-node", Severity.ERROR, "m", "n")
        ])
        with pytest.raises(VerificationError) as excinfo:
            report.raise_on_errors()
        assert excinfo.value.diagnostics == report.errors()
        Report().raise_on_errors()   # no errors: no raise

    def test_counts(self):
        c = divider_with_dangle()
        counts = verify_circuit(c).counts()
        assert counts["error"] == 0
        assert counts["warning"] >= 1


class TestRunRules:
    def test_findings_get_rule_metadata(self):
        report = run_rules(divider_with_dangle(), "circuit",
                           target_name="tb")
        diag = [d for d in report if d.code == "RV001"][0]
        assert diag.name == "floating-node"
        assert diag.target == "tb"
        assert "tb: [warning] RV001" in str(diag)

    def test_per_finding_severity_override_wins(self):
        reg = RuleRegistry()

        def check(_target):
            yield Finding(subject="x", message="m",
                          severity=Severity.ERROR)

        reg.register(Rule("RV950", "demo", "circuit",
                          Severity.WARNING, "d", check=check))
        report = run_rules(object(), "circuit", registry=reg)
        assert report.has_errors
