"""The crashpoint cross-validator: every scenario must land where the
RV900/RV901 rules say it lands — pre-fix patterns tear, the shared
protocol survives."""

import json

from repro.cli import main
from repro.verify.crashcheck import (
    CRASH_EXIT,
    _classify,
    render_crashpoints,
    run_crashpoints,
)


def by_scenario(report):
    out = {}
    for entry in report["results"]:
        out.setdefault(entry["scenario"], []).append(entry)
    return out


def test_full_run_passes(tmp_path):
    report = run_crashpoints(str(tmp_path))
    assert report["ok"], render_crashpoints(report)
    scenarios = by_scenario(report)

    # RV900 hazard demonstrated: the bare overwrite really tears.
    (bare,) = scenarios["bare-overwrite"]
    assert bare["state"] == "torn"

    # The fixed pattern holds old-or-new at all four boundaries.
    atomic = {e["crashpoint"]: e["state"]
              for e in scenarios["atomic-replace"]}
    assert atomic == {"post-write": "old", "pre-fsync": "old",
                      "pre-rename": "old", "post-rename": "new"}

    # RV901 hazard (emulated page-cache drop) and its fsync cure.
    (nofsync,) = scenarios["nofsync-rename"]
    (fsync,) = scenarios["fsync-rename"]
    assert nofsync["state"] == "torn" and nofsync["emulated"]
    assert fsync["state"] == "new"

    # Journal: a torn append costs at most the torn record.
    (journal,) = scenarios["journal-append"]
    assert journal["state"] == "2 records"


def test_children_died_at_armed_points(tmp_path):
    report = run_crashpoints(str(tmp_path))
    # Every subprocess scenario reports ok, which requires the child
    # to have exited with CRASH_EXIT, not completed normally.
    assert CRASH_EXIT == 9
    assert all(entry["ok"] for entry in report["results"]
               if not entry["emulated"])


def test_classify_views(tmp_path):
    target = tmp_path / "probe.json"
    assert _classify(target) == "missing"
    target.write_text("{not json")
    assert _classify(target) == "torn"
    target.write_text(json.dumps({"value": "old", "rev": 1}))
    assert _classify(target) == "old"


def test_cli_chaos_crashpoints(tmp_path, capsys):
    out_json = tmp_path / "report.json"
    code = main(["chaos", "--crashpoints",
                 "--scratch", str(tmp_path / "scratch"),
                 "--json", str(out_json)])
    assert code == 0
    assert "crashpoint cross-validation (PASS)" in capsys.readouterr().out
    payload = json.loads(out_json.read_text())
    assert payload["ok"] is True
    assert payload["crashpoints"] == ["post-write", "pre-fsync",
                                      "pre-rename", "post-rename"]
