"""Tests for the RV3xx deck-text rules (tolerant scanner + checks)."""

from repro.verify import verify_deck
from repro.verify.rules_deck import DeckCard, DeckSource


def deck_report(body, **kwargs):
    kwargs.setdefault("include_circuit", False)
    return verify_deck("test deck\n" + body + "\n.end\n", **kwargs)


def codes(report):
    return {d.code for d in report}


def by_code(report, code):
    return [d for d in report if d.code == code]


class TestDeckSource:
    def test_line_numbers_survive_continuations(self):
        src = DeckSource("title\nr1 a 0 1k\nv1 in 0 pwl(0 0\n+ 1n 1)\n")
        assert [c.line for c in src.cards] == [2, 3]
        assert src.cards[1].text == "v1 in 0 pwl(0 0 1n 1)"

    def test_comments_and_blanks_skipped(self):
        src = DeckSource("t\n* full comment\n\nr1 a 0 1k ; tail\n$ gone\n")
        assert [c.text for c in src.cards] == ["r1 a 0 1k"]

    def test_paren_aware_tokens(self):
        card = DeckCard(1, "v1 a 0 pulse(0 1 1n 50p 50p 2n 5n)")
        assert card.tokens()[-1] == "pulse(0 1 1n 50p 50p 2n 5n)"

    def test_unbalanced_parens_fall_back_to_split(self):
        card = DeckCard(1, "v1 a 0 pulse(0 1")
        assert card.tokens() == ["v1", "a", "0", "pulse(0", "1"]

    def test_element_cards_track_subckt_scope(self):
        src = DeckSource(
            "t\n.subckt s a\nr1 a 0 1k\n.ends\nr1 top 0 1k\n"
        )
        scopes = [(scope, tokens[0])
                  for _card, scope, tokens in src.element_cards()]
        assert scopes == [("s", "r1"), ("", "r1")]


class TestParseError:
    def test_strict_rejection_surfaces_as_rv300(self):
        report = deck_report("v1 a 0 sin(0 1 1meg)\nr1 a 0 1k")
        assert by_code(report, "RV300")
        assert report.has_errors

    def test_clean_deck_has_no_rv300(self):
        assert not by_code(deck_report("r1 a 0 1k\nv1 a 0 1"), "RV300")

    def test_unparsable_deck_skips_circuit_rules(self):
        report = verify_deck("t\nq1 a b c 1k\n.end\n",
                             include_circuit=True)
        assert "RV300" in codes(report)
        assert not codes(report) & {"RV001", "RV101", "RV201"}


class TestSubcircuitRules:
    def test_undefined_subckt(self):
        diags = by_code(deck_report("v1 a 0 1\nr1 a 0 1k\nx1 a nosub"),
                        "RV301")
        assert diags and diags[0].subject == "x1"
        assert diags[0].location.line == 4

    def test_unused_subckt_warning(self):
        body = ".subckt spare a\nr1 a 0 1k\n.ends\nr2 top 0 1k"
        diags = by_code(deck_report(body), "RV302")
        assert diags and diags[0].subject == "spare"
        assert diags[0].severity.value == "warning"

    def test_arity_mismatch(self):
        body = (".subckt div top tap\nr1 top tap 1k\nr2 tap 0 1k\n.ends\n"
                "v1 in 0 1\nx1 in div")
        diags = by_code(deck_report(body), "RV303")
        assert diags
        assert "declares 2 port(s)" in diags[0].message


class TestDuplicateElements:
    def test_same_scope_duplicate_flagged(self):
        diags = by_code(deck_report("r1 a 0 1k\nr1 b 0 1k"), "RV304")
        assert diags
        assert "line 2" in diags[0].message
        assert diags[0].location.line == 3

    def test_same_name_in_different_scopes_allowed(self):
        body = ".subckt s a\nr1 a 0 1k\n.ends\nr1 top 0 1k\nx1 top s"
        assert not by_code(deck_report(body), "RV304")

    def test_unknown_card_letter_located(self):
        diags = by_code(deck_report("q1 a b c 1k"), "RV304")
        assert diags and diags[0].subject == "q1"
        assert diags[0].location is not None


class TestParams:
    def test_unused_param_warning(self):
        diags = by_code(
            deck_report(".param rload=2k\nr1 a 0 1k\nv1 a 0 1"), "RV305"
        )
        assert diags and diags[0].subject == "rload"

    def test_referenced_param_clean(self):
        body = ".param rload=2k\nr1 a 0 {rload}\nv1 a 0 1"
        assert not by_code(deck_report(body), "RV305")


class TestSuspiciousSuffix:
    def test_element_value_flagged(self):
        diags = by_code(deck_report("r1 a 0 10x\nv1 a 0 1"), "RV306")
        assert diags and "'10x'" in diags[0].message
        assert diags[0].location.line == 2

    def test_tran_directive_flagged(self):
        body = "r1 a 0 1k\nv1 a 0 1\n.tran 10x 100n"
        diags = by_code(deck_report(body), "RV306")
        assert diags and diags[0].subject == ".tran"

    def test_waveform_args_scanned(self):
        body = "r1 a 0 1k\nv1 a 0 pulse(0 1 1q 50p 50p 2n 5n)"
        diags = by_code(deck_report(body), "RV306")
        assert diags and "'1q'" in diags[0].message

    def test_units_and_multipliers_accepted(self):
        body = ("r1 a 0 2kohm\nc1 a 0 10f\nv1 a 0 0.9v\n"
                ".tran 1p 100ns")
        assert not by_code(deck_report(body), "RV306")


class TestUnknownModel:
    def test_finfet_model_flagged_with_line(self):
        diags = by_code(
            deck_report("v1 d 0 1\nm1 d g 0 mystery"), "RV307"
        )
        assert diags and diags[0].subject == "m1"
        assert "'mystery'" in diags[0].message
        assert diags[0].location.line == 3

    def test_mtj_model_flagged(self):
        assert by_code(deck_report("v1 a 0 1\ny1 a b missing"), "RV307")

    def test_builtin_and_defined_models_accepted(self):
        body = (".model myn nfet(vth0=0.3)\n"
                "v1 d 0 1\nm1 d g 0 myn\nm2 d g 0 nfet20hp\n"
                "y1 a b mtj_table1 state=AP")
        assert not by_code(deck_report(body), "RV307")
