"""The ``repro fix`` codemod engine: plans, rewrites, idempotency.

Each fixable finding must turn into a byte-exact edit whose application
removes the finding (so a second run is a no-op); everything the
planner cannot prove safe must be skipped with a reason, never guessed.
"""

import textwrap

import pytest

from repro.cli import main
from repro.verify import verify_source
from repro.verify.fix import (
    Edit,
    apply_edits,
    plan_fixes,
    rewritten_texts,
    unified_diff,
)


def write_module(tmp_path, text, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(text))
    return path


def fix_cycle(tmp_path, text, name="mod.py"):
    """Lint, plan, rewrite; return (plans, new text or None)."""
    path = write_module(tmp_path, text, name)
    report = verify_source([str(path)])
    plans = plan_fixes(report)
    texts = rewritten_texts(plans)
    return plans, texts.get(str(path), (None, None))[1]


# -- apply_edits mechanics ---------------------------------------------------


def test_apply_edits_orders_bottom_up():
    text = "a\nb\nc\n"
    edits = [
        Edit(kind="insert-before", line=1, text=("pre",)),
        Edit(kind="replace-lines", line=2, end_line=2,
             text=("B1", "B2")),
        Edit(kind="insert-before", line=3, text=("mid",)),
    ]
    assert apply_edits(text, edits) == "pre\na\nB1\nB2\nmid\nc\n"


def test_apply_edits_span_before_line_edits():
    text = "x = old()\ny\n"
    edits = [
        Edit(kind="replace-span", line=1, col=4, end_col=9,
             span_text="new()"),
        Edit(kind="insert-before", line=1, text=("pre",)),
    ]
    assert apply_edits(text, edits) == "pre\nx = new()\ny\n"


def test_apply_edits_preserves_missing_trailing_newline():
    assert apply_edits("a\nb", [Edit(kind="replace-lines", line=2,
                                     end_line=2, text=("B",))]) == "a\nB"


# -- RV702: dense allocation hoists ------------------------------------------


def test_rv702_buffer_hoist(tmp_path):
    plans, fixed = fix_cycle(tmp_path, '''\
        import numpy as np


        def accumulate(n, steps):
            total = 0.0
            for _ in range(steps):
                scratch = np.zeros(n)
                scratch[0] = 1.0
                total += float(scratch.sum())
            return total
        ''')
    (plan,) = [p for p in plans if p.code == "RV702"]
    assert plan.fixable
    assert "scratch_buf" in plan.description
    assert "    scratch_buf = np.zeros(n)\n" \
           "    for _ in range(steps):\n" \
           "        scratch = scratch_buf\n" \
           "        scratch.fill(0.0)\n" \
           "        scratch[0] = 1.0\n" in fixed


def test_rv702_pure_hoist_when_read_only(tmp_path):
    plans, fixed = fix_cycle(tmp_path, '''\
        import numpy as np


        def weights(n, steps):
            total = 0.0
            for _ in range(steps):
                w = np.ones(n)
                total += float((w * 2.0).sum())
            return total
        ''')
    (plan,) = [p for p in plans if p.code == "RV702"]
    assert plan.fixable
    assert "read-only" in plan.description
    assert "    w = np.ones(n)\n    for _ in range(steps):\n" in fixed
    # The in-loop line is gone, not duplicated.
    assert fixed.count("np.ones(n)") == 1


def test_rv702_full_hoist_keeps_fill_value(tmp_path):
    plans, fixed = fix_cycle(tmp_path, '''\
        import numpy as np


        def seed(n, steps):
            total = 0.0
            for _ in range(steps):
                x = np.full(n, 0.5)
                x[0] = 1.0
                total += float(x.sum())
            return total
        ''')
    (plan,) = [p for p in plans if p.code == "RV702"]
    assert plan.fixable
    assert "x_buf = np.full(n, 0.5)" in fixed
    assert "x.fill(0.5)" in fixed


def test_rv702_skips_loop_varying_arguments(tmp_path):
    plans, fixed = fix_cycle(tmp_path, '''\
        import numpy as np


        def varying(steps):
            out = 0.0
            for k in range(steps):
                x = np.zeros(k)
                out += float(x.sum())
            return out
        ''')
    (plan,) = [p for p in plans if p.code == "RV702"]
    assert not plan.fixable
    assert "loop-varying k" in plan.reason
    assert fixed is None


def test_rv702_skips_retained_arrays(tmp_path):
    plans, fixed = fix_cycle(tmp_path, '''\
        import numpy as np


        def retained(n, steps):
            outputs = []
            for _ in range(steps):
                x = np.zeros(n)
                x[0] = 1.0
                outputs.append(x)
            return outputs
        ''')
    (plan,) = [p for p in plans if p.code == "RV702"]
    assert not plan.fixable
    assert "may retain" in plan.reason
    assert fixed is None


def test_rv702_skips_callee_side_findings(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    write_module(pkg, '''\
        import numpy as np


        def fresh(n):
            return np.zeros(n)
        ''', name="alloc.py")
    write_module(pkg, '''\
        from pkg.alloc import fresh


        def run(points, n):
            out = []
            for _ in range(points):
                out.append(fresh(n))
            return out
        ''', name="sweep.py")
    plans = plan_fixes(verify_source([str(pkg)]))
    (plan,) = [p for p in plans if p.code == "RV702"]
    assert not plan.fixable
    assert "callee" in plan.reason


# -- RV703: invariant-call hoist ---------------------------------------------


def test_rv703_hoists_for_iterable_via_list(tmp_path):
    # elements() returns a one-shot iterator, so the hoist must
    # materialise it — a bare `x = circuit.elements()` above the loop
    # would be exhausted after the first outer iteration.
    plans, fixed = fix_cycle(tmp_path, '''\
        def rebuild(circuit, points):
            total = 0
            for _ in range(points):
                for element in circuit.elements():
                    total += element
            return total
        ''')
    (plan,) = [p for p in plans if p.code == "RV703"]
    assert plan.fixable
    assert "    circuit_elements = list(circuit.elements())\n" \
           "    for _ in range(points):\n" \
           "        for element in circuit_elements:\n" in fixed


def test_rv703_skips_iterator_in_value_context(tmp_path):
    # Not a for-loop iterable: binding the iterator once and re-using
    # it would change behaviour, so the planner must refuse.
    plans, fixed = fix_cycle(tmp_path, '''\
        def rebuild(circuit, points):
            total = 0
            for _ in range(points):
                total += len(circuit.elements())
            return total
        ''')
    (plan,) = [p for p in plans if p.code == "RV703"]
    assert not plan.fixable
    assert "one-shot iterator" in plan.reason
    assert fixed is None


def test_rv703_hoists_stable_value_call(tmp_path):
    plans, fixed = fix_cycle(tmp_path, '''\
        def rebuild(solver, points):
            total = 0
            for _ in range(points):
                total += solver.compile()
            return total
        ''')
    (plan,) = [p for p in plans if p.code == "RV703"]
    assert plan.fixable
    assert "    solver_compile = solver.compile()\n" \
           "    for _ in range(points):\n" \
           "        total += solver_compile\n" in fixed


def test_rv703_fresh_name_avoids_collisions(tmp_path):
    plans, fixed = fix_cycle(tmp_path, '''\
        def rebuild(circuit, points):
            circuit_elements = None
            total = 0
            for _ in range(points):
                for element in circuit.elements():
                    total += element
            return total, circuit_elements
        ''')
    (plan,) = [p for p in plans if p.code == "RV703"]
    assert plan.fixable
    assert "circuit_elements2 = list(circuit.elements())" in fixed
    assert "for element in circuit_elements2:" in fixed


# -- RV803: np.add.at rewrite ------------------------------------------------


def test_rv803_rewrites_to_ufunc_at(tmp_path):
    plans, fixed = fix_cycle(tmp_path, '''\
        import numpy as np


        def stamp(state):
            ix = np.array([0, 0, 2])
            state[ix] += np.ones(3)
            return state
        ''')
    (plan,) = [p for p in plans if p.code == "RV803"]
    assert plan.fixable
    assert "    np.add.at(state, ix, np.ones(3))\n" in fixed
    assert "state[ix] +=" not in fixed


def test_rv803_respects_numpy_alias(tmp_path):
    plans, fixed = fix_cycle(tmp_path, '''\
        import numpy


        def stamp(state):
            ix = numpy.array([0, 0, 2])
            state[ix] -= numpy.ones(3)
            return state
        ''')
    (plan,) = [p for p in plans if p.code == "RV803"]
    assert plan.fixable
    assert "numpy.subtract.at(state, ix, numpy.ones(3))" in fixed


# -- end-to-end: fixes remove their findings, rewrites are idempotent --------


FIXABLE_MODULE = '''\
    import numpy as np


    def accumulate(circuit, n, steps):
        total = 0.0
        for _ in range(steps):
            scratch = np.zeros(n)
            scratch[0] = 1.0
            total += float(scratch.sum())
            for element in circuit.elements():
                total += element
        return total
    '''


def test_fixes_remove_their_findings(tmp_path):
    path = write_module(tmp_path, FIXABLE_MODULE)
    plans = plan_fixes(verify_source([str(path)]))
    assert {p.code for p in plans if p.fixable} == {"RV702", "RV703"}
    texts = rewritten_texts(plans)
    path.write_text(texts[str(path)][1])
    replans = plan_fixes(verify_source([str(path)]))
    assert [p for p in replans if p.fixable] == []


def test_rewrite_is_idempotent(tmp_path):
    path = write_module(tmp_path, FIXABLE_MODULE)
    texts = rewritten_texts(plan_fixes(verify_source([str(path)])))
    first = texts[str(path)][1]
    path.write_text(first)
    again = rewritten_texts(plan_fixes(verify_source([str(path)])))
    assert again == {}


def test_unified_diff_labels_paths():
    diff = unified_diff("pkg/mod.py", "a\n", "b\n")
    assert "--- a/pkg/mod.py" in diff
    assert "+++ b/pkg/mod.py" in diff


# -- CLI ---------------------------------------------------------------------


class TestFixCli:
    def test_check_mode_prints_diff_and_fails(self, tmp_path, capsys):
        path = write_module(tmp_path, FIXABLE_MODULE)
        assert main(["fix", "--no-cache", str(path)]) == 1
        out = capsys.readouterr().out
        assert "mechanically fixable" in out
        assert "+        scratch = scratch_buf" in out
        assert path.read_text() == textwrap.dedent(FIXABLE_MODULE)

    def test_apply_rewrites_then_check_is_clean(self, tmp_path,
                                                capsys):
        path = write_module(tmp_path, FIXABLE_MODULE)
        assert main(["fix", "--no-cache", "--apply", str(path)]) == 0
        out = capsys.readouterr().out
        assert "rewrote" in out
        assert "scratch_buf" in path.read_text()
        assert main(["fix", "--no-cache", str(path)]) == 0
        assert "nothing mechanically fixable" in capsys.readouterr().out

    def test_rules_filter(self, tmp_path, capsys):
        path = write_module(tmp_path, FIXABLE_MODULE)
        assert main(["fix", "--no-cache", "--rules", "RV703",
                     "--apply", str(path)]) == 0
        text = path.read_text()
        assert "circuit_elements" in text
        assert "scratch_buf" not in text

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        path = write_module(tmp_path, FIXABLE_MODULE)
        assert main(["fix", "--no-cache", "--rules", "RV401",
                     str(path)]) == 2
        assert "no codemod for RV401" in capsys.readouterr().err

    def _solver_module(self, tmp_path):
        # A path under src/repro/analysis triggers the equivalence
        # gate on --apply.
        sub = tmp_path / "src" / "repro" / "analysis"
        sub.mkdir(parents=True)
        return write_module(sub, FIXABLE_MODULE)

    def test_apply_gate_failure_reverts_rewrites(self, tmp_path,
                                                 capsys, monkeypatch):
        import subprocess

        path = self._solver_module(tmp_path)
        calls = []

        def fake_run(cmd, **kwargs):
            calls.append(list(cmd))
            return subprocess.CompletedProcess(
                cmd, returncode=1, stdout="fail pg-rail-tran drift\n",
                stderr="")

        monkeypatch.setattr(subprocess, "run", fake_run)
        assert main(["fix", "--no-cache", "--apply", str(path)]) == 2
        assert "reverted" in capsys.readouterr().err
        assert path.read_text() == textwrap.dedent(FIXABLE_MODULE)
        # The gate must run in a fresh interpreter: this process
        # imported the solver before the rewrite, so an in-process
        # check would certify stale code.
        assert calls[0][1:] == ["-m", "repro", "equiv", "run",
                                "--strict"]

    def test_apply_gate_pass_keeps_rewrites(self, tmp_path, capsys,
                                            monkeypatch):
        import subprocess

        path = self._solver_module(tmp_path)
        monkeypatch.setattr(
            subprocess, "run",
            lambda cmd, **kw: subprocess.CompletedProcess(
                cmd, returncode=0, stdout="gate: PASS\n", stderr=""))
        assert main(["fix", "--no-cache", "--apply", str(path)]) == 0
        out = capsys.readouterr().out
        assert "equivalence gate passed" in out
        assert "scratch_buf" in path.read_text()

    def test_baseline_suppresses_fixables(self, tmp_path, capsys):
        path = write_module(tmp_path, '''\
            import numpy as np


            def stamp(state):
                ix = np.array([0, 0, 2])
                state[ix] += np.ones(3)
                return state
            ''')
        baseline = tmp_path / "baseline.json"
        assert main(["lint-source", "--no-cache", str(path),
                     "--update-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["fix", "--no-cache", "--baseline", str(baseline),
                     str(path)]) == 0
        assert "nothing mechanically fixable" \
            in capsys.readouterr().out


# -- RV900: bare durable write_text -> atomic_write_text ---------------------


class TestRv900Codemod:

    def test_write_text_rewritten_with_import(self, tmp_path):
        plans, after = fix_cycle(tmp_path, '''\
            import json
            from pathlib import Path


            def save(cache_dir, key, payload):
                path = Path(cache_dir) / f"{key}.json"
                path.write_text(json.dumps(payload))
            ''')
        rv900 = [p for p in plans if p.code == "RV900"]
        assert rv900 and rv900[0].fixable
        assert "atomic_write_text(path, json.dumps(payload))" in after
        assert "from repro.exec.atomicio import atomic_write_text" \
            in after
        assert "write_text(" not in after.replace("atomic_write_text(",
                                                  "")

    def test_rewrite_is_idempotent(self, tmp_path):
        _plans, after = fix_cycle(tmp_path, '''\
            import json
            from pathlib import Path


            def save(cache_dir, key, payload):
                path = Path(cache_dir) / f"{key}.json"
                path.write_text(json.dumps(payload))
            ''')
        path = write_module(tmp_path, after, name="mod2.py")
        report = verify_source([str(path)])
        assert "RV900" not in [d.code for d in report]
        plans = plan_fixes(report)
        assert not rewritten_texts(plans)

    def test_encoding_keyword_is_threaded(self, tmp_path):
        plans, after = fix_cycle(tmp_path, '''\
            def save(cache_path, text):
                cache_path.write_text(text, encoding="latin-1")
            ''')
        assert 'atomic_write_text(cache_path, text, ' \
               'encoding="latin-1")' in after

    def test_existing_import_not_duplicated(self, tmp_path):
        _plans, after = fix_cycle(tmp_path, '''\
            from repro.exec.atomicio import atomic_write_text


            def save(cache_path, text, other_path, more):
                atomic_write_text(cache_path, text)
                other_path = cache_path.with_suffix(".bak")
                other_path.write_text(more)
            ''')
        assert after.count(
            "from repro.exec.atomicio import atomic_write_text") == 1

    def test_open_writer_skipped_with_reason(self, tmp_path):
        plans, after = fix_cycle(tmp_path, '''\
            def save(journal_path, lines):
                with open(journal_path, "w") as fh:
                    fh.write("\\n".join(lines))
            ''')
        rv900 = [p for p in plans if p.code == "RV900"]
        assert rv900 and not rv900[0].fixable
        assert "structural rewrite" in rv900[0].reason
        assert after is None
