"""RV9xx concurrency & crash-safety band: per-rule fixtures, the
reach-dependent rules over synthetic package trees, and the effect
collector primitives the rules stand on."""

import textwrap
from pathlib import Path

from repro.verify import verify_source, verify_source_file, \
    verify_source_text
from repro.verify.callgraph import SourceProject, summarize_module
from repro.verify.effects import (
    EffectCollector,
    module_token,
)
from repro.verify.source import SourceModule

FIXTURES = Path(__file__).parent / "fixtures"


def rv9(report):
    return [d for d in report if d.code.startswith("RV9")]


def codes(report):
    return sorted(d.code for d in rv9(report))


def by_function(report):
    out = {}
    for d in rv9(report):
        out.setdefault(d.subject.split(":", 1)[1], []).append(d)
    return out


def write_tree(tmp_path, files):
    for rel, src in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src))
    return tmp_path


def lint_tree(tmp_path):
    return verify_source([str(tmp_path / "pkg")])


# -- fixture detection -------------------------------------------------------


def test_rv9xx_fixture_findings():
    report = verify_source_file(FIXTURES / "viol_rv90x.py")
    assert codes(report) == ["RV900", "RV900", "RV901", "RV901",
                             "RV903", "RV904", "RV904", "RV905",
                             "RV905"]
    fns = by_function(report)
    assert "torn" in fns["save_cache_in_place"][0].message.lower() \
        or "stage" in fns["save_cache_in_place"][0].message
    assert "fsync" in fns["rename_before_fsync"][0].message
    assert "append" in fns["append_without_fsync"][0].message
    assert "pickle" in fns["launch_nested_target"][0].message
    assert "drain" in fns["drain_after_join"][0].message
    assert "task_done" in fns["join_without_task_done"][0].message
    assert "lambda" in fns["install_lambda_handler"][0].message
    # negatives
    for quiet in ("atomic_store_is_quiet",
                  "journal_append_with_fsync_is_quiet",
                  "drain_before_join_is_quiet",
                  "flag_only_handler_is_quiet",
                  "scratch_write_is_quiet"):
        assert quiet not in fns, fns.get(quiet)


def test_rv9xx_severities():
    report = verify_source_file(FIXTURES / "viol_rv90x.py")
    assert {d.severity.value for d in rv9(report)} == {"error"}


def test_rv900_pragma_suppression():
    report = verify_source_text(textwrap.dedent("""
        import json
        from pathlib import Path
        def save(cache_dir, key, payload):
            path = Path(cache_dir) / f"{key}.json"
            path.write_text(json.dumps(payload))  # lint: skip=RV900
    """), path="mod.py")
    assert codes(report) == []


# -- RV902: shared-file read-modify-write ------------------------------------

RMW_TASK = """
    import json
    from pathlib import Path
    def bump_counter(params):
        path = Path(params["cache_dir"]) / "counters.json"
        data = json.loads(path.read_text())
        data["n"] += 1
        path.write_text(json.dumps(data))  # lint: skip=RV900
"""


def test_rv902_task_reachable_rmw(tmp_path):
    tree = write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": 'TASK = "pkg.tasks:bump_counter"\n',
        "pkg/tasks.py": RMW_TASK,
    })
    report = lint_tree(tree)
    assert codes(report) == ["RV902"]
    (finding,) = rv9(report)
    assert "lose updates" in finding.message
    assert "task entry" in finding.message


def test_rv902_quiet_without_task_root(tmp_path):
    tree = write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/tasks.py": RMW_TASK,       # same code, never dispatched
    })
    assert codes(lint_tree(tree)) == []


def test_rv902_quiet_under_lock(tmp_path):
    tree = write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": 'TASK = "pkg.tasks:bump_counter"\n',
        "pkg/tasks.py": """
            import fcntl
            import json
            from pathlib import Path
            def bump_counter(params):
                path = Path(params["cache_dir"]) / "counters.json"
                with open(path, "r+") as fh:  # lint: skip=RV900
                    fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                    data = json.loads(path.read_text())
                    data["n"] += 1
                    path.write_text(json.dumps(data))  # lint: skip=RV900
        """,
    })
    assert codes(lint_tree(tree)) == []


# -- RV903: spawn-visibility of module state ---------------------------------

GLOBAL_READ_TREE = {
    "pkg/__init__.py": "",
    "pkg/driver.py": 'TASK = "pkg.tasks:run_task"\n',
    "pkg/tasks.py": """
        CONFIG = {}
        def set_config(opts):
            CONFIG.update(opts)
        def run_task(params):
            return CONFIG.get("scale", 1) * params["x"]
    """,
}


def test_rv903_driver_mutated_global_read(tmp_path):
    report = lint_tree(write_tree(tmp_path, dict(GLOBAL_READ_TREE)))
    assert codes(report) == ["RV903"]
    (finding,) = rv9(report)
    assert "CONFIG" in finding.message
    assert "spawn" in finding.message


def test_rv903_quiet_when_mutation_is_worker_side(tmp_path):
    # The mutator itself task-reachable: RV601's problem, not RV903's.
    tree = write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": 'TASK = "pkg.tasks:run_task"\n',
        "pkg/tasks.py": """
            SEEN = {}
            def remember(key):
                SEEN[key] = True
            def run_task(params):
                remember(params["key"])
                return len(SEEN)
        """,
    })
    report = lint_tree(tree)
    assert "RV903" not in codes(report)
    assert "RV601" in [d.code for d in report]


def test_rv903_quiet_for_unmutated_constant(tmp_path):
    tree = write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": 'TASK = "pkg.tasks:run_task"\n',
        "pkg/tasks.py": """
            SCALE = 2.0
            def run_task(params):
                return SCALE * params["x"]
        """,
    })
    assert codes(lint_tree(tree)) == []


# -- RV905: transitive handler analysis --------------------------------------


def test_rv905_transitive_io_through_helper(tmp_path):
    tree = write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/sig.py": """
            import signal
            def report_state(state):
                print(state)
            def install(state):
                def on_sig(signum, frame):
                    report_state(state)
                signal.signal(signal.SIGINT, on_sig)
        """,
    })
    report = lint_tree(tree)
    assert codes(report) == ["RV905"]
    (finding,) = rv9(report)
    assert "print" in finding.message


def test_rv905_quiet_for_dynamic_handler_value(tmp_path):
    tree = write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/sig.py": """
            import signal
            def restore(saved):
                for signum, handler in saved.items():
                    signal.signal(signum, handler)
        """,
    })
    assert codes(lint_tree(tree)) == []


# -- effect collector primitives ---------------------------------------------


def _effects_of(src, modname="pkg.store"):
    module = SourceModule(text=textwrap.dedent(src), path="store.py")
    summary = summarize_module(module, modname)
    return summary["functions"]


def test_path_provenance_through_locals():
    functions = _effects_of("""
        import json
        from pathlib import Path
        def save(cache_dir, key, payload):
            directory = Path(cache_dir)
            path = directory / f"{key}.json"
            path.write_text(json.dumps(payload))
    """)
    effects = functions["save"]["effects"]
    assert ["write", "cache", 7, "text"] in effects


def test_module_token_classifies_self_paths():
    functions = _effects_of("""
        import os
        class Journal:
            def append(self, line):
                with open(self.path, "a") as fh:
                    fh.write(line)
                    fh.flush()
                    os.fsync(fh.fileno())
    """, modname="pkg.journal")
    effects = functions["Journal.append"]["effects"]
    kinds = {tuple(a[:2]) for a in effects}
    assert ("write", "journal") in kinds
    assert ("fsync", "") in kinds


def test_path_open_mode_is_first_argument():
    functions = _effects_of("""
        def save(cache_path, text):
            with cache_path.open("w") as fh:
                fh.write(text)
    """)
    effects = functions["save"]["effects"]
    assert ["write", "cache", 3, "w"] in effects


def test_str_replace_is_not_a_rename():
    functions = _effects_of("""
        def clean(cache_text):
            return cache_text.replace("a", "b")
    """)
    assert functions["clean"]["effects"] == []


def test_module_token():
    assert module_token("repro.exec.journal") == "journal"
    assert module_token("repro.verify.cache") == "cache"
    assert module_token("repro.analysis.solver") == ""


def test_global_reads_skip_locals_and_defs():
    functions = _effects_of("""
        TABLE = {}
        def helper():
            return 1
        def use(params):
            table = {}
            helper()
            return TABLE.get(params["k"]) or table
    """)
    reads = functions["use"]["global_reads"]
    assert ["TABLE", 8] in reads
    assert all(name == "TABLE" for name, _line in reads)


def test_fact_slice_carries_callee_effects(tmp_path):
    """RV905's transitive walk must invalidate when a callee's effects
    change — the effects ride the fact slice."""
    files = {
        "pkg/__init__.py": "",
        "pkg/a.py": """
            from .b import helper
            def outer():
                return helper()
        """,
        "pkg/b.py": """
            def helper():
                return 1
        """,
    }
    tree = write_tree(tmp_path, files)
    summaries = []
    for rel in ("pkg/a.py", "pkg/b.py"):
        path = tree / rel
        module = SourceModule(text=path.read_text(), path=str(path))
        summaries.append(summarize_module(
            module, rel[:-3].replace("/", ".")))
    project = SourceProject(summaries)
    digest_before = project.fact_digest("pkg.a")

    (tree / "pkg/b.py").write_text(textwrap.dedent("""
        def helper():
            print("x")
            open("cache.json", "w").write("{}")
            return 1
    """))
    module = SourceModule(text=(tree / "pkg/b.py").read_text(),
                          path=str(tree / "pkg/b.py"))
    summaries[1] = summarize_module(module, "pkg.b")
    project = SourceProject(summaries)
    assert project.fact_digest("pkg.a") != digest_before
