"""Solver-equivalence gate tests: corpus integrity, tolerance model,
drift detection, metamorphic invariants, and the CLI surface.

The committed golden corpus itself is exercised end-to-end by the
cheap DC cases (the transient cases run in the CI ``equiv-gate`` step
and the integration marker below); these tests focus on the harness
semantics — a gate that cannot *fail* correctly protects nothing.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import operating_point
from repro.verify.equiv import (
    _ladder_deck,
    CASES,
    CORPUS_SCHEMA,
    EquivError,
    Quantity,
    Tolerance,
    TOLERANCES,
    compare,
    content_hash,
    default_corpus_dir,
    golden_payload,
    load_golden,
    run_metamorphic_checks,
    run_suite,
    select_cases,
    update_corpus,
)

DC_CASES = [name for name in CASES if name.endswith("-op")]


class TestToleranceModel:
    def test_exact_kinds_reject_any_drift(self):
        tol = TOLERANCES["count"]
        assert tol.allows(3.0, 3.0)
        assert not tol.allows(3.0, 4.0)
        assert math.isinf(tol.margin(3.0, 4.0))

    def test_voltage_band(self):
        tol = TOLERANCES["voltage"]
        assert tol.allows(0.9, 0.9 + 5e-6)
        assert not tol.allows(0.9, 0.91)

    def test_nonfinite_never_allowed(self):
        tol = Tolerance(atol=1.0, rtol=1.0)
        assert not tol.allows(float("nan"), 0.0)
        assert not tol.allows(float("inf"), float("inf"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(EquivError):
            Quantity(1.0, "furlongs")


class TestCompare:
    def test_added_and_removed_quantities_fail(self):
        got = {"a": Quantity(1.0, "voltage"), "b": Quantity(2.0, "voltage")}
        want = {"a": Quantity(1.0, "voltage"), "c": Quantity(3.0, "voltage")}
        deltas = {d.name: d for d in compare(got, want)}
        assert deltas["a"].ok
        assert not deltas["b"].ok    # new, not in golden
        assert not deltas["c"].ok    # golden, not measured
        assert math.isinf(deltas["b"].margin)

    def test_margin_reported(self):
        got = {"v": Quantity(1.0, "voltage")}
        want = {"v": Quantity(1.0 + 2e-4, "voltage")}
        (delta,) = compare(got, want)
        assert not delta.ok
        assert delta.margin > 1.0


class TestCorpusStorage:
    def test_committed_corpus_is_complete_and_hash_clean(self):
        corpus = default_corpus_dir()
        for name in CASES:
            golden = load_golden(name, corpus)
            assert golden, f"empty corpus entry for {name}"
            for q in golden.values():
                assert q.kind in TOLERANCES

    def test_hand_edited_entry_is_rejected(self, tmp_path):
        case = CASES[DC_CASES[0]]
        payload = golden_payload(case, {"v": Quantity(0.5, "voltage")})
        payload["quantities"]["v"]["value"] = 0.6   # tamper after hashing
        path = tmp_path / f"{case.name}.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(EquivError, match="hash mismatch"):
            load_golden(case.name, tmp_path)

    def test_missing_entry_names_the_update_command(self, tmp_path):
        with pytest.raises(EquivError, match="equiv update"):
            load_golden(DC_CASES[0], tmp_path)

    def test_schema_bump_invalidates(self, tmp_path):
        case = CASES[DC_CASES[0]]
        payload = golden_payload(case, {"v": Quantity(0.5, "voltage")})
        payload["schema"] = CORPUS_SCHEMA + 1
        payload["hash"] = content_hash(payload)
        (tmp_path / f"{case.name}.json").write_text(json.dumps(payload))
        with pytest.raises(EquivError, match="schema"):
            load_golden(case.name, tmp_path)

    def test_update_then_run_round_trip(self, tmp_path):
        name = "6t-standby-op"
        update_corpus([name], tmp_path)
        report = run_suite([name], tmp_path, checks=False)
        (entry,) = report.cases
        assert entry.ok, entry.error or entry.failures


class TestDriftDetection:
    def test_doctored_golden_fails_the_gate(self, tmp_path):
        name = "6t-standby-op"
        (path,) = update_corpus([name], tmp_path)
        payload = json.loads(path.read_text())
        key = next(k for k, v in payload["quantities"].items()
                   if v["kind"] == "voltage")
        payload["quantities"][key]["value"] += 0.05   # 50 mV of "drift"
        payload["hash"] = content_hash(payload)
        path.write_text(json.dumps(payload))
        report = run_suite([name], tmp_path, checks=False)
        assert not report.ok
        (entry,) = report.cases
        assert [d.name for d in entry.failures] == [key]
        assert "FAIL" in report.render()

    def test_unknown_case_rejected(self):
        with pytest.raises(EquivError, match="unknown case"):
            select_cases(["no-such-case"])

    def test_missing_corpus_is_error_not_crash(self, tmp_path):
        report = run_suite(["nvff-op"], tmp_path, checks=False)
        (entry,) = report.cases
        assert not entry.ok
        assert "equiv update" in entry.error


class TestGate:
    """The real gate, over the committed corpus (DC cases: cheap)."""

    @pytest.mark.parametrize("name", DC_CASES)
    def test_dc_case_matches_committed_corpus(self, name):
        report = run_suite([name], checks=False)
        (entry,) = report.cases
        assert entry.error is None, entry.error
        assert entry.ok, "\n".join(d.render() for d in entry.failures)

    def test_metamorphic_invariants_hold(self):
        results = run_metamorphic_checks()
        assert {r.name for r in results} == {
            "node-relabel", "unit-rescale", "supply-scale",
            "gmin-perturbation",
        }
        failing = [r for r in results if not r.ok]
        assert not failing, [f"{r.name}: {r.detail}" for r in failing]

    def test_report_serialises(self):
        # checks=True matters: metamorphic CheckResult.ok is computed
        # from numpy scalars and must not leak np.bool_ into the JSON.
        report = run_suite([DC_CASES[0]], checks=True)
        payload = report.to_dict()
        json.dumps(payload)   # must be JSON-safe
        assert payload["cases"][0]["case"] == DC_CASES[0]
        assert payload["checks"], "metamorphic checks missing from report"


class TestGateTransients:
    """Transient corpus cases — slower, still well under a minute."""

    @pytest.mark.parametrize(
        "name", [n for n in CASES if n.endswith("-tran")])
    def test_transient_case_matches_committed_corpus(self, name):
        report = run_suite([name], checks=False)
        (entry,) = report.cases
        assert entry.error is None, entry.error
        assert entry.ok, "\n".join(d.render() for d in entry.failures)


class TestUnitRescaleProperty:
    """Hypothesis sweep of the whole-deck unit-rescale invariant.

    The fixed x1024 metamorphic check guards the gate; this property
    test walks the scale over 12 decades of power-of-two factors, where
    a units bug anywhere in stamping/solving/certification would break
    the invariance for *some* k even if it conspires to cancel at one.
    """

    @given(exponent=st.integers(min_value=-20, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_voltages_invariant_under_whole_deck_rescale(self, exponent):
        k = 2.0 ** exponent
        base, nodes = _ladder_deck(lambda s: s)
        scaled, _ = _ladder_deck(lambda s: s, scale=k)
        sol_a = operating_point(base)
        sol_b = operating_point(scaled)
        worst = max(abs(sol_a.voltage(n) - sol_b.voltage(n))
                    for n in nodes)
        # The solver's gmin floor (1e-12 S) does not rescale with the
        # deck, injecting ~V*gmin*R*k of error on the scaled branches —
        # the bound must grow with k (measured ~1e-8*k at k=1024,
        # asserted with a 5x margin).
        bound = 1e-6 + 5e-8 * max(k, 1.0)
        assert worst <= bound, f"k=2**{exponent}: {worst:.3g} > {bound:.3g}"

    @given(exponent=st.integers(min_value=-10, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_source_power_scales_inversely(self, exponent):
        k = 2.0 ** exponent
        base, _ = _ladder_deck(lambda s: s)
        scaled, _ = _ladder_deck(lambda s: s, scale=k)
        p_a = base["vs"].delivered_power(operating_point(base))
        p_b = scaled["vs"].delivered_power(operating_point(scaled))
        assert p_b * k == pytest.approx(p_a, rel=2e-3)


class TestCli:
    def test_equiv_run_strict_passes(self, capsys):
        from repro.cli import main

        assert main(["equiv", "run", "--strict", "--case",
                     "6t-standby-op", "--no-checks"]) == 0
        out = capsys.readouterr().out
        assert "gate: PASS" in out

    def test_equiv_diff_prints_all_quantities(self, capsys):
        from repro.cli import main

        assert main(["equiv", "diff", "--case", "6t-standby-op",
                     "--no-checks"]) == 0
        out = capsys.readouterr().out
        assert "p(supply)" in out

    def test_equiv_json_report(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "equiv.json"
        assert main(["equiv", "run", "--case", "6t-standby-op",
                     "--no-checks", "--json", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["ok"] is True

    def test_missing_corpus_only_fails_in_strict(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["equiv", "run", "--case", "6t-standby-op", "--no-checks",
                "--corpus", str(tmp_path)]
        assert main(argv) == 0          # advisory when corpus absent
        assert main(argv + ["--strict"]) == 1
