"""Tests for the RV1xx power-gating topology rules."""

from repro.cells.powerswitch import add_power_switch
from repro.circuit import Capacitor, Circuit, Resistor, VoltageSource
from repro.devices.finfet import FinFET
from repro.devices.mtj import MTJ
from repro.devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from repro.verify import verify_circuit


def codes(report):
    return {d.code for d in report}


def by_code(report, code):
    return [d for d in report if d.code == code]


def latch(c, vdd="vdd"):
    """Minimal cross-coupled pair: storage nodes q/qb."""
    c.add(FinFET("mn1", "q", "qb", "0", NFET_20NM_HP))
    c.add(FinFET("mn2", "qb", "q", "0", NFET_20NM_HP))
    c.add(Resistor("rl1", vdd, "q", 10e3))
    c.add(Resistor("rl2", vdd, "qb", 10e3))


class TestIslandedNode:
    def test_isolated_resistor_pair_is_error(self):
        c = Circuit()
        c.add(VoltageSource("v1", "vdd", "0", dc=0.9))
        c.add(Resistor("r1", "vdd", "out", 1e3))
        c.add(Resistor("r2", "out", "0", 1e3))
        c.add(Resistor("risl", "isl_a", "isl_b", 1e3))
        c.add(Resistor("risl2", "isl_b", "isl_a", 2e3))
        diags = by_code(verify_circuit(c), "RV101")
        assert len(diags) == 1
        assert diags[0].severity.value == "error"
        assert "isl_a" in diags[0].message and "isl_b" in diags[0].message

    def test_single_cap_only_node_left_to_rv002(self):
        c = Circuit()
        c.add(VoltageSource("v1", "vdd", "0", dc=0.9))
        c.add(Resistor("r1", "vdd", "0", 1e3))
        c.add(Capacitor("c1", "dyn", "0", 1e-15))
        report = verify_circuit(c)
        assert not by_code(report, "RV101")
        assert by_code(report, "RV002")

    def test_powered_netlist_clean(self):
        c = Circuit()
        c.add(VoltageSource("v1", "vdd", "0", dc=0.9))
        latch(c)
        assert not by_code(verify_circuit(c), "RV101")


class TestOrphanMtj:
    def test_dangling_terminal_is_error(self):
        c = Circuit()
        c.add(VoltageSource("v1", "vdd", "0", dc=0.9))
        latch(c)
        c.add(MTJ("y1", "mfree", "0"))
        c.add(Capacitor("cpar", "mfree", "0", 1e-15))
        diags = by_code(verify_circuit(c), "RV102")
        assert diags and diags[0].subject == "y1"
        assert "mfree" in diags[0].message

    def test_no_path_to_finfet_channel_is_error(self):
        c = Circuit()
        c.add(VoltageSource("v1", "vdd", "0", dc=0.9))
        latch(c)
        # MTJ hangs off a divider on the hard rail: conduction reaches
        # the rail but never a FinFET channel.
        c.add(Resistor("rtap", "vdd", "tap", 1e3))
        c.add(MTJ("y1", "tap", "sink"))
        c.add(Resistor("rsink", "sink", "vdd", 1e3))
        assert by_code(verify_circuit(c), "RV102")

    def test_device_level_bench_without_fets_not_flagged(self):
        # A lone MTJ driven by a source is a legitimate device bench.
        c = Circuit()
        c.add(VoltageSource("vdrv", "top", "0", dc=0.3))
        c.add(MTJ("y1", "top", "0"))
        assert not by_code(verify_circuit(c), "RV102")

    def test_mtj_behind_ps_finfet_clean(self):
        c = Circuit()
        c.add(VoltageSource("v1", "vdd", "0", dc=0.9))
        c.add(VoltageSource("vsr", "sr", "0", dc=0.0))
        latch(c)
        c.add(FinFET("msr", "q", "sr", "mnode", NFET_20NM_HP))
        c.add(MTJ("y1", "mnode", "0"))
        assert not by_code(verify_circuit(c), "RV102")


class TestAlwaysOnStorePath:
    def test_mtj_on_storage_node_is_error(self):
        c = Circuit()
        c.add(VoltageSource("v1", "vdd", "0", dc=0.9))
        latch(c)
        c.add(MTJ("y1", "q", "0"))
        diags = by_code(verify_circuit(c), "RV103")
        assert diags and diags[0].subject == "y1"
        assert "'q'" in diags[0].message

    def test_separated_mtj_clean(self):
        c = Circuit()
        c.add(VoltageSource("v1", "vdd", "0", dc=0.9))
        c.add(VoltageSource("vsr", "sr", "0", dc=0.0))
        latch(c)
        c.add(FinFET("msr", "q", "sr", "mnode", NFET_20NM_HP))
        c.add(MTJ("y1", "mnode", "0"))
        assert not by_code(verify_circuit(c), "RV103")


class TestRetentionGate:
    def test_internal_gate_node_is_warning(self):
        c = Circuit()
        c.add(VoltageSource("v1", "vdd", "0", dc=0.9))
        latch(c)
        c.add(Resistor("rint", "q", "srint", 1e3))
        c.add(FinFET("msr", "q", "srint", "mnode", NFET_20NM_HP))
        c.add(MTJ("y1", "mnode", "0"))
        diags = by_code(verify_circuit(c), "RV104")
        assert diags and diags[0].subject == "msr"
        assert diags[0].severity.value == "warning"

    def test_rail_driven_gate_clean(self):
        c = Circuit()
        c.add(VoltageSource("v1", "vdd", "0", dc=0.9))
        c.add(VoltageSource("vsr", "sr", "0", dc=0.0))
        latch(c)
        c.add(FinFET("msr", "q", "sr", "mnode", NFET_20NM_HP))
        c.add(MTJ("y1", "mnode", "0"))
        assert not by_code(verify_circuit(c), "RV104")


class TestPgBypass:
    def _gated_domain(self):
        c = Circuit()
        c.add(VoltageSource("v1", "vdd", "0", dc=0.9))
        c.add(VoltageSource("vpg", "pg", "0", dc=0.0))
        add_power_switch(c, "psw", "vdd", "vvdd", "pg", nfsw=7,
                         pfet=PFET_20NM_HP)
        latch(c, vdd="vvdd")
        return c

    def test_resistive_bypass_is_error(self):
        c = self._gated_domain()
        c.add(Resistor("rleak", "vdd", "vvdd", 10e3))
        diags = by_code(verify_circuit(c), "RV105")
        assert diags and diags[0].subject == "psw.sw"
        assert "'vvdd'" in diags[0].message

    def test_bypass_deeper_in_domain_detected(self):
        c = self._gated_domain()
        c.add(Resistor("rleak", "vdd", "q", 50e3))
        assert by_code(verify_circuit(c), "RV105")

    def test_properly_gated_domain_clean(self):
        report = verify_circuit(self._gated_domain())
        assert not by_code(report, "RV105")
        assert not report.has_errors
