"""The incremental whole-program engine: warm runs parse nothing,
dependency-aware invalidation re-lints exactly the affected callers,
and the hardened cache envelope quarantines corruption."""

import json
import textwrap
import warnings

import pytest

from repro.verify import verify_source
from repro.verify import source as source_mod
from repro.verify.cache import (
    CACHE_SCHEMA_VERSION,
    CORRUPT_SUBDIR,
    entry_key,
    load,
    store,
)


def write_tree(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))


def snapshot(report):
    return [(d.code, d.target, d.subject,
             d.location.line if d.location else None, d.message)
            for d in report]


#: helper returns a power; the caller mixes it into an energy -> RV501
#: in caller.py, derived entirely from the helper's return fact.
TREE = {
    "pkg/__init__.py": "",
    "pkg/helper.py": '''\
        def leak_power(vdd, leakage_current):
            return vdd * leakage_current
        ''',
    "pkg/caller.py": '''\
        from pkg.helper import leak_power


        def cycle_total(e_cyc):
            return e_cyc + leak_power(0.9, 1e-6)
        ''',
    "pkg/bystander.py": '''\
        def double(x):
            return 2.0 * x
        ''',
}


def test_warm_run_is_identical_and_parses_nothing(tmp_path, monkeypatch):
    write_tree(tmp_path, TREE)
    cache = tmp_path / "cache"
    cold = verify_source([str(tmp_path / "pkg")], cache_dir=cache)
    assert [d.code for d in cold] == ["RV501"]

    def boom(self):
        raise AssertionError(f"warm run parsed {self.path}")

    monkeypatch.setattr(source_mod._Entry, "ensure_parsed", boom)
    warm = verify_source([str(tmp_path / "pkg")], cache_dir=cache)
    assert snapshot(warm) == snapshot(cold)


def test_callee_edit_relints_caller(tmp_path, monkeypatch):
    """Editing helper.py changes caller.py's facts digest: the caller
    is re-analysed (and its RV501 disappears) even though its own text
    — and hence its cache key — is unchanged."""
    write_tree(tmp_path, TREE)
    cache = tmp_path / "cache"
    cold = verify_source([str(tmp_path / "pkg")], cache_dir=cache)
    assert [d.code for d in cold] == ["RV501"]

    # leak_power now integrates over the sleep window: W * s = J, so
    # the caller's sum becomes dimension-consistent.
    (tmp_path / "pkg" / "helper.py").write_text(textwrap.dedent('''\
        def leak_power(vdd, leakage_current, t_sl):
            return vdd * leakage_current * t_sl
        '''))

    parsed = []
    original = source_mod._Entry.ensure_parsed

    def spy(self):
        parsed.append(self.name)
        return original(self)

    monkeypatch.setattr(source_mod._Entry, "ensure_parsed", spy)
    warm = verify_source([str(tmp_path / "pkg")], cache_dir=cache)
    assert [d.code for d in warm] == []
    # The edited callee and the dependent caller were re-analysed...
    assert "pkg.helper" in parsed
    assert "pkg.caller" in parsed
    # ...the bystander (no fact dependence on helper) was not.
    assert "pkg.bystander" not in parsed


def test_caller_edit_does_not_relint_bystanders(tmp_path, monkeypatch):
    write_tree(tmp_path, TREE)
    cache = tmp_path / "cache"
    verify_source([str(tmp_path / "pkg")], cache_dir=cache)

    caller = tmp_path / "pkg" / "caller.py"
    caller.write_text(caller.read_text() + "\n\nTAG = 1\n")

    parsed = []
    original = source_mod._Entry.ensure_parsed

    def spy(self):
        parsed.append(self.name)
        return original(self)

    monkeypatch.setattr(source_mod._Entry, "ensure_parsed", spy)
    warm = verify_source([str(tmp_path / "pkg")], cache_dir=cache)
    assert [d.code for d in warm] == ["RV501"]
    # ensure_parsed memoizes: repeat calls for the same entry are fine,
    # other modules must never appear.
    assert set(parsed) == {"pkg.caller"}


def test_config_change_misses_the_cache(tmp_path):
    from repro.verify import VerifyConfig
    write_tree(tmp_path, TREE)
    cache = tmp_path / "cache"
    verify_source([str(tmp_path / "pkg")], cache_dir=cache)
    n_entries = len(list(cache.glob("*.json")))
    disabled = verify_source([str(tmp_path / "pkg")],
                             VerifyConfig(disable=frozenset({"RV501"})),
                             cache_dir=cache)
    assert [d.code for d in disabled] == []
    # A different policy digest writes its own entries.
    assert len(list(cache.glob("*.json"))) > n_entries


def test_corrupt_entry_is_quarantined_and_relinted(tmp_path):
    write_tree(tmp_path, TREE)
    cache = tmp_path / "cache"
    cold = verify_source([str(tmp_path / "pkg")], cache_dir=cache)
    victim = sorted(cache.glob("*.json"))[0]
    victim.write_text("{ not json")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warm = verify_source([str(tmp_path / "pkg")], cache_dir=cache)
    assert snapshot(warm) == snapshot(cold)
    assert any("discarding lint cache entry" in str(w.message)
               for w in caught)
    assert (cache / CORRUPT_SUBDIR / victim.name).exists()


def test_tampered_payload_fails_checksum(tmp_path):
    key = entry_key("x = 1\n", "cfg")
    store(tmp_path, key, {"summary": {"functions": {}}})
    path = tmp_path / f"{key}.json"
    envelope = json.loads(path.read_text())
    envelope["payload"]["summary"]["functions"] = {"evil": {}}
    path.write_text(json.dumps(envelope))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert load(tmp_path, key) is None
    assert any("checksum mismatch" in str(w.message) for w in caught)


def test_schema_bump_invalidates(tmp_path):
    key = entry_key("x = 1\n", "cfg")
    store(tmp_path, key, {"summary": {}})
    path = tmp_path / f"{key}.json"
    envelope = json.loads(path.read_text())
    assert envelope["schema"] == CACHE_SCHEMA_VERSION
    envelope["schema"] = CACHE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(envelope))
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        assert load(tmp_path, key) is None


def test_no_cache_dir_means_no_cache_io(tmp_path):
    write_tree(tmp_path, TREE)
    report = verify_source([str(tmp_path / "pkg")], cache_dir=None)
    assert [d.code for d in report] == ["RV501"]
    assert not list(tmp_path.glob("**/*.json"))
