"""RV8xx array shape/dtype band: per-rule fixtures, the shape-lattice
join/widening semantics at branch merges and loop back-edges, and the
arrayflow primitives the rules stand on."""

import textwrap
from pathlib import Path

from repro.verify import arrayflow, verify_source, verify_source_file, \
    verify_source_text

FIXTURES = Path(__file__).parent / "fixtures"


def rv8(report):
    return [d for d in report if d.code.startswith("RV8")]


def codes(report):
    return sorted(d.code for d in rv8(report))


def by_function(report):
    out = {}
    for d in rv8(report):
        out.setdefault(d.subject.split(":")[1], []).append(d)
    return out


# -- fixture detection -------------------------------------------------------


def test_rv8xx_fixture_findings():
    report = verify_source_file(FIXTURES / "viol_rv80x.py")
    assert codes(report) == ["RV800", "RV800", "RV801", "RV802",
                             "RV802", "RV803", "RV804"]
    fns = by_function(report)
    assert "extents 4 and 5" in fns["broadcast_mismatch"][0].message
    assert "inner dimensions" in fns["matmul_mismatch"][0].message
    assert "float32" in fns["demote_store"][0].message
    assert "np.dot() inside a hot loop" in fns["dot_in_loop"][0].message
    assert "returns a copy" in fns["lost_fancy_write"][0].message
    assert "np.add.at" in fns["alias_hazard"][0].message
    assert "rank 2" in fns["batch_drift"][0].message
    assert "widened_if_is_quiet" not in fns
    assert "unique_index_is_quiet" not in fns


def test_rv8xx_severities():
    report = verify_source_file(FIXTURES / "viol_rv80x.py")
    severities = {d.code: d.severity.value for d in rv8(report)}
    assert severities == {"RV800": "warning", "RV801": "warning",
                          "RV802": "info", "RV803": "warning",
                          "RV804": "warning"}


def test_rv804_crosses_module_boundary(tmp_path):
    """The declared shape lives in one module, the call in another."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "cell.py").write_text(textwrap.dedent('''\
        def solve_cell(A: "(n, n)"):
            return A
        '''))
    (pkg / "driver.py").write_text(textwrap.dedent('''\
        import numpy as np

        from pkg.cell import solve_cell


        def run():
            batch = np.zeros((8, 3, 3))
            return solve_cell(batch)
        '''))
    report = verify_source([str(pkg)])
    hits = [d for d in report if d.code == "RV804"]
    assert len(hits) == 1
    assert hits[0].target.endswith("driver.py")
    assert "pkg.cell:solve_cell" in hits[0].message
    assert "batch axis added" in hits[0].message


# -- lattice joins and widening (branch merges, loop back-edges) -------------


def lint(text):
    return verify_source_text(textwrap.dedent(text), path="joins.py")


def test_branch_join_keeps_agreeing_dims():
    report = lint('''\
        import numpy as np


        def agreeing_join(flag):
            if flag:
                x = np.zeros((2, 3))
            else:
                x = np.ones((2, 3))
            return x + np.zeros((2, 4))
        ''')
    assert codes(report) == ["RV800"]


def test_branch_join_widens_disagreeing_dims():
    report = lint('''\
        import numpy as np


        def widened(flag):
            x = np.zeros((3, 4))
            if flag:
                x = np.zeros((3, 5))
            return x + np.ones((3, 4))
        ''')
    assert codes(report) == []


def test_loop_backedge_widens_growing_shape():
    """Data-dependent growth must degrade to unknown, never fire."""
    report = lint('''\
        import numpy as np


        def grow(chunks, steps):
            x = np.zeros(3)
            for _ in range(steps):
                x = np.concatenate([x, np.zeros(3)])
            return x + np.zeros(4)
        ''')
    assert codes(report) == []


def test_loop_exit_joins_zero_iteration_path():
    """After the loop, x may hold either the pre-loop or in-loop shape."""
    report = lint('''\
        import numpy as np


        def zero_iteration(steps):
            x = np.zeros(3)
            for _ in range(steps):
                x = np.zeros(4)
            return x + np.zeros(3)
        ''')
    assert codes(report) == []


def test_loop_stable_shape_stays_provable():
    """Widening only kills facts that actually change on the back edge."""
    report = lint('''\
        import numpy as np


        def stable(steps):
            x = np.zeros((2, 3))
            for _ in range(steps):
                x = np.zeros((2, 3))
            return x + np.zeros((2, 4))
        ''')
    assert codes(report) == ["RV800"]


def test_deep_join_chain_widens_to_top():
    """Past the join cap the lattice collapses to ⊤ — quiet, not wrong."""
    report = lint('''\
        import numpy as np


        def data_dependent(k):
            x = np.zeros(3)
            if k > 0:
                x = np.zeros(4)
            if k > 1:
                x = np.zeros(5)
            if k > 2:
                x = np.zeros(6)
            if k > 3:
                x = np.zeros(7)
            return x + np.zeros(9)
        ''')
    assert codes(report) == []


def test_weak_scalar_never_demotes():
    report = lint('''\
        import numpy as np


        def scale(n):
            acc = np.zeros(n, dtype=np.float32)
            acc += 1.0
            acc *= 2
            return acc
        ''')
    assert codes(report) == []


# -- arrayflow primitives ----------------------------------------------------


def test_join_expr_cap_collapses_to_top():
    expr = arrayflow.arr_expr([3], "float64")
    for extent in (4, 5, 6, 7, 8):
        expr = arrayflow.join_expr(
            expr, arrayflow.arr_expr([extent], "float64"))
    assert expr == arrayflow.TOP


def test_join_expr_identical_is_identity():
    expr = arrayflow.arr_expr([2, 3], "float64")
    assert arrayflow.join_expr(expr, expr) is expr


def test_join_eval_keeps_agreement_per_dim():
    joined = arrayflow.join_expr(arrayflow.arr_expr([2, 3], "float64"),
                                 arrayflow.arr_expr([2, 5], "float64"))
    value = arrayflow.eval_shape(joined)
    assert value.dims == (2, None)


def test_broadcast_conflict_respects_ones():
    assert arrayflow.broadcast_conflict([3, 4], [3, 5]) == (4, 5)
    assert arrayflow.broadcast_conflict([3, 1], [3, 5]) is None
    assert arrayflow.broadcast_conflict([4], [3, 4]) is None


def test_is_demotion_only_on_precision_loss():
    assert arrayflow.is_demotion("float32", "float64")
    assert not arrayflow.is_demotion("float64", "float32")
    assert not arrayflow.is_demotion("int32", "int64")


def test_parse_shape_annotation_ignores_unit_strings():
    assert arrayflow.parse_shape_annotation("(n, n)") == ["n", "n"]
    assert arrayflow.parse_shape_annotation("(b, n, n)") == \
        ["b", "n", "n"]
    assert arrayflow.parse_shape_annotation("J") is None
