"""RV6xx campaign purity: task roots from "module:function" refs and
the registry, checks walking the call graph transitively."""

import textwrap

import pytest

from repro.verify import verify_source
from repro.verify.rules_purity import FS_EXEMPT_SUFFIXES


def write_tree(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return tmp_path


def lint_tree(tmp_path, **kwargs):
    return verify_source([str(tmp_path / "pkg")], **kwargs)


def by_code(report, code):
    return [d for d in report if d.code == code]


#: A driver module whose string literal makes my_task a campaign root.
DRIVER = 'TASK_FN = "pkg.tasks:my_task"\n'


# -- RV600: unresolved refs --------------------------------------------------


def test_rv600_dangling_ref(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/tasks.py": "def my_task(params):\n    return params\n",
        "pkg/driver.py": 'TASK_FN = "pkg.tasks:no_such_task"\n',
    })
    report = lint_tree(tmp_path)
    findings = by_code(report, "RV600")
    assert len(findings) == 1
    assert findings[0].target.endswith("driver.py")
    assert "pkg.tasks:no_such_task" in findings[0].message
    assert findings[0].severity.value == "error"


def test_refs_to_external_modules_are_ignored(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": 'TASK_FN = "some.other.package:task"\n',
    })
    assert by_code(lint_tree(tmp_path), "RV600") == []


# -- RV601: state mutation ---------------------------------------------------


def test_rv601_transitive_state_mutation(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": DRIVER,
        "pkg/tasks.py": '''\
            from pkg.helpers import tally


            def my_task(params):
                return tally(params)
            ''',
        "pkg/helpers.py": '''\
            SEEN = {}
            COUNT = 0


            def tally(params):
                global COUNT
                COUNT += 1
                SEEN[COUNT] = params
                return dict(SEEN)
            ''',
    })
    report = lint_tree(tmp_path)
    findings = by_code(report, "RV601")
    # global COUNT write + SEEN mutation, both in the helper module,
    # both attributed to the task entry two calls up.
    assert len(findings) >= 2
    assert all(f.target.endswith("helpers.py") for f in findings)
    assert all("my_task" in f.message for f in findings)
    assert any("COUNT" in f.message for f in findings)


def test_rv601_unreachable_mutation_is_quiet(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": DRIVER,
        "pkg/tasks.py": "def my_task(params):\n    return params\n",
        "pkg/helpers.py": '''\
            CACHE = {}


            def warm(key, value):
                CACHE[key] = value
            ''',
    })
    assert by_code(lint_tree(tmp_path), "RV601") == []


# -- RV602: nondeterminism ---------------------------------------------------


def test_rv602_random_and_clock(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": DRIVER,
        "pkg/tasks.py": '''\
            import random
            import time


            def my_task(params):
                return helper(params)


            def helper(params):
                jitter = random.random()
                stamp = time.time()
                return {"jitter": jitter, "stamp": stamp}
            ''',
    })
    report = lint_tree(tmp_path)
    findings = by_code(report, "RV602")
    assert len(findings) == 2
    messages = " / ".join(f.message for f in findings)
    assert "random.random" in messages
    assert "time.time" in messages
    # The call chain names the task entry the impurity leaks into.
    assert all("my_task -> helper" in f.message for f in findings)


def test_rv602_seeded_rng_is_fine(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": DRIVER,
        "pkg/tasks.py": '''\
            import numpy as np


            def my_task(params):
                rng = np.random.default_rng([params["seed"],
                                             params["index"]])
                return {"draw": float(rng.standard_normal())}
            ''',
    })
    assert by_code(lint_tree(tmp_path), "RV602") == []


# -- RV603: filesystem writes ------------------------------------------------


def test_rv603_fs_write(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": DRIVER,
        "pkg/tasks.py": '''\
            from pathlib import Path


            def my_task(params):
                Path("side-effect.txt").write_text(str(params))
                return params
            ''',
    })
    findings = by_code(lint_tree(tmp_path), "RV603")
    assert len(findings) == 1
    assert "write_text" in findings[0].message
    assert "task entry point" in findings[0].message


def test_rv603_journal_and_cache_modules_exempt(tmp_path):
    assert "exec.journal" in FS_EXEMPT_SUFFIXES
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": DRIVER,
        "pkg/tasks.py": '''\
            from pkg.exec.journal import append


            def my_task(params):
                append(params)
                return params
            ''',
        "pkg/exec/__init__.py": "",
        "pkg/exec/journal.py": '''\
            from pathlib import Path


            def append(record):
                with open("journal.ndjson", "a") as fh:
                    fh.write(str(record))
            ''',
    })
    assert by_code(lint_tree(tmp_path), "RV603") == []


# -- RV604: task signatures --------------------------------------------------


def test_rv604_signature_contract(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": '''\
            TWO = "pkg.tasks:needs_two"
            VAR = "pkg.tasks:takes_star"
            BAD = "pkg.tasks:exotic_default"
            ''',
        "pkg/tasks.py": '''\
            def needs_two(params, extra):
                return params, extra


            def takes_star(params, **kwargs):
                return params, kwargs


            def exotic_default(params, tol=object()):
                return params, tol
            ''',
    })
    findings = by_code(lint_tree(tmp_path), "RV604")
    by_subject = {}
    for f in findings:
        by_subject.setdefault(f.subject.split(":")[1], []).append(f)
    assert set(by_subject) == {"needs_two", "takes_star",
                               "exotic_default"}
    assert "2 required positional" in by_subject["needs_two"][0].message
    assert "**kwargs" in by_subject["takes_star"][0].message
    assert "not JSON-safe" in by_subject["exotic_default"][0].message
    assert all(f.severity.value == "warning" for f in findings)


def test_rv604_clean_signature_is_quiet(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": DRIVER,
        "pkg/tasks.py": '''\
            def my_task(params):
                return {"x": params.get("x", 0.0)}
            ''',
    })
    assert by_code(lint_tree(tmp_path), "RV604") == []


# -- root seeding and suppression -------------------------------------------


def test_extra_task_refs_seed_roots(tmp_path):
    """Registry-declared tasks are roots with no string literal."""
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/tasks.py": '''\
            import time


            def my_task(params):
                return {"t": time.time()}
            ''',
    })
    quiet = lint_tree(tmp_path)
    assert by_code(quiet, "RV602") == []
    seeded = lint_tree(tmp_path,
                       extra_task_refs=["pkg.tasks:my_task"])
    assert len(by_code(seeded, "RV602")) == 1


def test_rv6xx_inline_pragma(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/driver.py": DRIVER,
        "pkg/tasks.py": '''\
            import time


            def my_task(params):
                return {"t": time.time()}  # lint: skip=RV602
            ''',
    })
    assert by_code(lint_tree(tmp_path), "RV602") == []
