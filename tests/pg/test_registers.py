"""Tests for the register-bank power-gating model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SequenceError
from repro.characterize.ff_runner import FlipFlopCharacterization
from repro.pg.registers import RegisterBankModel


def _ff(**overrides) -> FlipFlopCharacterization:
    payload = dict(
        vdd=0.9, clock_frequency=300e6,
        e_clock_toggle=1e-15, e_clock_hold=0.5e-15,
        clk_to_q_delay=40e-12,
        p_normal=30e-9, p_shutdown=2e-9,
        e_store=270e-15, t_store=20e-9,
        e_restore=50e-15, t_restore=4e-9,
        store_events=2, restore_ok=True,
    )
    payload.update(overrides)
    return FlipFlopCharacterization(**payload)


@pytest.fixture()
def bank() -> RegisterBankModel:
    return RegisterBankModel(_ff(), num_ffs=1024)


class TestPowers:
    def test_active_power_scales_with_activity(self, bank):
        assert bank.active_power(0.0) < bank.active_power(0.5) \
            < bank.active_power(1.0)

    def test_active_power_hand_computed(self, bank):
        # 1024 FFs x 1 fJ x 300 MHz = 307.2 uW at full activity.
        assert bank.active_power(1.0) == pytest.approx(307.2e-6)

    def test_idle_and_shutdown(self, bank):
        assert bank.idle_power() == pytest.approx(1024 * 30e-9)
        assert bank.shutdown_power() == pytest.approx(1024 * 2e-9)

    def test_bank_width_validated(self):
        with pytest.raises(SequenceError):
            RegisterBankModel(_ff(), num_ffs=0)


class TestBreakEven:
    def test_hand_computed(self, bank):
        # (270f + 50f) / (30n - 2n) = 11.43 us.
        assert bank.break_even_time() == pytest.approx(
            320e-15 / 28e-9, rel=1e-9
        )

    def test_independent_of_bank_width(self):
        small = RegisterBankModel(_ff(), num_ffs=8)
        large = RegisterBankModel(_ff(), num_ffs=8192)
        assert small.break_even_time() == large.break_even_time()

    def test_infinite_when_shutdown_leaks(self):
        bank = RegisterBankModel(_ff(p_shutdown=40e-9), num_ffs=16)
        assert math.isinf(bank.break_even_time())

    def test_real_characterisation_bet_microseconds(self):
        from repro.characterize.ff_runner import characterize_nvff
        from repro.pg.modes import OperatingConditions

        ff = characterize_nvff(OperatingConditions())
        bank = RegisterBankModel(ff, num_ffs=1024)
        assert 1e-6 < bank.break_even_time() < 100e-6


class TestIdleEnergy:
    def test_short_interval_cannot_gate(self, bank):
        t = bank.gating_dead_time / 2
        assert bank.idle_energy(t, gate=True) == \
            bank.idle_energy(t, gate=False)

    def test_gating_wins_beyond_bet(self, bank):
        t = bank.break_even_time() * 10
        assert bank.idle_energy(t, gate=True) < \
            bank.idle_energy(t, gate=False)

    def test_gating_loses_below_bet(self, bank):
        t = bank.break_even_time() / 4
        assert bank.idle_energy(t, gate=True) > \
            bank.idle_energy(t, gate=False)

    def test_crossover_at_bet(self, bank):
        """At exactly the BET (plus the dead time correction) the two
        strategies nearly tie."""
        bet = bank.break_even_time()
        gated = bank.idle_energy(bet + bank.gating_dead_time, gate=True)
        idle = bank.idle_energy(bet + bank.gating_dead_time, gate=False)
        assert gated == pytest.approx(idle, rel=0.02)

    def test_negative_duration_rejected(self, bank):
        with pytest.raises(SequenceError):
            bank.idle_energy(-1.0, gate=False)


class TestPolicy:
    def test_bet_policy_never_loses(self, bank):
        intervals = [1e-7, 1e-6, 1e-5, 1e-4, 1e-3]
        assert bank.savings_vs_idle(intervals) >= 0.0

    def test_long_intervals_give_big_savings(self, bank):
        assert bank.savings_vs_idle([1e-3] * 10) > 0.85

    def test_short_intervals_give_no_savings(self, bank):
        assert bank.savings_vs_idle([1e-7] * 10) == pytest.approx(0.0)

    def test_custom_threshold(self, bank):
        intervals = [1e-4] * 5
        eager = bank.policy_energy(intervals, threshold=0.0)
        never = bank.policy_energy(intervals, threshold=math.inf)
        optimal = bank.policy_energy(intervals)
        assert optimal <= eager
        assert optimal <= never

    @given(st.lists(st.floats(min_value=1e-9, max_value=1e-2),
                    min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_bet_policy_dominates_property(self, intervals):
        """The BET-threshold policy is never worse than always or never
        gating, for any interval mix."""
        bank = RegisterBankModel(_ff(), num_ffs=64)
        optimal = bank.policy_energy(intervals)
        always = bank.policy_energy(intervals, threshold=0.0)
        never = bank.policy_energy(intervals, threshold=math.inf)
        assert optimal <= always * (1 + 1e-12)
        assert optimal <= never * (1 + 1e-12)
