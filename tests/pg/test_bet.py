"""Tests for break-even-time extraction."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.cells import PowerDomain
from repro.characterize.data import CellCharacterization
from repro.pg.bet import BetResult, bet_curve_crossing, break_even_time
from repro.pg.energy import CellEnergyModel
from repro.pg.modes import OperatingConditions
from repro.pg.sequences import Architecture, BenchmarkSpec

COND = OperatingConditions(frequency=100e6)
DOMAIN = PowerDomain(n_wordlines=4, word_bits=32)


def _model(p_shutdown=1e-9, p_sleep_v=4e-9, e_store=300e-15,
           p_normal_nv=10e-9):
    nv = CellCharacterization(
        kind="nv", n_wordlines=4, vdd=0.9, frequency=100e6,
        e_read=10e-15, e_write=20e-15,
        p_normal=p_normal_nv, p_sleep=5e-9, p_shutdown=p_shutdown,
        p_shutdown_nominal=8e-9,
        e_store=e_store, t_store=20e-9,
        e_restore=30e-15, t_restore=2e-9,
        store_events=2,
    )
    vt = CellCharacterization(
        kind="6t", n_wordlines=4, vdd=0.9, frequency=100e6,
        e_read=9e-15, e_write=18e-15,
        p_normal=9e-9, p_sleep=p_sleep_v, p_shutdown=p_sleep_v,
        p_shutdown_nominal=p_sleep_v,
    )
    return CellEnergyModel(nv, vt, COND, DOMAIN)


class TestClosedForm:
    def test_matches_manual_crossing(self):
        model = _model()
        result = break_even_time(model, Architecture.NVPG, n_rw=1)
        # Crossing: E_nvpg(0) + p_shd*t = E_osr(0) + p_sleep_v*t.
        e_nvpg0 = model.e_cyc(BenchmarkSpec(Architecture.NVPG, n_rw=1))
        e_osr0 = model.e_cyc(BenchmarkSpec(Architecture.OSR, n_rw=1))
        expected = (e_nvpg0 - e_osr0) / (4e-9 - 1e-9)
        assert result.bet == pytest.approx(expected, rel=1e-12)
        assert result.achievable

    def test_zero_when_pg_wins_immediately(self):
        # A volatile cell whose sleep leaks heavily loses during the
        # short t_SL standbys already: the NVPG overhead at t_SD = 0 is
        # negative and the BET collapses to 0.
        model = _model(e_store=1e-18, p_sleep_v=40e-9)
        result = break_even_time(model, Architecture.NVPG, n_rw=100,
                                 t_sl=1e-6)
        assert result.bet == 0.0

    def test_infinite_when_shutdown_leaks_more(self):
        model = _model(p_shutdown=10e-9, p_sleep_v=4e-9)
        result = break_even_time(model, Architecture.NVPG, n_rw=1)
        assert math.isinf(result.bet)
        assert not result.achievable

    def test_osr_rejected(self):
        with pytest.raises(AnalysisError):
            break_even_time(_model(), Architecture.OSR)

    def test_store_free_shortens_bet(self):
        model = _model()
        full = break_even_time(model, Architecture.NVPG, n_rw=1)
        free = break_even_time(model, Architecture.NVPG, n_rw=1,
                               store_free=True)
        assert free.bet < full.bet

    def test_bet_grows_with_n_rw(self):
        """NV cell leaks slightly more in normal mode, so longer normal
        phases raise the overhead — the Fig. 9 trend."""
        model = _model()
        bets = [break_even_time(model, Architecture.NVPG, n_rw=n).bet
                for n in (1, 10, 100, 1000)]
        assert all(b2 > b1 for b1, b2 in zip(bets, bets[1:]))

    def test_nof_bet_longer_than_nvpg(self):
        model = _model()
        nvpg = break_even_time(model, Architecture.NVPG, n_rw=10)
        nof = break_even_time(model, Architecture.NOF, n_rw=10)
        assert nof.bet > nvpg.bet

    def test_result_fields(self):
        result = break_even_time(_model(), Architecture.NVPG, n_rw=7)
        assert isinstance(result, BetResult)
        assert result.n_rw == 7
        assert result.architecture is Architecture.NVPG
        assert result.saving_power == pytest.approx(3e-9)


class TestCurveCrossing:
    def test_simple_crossing(self):
        t = np.array([0.0, 1.0, 2.0, 3.0])
        e_pg = np.array([4.0, 3.0, 2.0, 1.0])
        e_osr = np.array([1.0, 2.0, 3.0, 4.0])
        assert bet_curve_crossing(t, e_pg, e_osr) == pytest.approx(1.5)

    def test_no_crossing_returns_none(self):
        t = np.array([0.0, 1.0])
        assert bet_curve_crossing(t, [5.0, 6.0], [1.0, 2.0]) is None

    def test_already_below_returns_first_point(self):
        t = np.array([0.5, 1.0])
        assert bet_curve_crossing(t, [1.0, 1.0], [2.0, 2.0]) == 0.5

    def test_malformed_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            bet_curve_crossing([0.0], [1.0], [2.0])
        with pytest.raises(AnalysisError):
            bet_curve_crossing([0.0, 1.0], [1.0], [2.0, 3.0])

    @given(
        overhead=st.floats(min_value=1e-15, max_value=1e-10),
        saving=st.floats(min_value=1e-10, max_value=1e-8),
    )
    @settings(max_examples=40, deadline=None)
    def test_closed_form_agrees_with_numeric(self, overhead, saving):
        """For affine curves the numeric crossing equals the closed form."""
        bet = overhead / saving
        t = np.linspace(0.0, max(bet * 2, 1e-9), 400)
        e_pg = overhead + 0.0 * t
        e_osr = saving * t
        numeric = bet_curve_crossing(t, e_pg, e_osr)
        assert numeric == pytest.approx(bet, rel=1e-2)


class TestClosedFormVsNumericOnModel:
    @pytest.mark.parametrize("arch", [Architecture.NVPG, Architecture.NOF])
    @pytest.mark.parametrize("n_rw", [1, 10, 100])
    def test_consistency(self, arch, n_rw):
        model = _model()
        closed = break_even_time(model, arch, n_rw=n_rw, t_sl=100e-9)
        t = np.linspace(0.0, closed.bet * 3 + 1e-6, 500)
        e_pg = [model.e_cyc(BenchmarkSpec(arch, n_rw=n_rw, t_sl=100e-9,
                                          t_sd=float(x))) for x in t]
        e_osr = [model.e_cyc(BenchmarkSpec(Architecture.OSR, n_rw=n_rw,
                                           t_sl=100e-9, t_sd=float(x)))
                 for x in t]
        numeric = bet_curve_crossing(t, e_pg, e_osr)
        assert numeric == pytest.approx(closed.bet, rel=2e-2)
