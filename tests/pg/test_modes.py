"""Tests for operating modes and Table I bias conditions."""

import pytest

from repro.errors import SequenceError
from repro.pg.modes import (
    LineLevels,
    Mode,
    OperatingConditions,
    bias_for_mode,
)


class TestOperatingConditions:
    def test_table1_defaults(self):
        cond = OperatingConditions()
        assert cond.vdd == 0.9
        assert cond.v_sr == 0.65
        assert cond.v_ctrl_store == 0.5
        assert cond.v_ctrl_normal == 0.07
        assert cond.v_ctrl_sleep == 0.04
        assert cond.v_sleep_rail == 0.7
        assert cond.v_pg_super == 1.0
        assert cond.frequency == 300e6
        assert cond.t_store_step == 10e-9
        assert cond.store_margin == 1.5
        assert cond.nfsw == 7

    def test_derived_timings(self):
        cond = OperatingConditions()
        assert cond.t_cycle == pytest.approx(1 / 300e6)
        assert cond.t_store == pytest.approx(20e-9)

    def test_fast_variant(self):
        fast = OperatingConditions().fast_variant()
        assert fast.frequency == 1e9
        assert fast.vdd == 0.9  # everything else untouched

    def test_with_(self):
        cond = OperatingConditions().with_(t_store_step=5e-9)
        assert cond.t_store == pytest.approx(10e-9)

    @pytest.mark.parametrize("kwargs", [
        {"frequency": 0.0},
        {"t_store_step": -1e-9},
        {"t_restore": 0.0},
        {"v_sleep_rail": 0.0},
        {"v_sleep_rail": 1.0},
        {"read_write_ratio": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(SequenceError):
            OperatingConditions(**kwargs)


class TestBiasForMode:
    def setup_method(self):
        self.cond = OperatingConditions()

    def test_normal_mode(self):
        bias = bias_for_mode(Mode.STANDBY, self.cond)
        assert bias.rail == 0.9
        assert bias.pg == 0.0
        assert bias.sr == 0.0
        assert bias.ctrl == 0.07
        assert bias.prech == 0.9   # bitlines precharged

    def test_sleep_mode_lowers_rail(self):
        bias = bias_for_mode(Mode.SLEEP, self.cond)
        assert bias.rail == 0.7
        assert bias.ctrl == 0.04

    def test_store_steps(self):
        h = bias_for_mode(Mode.STORE_H, self.cond)
        assert h.sr == 0.65
        assert h.ctrl == 0.0
        l = bias_for_mode(Mode.STORE_L, self.cond)
        assert l.sr == 0.65
        assert l.ctrl == 0.5

    def test_shutdown_super_cutoff(self):
        bias = bias_for_mode(Mode.SHUTDOWN, self.cond)
        assert bias.pg == 1.0
        assert bias.prech == 0.0   # bitlines released

    def test_restore_mode(self):
        bias = bias_for_mode(Mode.RESTORE, self.cond)
        assert bias.pg == 0.0      # switch back on
        assert bias.sr == 0.65     # PS-FinFETs active
        assert bias.ctrl == 0.0

    @pytest.mark.parametrize("mode", list(Mode))
    def test_volatile_masks_nv_lines(self, mode):
        bias = bias_for_mode(mode, self.cond, volatile=True)
        assert bias.sr == 0.0
        assert bias.ctrl == 0.0

    @pytest.mark.parametrize("mode", list(Mode))
    def test_as_dict_complete(self, mode):
        bias = bias_for_mode(mode, self.cond)
        d = bias.as_dict()
        assert set(d) == {
            "rail", "pg", "wl", "sr", "ctrl", "bl", "blb", "prech",
            "write_en",
        }

    def test_read_write_share_quiescent_levels(self):
        r = bias_for_mode(Mode.READ, self.cond)
        w = bias_for_mode(Mode.WRITE, self.cond)
        s = bias_for_mode(Mode.STANDBY, self.cond)
        assert r == w == s


class TestWordlineUnderdrive:
    def test_default_off(self):
        cond = OperatingConditions()
        assert cond.wl_underdrive == 0.0
        assert cond.v_wl_read == cond.vdd

    def test_underdrive_lowers_read_level(self):
        cond = OperatingConditions(wl_underdrive=0.1)
        assert cond.v_wl_read == pytest.approx(0.8)

    @pytest.mark.parametrize("bad", [-0.1, 0.9, 1.5])
    def test_validation(self, bad):
        with pytest.raises(SequenceError):
            OperatingConditions(wl_underdrive=bad)
