"""Tests for the cache-hierarchy system model."""

import pytest

from repro.errors import SequenceError
from repro.cells import PowerDomain
from repro.characterize.data import CellCharacterization
from repro.pg.energy import CellEnergyModel
from repro.pg.hierarchy import CacheLevel, LevelReport, SystemModel
from repro.pg.modes import OperatingConditions

COND = OperatingConditions(frequency=100e6)


def _model(n_wordlines=8):
    nv = CellCharacterization(
        kind="nv", n_wordlines=n_wordlines, vdd=0.9, frequency=100e6,
        e_read=10e-15, e_write=20e-15,
        p_normal=10e-9, p_sleep=5e-9, p_shutdown=1e-9,
        p_shutdown_nominal=8e-9,
        e_store=300e-15, t_store=20e-9,
        e_restore=30e-15, t_restore=2e-9, store_events=2,
    )
    vt = CellCharacterization(
        kind="6t", n_wordlines=n_wordlines, vdd=0.9, frequency=100e6,
        e_read=9e-15, e_write=18e-15,
        p_normal=9e-9, p_sleep=4e-9, p_shutdown=4e-9,
        p_shutdown_nominal=4e-9,
    )
    domain = PowerDomain(n_wordlines, 32)
    return CellEnergyModel(nv, vt, COND, domain)


def _level(**overrides) -> CacheLevel:
    payload = dict(name="L1", model=_model(), num_domains=4,
                   n_rw_per_epoch=10, active_fraction=1.0,
                   store_free=False)
    payload.update(overrides)
    return CacheLevel(**payload)


EPOCHS = [(50e-6, 500e-6), (20e-6, 2e-3)]


class TestCacheLevel:
    def test_validation(self):
        with pytest.raises(SequenceError):
            _level(num_domains=0)
        with pytest.raises(SequenceError):
            _level(active_fraction=0.0)
        with pytest.raises(SequenceError):
            _level(n_rw_per_epoch=0)

    def test_capacity(self):
        level = _level(num_domains=4)
        assert level.capacity_bytes == 4 * 8 * 32 / 8

    def test_store_free_shortens_bet(self):
        full = _level(store_free=False).bet()
        free = _level(store_free=True).bet()
        assert free < full

    def test_active_epoch_scales_with_duration(self):
        level = _level()
        assert level.active_epoch_energy(1e-3) > \
            level.active_epoch_energy(1e-4)

    def test_idle_gating_wins_beyond_bet(self):
        level = _level()
        long_idle = level.bet() * 20
        assert level.idle_epoch_energy(long_idle, gate=True) < \
            level.idle_epoch_energy(long_idle, gate=False)

    def test_idle_gating_falls_back_below_dead_time(self):
        level = _level()
        tiny = 1e-9
        assert level.idle_epoch_energy(tiny, gate=True) == \
            level.idle_epoch_energy(tiny, gate=False)

    def test_epoch_energy_positive(self):
        assert _level().epoch_energy(50e-6, 500e-6) > 0


class TestSystemModel:
    def test_needs_levels(self):
        with pytest.raises(SequenceError):
            SystemModel([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SequenceError):
            SystemModel([_level(), _level()])

    def test_empty_workload_rejected(self):
        sys_model = SystemModel([_level()])
        with pytest.raises(SequenceError):
            sys_model.evaluate([])

    def test_reports_per_level(self):
        sys_model = SystemModel([
            _level(name="L1"),
            _level(name="L2", model=_model(), num_domains=8,
                   active_fraction=0.5, store_free=True),
        ])
        reports = sys_model.evaluate(EPOCHS)
        assert [r.name for r in reports] == ["L1", "L2"]
        for r in reports:
            assert isinstance(r, LevelReport)
            assert r.energy > 0
            assert 0.0 <= r.savings < 1.0

    def test_gating_never_loses(self):
        sys_model = SystemModel([_level()])
        for epochs in ([(1e-5, 1e-7)], [(1e-5, 1e-2)], EPOCHS):
            assert sys_model.total_savings(epochs) >= -1e-9

    def test_long_idles_give_large_savings(self):
        sys_model = SystemModel([_level()])
        savings = sys_model.total_savings([(10e-6, 10e-3)] * 3)
        assert savings > 0.5

    def test_store_free_level_saves_more(self):
        """The paper's fine-grained argument: store-free upper levels
        gate profitably on gaps a storing level can't exploit."""
        idle = _level(store_free=False).bet() * 0.8   # below full BET
        epochs = [(5e-6, idle)] * 10
        storing = SystemModel([_level(name="A", store_free=False)])
        free = SystemModel([_level(name="A", store_free=True)])
        assert free.total_savings(epochs) > storing.total_savings(epochs)


class TestRealCharacterisation:
    def test_two_level_hierarchy(self, ctx):
        """End-to-end: L1 (small, storing) + L2 (big, store-free)."""
        l1 = CacheLevel("L1", ctx.energy_model(PowerDomain(64, 32)),
                        num_domains=4, n_rw_per_epoch=200)
        l2 = CacheLevel("L2", ctx.energy_model(PowerDomain(512, 32)),
                        num_domains=8, n_rw_per_epoch=20,
                        active_fraction=0.25, store_free=True)
        sys_model = SystemModel([l1, l2])
        epochs = [(200e-6, 800e-6)] * 3 + [(100e-6, 5e-3)]
        reports = sys_model.evaluate(epochs)
        by_name = {r.name: r for r in reports}
        # Store-free makes the larger L2 domain break even sooner.
        assert by_name["L2"].bet < by_name["L1"].bet
        assert sys_model.total_savings(epochs) > 0.3
