"""Tests for the workload / trace modelling layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SequenceError
from repro.pg.workload import (
    DomainTrace,
    Epoch,
    epoch_pairs,
    epochs_from_access_times,
    periodic_trace,
    poisson_burst_trace,
    zipf_domain_trace,
)


class TestEpochExtraction:
    def test_single_burst(self):
        epochs = epochs_from_access_times(
            [0.0, 1e-9, 2e-9], merge_gap=5e-9, tail_idle=1e-6)
        assert len(epochs) == 1
        assert epochs[0].accesses == 3
        assert epochs[0].active == pytest.approx(2e-9)
        assert epochs[0].idle == pytest.approx(1e-6)

    def test_gap_splits_bursts(self):
        epochs = epochs_from_access_times(
            [0.0, 1e-9, 100e-9, 101e-9], merge_gap=10e-9)
        assert len(epochs) == 2
        assert epochs[0].idle == pytest.approx(99e-9)
        assert [e.accesses for e in epochs] == [2, 2]

    def test_access_duration_extends_burst(self):
        epochs = epochs_from_access_times(
            [0.0], merge_gap=1e-9, access_duration=3e-9)
        assert epochs[0].active == pytest.approx(3e-9)

    def test_empty_trace(self):
        assert epochs_from_access_times([], merge_gap=1e-9) == []

    def test_unsorted_rejected(self):
        with pytest.raises(SequenceError):
            epochs_from_access_times([1e-9, 0.0], merge_gap=1e-9)

    def test_bad_gap_rejected(self):
        with pytest.raises(SequenceError):
            epochs_from_access_times([0.0], merge_gap=0.0)

    def test_epoch_pairs(self):
        epochs = [Epoch(0.0, 1e-6, 2e-6, 5)]
        assert epoch_pairs(epochs) == [(1e-6, 2e-6)]

    @given(
        gaps=st.lists(st.floats(min_value=1e-10, max_value=1e-5),
                      min_size=1, max_size=60),
        merge_gap=st.floats(min_value=1e-9, max_value=1e-6),
    )
    @settings(max_examples=40, deadline=None)
    def test_span_conservation_property(self, gaps, merge_gap):
        """Epochs tile the trace: sum(active + idle) spans first to last
        access, every inter-burst idle exceeds the merge gap, and access
        counts are conserved."""
        times = list(np.cumsum(gaps))
        epochs = epochs_from_access_times(times, merge_gap=merge_gap)
        assert sum(e.accesses for e in epochs) == len(times)
        span = sum(e.active + e.idle for e in epochs)
        assert span == pytest.approx(times[-1] - times[0], abs=1e-12)
        for e in epochs[:-1]:
            assert e.idle > merge_gap - 1e-15
        starts = [e.start for e in epochs]
        assert starts == sorted(starts)


class TestPeriodicTrace:
    def test_duty_cycle_structure(self):
        times = periodic_trace(period=1e-3, duty=0.25, total=4e-3,
                               access_interval=10e-6)
        epochs = epochs_from_access_times(times, merge_gap=50e-6)
        assert len(epochs) == 4
        for e in epochs[:-1]:
            assert e.active == pytest.approx(0.25e-3, rel=0.1)
            assert e.idle == pytest.approx(0.75e-3, rel=0.1)

    def test_validation(self):
        with pytest.raises(SequenceError):
            periodic_trace(1e-3, duty=1.5, total=1e-2,
                           access_interval=1e-6)
        with pytest.raises(SequenceError):
            periodic_trace(-1.0, duty=0.5, total=1e-2,
                           access_interval=1e-6)


class TestPoissonTrace:
    def test_sorted_and_bounded(self):
        rng = np.random.default_rng(3)
        times = poisson_burst_trace(rng, burst_rate=1e4,
                                    accesses_per_burst=10,
                                    access_interval=10e-9, total=1e-3)
        assert times == sorted(times)
        assert all(0 <= t < 1e-3 for t in times)

    def test_burst_count_scales_with_rate(self):
        rng = np.random.default_rng(4)
        slow = poisson_burst_trace(rng, 1e3, 5, 10e-9, 1e-2)
        rng = np.random.default_rng(4)
        fast = poisson_burst_trace(rng, 1e4, 5, 10e-9, 1e-2)
        assert len(fast) > 2 * len(slow)

    def test_validation(self):
        rng = np.random.default_rng(1)
        with pytest.raises(SequenceError):
            poisson_burst_trace(rng, 0.0, 5, 1e-9, 1e-3)


class TestZipfDomainTrace:
    @pytest.fixture(scope="class")
    def trace(self) -> DomainTrace:
        rng = np.random.default_rng(11)
        return zipf_domain_trace(rng, num_domains=16,
                                 num_accesses=20000,
                                 mean_interval=1e-7)

    def test_all_accesses_assigned(self, trace):
        assert sum(trace.access_counts().values()) == 20000

    def test_locality_concentrates_traffic(self, trace):
        """Zipf(1.2) over 16 domains: the hottest quarter of the domains
        takes the clear majority of accesses."""
        assert trace.coverage(16, top=4) > 0.6

    def test_cold_domains_have_long_idles(self, trace):
        counts = trace.access_counts()
        hot = max(counts, key=counts.get)
        cold = min(counts, key=counts.get)
        hot_epochs = trace.epochs(hot, merge_gap=1e-6)
        cold_epochs = trace.epochs(cold, merge_gap=1e-6)
        median = lambda es: float(np.median([e.idle for e in es[:-1]])) \
            if len(es) > 1 else 0.0
        assert median(cold_epochs) > median(hot_epochs)

    def test_validation(self):
        rng = np.random.default_rng(1)
        with pytest.raises(SequenceError):
            zipf_domain_trace(rng, 0, 10, 1e-6)
        with pytest.raises(SequenceError):
            zipf_domain_trace(rng, 4, 10, 1e-6, alpha=0.9)


class TestEndToEndPolicy:
    def test_trace_to_bet_gating(self, ctx):
        """Trace -> epochs -> BET-gated policy on a real characterised
        domain: gating saves energy on a bursty trace."""
        from repro.cells import PowerDomain
        from repro.pg.bet import break_even_time
        from repro.pg.sequences import Architecture

        rng = np.random.default_rng(5)
        times = poisson_burst_trace(rng, burst_rate=2e3,
                                    accesses_per_burst=50,
                                    access_interval=3.4e-9, total=5e-3)
        epochs = epochs_from_access_times(times, merge_gap=1e-6)
        model = ctx.energy_model(PowerDomain(64, 32))
        bet = break_even_time(model, Architecture.NVPG, n_rw=10).bet
        nv = model.nv
        idle_energy_gated = sum(
            (nv.e_store + nv.e_restore + nv.p_shutdown * e.idle)
            if e.idle > bet else nv.p_sleep * e.idle
            for e in epochs
        )
        idle_energy_never = sum(nv.p_sleep * e.idle for e in epochs)
        assert idle_energy_gated <= idle_energy_never
