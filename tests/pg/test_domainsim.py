"""Tests for the discrete-event power-domain simulator.

The headline assertion: the event-driven accounting reproduces the
closed-form E_cyc composition exactly, for every architecture and
workload shape — two independent derivations of the paper's metric.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SequenceError
from repro.cells import PowerDomain
from repro.characterize.data import CellCharacterization
from repro.pg.domainsim import (
    DomainEvent,
    DomainSimResult,
    PowerDomainSimulator,
    RowState,
)
from repro.pg.energy import CellEnergyModel
from repro.pg.modes import OperatingConditions
from repro.pg.sequences import Architecture, BenchmarkSpec

COND = OperatingConditions(frequency=100e6)
DOMAIN = PowerDomain(n_wordlines=8, word_bits=32)


def _nv() -> CellCharacterization:
    return CellCharacterization(
        kind="nv", n_wordlines=8, vdd=0.9, frequency=100e6,
        e_read=10e-15, e_write=20e-15,
        p_normal=10e-9, p_sleep=5e-9, p_shutdown=1e-9,
        p_shutdown_nominal=8e-9,
        e_store=300e-15, t_store=20e-9,
        e_restore=30e-15, t_restore=2e-9,
        store_events=2,
    )


def _6t() -> CellCharacterization:
    return CellCharacterization(
        kind="6t", n_wordlines=8, vdd=0.9, frequency=100e6,
        e_read=9e-15, e_write=18e-15,
        p_normal=9e-9, p_sleep=4e-9, p_shutdown=4e-9,
        p_shutdown_nominal=4e-9,
    )


@pytest.fixture()
def sim() -> PowerDomainSimulator:
    return PowerDomainSimulator(_nv(), _6t(), COND, DOMAIN)


@pytest.fixture()
def model() -> CellEnergyModel:
    return CellEnergyModel(_nv(), _6t(), COND, DOMAIN)


class TestAgreementWithClosedForm:
    @pytest.mark.parametrize("arch", list(Architecture))
    @pytest.mark.parametrize("n_rw", [1, 3, 10])
    def test_exact_agreement(self, sim, model, arch, n_rw):
        spec = BenchmarkSpec(arch, n_rw=n_rw, t_sl=50e-9, t_sd=1e-5)
        assert sim.run(spec).energy_per_cell == pytest.approx(
            model.e_cyc(spec), rel=1e-12
        )

    @pytest.mark.parametrize("arch",
                             [Architecture.NVPG, Architecture.NOF])
    def test_store_free_agreement(self, sim, model, arch):
        spec = BenchmarkSpec(arch, n_rw=4, t_sd=1e-6, store_free=True)
        assert sim.run(spec).energy_per_cell == pytest.approx(
            model.e_cyc(spec), rel=1e-12
        )

    @given(
        n_rw=st.integers(min_value=1, max_value=12),
        t_sl=st.floats(min_value=0.0, max_value=1e-6),
        t_sd=st.floats(min_value=0.0, max_value=1e-3),
    )
    @settings(max_examples=25, deadline=None)
    def test_agreement_property(self, n_rw, t_sl, t_sd):
        sim = PowerDomainSimulator(_nv(), _6t(), COND, DOMAIN,
                                   log_events=False)
        model = CellEnergyModel(_nv(), _6t(), COND, DOMAIN)
        for arch in Architecture:
            spec = BenchmarkSpec(arch, n_rw=n_rw, t_sl=t_sl, t_sd=t_sd)
            assert sim.run(spec).energy_per_cell == pytest.approx(
                model.e_cyc(spec), rel=1e-10
            )

    def test_read_ratio_agreement(self):
        cond = COND.with_(read_write_ratio=4.0)
        sim = PowerDomainSimulator(_nv(), _6t(), cond, DOMAIN)
        model = CellEnergyModel(_nv(), _6t(), cond, DOMAIN)
        spec = BenchmarkSpec(Architecture.NOF, n_rw=2, t_sl=10e-9)
        assert sim.run(spec).energy_per_cell == pytest.approx(
            model.e_cyc(spec), rel=1e-12
        )


class TestSimulatorMechanics:
    def test_kind_order_enforced(self):
        with pytest.raises(SequenceError):
            PowerDomainSimulator(_6t(), _nv(), COND, DOMAIN)

    def test_non_integer_ratio_rejected(self):
        sim = PowerDomainSimulator(_nv(), _6t(),
                                   COND.with_(read_write_ratio=1.5),
                                   DOMAIN)
        with pytest.raises(SequenceError):
            sim.run(BenchmarkSpec(Architecture.OSR, n_rw=1))

    def test_duration_matches_schedule(self, sim):
        spec = BenchmarkSpec(Architecture.OSR, n_rw=2, t_sl=100e-9,
                             t_sd=1e-6)
        result = sim.run(spec)
        n = DOMAIN.n_wordlines
        expected = 2 * (n * 2 * COND.t_cycle + 100e-9) + 1e-6
        assert result.duration == pytest.approx(expected)

    def test_nvpg_duration_includes_store_phase(self, sim):
        spec = BenchmarkSpec(Architecture.NVPG, n_rw=1, t_sd=0.0)
        result = sim.run(spec)
        n = DOMAIN.n_wordlines
        expected = (n * 2 * COND.t_cycle + n * 20e-9 + 2e-9)
        assert result.duration == pytest.approx(expected)

    def test_nof_slots_longer(self, sim):
        osr = sim.run(BenchmarkSpec(Architecture.OSR, n_rw=1))
        nof = sim.run(BenchmarkSpec(Architecture.NOF, n_rw=1))
        assert nof.duration > osr.duration

    def test_events_logged(self, sim):
        spec = BenchmarkSpec(Architecture.NVPG, n_rw=1, t_sd=1e-6)
        result = sim.run(spec)
        actions = [e.action for e in result.events]
        assert actions.count("read") == DOMAIN.n_wordlines
        assert actions.count("write") == DOMAIN.n_wordlines
        assert actions.count("store") == DOMAIN.n_wordlines
        assert actions.count("restore") == 1       # parallel wake-up
        assert "long_shutdown" in actions
        times = [e.time for e in result.events]
        assert times == sorted(times)

    def test_log_events_flag(self):
        sim = PowerDomainSimulator(_nv(), _6t(), COND, DOMAIN,
                                   log_events=False)
        result = sim.run(BenchmarkSpec(Architecture.OSR, n_rw=1))
        assert result.events == []

    def test_breakdown_sums_to_total(self, sim):
        spec = BenchmarkSpec(Architecture.NOF, n_rw=3, t_sl=50e-9,
                             t_sd=1e-5)
        result = sim.run(spec)
        assert sum(result.breakdown.values()) == pytest.approx(
            result.total_energy, rel=1e-12
        )

    def test_breakdown_per_cell(self, sim):
        result = sim.run(BenchmarkSpec(Architecture.OSR, n_rw=1))
        per_cell = result.breakdown_per_cell()
        assert sum(per_cell.values()) == pytest.approx(
            result.energy_per_cell, rel=1e-12
        )
