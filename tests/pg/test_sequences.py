"""Tests for the Fig. 5 benchmark sequences."""

import pytest

from repro.errors import SequenceError
from repro.pg.modes import Mode, OperatingConditions
from repro.pg.sequences import (
    Architecture,
    BenchmarkSpec,
    benchmark_sequence,
    describe_sequence,
)

COND = OperatingConditions()


def _modes(spec):
    return [s.mode for s in benchmark_sequence(spec, COND).steps]


class TestSpecValidation:
    def test_bad_n_rw(self):
        with pytest.raises(SequenceError):
            BenchmarkSpec(Architecture.OSR, n_rw=0)

    def test_bad_durations(self):
        with pytest.raises(SequenceError):
            BenchmarkSpec(Architecture.OSR, t_sl=-1.0)
        with pytest.raises(SequenceError):
            BenchmarkSpec(Architecture.OSR, t_sd=-1.0)

    def test_volatility(self):
        assert Architecture.OSR.is_volatile
        assert not Architecture.NVPG.is_volatile
        assert not Architecture.NOF.is_volatile


class TestOsrSequence:
    def test_structure(self):
        spec = BenchmarkSpec(Architecture.OSR, n_rw=2, t_sl=10e-9,
                             t_sd=50e-9)
        modes = _modes(spec)
        assert modes == [
            Mode.READ, Mode.WRITE, Mode.SLEEP,
            Mode.READ, Mode.WRITE, Mode.SLEEP,
            Mode.SLEEP,
        ]

    def test_no_store_or_restore_ever(self):
        spec = BenchmarkSpec(Architecture.OSR, n_rw=5, t_sl=1e-9,
                             t_sd=1e-6)
        modes = _modes(spec)
        assert Mode.STORE_H not in modes
        assert Mode.RESTORE not in modes
        assert Mode.SHUTDOWN not in modes

    def test_volatile_schedule(self):
        spec = BenchmarkSpec(Architecture.OSR, n_rw=1)
        assert benchmark_sequence(spec, COND).volatile


class TestNvpgSequence:
    def test_structure(self):
        spec = BenchmarkSpec(Architecture.NVPG, n_rw=1, t_sl=10e-9,
                             t_sd=50e-9)
        modes = _modes(spec)
        assert modes == [
            Mode.READ, Mode.WRITE, Mode.SLEEP,
            Mode.STORE_H, Mode.STORE_L, Mode.SHUTDOWN, Mode.RESTORE,
        ]

    def test_single_store_regardless_of_n_rw(self):
        spec = BenchmarkSpec(Architecture.NVPG, n_rw=7, t_sl=1e-9,
                             t_sd=1e-6)
        modes = _modes(spec)
        assert modes.count(Mode.STORE_H) == 1
        assert modes.count(Mode.STORE_L) == 1

    def test_store_free_elides_store(self):
        spec = BenchmarkSpec(Architecture.NVPG, n_rw=1, t_sd=1e-6,
                             store_free=True)
        modes = _modes(spec)
        assert Mode.STORE_H not in modes
        assert Mode.SHUTDOWN in modes
        assert Mode.RESTORE in modes

    def test_zero_standby_elided(self):
        spec = BenchmarkSpec(Architecture.NVPG, n_rw=1, t_sl=0.0, t_sd=0.0)
        modes = _modes(spec)
        assert Mode.SLEEP not in modes
        assert Mode.SHUTDOWN not in modes


class TestNofSequence:
    def test_per_pass_store_and_wake(self):
        spec = BenchmarkSpec(Architecture.NOF, n_rw=3, t_sl=10e-9,
                             t_sd=50e-9)
        modes = _modes(spec)
        assert modes.count(Mode.STORE_H) == 3     # write-back every pass
        assert modes.count(Mode.RESTORE) == 4     # per pass + final wake
        assert modes.count(Mode.SHUTDOWN) == 4    # short ones + long one

    def test_store_count_matches_nvpg_at_n_rw_1(self):
        """Paper: E_cyc(NVPG) ~ E_cyc(NOF) at n_RW = 1 because the store
        count is equal."""
        nof = _modes(BenchmarkSpec(Architecture.NOF, n_rw=1, t_sd=1e-6))
        nvpg = _modes(BenchmarkSpec(Architecture.NVPG, n_rw=1, t_sd=1e-6))
        assert nof.count(Mode.STORE_H) == nvpg.count(Mode.STORE_H) == 1

    def test_short_standby_is_shutdown_not_sleep(self):
        spec = BenchmarkSpec(Architecture.NOF, n_rw=1, t_sl=10e-9)
        modes = _modes(spec)
        assert Mode.SLEEP not in modes
        assert Mode.SHUTDOWN in modes


class TestDataToggling:
    def test_writes_alternate(self):
        spec = BenchmarkSpec(Architecture.OSR, n_rw=4, initial_data=True)
        writes = [s.data for s in benchmark_sequence(spec, COND).steps
                  if s.mode is Mode.WRITE]
        assert writes == [False, True, False, True]


class TestDescribe:
    def test_describe_mentions_all_phases(self):
        spec = BenchmarkSpec(Architecture.NVPG, n_rw=1, t_sl=10e-9,
                             t_sd=50e-9)
        text = describe_sequence(spec, COND)
        for phase in ("read", "write", "sleep", "store_h", "store_l",
                      "shutdown", "restore"):
            assert phase in text

    def test_durations_sum(self):
        spec = BenchmarkSpec(Architecture.NVPG, n_rw=2, t_sl=10e-9,
                             t_sd=100e-9)
        sched = benchmark_sequence(spec, COND)
        expected = (
            2 * (2 * COND.t_cycle + 10e-9)
            + COND.t_store + 100e-9 + COND.t_restore
        )
        assert sched.total_duration == pytest.approx(expected)
