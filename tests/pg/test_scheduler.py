"""Tests for the mode-timeline to waveform compiler."""

import pytest

from repro.errors import SequenceError
from repro.pg.modes import Mode, OperatingConditions
from repro.pg.scheduler import (
    PhaseWindow,
    Schedule,
    ScheduleStep,
    _PwlBuilder,
)

COND = OperatingConditions()
T_CYC = COND.t_cycle


def _schedule(steps, volatile=False):
    return Schedule(steps, COND, volatile=volatile)


class TestScheduleStep:
    def test_write_requires_data(self):
        with pytest.raises(SequenceError):
            ScheduleStep(Mode.WRITE, T_CYC)

    def test_negative_duration_rejected(self):
        with pytest.raises(SequenceError):
            ScheduleStep(Mode.READ, -1.0)


class TestWindows:
    def test_windows_cover_timeline(self):
        sched = _schedule([
            ScheduleStep(Mode.STANDBY, 1e-9),
            ScheduleStep(Mode.READ, T_CYC),
            ScheduleStep(Mode.SLEEP, 5e-9),
        ])
        windows = sched.windows()
        assert windows[0].t_start == 0.0
        for w1, w2 in zip(windows, windows[1:]):
            assert w2.t_start == pytest.approx(w1.t_end)
        assert windows[-1].t_end == pytest.approx(sched.total_duration)

    def test_windows_of_filters(self):
        sched = _schedule([
            ScheduleStep(Mode.READ, T_CYC),
            ScheduleStep(Mode.WRITE, T_CYC, data=True),
            ScheduleStep(Mode.READ, T_CYC),
        ])
        assert len(sched.windows_of(Mode.READ)) == 2
        assert sched.windows_of(Mode.WRITE)[0].data is True

    def test_empty_schedule_rejected(self):
        with pytest.raises(SequenceError):
            _schedule([])


class TestCompiledWaveforms:
    def test_all_lines_present(self):
        sched = _schedule([ScheduleStep(Mode.STANDBY, 1e-9)])
        waves = sched.line_waveforms()
        assert set(waves) == set(Schedule.LINES)

    def test_quiescent_levels_mid_segment(self):
        sched = _schedule([
            ScheduleStep(Mode.STANDBY, 2e-9),
            ScheduleStep(Mode.STORE_H, 10e-9),
            ScheduleStep(Mode.STORE_L, 10e-9),
        ])
        waves = sched.line_waveforms()
        # Mid-STORE_H: SR active, CTRL grounded.
        assert waves["sr"](7e-9) == pytest.approx(COND.v_sr)
        assert waves["ctrl"](7e-9) == pytest.approx(0.0, abs=1e-9)
        # Mid-STORE_L: CTRL raised.
        assert waves["ctrl"](17e-9) == pytest.approx(COND.v_ctrl_store)

    def test_read_cycle_pulses(self):
        sched = _schedule([
            ScheduleStep(Mode.STANDBY, T_CYC),
            ScheduleStep(Mode.READ, T_CYC),
            ScheduleStep(Mode.STANDBY, T_CYC),
        ])
        waves = sched.line_waveforms()
        t0 = T_CYC
        # Precharge on early in the cycle, off before WL rises.
        assert waves["prech"](t0 + 0.2 * T_CYC) == pytest.approx(COND.vdd)
        assert waves["prech"](t0 + 0.43 * T_CYC) == pytest.approx(0.0,
                                                                  abs=1e-9)
        # Word line asserted mid-cycle.
        assert waves["wl"](t0 + 0.7 * T_CYC) == pytest.approx(COND.vdd)
        assert waves["wl"](t0 + 0.99 * T_CYC) == pytest.approx(0.0,
                                                               abs=1e-9)

    def test_write_cycle_drives_data(self):
        sched = _schedule([
            ScheduleStep(Mode.STANDBY, T_CYC),
            ScheduleStep(Mode.WRITE, T_CYC, data=False),
        ])
        waves = sched.line_waveforms()
        t_mid = T_CYC + 0.6 * T_CYC
        assert waves["bl"](t_mid) == pytest.approx(0.0, abs=1e-9)
        assert waves["blb"](t_mid) == pytest.approx(COND.vdd)
        assert waves["write_en"](t_mid) == pytest.approx(COND.vdd)
        assert waves["wl"](t_mid) == pytest.approx(COND.vdd)

    def test_write_true_swaps_bitlines(self):
        sched = _schedule([ScheduleStep(Mode.WRITE, T_CYC, data=True)])
        waves = sched.line_waveforms()
        t_mid = 0.6 * T_CYC
        assert waves["bl"](t_mid) == pytest.approx(COND.vdd)
        assert waves["blb"](t_mid) == pytest.approx(0.0, abs=1e-9)

    def test_volatile_keeps_sr_ctrl_grounded(self):
        sched = _schedule(
            [ScheduleStep(Mode.SLEEP, 5e-9),
             ScheduleStep(Mode.SHUTDOWN, 5e-9)],
            volatile=True,
        )
        waves = sched.line_waveforms()
        for t in (1e-9, 4e-9, 7e-9):
            assert waves["sr"](t) == 0.0
            assert waves["ctrl"](t) == 0.0

    def test_waveforms_have_breakpoints(self):
        sched = _schedule([
            ScheduleStep(Mode.STANDBY, 1e-9),
            ScheduleStep(Mode.STORE_H, 10e-9),
        ])
        waves = sched.line_waveforms()
        assert len(waves["sr"].breakpoints(0.0, 11e-9)) >= 2


class TestWordlineUnderdrive:
    def test_read_wl_level_underdriven(self):
        cond = OperatingConditions(wl_underdrive=0.15)
        sched = Schedule([ScheduleStep(Mode.READ, cond.t_cycle)], cond)
        waves = sched.line_waveforms()
        t_mid_wl = 0.7 * cond.t_cycle
        assert waves["wl"](t_mid_wl) == pytest.approx(cond.vdd - 0.15)

    def test_write_wl_stays_full_rail(self):
        cond = OperatingConditions(wl_underdrive=0.15)
        sched = Schedule(
            [ScheduleStep(Mode.WRITE, cond.t_cycle, data=True)], cond)
        waves = sched.line_waveforms()
        t_mid_wl = 0.6 * cond.t_cycle
        assert waves["wl"](t_mid_wl) == pytest.approx(cond.vdd)


class TestPwlBuilder:
    def test_no_redundant_points_for_same_level(self):
        b = _PwlBuilder(0.5)
        b.set(1e-9, 0.5, 1e-12)
        assert len(b.points) == 1

    def test_transitions_ramp(self):
        b = _PwlBuilder(0.0)
        b.set(1e-9, 1.0, 1e-10)
        w = b.waveform()
        assert w(0.5e-9) == 0.0
        assert w(1.05e-9) == pytest.approx(0.5)
        assert w(2e-9) == 1.0

    def test_colliding_times_resolved(self):
        b = _PwlBuilder(0.0)
        b.set(1e-9, 1.0, 1e-10)
        b.set(1e-9, 0.5, 1e-10)   # same nominal instant
        w = b.waveform()          # must not raise (strictly increasing)
        assert w(2e-9) == pytest.approx(0.5)
