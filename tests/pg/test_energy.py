"""Tests for the E_cyc composition, cross-checked by hand arithmetic.

Synthetic characterisations with round numbers make every formula
verifiable by hand; the integration tests elsewhere exercise the same
composition with simulated numbers.
"""

import pytest

from repro.errors import SequenceError
from repro.cells import PowerDomain
from repro.characterize.data import CellCharacterization
from repro.pg.energy import CellEnergyModel, CycleEnergyBreakdown
from repro.pg.modes import OperatingConditions
from repro.pg.sequences import Architecture, BenchmarkSpec

#: Round-number conditions: t_cycle = 10 ns.
COND = OperatingConditions(frequency=100e6, t_store_step=10e-9,
                           t_restore=2e-9)
DOMAIN = PowerDomain(n_wordlines=4, word_bits=32)


def _nv() -> CellCharacterization:
    return CellCharacterization(
        kind="nv", n_wordlines=4, vdd=0.9, frequency=100e6,
        e_read=10e-15, e_write=20e-15,
        p_normal=10e-9, p_sleep=5e-9, p_shutdown=1e-9,
        p_shutdown_nominal=8e-9,
        e_store=300e-15, e_store_h=200e-15, e_store_l=100e-15,
        t_store=20e-9,
        e_restore=30e-15, t_restore=2e-9,
        store_events=2, restore_ok=True,
    )


def _6t() -> CellCharacterization:
    return CellCharacterization(
        kind="6t", n_wordlines=4, vdd=0.9, frequency=100e6,
        e_read=9e-15, e_write=18e-15,
        p_normal=9e-9, p_sleep=4e-9, p_shutdown=4e-9,
        p_shutdown_nominal=4e-9,
    )


@pytest.fixture()
def model() -> CellEnergyModel:
    return CellEnergyModel(_nv(), _6t(), COND, DOMAIN)


class TestConstruction:
    def test_kind_order_enforced(self):
        with pytest.raises(SequenceError):
            CellEnergyModel(_6t(), _nv(), COND, DOMAIN)

    def test_domain_mismatch_rejected(self):
        with pytest.raises(SequenceError):
            CellEnergyModel(_nv(), _6t(), COND,
                            PowerDomain(n_wordlines=8, word_bits=32))


class TestOsrComposition:
    def test_hand_computed(self, model):
        # n_rw=2, t_sl=100ns, t_sd=1us, N=4, t_cyc=10ns:
        # access    = 2*(9f + 18f)            = 54 fJ
        # idle      = 2 * 9nW * 3 * 2 * 10ns  = 1.08 fJ
        # standby   = 2 * 4nW * 100ns         = 0.8 fJ
        # long      = 4nW * 1us               = 4 fJ
        spec = BenchmarkSpec(Architecture.OSR, n_rw=2, t_sl=100e-9,
                             t_sd=1e-6)
        b = model.cycle_energy(spec)
        assert b.access == pytest.approx(54e-15)
        assert b.idle_active == pytest.approx(1.08e-15)
        assert b.standby == pytest.approx(0.8e-15)
        assert b.long_period == pytest.approx(4e-15)
        assert b.store == 0.0
        assert b.restore == 0.0
        assert b.total == pytest.approx(59.88e-15)

    def test_no_store_even_with_store_free_flag(self, model):
        spec = BenchmarkSpec(Architecture.OSR, n_rw=1, store_free=True)
        assert model.cycle_energy(spec).store == 0.0


class TestNvpgComposition:
    def test_hand_computed(self, model):
        # n_rw=1, t_sl=0, t_sd=1ms:
        # access  = 10f + 20f                     = 30 fJ
        # idle    = 10nW * 3 * 2 * 10ns           = 0.6 fJ
        # store   = 300f + 10nW * 3 * 20ns        = 300.6 fJ
        # long    = 1nW * 1ms                     = 1 pJ
        # restore = 30 fJ
        spec = BenchmarkSpec(Architecture.NVPG, n_rw=1, t_sd=1e-3)
        b = model.cycle_energy(spec)
        assert b.access == pytest.approx(30e-15)
        assert b.idle_active == pytest.approx(0.6e-15)
        assert b.store == pytest.approx(300.6e-15)
        assert b.long_period == pytest.approx(1e-12)
        assert b.restore == pytest.approx(30e-15)

    def test_store_free_removes_store_only(self, model):
        with_store = model.cycle_energy(
            BenchmarkSpec(Architecture.NVPG, n_rw=1, t_sd=1e-6))
        without = model.cycle_energy(
            BenchmarkSpec(Architecture.NVPG, n_rw=1, t_sd=1e-6,
                          store_free=True))
        assert without.store == 0.0
        assert without.restore == with_store.restore
        assert without.total == pytest.approx(
            with_store.total - with_store.store
        )

    def test_approaches_osr_at_large_n_rw(self, model):
        """The paper's headline Fig. 7(a) effect, in ratio form."""
        def ratio(n_rw):
            nvpg = model.e_cyc(BenchmarkSpec(Architecture.NVPG, n_rw=n_rw))
            osr = model.e_cyc(BenchmarkSpec(Architecture.OSR, n_rw=n_rw))
            return nvpg / osr

        assert ratio(10000) < ratio(100) < ratio(1)
        assert ratio(10000) < 1.25


class TestNofComposition:
    def test_hand_computed(self, model):
        # n_rw=1, t_sl=0, t_sd=0, rho=1:
        # access  = (10f + 30f) + (20f + 30f)  = 90 fJ
        # store   = 300 fJ
        # idle    = 1nW * 3 * (12ns + 32ns)    = 0.132 fJ
        # restore = 30 fJ (final wake)
        spec = BenchmarkSpec(Architecture.NOF, n_rw=1)
        b = model.cycle_energy(spec)
        assert b.access == pytest.approx(90e-15)
        assert b.store == pytest.approx(300e-15)
        assert b.idle_active == pytest.approx(0.132e-15)
        assert b.restore == pytest.approx(30e-15)

    def test_grows_linearly_with_n_rw(self, model):
        e1 = model.e_cyc(BenchmarkSpec(Architecture.NOF, n_rw=1))
        e2 = model.e_cyc(BenchmarkSpec(Architecture.NOF, n_rw=2))
        e3 = model.e_cyc(BenchmarkSpec(Architecture.NOF, n_rw=3))
        assert e3 - e2 == pytest.approx(e2 - e1, rel=1e-9)

    def test_short_standby_billed_at_shutdown_power(self, model):
        base = model.e_cyc(BenchmarkSpec(Architecture.NOF, n_rw=1))
        with_sl = model.e_cyc(BenchmarkSpec(Architecture.NOF, n_rw=1,
                                            t_sl=100e-9))
        assert with_sl - base == pytest.approx(1e-9 * 100e-9)


class TestSharedProperties:
    @pytest.mark.parametrize("arch", list(Architecture))
    def test_affine_in_t_sd(self, model, arch):
        spec0 = BenchmarkSpec(arch, n_rw=3, t_sl=10e-9, t_sd=0.0)
        base, slope = model.e_cyc_affine(
            BenchmarkSpec(arch, n_rw=3, t_sl=10e-9, t_sd=5e-3))
        for t_sd in (0.0, 1e-6, 1e-3):
            spec = BenchmarkSpec(arch, n_rw=3, t_sl=10e-9, t_sd=t_sd)
            assert model.e_cyc(spec) == pytest.approx(
                base + slope * t_sd, rel=1e-12
            )

    @pytest.mark.parametrize("arch", list(Architecture))
    def test_breakdown_sums_to_total(self, model, arch):
        spec = BenchmarkSpec(arch, n_rw=5, t_sl=50e-9, t_sd=1e-6)
        b = model.cycle_energy(spec)
        parts = (b.access + b.idle_active + b.standby + b.store
                 + b.long_period + b.restore)
        assert b.total == pytest.approx(parts)

    def test_as_dict(self, model):
        b = model.cycle_energy(BenchmarkSpec(Architecture.NVPG, n_rw=1))
        d = b.as_dict()
        assert d["total"] == pytest.approx(b.total)
        assert set(d) == {"access", "idle_active", "standby", "store",
                          "long_period", "restore", "total"}

    def test_read_write_ratio_scales_reads(self):
        cond10 = COND.with_(read_write_ratio=10.0)
        model10 = CellEnergyModel(_nv(), _6t(), cond10, DOMAIN)
        spec = BenchmarkSpec(Architecture.OSR, n_rw=1)
        b = model10.cycle_energy(spec)
        assert b.access == pytest.approx(10 * 9e-15 + 18e-15)

    def test_effective_cycle_time(self, model):
        assert model.effective_cycle_time(Architecture.OSR) == \
            pytest.approx(10e-9)
        assert model.effective_cycle_time(Architecture.NVPG) == \
            pytest.approx(10e-9)
        assert model.effective_cycle_time(Architecture.NOF) == \
            pytest.approx(10e-9 + 2e-9 + 20e-9)
