"""Tests for the smooth voltage-controlled switch."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.circuit import (
    Circuit,
    Resistor,
    Step,
    VoltageControlledSwitch,
    VoltageSource,
)
from repro.analysis import operating_point, transient


def _switch(r_on=100.0, r_off=1e9, v_on=1.0, v_off=0.0):
    return VoltageControlledSwitch("s", "p", "n", "cp", "0",
                                   r_on=r_on, r_off=r_off,
                                   v_on=v_on, v_off=v_off)


class TestConductanceLaw:
    def test_endpoints(self):
        s = _switch()
        assert s.conductance_at(0.0) == pytest.approx(1e-9)
        assert s.conductance_at(1.0) == pytest.approx(1e-2)
        assert s.conductance_at(-5.0) == pytest.approx(1e-9)
        assert s.conductance_at(5.0) == pytest.approx(1e-2)

    def test_monotonic(self):
        s = _switch()
        vcs = np.linspace(-0.5, 1.5, 101)
        gs = [s.conductance_at(v) for v in vcs]
        assert all(g1 <= g2 * (1 + 1e-12) for g1, g2 in zip(gs, gs[1:]))

    def test_inverted_switch(self):
        s = _switch(v_on=0.0, v_off=1.0)
        assert s.conductance_at(0.0) == pytest.approx(1e-2)
        assert s.conductance_at(1.0) == pytest.approx(1e-9)

    def test_derivative_matches_finite_difference(self):
        s = _switch()
        for vc in (0.1, 0.25, 0.5, 0.75, 0.9):
            h = 1e-7
            fd = (s.conductance_at(vc + h) - s.conductance_at(vc - h)) / (2 * h)
            assert s._dconductance(vc) == pytest.approx(fd, rel=1e-4)

    def test_derivative_zero_outside_window(self):
        s = _switch()
        assert s._dconductance(-0.1) == 0.0
        assert s._dconductance(1.1) == 0.0

    def test_validation(self):
        with pytest.raises(NetlistError):
            VoltageControlledSwitch("s", "p", "n", "c", "0", r_on=0.0)
        with pytest.raises(NetlistError):
            VoltageControlledSwitch("s", "p", "n", "c", "0",
                                    v_on=0.5, v_off=0.5)


class TestInCircuit:
    def _build(self, control_v):
        c = Circuit()
        c.add(VoltageSource("vin", "p", "0", dc=1.0))
        c.add(VoltageSource("vc", "cp", "0", dc=control_v))
        c.add(VoltageControlledSwitch("s", "p", "out", "cp", "0",
                                      r_on=100.0, r_off=1e12,
                                      v_on=1.0, v_off=0.0))
        c.add(Resistor("rl", "out", "0", 100.0))
        return c

    def test_on_state_divides(self):
        sol = operating_point(self._build(1.0))
        assert sol.voltage("out") == pytest.approx(0.5, rel=1e-4)

    def test_off_state_blocks(self):
        sol = operating_point(self._build(0.0))
        assert sol.voltage("out") == pytest.approx(0.0, abs=1e-6)

    def test_current_helper(self):
        c = self._build(1.0)
        sol = operating_point(c)
        assert c["s"].current(sol) == pytest.approx(5e-3, rel=1e-3)

    def test_transient_switching(self):
        c = Circuit()
        c.add(VoltageSource("vin", "p", "0", dc=1.0))
        c.add(VoltageSource("vc", "cp", "0",
                            waveform=Step(0.0, 1.0, 1e-9, 1e-10)))
        c.add(VoltageControlledSwitch("s", "p", "out", "cp", "0",
                                      r_on=100.0, r_off=1e12,
                                      v_on=1.0, v_off=0.0))
        c.add(Resistor("rl", "out", "0", 100.0))
        result = transient(c, 3e-9)
        assert result.sample("out", 0.5e-9) == pytest.approx(0.0, abs=1e-5)
        assert result.sample("out", 2.5e-9) == pytest.approx(0.5, rel=1e-3)

    @given(vc=st.floats(min_value=-1.0, max_value=2.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_output_between_rails_any_control(self, vc):
        sol = operating_point(self._build(vc))
        assert -1e-9 <= sol.voltage("out") <= 0.5 + 1e-6
