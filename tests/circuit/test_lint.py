"""Tests for the netlist linter."""

import pytest

from repro.circuit import Capacitor, Circuit, Resistor, VoltageSource
from repro.circuit.lint import LintFinding, has_errors, lint
from repro.characterize.testbench import build_cell_testbench


def codes(findings):
    return {f.code for f in findings}


class TestCleanCircuits:
    def test_divider_is_clean(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r1", "in", "mid", 1e3))
        c.add(Resistor("r2", "mid", "0", 1e3))
        assert lint(c) == []

    def test_full_cell_testbench_is_clean(self):
        tb = build_cell_testbench("nv")
        findings = lint(tb.circuit)
        assert not has_errors(findings)
        assert findings == []


class TestFloatingNode:
    def test_detected(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r1", "in", "typo_node", 1e3))
        findings = lint(c)
        assert "floating-node" in codes(findings)
        subject = [f for f in findings if f.code == "floating-node"][0]
        assert subject.subject == "typo_node"
        assert subject.severity == "warning"
        assert "r1" in subject.message


class TestNoDcPath:
    def test_cap_only_node_flagged(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r", "in", "0", 1e3))
        c.add(Capacitor("c1", "in", "float", 1e-12))
        c.add(Capacitor("c2", "float", "0", 1e-12))
        findings = lint(c)
        assert "no-dc-path" in codes(findings)

    def test_cap_with_resistor_not_flagged(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r", "in", "out", 1e3))
        c.add(Capacitor("c1", "out", "0", 1e-12))
        assert "no-dc-path" not in codes(lint(c))


class TestShortedElement:
    def test_detected(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("rshort", "a", "a", 1e3))
        c.add(Resistor("rload", "a", "0", 1e3))
        findings = lint(c)
        assert "shorted-element" in codes(findings)


class TestSourceTopology:
    def test_parallel_sources_error(self):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", dc=1.0))
        c.add(VoltageSource("v2", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        findings = lint(c)
        assert "parallel-sources" in codes(findings)
        assert has_errors(findings)

    def test_voltage_loop_error(self):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", dc=1.0))
        c.add(VoltageSource("v2", "b", "a", dc=0.5))
        c.add(VoltageSource("v3", "b", "0", dc=1.5))
        c.add(Resistor("r", "b", "0", 1e3))
        findings = lint(c)
        assert "voltage-loop" in codes(findings)

    def test_series_sources_fine(self):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", dc=1.0))
        c.add(VoltageSource("v2", "b", "a", dc=0.5))
        c.add(Resistor("r", "b", "0", 1e3))
        assert lint(c) == []


class TestOrderingAndHelpers:
    def test_errors_sort_first(self):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", dc=1.0))
        c.add(VoltageSource("v2", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "dangling", 1e3))
        findings = lint(c)
        assert findings[0].severity == "error"
        assert findings[-1].severity == "warning"

    def test_str_rendering(self):
        f = LintFinding("floating-node", "warning", "msg", "n1")
        assert "[warning] floating-node" in str(f)

    def test_has_errors_false_for_warnings(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r1", "in", "dangle", 1e3))
        assert not has_errors(lint(c))
