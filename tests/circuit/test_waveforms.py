"""Tests for the time-domain waveform primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.circuit.waveforms import (
    Constant,
    PiecewiseLinear,
    Pulse,
    Sequence,
    Step,
)


class TestConstant:
    def test_value(self):
        w = Constant(0.9)
        assert w(0.0) == 0.9
        assert w(1e9) == 0.9

    def test_no_breakpoints(self):
        assert Constant(1.0).breakpoints(0, 1) == []


class TestStep:
    def test_levels(self):
        w = Step(0.0, 1.0, t_step=1e-9, t_rise=1e-10)
        assert w(0.0) == 0.0
        assert w(1e-9) == 0.0
        assert w(1.05e-9) == pytest.approx(0.5)
        assert w(1.1e-9) == pytest.approx(1.0)
        assert w(5e-9) == 1.0

    def test_falling(self):
        w = Step(1.0, 0.2, t_step=0.0, t_rise=1.0)
        assert w(0.5) == pytest.approx(0.6)

    def test_breakpoints(self):
        w = Step(0, 1, t_step=2.0, t_rise=0.5)
        assert w.breakpoints(0.0, 10.0) == [2.0, 2.5]
        assert w.breakpoints(2.0, 2.4) == []  # half-open (t0, t1]
        assert w.breakpoints(1.9, 2.0) == [2.0]

    def test_zero_rise_rejected(self):
        with pytest.raises(AnalysisError):
            Step(0, 1, 0.0, 0.0)

    def test_shifted(self):
        w = Step(0, 1, t_step=1.0, t_rise=0.1).shifted(2.0)
        assert w(2.5) == 0.0
        assert w(3.2) == 1.0
        assert w.breakpoints(0, 10) == [3.0, 3.1]


class TestPulse:
    def test_single_pulse_profile(self):
        w = Pulse(0, 1, delay=1.0, rise=0.1, fall=0.1, width=0.5)
        assert w(0.5) == 0
        assert w(1.05) == pytest.approx(0.5)
        assert w(1.3) == 1
        assert w(1.65) == pytest.approx(0.5)
        assert w(2.5) == 0

    def test_periodic(self):
        w = Pulse(0, 1, delay=0.0, rise=0.1, fall=0.1, width=0.3, period=1.0)
        for k in range(4):
            assert w(k + 0.25) == 1.0
            assert w(k + 0.9) == 0.0

    def test_periodic_breakpoints_cover_all_cycles(self):
        w = Pulse(0, 1, rise=0.1, fall=0.1, width=0.3, period=1.0)
        bps = w.breakpoints(0.0, 2.5)
        # cycles at 0, 1, 2 each contribute up to 4 corners in (0, 2.5]
        assert 1.0 in bps and 2.0 in bps
        assert all(0.0 < t <= 2.5 for t in bps)

    def test_period_shorter_than_pulse_rejected(self):
        with pytest.raises(AnalysisError):
            Pulse(0, 1, rise=0.3, fall=0.3, width=0.5, period=1.0)

    def test_negative_width_rejected(self):
        with pytest.raises(AnalysisError):
            Pulse(0, 1, width=-1e-9)


class TestPiecewiseLinear:
    def test_interpolation(self):
        w = PiecewiseLinear([(0.0, 0.0), (1.0, 1.0), (3.0, 0.0)])
        assert w(-1.0) == 0.0
        assert w(0.5) == pytest.approx(0.5)
        assert w(2.0) == pytest.approx(0.5)
        assert w(5.0) == 0.0

    def test_breakpoints_window(self):
        w = PiecewiseLinear([(0.0, 0.0), (1.0, 1.0), (3.0, 0.0)])
        assert w.breakpoints(0.0, 2.0) == [1.0]
        assert w.breakpoints(0.5, 5.0) == [1.0, 3.0]

    def test_monotonic_times_required(self):
        with pytest.raises(AnalysisError):
            PiecewiseLinear([(0.0, 0.0), (0.0, 1.0)])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            PiecewiseLinear([])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=-5, max_value=5, allow_nan=False),
            ),
            min_size=2,
            max_size=12,
        )
    )
    def test_value_bounded_by_levels(self, points):
        # Deduplicate and sort times to make a valid PWL.
        by_time = {}
        for t, v in points:
            by_time[round(t, 6)] = v
        if len(by_time) < 2:
            return
        pts = sorted(by_time.items())
        w = PiecewiseLinear(pts)
        lo = min(v for _, v in pts)
        hi = max(v for _, v in pts)
        for frac in (0.0, 0.1, 0.37, 0.5, 0.93, 1.0):
            t = pts[0][0] + frac * (pts[-1][0] - pts[0][0])
            assert lo - 1e-9 <= w(t) <= hi + 1e-9


class TestSequence:
    def test_concatenation_with_local_time(self):
        seg1 = Step(0, 1, t_step=0.5, t_rise=0.1)
        seg2 = Constant(0.25)
        w = Sequence([(seg1, 1.0), (seg2, 2.0)])
        assert w.total_duration == 3.0
        assert w(0.25) == 0.0
        assert w(0.9) == 1.0
        assert w(1.5) == 0.25
        assert w(10.0) == 0.25  # holds final value

    def test_breakpoints_include_segment_starts(self):
        w = Sequence([(Constant(0), 1.0), (Step(0, 1, 0.2, 0.1), 1.0)])
        bps = w.breakpoints(0.0, 2.0)
        assert 1.0 in bps          # segment boundary
        assert 1.2 in bps          # inner step corner, shifted
        assert pytest.approx(1.3) in bps

    def test_negative_duration_rejected(self):
        with pytest.raises(AnalysisError):
            Sequence([(Constant(0), -1.0)])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            Sequence([])

    @given(st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
    def test_piecewise_agreement_with_segments(self, t):
        seg1 = PiecewiseLinear([(0.0, 0.0), (1.0, 1.0)])
        seg2 = Constant(0.5)
        seg3 = PiecewiseLinear([(0.0, 0.5), (1.0, 0.0)])
        w = Sequence([(seg1, 1.0), (seg2, 1.0), (seg3, 1.0)])
        if t < 1.0:
            assert w(t) == pytest.approx(seg1(t))
        elif t < 2.0:
            assert w(t) == pytest.approx(0.5)
        else:
            assert w(t) == pytest.approx(seg3(t - 2.0))
