"""Tests for resistors and capacitors (via solved circuits)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.circuit import Capacitor, Circuit, Resistor, Step, VoltageSource
from repro.analysis import operating_point, transient


class TestResistor:
    def test_validation(self):
        with pytest.raises(NetlistError):
            Resistor("r", "a", "0", 0.0)
        with pytest.raises(NetlistError):
            Resistor("r", "a", "0", -5.0)

    def test_divider(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=2.0))
        c.add(Resistor("r1", "in", "mid", 3000))
        c.add(Resistor("r2", "mid", "0", 1000))
        sol = operating_point(c)
        assert sol.voltage("mid") == pytest.approx(0.5, rel=1e-6)

    def test_current_and_power(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        r = c.add(Resistor("r1", "in", "0", 500))
        sol = operating_point(c)
        assert r.current(sol) == pytest.approx(2e-3, rel=1e-6)
        assert r.power(sol) == pytest.approx(2e-3, rel=1e-6)

    @given(
        r1=st.floats(min_value=10, max_value=1e6),
        r2=st.floats(min_value=10, max_value=1e6),
        v=st.floats(min_value=-10, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_divider_property(self, r1, r2, v):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=v))
        c.add(Resistor("r1", "in", "mid", r1))
        c.add(Resistor("r2", "mid", "0", r2))
        sol = operating_point(c)
        assert sol.voltage("mid") == pytest.approx(
            v * r2 / (r1 + r2), rel=1e-5, abs=1e-9
        )


class TestCapacitor:
    def test_validation(self):
        with pytest.raises(NetlistError):
            Capacitor("c", "a", "0", 0.0)

    def test_open_in_dc(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r", "in", "out", 1000))
        c.add(Capacitor("cl", "out", "0", 1e-12))
        sol = operating_point(c)
        # No DC path through the cap: the output floats to the input.
        assert sol.voltage("out") == pytest.approx(1.0, rel=1e-4)

    def test_rc_charging_matches_analytic(self):
        r_val, c_val = 1e3, 1e-12
        tau = r_val * c_val
        c = Circuit()
        c.add(VoltageSource("v", "in", "0",
                            waveform=Step(0.0, 1.0, t_step=0.0, t_rise=1e-13)))
        c.add(Resistor("r", "in", "out", r_val))
        c.add(Capacitor("cl", "out", "0", c_val))
        result = transient(c, 8 * tau)
        for frac in (1.0, 2.0, 4.0):
            measured = result.sample("out", frac * tau)
            assert measured == pytest.approx(1 - np.exp(-frac), rel=5e-3)

    def test_rc_discharge(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0",
                            waveform=Step(1.0, 0.0, t_step=1e-9, t_rise=1e-13)))
        c.add(Resistor("r", "in", "out", 1e3))
        c.add(Capacitor("cl", "out", "0", 1e-12))
        result = transient(c, 6e-9)
        assert result.sample("out", 1e-9) == pytest.approx(1.0, abs=1e-3)
        assert result.sample("out", 2e-9) == pytest.approx(np.exp(-1), rel=1e-2)

    def test_snapshot_restore(self):
        cap = Capacitor("c", "a", "0", 1e-12)
        cap._v_prev, cap._i_prev = 0.5, 1e-6
        snap = cap.snapshot_state()
        cap._v_prev, cap._i_prev = 0.0, 0.0
        cap.restore_state(snap)
        assert cap.voltage_history == 0.5
        assert cap._i_prev == 1e-6

    def test_energy_conservation_rc(self):
        """Source energy = resistor dissipation + capacitor stored energy."""
        r_val, c_val, v_step = 2e3, 2e-12, 1.0
        c = Circuit()
        c.add(VoltageSource("v", "in", "0",
                            waveform=Step(0.0, v_step, 0.0, 1e-13)))
        c.add(Resistor("r", "in", "out", r_val))
        c.add(Capacitor("cl", "out", "0", c_val))
        result = transient(c, 40 * r_val * c_val)
        e_source = result.energy(["v"])
        # After full charge: E_src = C V^2 (half stored, half dissipated).
        assert e_source == pytest.approx(c_val * v_step**2, rel=1e-2)


class TestRCLadderProperty:
    @given(
        rs=st.lists(st.floats(min_value=100, max_value=1e5), min_size=2,
                    max_size=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_ladder_final_value_reaches_input(self, rs):
        """Any RC ladder driven by a step settles to the source level."""
        c = Circuit()
        c.add(VoltageSource("v", "n0", "0",
                            waveform=Step(0.0, 1.0, 0.0, 1e-13)))
        tau_total = 0.0
        for i, r in enumerate(rs):
            c.add(Resistor(f"r{i}", f"n{i}", f"n{i+1}", r))
            c.add(Capacitor(f"c{i}", f"n{i+1}", "0", 1e-13))
            tau_total += r * 1e-13 * len(rs)
        result = transient(c, 60 * tau_total)
        final = result.voltage(f"n{len(rs)}")[-1]
        assert final == pytest.approx(1.0, abs=2e-3)
