"""Tests for the smooth (Sine / Exponential) waveforms and the
integrator's ability to resolve them with no breakpoint help."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.analysis import transient
from repro.analysis.transient import TransientOptions
from repro.circuit import (
    Capacitor,
    Circuit,
    Exponential,
    Resistor,
    Sine,
    VoltageSource,
)


class TestSineWaveform:
    def test_values(self):
        w = Sine(offset=0.5, amplitude=0.4, frequency=1e6)
        assert w(0.0) == pytest.approx(0.5)
        assert w(0.25e-6) == pytest.approx(0.9)
        assert w(0.75e-6) == pytest.approx(0.1)
        assert w(1.0e-6) == pytest.approx(0.5, abs=1e-9)

    def test_delay(self):
        w = Sine(0.0, 1.0, 1e6, delay=1e-6)
        assert w(0.5e-6) == 0.0
        assert w(1.25e-6) == pytest.approx(1.0)
        assert w.breakpoints(0, 2e-6) == [1e-6]

    def test_validation(self):
        with pytest.raises(AnalysisError):
            Sine(0, 1, 0.0)

    @given(t=st.floats(min_value=0, max_value=1e-3))
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, t):
        w = Sine(0.2, 0.7, 3e5)
        assert -0.5 - 1e-12 <= w(t) <= 0.9 + 1e-12


class TestExponentialWaveform:
    def test_limits(self):
        w = Exponential(v0=0.0, v1=1.0, tau=1e-9)
        assert w(0.0) == 0.0
        assert w(1e-9) == pytest.approx(1 - np.exp(-1))
        assert w(20e-9) == pytest.approx(1.0, abs=1e-6)

    def test_falling(self):
        w = Exponential(v0=1.0, v1=0.2, tau=2e-9, delay=1e-9)
        assert w(0.5e-9) == 1.0
        assert w(3e-9) == pytest.approx(0.2 + 0.8 * np.exp(-1))

    def test_validation(self):
        with pytest.raises(AnalysisError):
            Exponential(0, 1, tau=0.0)


class TestIntegratorOnSmoothDrive:
    def test_rc_driven_by_sine_matches_analytic(self):
        """Steady-state RC response to a sine: amplitude and phase from
        the analytic transfer function 1/(1 + j w RC).  The sine has no
        breakpoints, so this validates the LTE step control alone."""
        r, cap, freq = 1e3, 1e-12, 50e6
        c = Circuit()
        c.add(VoltageSource("v", "in", "0",
                            waveform=Sine(0.0, 1.0, freq)))
        c.add(Resistor("r", "in", "out", r))
        c.add(Capacitor("c", "out", "0", cap))
        # Simulate long enough to reach steady state (RC = 1 ns << 10 T).
        t_stop = 10 / freq
        res = transient(c, t_stop,
                        options=TransientOptions(lte_reltol=3e-4))

        w = 2 * np.pi * freq
        gain = 1 / np.sqrt(1 + (w * r * cap) ** 2)
        phase = -np.arctan(w * r * cap)
        # Compare over the final period against the analytic waveform.
        mask = res.time > t_stop - 1 / freq
        t = res.time[mask]
        expected = gain * np.sin(w * t + phase)
        measured = res.voltage("out")[mask]
        assert np.max(np.abs(measured - expected)) < 0.02

    def test_exponential_drive_tracks(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0",
                            waveform=Exponential(0.0, 1.0, tau=5e-9)))
        c.add(Resistor("r", "in", "out", 10.0))   # fast RC: follows
        c.add(Capacitor("c", "out", "0", 1e-15))
        res = transient(c, 20e-9)
        assert res.sample("out", 5e-9) == pytest.approx(1 - np.exp(-1),
                                                        rel=2e-2)
