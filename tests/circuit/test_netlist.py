"""Tests for the netlist container and element wiring."""

import pytest

from repro.errors import NetlistError
from repro.circuit import Circuit, Resistor, VoltageSource
from repro.circuit.netlist import GROUND, is_ground


class TestGroundAliases:
    @pytest.mark.parametrize("name", ["0", "gnd", "GND", "vss", "VSS"])
    def test_recognised(self, name):
        assert is_ground(name)

    @pytest.mark.parametrize("name", ["out", "vdd", "g", "00"])
    def test_not_ground(self, name):
        assert not is_ground(name)

    def test_canonical(self):
        assert GROUND == "0"


class TestCircuitConstruction:
    def test_add_and_lookup(self):
        c = Circuit("t")
        r = c.add(Resistor("r1", "a", "0", 100))
        assert c["r1"] is r
        assert "r1" in c
        assert len(c) == 1

    def test_duplicate_name_rejected(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "0", 100))
        with pytest.raises(NetlistError):
            c.add(Resistor("r1", "b", "0", 100))

    def test_missing_lookup(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "0", 100))
        with pytest.raises(NetlistError):
            c["nope"]

    def test_remove(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "0", 100))
        c.remove("r1")
        assert "r1" not in c
        with pytest.raises(NetlistError):
            c.remove("r1")

    def test_empty_circuit_rejected_at_compile(self):
        c = Circuit()
        with pytest.raises(NetlistError):
            c.compile()

    def test_floating_circuit_rejected(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "b", 100))
        with pytest.raises(NetlistError):
            c.compile()


class TestIndexAssignment:
    def test_node_indices_assigned(self):
        c = Circuit()
        c.add(VoltageSource("v1", "in", "0", dc=1.0))
        c.add(Resistor("r1", "in", "out", 100))
        c.add(Resistor("r2", "out", "0", 100))
        c.compile()
        assert c.num_nodes == 2
        assert c.num_branches == 1          # the voltage source
        assert c.size == 3
        assert c.index_of("0") == -1
        assert c.index_of("gnd") == -1
        assert 0 <= c.index_of("in") < 2
        assert c.index_of("in") != c.index_of("out")

    def test_unknown_node(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "0", 100))
        with pytest.raises(NetlistError):
            c.index_of("missing")

    def test_branch_indices_follow_nodes(self):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", dc=1.0))
        c.add(VoltageSource("v2", "b", "0", dc=1.0))
        c.add(Resistor("r", "a", "b", 10))
        c.compile()
        branches = [c["v1"].branch_index[0], c["v2"].branch_index[0]]
        assert sorted(branches) == [c.num_nodes, c.num_nodes + 1]

    def test_compile_idempotent(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "0", 100))
        c.compile()
        first = c["r1"].node_index
        c.compile()
        assert c["r1"].node_index == first

    def test_recompile_after_add(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "0", 100))
        assert c.num_nodes == 1
        c.add(Resistor("r2", "b", "0", 100))
        assert c.num_nodes == 2   # property recompiles


class TestIntrospection:
    def test_nodes_touching(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "b", 1))
        c.add(Resistor("r2", "b", "0", 1))
        touching = c.nodes_touching("b")
        assert {e.name for e in touching} == {"r1", "r2"}

    def test_summary_mentions_everything(self):
        c = Circuit("my title")
        c.add(Resistor("r1", "a", "0", 1))
        text = c.summary()
        assert "my title" in text
        assert "r1 a 0" in text
        assert "1 elements" in text

    def test_element_names(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "0", 1))
        c.add(Resistor("r2", "a", "0", 1))
        assert c.element_names() == ["r1", "r2"]

    def test_empty_element_name_rejected(self):
        with pytest.raises(NetlistError):
            Resistor("", "a", "0", 1)
