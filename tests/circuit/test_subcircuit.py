"""Tests for hierarchical subcircuit flattening."""

import pytest

from repro.errors import NetlistError
from repro.circuit import Circuit, Resistor, SubCircuit, VoltageSource
from repro.circuit.subcircuit import build_subcircuit
from repro.analysis import operating_point


def _divider_template() -> SubCircuit:
    sub = SubCircuit("divider", ports=("top", "tap"))
    sub.add(Resistor("ra", "top", "tap", 1000))
    sub.add(Resistor("rb", "tap", "0", 1000))
    return sub


class TestInstantiate:
    def test_flattening_names(self):
        sub = _divider_template()
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        added = sub.instantiate(c, "x1", {"top": "in", "tap": "out"})
        assert {e.name for e in added} == {"x1.ra", "x1.rb"}
        assert "x1.ra" in c

    def test_port_mapping_electrical(self):
        sub = _divider_template()
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=2.0))
        sub.instantiate(c, "x1", {"top": "in", "tap": "out"})
        sol = operating_point(c)
        assert sol.voltage("out") == pytest.approx(1.0, rel=1e-6)

    def test_internal_nodes_prefixed(self):
        sub = SubCircuit("chain", ports=("a", "b"))
        sub.add(Resistor("r1", "a", "mid", 100))
        sub.add(Resistor("r2", "mid", "b", 100))
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        sub.instantiate(c, "u7", {"a": "in", "b": "0"})
        c.compile()
        assert "u7.mid" in c.node_names()

    def test_ground_passes_through(self):
        sub = SubCircuit("g", ports=("a",))
        sub.add(Resistor("r", "a", "gnd", 100))
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        sub.instantiate(c, "x", {"a": "in"})
        sol = operating_point(c)
        assert sol.branch_current("v") == pytest.approx(-0.01, rel=1e-6)

    def test_two_instances_independent(self):
        sub = _divider_template()
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        sub.instantiate(c, "x1", {"top": "in", "tap": "o1"})
        sub.instantiate(c, "x2", {"top": "o1", "tap": "o2"})
        sol = operating_point(c)
        assert sol.voltage("o1") > sol.voltage("o2") > 0.0

    def test_template_unmodified_by_instantiation(self):
        sub = _divider_template()
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        sub.instantiate(c, "x1", {"top": "in", "tap": "out"})
        # The template elements keep their local node names.
        c2 = Circuit()
        c2.add(VoltageSource("v", "in", "0", dc=1.0))
        added = sub.instantiate(c2, "x1", {"top": "in", "tap": "out"})
        assert added[0].node_names == ("in", "out")


class TestValidation:
    def test_missing_port_rejected(self):
        sub = _divider_template()
        c = Circuit()
        with pytest.raises(NetlistError, match="unconnected"):
            sub.instantiate(c, "x1", {"top": "in"})

    def test_unknown_port_rejected(self):
        sub = _divider_template()
        c = Circuit()
        with pytest.raises(NetlistError, match="unknown ports"):
            sub.instantiate(c, "x1",
                            {"top": "in", "tap": "out", "oops": "x"})

    def test_duplicate_ports_rejected(self):
        with pytest.raises(NetlistError):
            SubCircuit("bad", ports=("a", "a"))

    def test_duplicate_element_rejected(self):
        sub = SubCircuit("s", ports=("a",))
        sub.add(Resistor("r", "a", "0", 1))
        with pytest.raises(NetlistError):
            sub.add(Resistor("r", "a", "0", 1))

    def test_duplicate_instance_name_collides(self):
        sub = _divider_template()
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        sub.instantiate(c, "x1", {"top": "in", "tap": "out"})
        with pytest.raises(NetlistError):
            sub.instantiate(c, "x1", {"top": "in", "tap": "out2"})


class TestBuilder:
    def test_build_subcircuit_helper(self):
        def builder(sub):
            sub.add(Resistor("r", "a", "0", 42))

        sub = build_subcircuit("x", ("a",), builder)
        assert len(sub) == 1
