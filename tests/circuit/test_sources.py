"""Tests for independent voltage/current sources."""

import pytest

from repro.circuit import (
    Circuit,
    Constant,
    CurrentSource,
    Pulse,
    Resistor,
    Step,
    VoltageSource,
)
from repro.analysis import operating_point, transient


class TestVoltageSource:
    def test_dc_level(self):
        v = VoltageSource("v", "a", "0", dc=0.9)
        assert v.level(0.0) == 0.9
        assert v.level(1e-6) == 0.9

    def test_waveform_overrides_dc(self):
        v = VoltageSource("v", "a", "0", dc=0.1,
                          waveform=Step(0.0, 1.0, 1e-9, 1e-12))
        assert v.level(0.0) == 0.0
        assert v.level(2e-9) == 1.0

    def test_set_level_clears_waveform(self):
        v = VoltageSource("v", "a", "0", waveform=Constant(5.0))
        v.set_level(0.3)
        assert v.waveform is None
        assert v.level(123.0) == 0.3

    def test_branch_current_sign_spice_convention(self):
        """A delivering supply reports a negative branch current."""
        c = Circuit()
        v = c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 100))
        sol = operating_point(c)
        assert v.branch_current(sol) == pytest.approx(-0.01, rel=1e-6)
        assert v.delivered_power(sol) == pytest.approx(0.01, rel=1e-6)

    def test_absorbing_source_has_negative_delivered_power(self):
        c = Circuit()
        hi = c.add(VoltageSource("hi", "a", "0", dc=2.0))
        lo = c.add(VoltageSource("lo", "b", "0", dc=1.0))
        c.add(Resistor("r", "a", "b", 100))
        sol = operating_point(c)
        assert hi.delivered_power(sol) > 0
        assert lo.delivered_power(sol) < 0

    def test_breakpoints_forwarded(self):
        v = VoltageSource("v", "a", "0",
                          waveform=Step(0, 1, 1e-9, 1e-10))
        assert v.breakpoints(0, 1e-8) == pytest.approx([1e-9, 1.1e-9])
        assert VoltageSource("w", "a", "0", dc=1.0).breakpoints(0, 1) == []

    def test_two_sources_define_difference(self):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", dc=0.9))
        c.add(VoltageSource("v2", "b", "0", dc=0.4))
        c.add(Resistor("r", "a", "b", 1000))
        sol = operating_point(c)
        assert sol.voltage("a") == pytest.approx(0.9)
        assert sol.voltage("b") == pytest.approx(0.4)
        assert c["r"].current(sol) == pytest.approx(0.5e-3, rel=1e-6)


class TestCurrentSource:
    def test_drives_resistor(self):
        c = Circuit()
        c.add(CurrentSource("i", "0", "out", dc=1e-3))  # inject into out
        c.add(Resistor("r", "out", "0", 1000))
        sol = operating_point(c)
        assert sol.voltage("out") == pytest.approx(1.0, rel=1e-6)

    def test_direction(self):
        c = Circuit()
        c.add(CurrentSource("i", "out", "0", dc=1e-3))  # extract from out
        c.add(Resistor("r", "out", "0", 1000))
        sol = operating_point(c)
        assert sol.voltage("out") == pytest.approx(-1.0, rel=1e-6)

    def test_waveform_driven(self):
        c = Circuit()
        c.add(CurrentSource("i", "0", "out",
                            waveform=Pulse(0.0, 1e-3, delay=1e-9,
                                           width=2e-9)))
        c.add(Resistor("r", "out", "0", 1000))
        result = transient(c, 5e-9)
        assert result.sample("out", 0.5e-9) == pytest.approx(0.0, abs=1e-6)
        assert result.sample("out", 2e-9) == pytest.approx(1.0, rel=1e-3)
        assert result.sample("out", 4.5e-9) == pytest.approx(0.0, abs=1e-3)

    def test_set_level(self):
        i = CurrentSource("i", "a", "0", waveform=Constant(1.0))
        i.set_level(2e-3)
        assert i.waveform is None
        assert i.level(0.0) == 2e-3
