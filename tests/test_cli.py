"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figX"])

    @pytest.mark.parametrize("command", [
        "table1", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7a", "fig7b",
        "fig7c", "fig8", "fig9", "characterize", "bet", "snm",
        "retention", "variability", "ff", "wer", "all",
    ])
    def test_all_commands_parse(self, command):
        args = build_parser().parse_args([command])
        assert args.command == command


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "6.37 kohm" in out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "NVPG" in out and "NOF" in out

    def test_snm_hold_and_read(self, capsys):
        assert main(["snm"]) == 0
        hold = capsys.readouterr().out
        assert "hold SNM" in hold
        assert main(["snm", "--read"]) == 0
        read = capsys.readouterr().out
        assert "read SNM" in read

    def test_snm_underdrive_flag(self, capsys):
        main(["snm", "--read"])
        base = float(capsys.readouterr().out.split()[2])
        main(["snm", "--read", "--wl-underdrive", "0.1"])
        assisted = float(capsys.readouterr().out.split()[2])
        assert assisted > base

    def test_bet(self, capsys):
        assert main(["bet", "--n-rw", "10", "--wordlines", "64"]) == 0
        out = capsys.readouterr().out
        assert "break-even time" in out

    def test_bet_store_free(self, capsys):
        main(["bet", "--n-rw", "10", "--wordlines", "64"])
        full = capsys.readouterr().out
        main(["bet", "--n-rw", "10", "--wordlines", "64", "--store-free"])
        free = capsys.readouterr().out
        assert "store-free:       True" in free
        assert full != free

    def test_characterize_emits_json(self, capsys):
        assert main(["characterize", "--kind", "6t",
                     "--wordlines", "64"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "6t"
        assert payload["p_normal"] > 0

    def test_fig4_with_domain_flags(self, capsys):
        assert main(["fig4", "--wordlines", "64"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_retention(self, capsys):
        assert main(["retention"]) == 0
        out = capsys.readouterr().out
        assert "retention voltage" in out


class TestExtensionCommands:
    def test_wer(self, capsys):
        assert main(["wer", "--duration", "10n", "--target", "1e-6"]) == 0
        out = capsys.readouterr().out
        assert "x Ic" in out
        assert "WER" in out

    def test_variability(self, capsys):
        assert main(["variability", "--samples", "5",
                     "--wordlines", "64"]) == 0
        out = capsys.readouterr().out
        assert "switching yield" in out
        assert "read-SNM" in out

    def test_ff(self, capsys):
        assert main(["ff", "--bits", "256"]) == 0
        out = capsys.readouterr().out
        assert "256-bit register bank" in out
        assert "break-even time" in out


    def test_all_scorecard(self, capsys):
        assert main(["all", "--scorecard-only"]) == 0
        out = capsys.readouterr().out
        assert "Headline-claim scorecard" in out
        assert "FAIL" not in out


class TestDiagnoseCommand:
    def test_no_path_is_usage_error(self, capsys):
        assert main(["diagnose"]) == 2
        assert "need a JSON failure dump" in capsys.readouterr().err

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["diagnose", "/nonexistent/failure.json"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_demo_renders_forensics(self, capsys):
        assert main(["diagnose", "--demo"]) == 0
        out = capsys.readouterr().out
        assert "KCL residual" in out
        assert "worst offenders" in out
        assert "recovery ladder" in out

    def test_renders_dumped_failure(self, tmp_path, capsys):
        import numpy as np

        from repro.analysis.mna import Context
        from repro.analysis.solver import NewtonOptions, newton_solve
        from repro.circuit import Circuit, VoltageSource
        from repro.devices import FinFET, NFET_20NM_HP, PFET_20NM_HP
        from repro.errors import ConvergenceError
        from repro.recovery import dump_failure

        c = Circuit("latch")
        c.add(VoltageSource("vdd", "vdd", "0", dc=0.9))
        c.add(FinFET("pu1", "q", "qb", "vdd", PFET_20NM_HP))
        c.add(FinFET("pd1", "q", "qb", "0", NFET_20NM_HP))
        c.add(FinFET("pu2", "qb", "q", "vdd", PFET_20NM_HP))
        c.add(FinFET("pd2", "qb", "q", "0", NFET_20NM_HP))
        c.compile()
        with pytest.raises(ConvergenceError) as info:
            newton_solve(c, Context(), np.zeros(c.size),
                         NewtonOptions(max_iterations=3))
        path = dump_failure(info.value, tmp_path / "failure.json")
        assert main(["diagnose", str(path)]) == 0
        assert "KCL residual" in capsys.readouterr().out


class TestChaosCommand:
    def test_small_run_exits_zero(self, capsys):
        assert main(["chaos", "--faults", "3", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "chaos" in out.lower()

    def test_json_report_round_trips_through_diagnose(self, tmp_path,
                                                      capsys):
        report = tmp_path / "chaos.json"
        assert main(["chaos", "--target", "6t", "--faults", "2",
                     "--json", str(report)]) == 0
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["kind"] == "chaos_report"
        assert len(payload["records"]) == 2
        assert main(["diagnose", str(report)]) == 0
        assert "chaos" in capsys.readouterr().out.lower()


class TestLintCommand:
    BAD_DECK = "bad deck\nv1 a 0 1\nv2 a 0 1\nr1 a 0 1k\n.end\n"
    WARN_DECK = "warn deck\nv1 a 0 1\nr1 a 0 1k\nrd a dangle 1k\n.end\n"

    def test_no_targets_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "no targets" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RV001", "RV101", "RV201", "RV307"):
            assert code in out

    def test_clean_alias_exits_zero(self, capsys):
        assert main(["lint", "nv"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_bad_deck_exits_one(self, tmp_path, capsys):
        deck = tmp_path / "bad.sp"
        deck.write_text(self.BAD_DECK)
        assert main(["lint", str(deck)]) == 1
        assert "RV005" in capsys.readouterr().out

    def test_disable_turns_error_off(self, tmp_path):
        # The island trips exactly one rule, so disabling it cleans
        # the deck.  (BAD_DECK would not work here: parallel sources
        # are structurally singular too, so RV201 backs RV005 up.)
        deck = tmp_path / "island.sp"
        deck.write_text("island\nv1 vdd 0 1\nr1 vdd 0 1k\n"
                        "ra isl_a isl_b 1k\nrb isl_b isl_a 2k\n.end\n")
        assert main(["lint", str(deck)]) == 1
        assert main(["lint", str(deck), "--disable", "RV101"]) == 0

    def test_env_disable_honored(self, tmp_path, monkeypatch):
        deck = tmp_path / "island.sp"
        deck.write_text("island\nv1 vdd 0 1\nr1 vdd 0 1k\n"
                        "ra isl_a isl_b 1k\nrb isl_b isl_a 2k\n.end\n")
        monkeypatch.setenv("REPRO_LINT_DISABLE", "RV101")
        assert main(["lint", str(deck)]) == 0

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["lint", "/nonexistent/nope.sp"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_strict_fails_on_warnings(self, tmp_path):
        deck = tmp_path / "warn.sp"
        deck.write_text(self.WARN_DECK)
        assert main(["lint", str(deck)]) == 0
        assert main(["lint", str(deck), "--strict"]) == 1

    def test_sarif_output_is_valid_json(self, tmp_path, capsys):
        deck = tmp_path / "bad.sp"
        deck.write_text(self.BAD_DECK)
        assert main(["lint", str(deck), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert any(r["ruleId"] == "RV005" for r in results)

    def test_json_output(self, tmp_path, capsys):
        deck = tmp_path / "warn.sp"
        deck.write_text(self.WARN_DECK)
        assert main(["lint", str(deck), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["warning"] >= 1


class TestLintSourceCommand:
    RV404_MODULE = ("def window():\n"
                    "    return float(\"10n\")\n")
    RV401_MODULE = ("def f(v):\n"
                    "    return v == 0.9\n")

    def test_shipped_package_is_clean(self, capsys):
        # Default paths: the installed repro package itself.
        assert main(["lint-source"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_error_rule_fails_run(self, tmp_path, capsys):
        mod = tmp_path / "bad.py"
        mod.write_text(self.RV404_MODULE)
        assert main(["lint-source", str(mod)]) == 1
        assert "RV404" in capsys.readouterr().out

    def test_warning_needs_strict_to_fail(self, tmp_path):
        mod = tmp_path / "warn.py"
        mod.write_text(self.RV401_MODULE)
        assert main(["lint-source", str(mod)]) == 0
        assert main(["lint-source", str(mod), "--strict"]) == 1

    def test_disable_flag(self, tmp_path):
        mod = tmp_path / "bad.py"
        mod.write_text(self.RV404_MODULE)
        assert main(["lint-source", str(mod), "--disable", "RV404"]) == 0

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint-source", "/nonexistent/nope.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules_includes_rv4xx(self, capsys):
        assert main(["lint-source", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RV400", "RV403", "RV406"):
            assert code in out

    def test_sarif_output_is_valid_json(self, tmp_path, capsys):
        mod = tmp_path / "bad.py"
        mod.write_text(self.RV404_MODULE)
        assert main(["lint-source", str(mod), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert any(r["ruleId"] == "RV404" for r in results)
        uri = results[0]["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"]
        assert uri.endswith("bad.py")

    def test_pyproject_policy_honored(self, tmp_path, monkeypatch):
        mod = tmp_path / "bad.py"
        mod.write_text(self.RV404_MODULE)
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.verify]\ndisable = [\"RV404\"]\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint-source", str(mod)]) == 0

    def test_directory_walk(self, tmp_path, capsys):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text(self.RV404_MODULE)
        (tmp_path / "pkg" / "b.py").write_text(self.RV401_MODULE)
        assert main(["lint-source", str(tmp_path / "pkg")]) == 1
        out = capsys.readouterr().out
        assert "RV404" in out and "RV401" in out
