"""Tests for device temperature scaling."""

import pytest

from repro.errors import DeviceError
from repro.devices.mtj import MTJ_TABLE1
from repro.devices.ptm20 import (
    NFET_20NM_HP,
    PFET_20NM_HP,
    ioff_per_fin,
    ion_per_fin,
)


class TestFinFETTemperature:
    def test_nominal_card_is_300k(self):
        assert NFET_20NM_HP.temperature == pytest.approx(300.0)

    def test_identity_at_300k(self):
        card = NFET_20NM_HP.at_temperature(300.0)
        assert card.vth0 == pytest.approx(NFET_20NM_HP.vth0)
        assert card.i_spec == pytest.approx(NFET_20NM_HP.i_spec)

    def test_swing_scales_linearly(self):
        hot = NFET_20NM_HP.at_temperature(400.0)
        assert hot.subthreshold_swing == pytest.approx(
            NFET_20NM_HP.subthreshold_swing * 400.0 / 300.0
        )

    def test_leakage_grows_strongly_with_temperature(self):
        cold = ioff_per_fin(NFET_20NM_HP.at_temperature(250.0))
        nominal = ioff_per_fin(NFET_20NM_HP)
        hot = ioff_per_fin(NFET_20NM_HP.at_temperature(400.0))
        assert cold < nominal / 5
        assert hot > nominal * 10

    def test_on_current_drops_with_temperature(self):
        """Mobility degradation wins over the Vth drop at strong drive."""
        hot = ion_per_fin(NFET_20NM_HP.at_temperature(400.0))
        assert hot < ion_per_fin(NFET_20NM_HP)

    def test_pfet_scales_too(self):
        hot = PFET_20NM_HP.at_temperature(350.0)
        assert ioff_per_fin(hot) > ioff_per_fin(PFET_20NM_HP)

    def test_double_scaling_rejected(self):
        hot = NFET_20NM_HP.at_temperature(350.0)
        with pytest.raises(DeviceError):
            hot.at_temperature(400.0)

    def test_bad_temperature_rejected(self):
        with pytest.raises(DeviceError):
            NFET_20NM_HP.at_temperature(0.0)

    def test_label_annotated(self):
        assert "350" in NFET_20NM_HP.at_temperature(350.0).label


class TestMtjTemperature:
    def test_delta_inverse_in_t(self):
        hot = MTJ_TABLE1.at_temperature(400.0)
        assert hot.delta == pytest.approx(MTJ_TABLE1.delta * 0.75)

    def test_retention_collapses_when_hot(self):
        hot = MTJ_TABLE1.at_temperature(400.0)
        assert hot.retention_time() < MTJ_TABLE1.retention_time() / 1e5
        # ... but still years at Delta = 45.
        assert hot.retention_time() > 10 * 3.15e7

    def test_critical_current_unchanged(self):
        """Jc is treated as athermal to first order."""
        hot = MTJ_TABLE1.at_temperature(400.0)
        assert hot.critical_current == MTJ_TABLE1.critical_current

    def test_bad_temperature_rejected(self):
        with pytest.raises(DeviceError):
            MTJ_TABLE1.at_temperature(-10.0)
