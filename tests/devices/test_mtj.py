"""Tests for the STT-MTJ macromodel."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DeviceError
from repro.analysis.mna import Context
from repro.devices.mtj import (
    MTJ,
    MTJParams,
    MTJState,
    MTJ_FIG9B,
    MTJ_TABLE1,
)


class TestTable1Values:
    """The derived quantities the paper's Table I quotes explicitly."""

    def test_r_parallel(self):
        assert MTJ_TABLE1.r_parallel == pytest.approx(6366, rel=1e-3)

    def test_r_antiparallel(self):
        assert MTJ_TABLE1.r_antiparallel_zero_bias == pytest.approx(
            12732, rel=1e-3
        )

    def test_critical_current(self):
        assert MTJ_TABLE1.critical_current == pytest.approx(15.7e-6,
                                                            rel=1e-2)

    def test_fig9b_card(self):
        assert MTJ_FIG9B.jc == pytest.approx(1e10)
        assert MTJ_FIG9B.critical_current == pytest.approx(
            MTJ_TABLE1.critical_current / 5.0, rel=1e-6
        )

    def test_area(self):
        assert MTJ_TABLE1.area == pytest.approx(math.pi * 1e-16, rel=1e-9)


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("tmr0", 0.0),
        ("ra_product", -1.0),
        ("v_half", 0.0),
        ("jc", 0.0),
        ("diameter", 0.0),
        ("tau0", 0.0),
        ("t_sw_min", 0.0),
        ("relax_time", 0.0),
    ])
    def test_bad_params_rejected(self, field, value):
        with pytest.raises(DeviceError):
            MTJ_TABLE1.with_(**{field: value})


class TestResistance:
    def test_parallel_bias_independent(self):
        m = MTJ("m", "f", "p")
        assert m.resistance(0.0, MTJState.PARALLEL) == pytest.approx(
            m.resistance(0.5, MTJState.PARALLEL)
        )

    def test_tmr_rolloff_half_at_vhalf(self):
        m = MTJ("m", "f", "p")
        r_p = m.params.r_parallel
        r_ap0 = m.resistance(0.0, MTJState.ANTIPARALLEL)
        r_ap_h = m.resistance(m.params.v_half, MTJState.ANTIPARALLEL)
        tmr0 = r_ap0 / r_p - 1.0
        tmr_h = r_ap_h / r_p - 1.0
        assert tmr_h == pytest.approx(tmr0 / 2.0, rel=1e-9)

    @given(v=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_ap_resistance_bounded(self, v):
        m = MTJ("m", "f", "p")
        r = m.resistance(v, MTJState.ANTIPARALLEL)
        assert m.params.r_parallel < r <= m.params.r_antiparallel_zero_bias

    def test_ap_resistance_even_in_bias(self):
        m = MTJ("m", "f", "p")
        assert m.resistance(0.3, MTJState.ANTIPARALLEL) == pytest.approx(
            m.resistance(-0.3, MTJState.ANTIPARALLEL)
        )

    def test_derivative_matches_fd(self):
        m = MTJ("m", "f", "p", state=MTJState.ANTIPARALLEL)
        for v in (-0.6, -0.1, 0.0, 0.2, 0.7):
            i0, g = m._current_and_derivative(v)
            h = 1e-7
            fd = (m._current_and_derivative(v + h)[0]
                  - m._current_and_derivative(v - h)[0]) / (2 * h)
            assert g == pytest.approx(fd, rel=1e-5)

    def test_current_at_explicit_state(self):
        m = MTJ("m", "f", "p", state=MTJState.PARALLEL)
        i_p = m.current_at(0.1, MTJState.PARALLEL)
        i_ap = m.current_at(0.1, MTJState.ANTIPARALLEL)
        assert i_p > i_ap > 0


class TestSwitchingTimeLaw:
    def test_subcritical_never_switches(self):
        assert MTJ_TABLE1.switching_time(
            0.99 * MTJ_TABLE1.critical_current) == math.inf

    def test_time_decreases_with_overdrive(self):
        ic = MTJ_TABLE1.critical_current
        t_12 = MTJ_TABLE1.switching_time(1.2 * ic)
        t_15 = MTJ_TABLE1.switching_time(1.5 * ic)
        t_30 = MTJ_TABLE1.switching_time(3.0 * ic)
        assert t_12 > t_15 > t_30

    def test_paper_design_point_fits_window(self):
        """1.5 x Ic must complete within the 10 ns store step."""
        ic = MTJ_TABLE1.critical_current
        assert MTJ_TABLE1.switching_time(1.5 * ic) < 10e-9

    def test_precessional_floor(self):
        ic = MTJ_TABLE1.critical_current
        assert MTJ_TABLE1.switching_time(100 * ic) == MTJ_TABLE1.t_sw_min


def _committed(mtj: MTJ, v_free: float, dt: float):
    """Drive the free-pinned voltage and commit one accepted step."""
    mtj.assign_nodes((0, 1))
    ctx = Context(mode="tran", dt=dt, x=np.array([v_free, 0.0]))
    return mtj.commit(ctx)


class TestCimsDynamics:
    def test_positive_current_switches_ap_to_p(self):
        m = MTJ("m", "f", "p", state=MTJState.ANTIPARALLEL)
        # 0.3 V across AP junction: I ~ 0.3/10.6k ~ 28 uA > Ic.
        events = [_committed(m, 0.3, 2e-9) for _ in range(10)]
        assert m.state is MTJState.PARALLEL
        assert any(e == "AP->P" for e in events if e)
        assert m.switch_count == 1

    def test_negative_current_switches_p_to_ap(self):
        m = MTJ("m", "f", "p", state=MTJState.PARALLEL)
        events = [_committed(m, -0.15, 2e-9) for _ in range(10)]
        assert m.state is MTJState.ANTIPARALLEL
        assert any(e == "P->AP" for e in events if e)

    def test_stabilising_direction_never_switches(self):
        m = MTJ("m", "f", "p", state=MTJState.PARALLEL)
        for _ in range(50):
            assert _committed(m, 0.5, 2e-9) is None
        assert m.state is MTJState.PARALLEL

    def test_subcritical_current_never_switches(self):
        m = MTJ("m", "f", "p", state=MTJState.PARALLEL)
        # 0.05 V / 6.37 k ~ 7.9 uA < Ic.
        for _ in range(100):
            assert _committed(m, -0.05, 10e-9) is None
        assert m.state is MTJState.PARALLEL

    def test_progress_relaxes_below_threshold(self):
        m = MTJ("m", "f", "p", state=MTJState.PARALLEL)
        _committed(m, -0.15, 1e-9)
        accumulated = m.progress
        assert accumulated > 0
        _committed(m, 0.0, 50e-9)   # long quiet interval
        assert m.progress < accumulated * 0.01

    def test_progress_resets_after_switch(self):
        m = MTJ("m", "f", "p", state=MTJState.ANTIPARALLEL)
        for _ in range(20):
            _committed(m, 0.3, 2e-9)
            if m.state is MTJState.PARALLEL:
                break
        assert m.progress == 0.0

    def test_snapshot_restore(self):
        m = MTJ("m", "f", "p", state=MTJState.PARALLEL)
        _committed(m, -0.15, 1e-9)
        snap = m.snapshot_state()
        _committed(m, -0.15, 100e-9)
        m.restore_state(snap)
        assert m.state is MTJState.PARALLEL
        assert 0 < m.progress < 1

    def test_set_state_clears_progress(self):
        m = MTJ("m", "f", "p", state=MTJState.PARALLEL)
        _committed(m, -0.15, 1e-9)
        m.set_state(MTJState.ANTIPARALLEL)
        assert m.progress == 0.0
        assert m.state is MTJState.ANTIPARALLEL


class TestStateEnum:
    def test_opposites(self):
        assert MTJState.PARALLEL.opposite is MTJState.ANTIPARALLEL
        assert MTJState.ANTIPARALLEL.opposite is MTJState.PARALLEL
