"""Tests for the EKV-style FinFET compact model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DeviceError
from repro.devices.finfet import FinFET, FinFETParams
from repro.devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP

bias = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)


def _nfet(nfin=1):
    return FinFET("m", "d", "g", "s", NFET_20NM_HP, nfin)


def _pfet(nfin=1):
    return FinFET("m", "d", "g", "s", PFET_20NM_HP, nfin)


class TestParams:
    def test_validation(self):
        with pytest.raises(DeviceError):
            FinFETParams(polarity=0, vth0=0.2, slope_factor=1.2,
                         i_spec=1e-6, dibl=0.1)
        with pytest.raises(DeviceError):
            FinFETParams(polarity=1, vth0=-0.1, slope_factor=1.2,
                         i_spec=1e-6, dibl=0.1)
        with pytest.raises(DeviceError):
            FinFETParams(polarity=1, vth0=0.2, slope_factor=0.9,
                         i_spec=1e-6, dibl=0.1)
        with pytest.raises(DeviceError):
            FinFETParams(polarity=1, vth0=0.2, slope_factor=1.2,
                         i_spec=-1e-6, dibl=0.1)
        with pytest.raises(DeviceError):
            FinFETParams(polarity=1, vth0=0.2, slope_factor=1.2,
                         i_spec=1e-6, dibl=-0.1)

    def test_with_(self):
        card = NFET_20NM_HP.with_(vth0=0.3)
        assert card.vth0 == 0.3
        assert card.i_spec == NFET_20NM_HP.i_spec

    def test_subthreshold_swing(self):
        # SS = n * vt * ln(10): ~72 mV/dec for the n card.
        assert NFET_20NM_HP.subthreshold_swing == pytest.approx(0.072,
                                                                rel=2e-2)

    def test_nfin_validation(self):
        with pytest.raises(DeviceError):
            _build = FinFET("m", "d", "g", "s", NFET_20NM_HP, 0)
        with pytest.raises(DeviceError):
            _build = FinFET("m", "d", "g", "s", NFET_20NM_HP, 1.5)


class TestPhysics:
    def test_zero_vds_zero_current(self):
        d = _nfet()
        assert d.ids(0.5, 0.9, 0.5) == pytest.approx(0.0, abs=1e-15)

    def test_source_drain_symmetry(self):
        d = _nfet()
        for vg in (0.0, 0.45, 0.9):
            assert d.ids(0.7, vg, 0.2) == pytest.approx(
                -d.ids(0.2, vg, 0.7), rel=1e-12
            )

    @given(vg=bias, vd=bias, vs=bias)
    @settings(max_examples=100, deadline=None)
    def test_symmetry_property(self, vg, vd, vs):
        d = _nfet()
        assert d.ids(vd, vg, vs) == pytest.approx(-d.ids(vs, vg, vd),
                                                  rel=1e-9, abs=1e-18)

    def test_monotone_in_gate(self):
        d = _nfet()
        vgs = np.linspace(0.0, 0.9, 50)
        ids = [d.ids(0.9, vg, 0.0) for vg in vgs]
        assert all(i2 > i1 for i1, i2 in zip(ids, ids[1:]))

    def test_monotone_in_drain(self):
        d = _nfet()
        vds = np.linspace(0.0, 0.9, 50)
        ids = [d.ids(vd, 0.9, 0.0) for vd in vds]
        assert all(i2 >= i1 for i1, i2 in zip(ids, ids[1:]))

    def test_nfin_scaling_exact(self):
        one = _nfet(1)
        four = _nfet(4)
        for bias_pt in [(0.9, 0.9, 0.0), (0.3, 0.5, 0.1)]:
            assert four.ids(*bias_pt) == pytest.approx(
                4 * one.ids(*bias_pt), rel=1e-12
            )

    def test_subthreshold_slope_measured(self):
        """Deep in subthreshold the I-V is exponential with the card's
        swing; near threshold the EKV interpolation softens it."""
        d = _nfet()
        i1 = d.ids(0.9, -0.20, 0.0)
        i2 = d.ids(0.9, -0.10, 0.0)
        ss_deep = 0.10 / np.log10(i2 / i1)
        assert ss_deep == pytest.approx(NFET_20NM_HP.subthreshold_swing,
                                        rel=0.05)
        # Near threshold the measured swing is larger but still bounded.
        i3 = d.ids(0.9, 0.05, 0.0)
        i4 = d.ids(0.9, 0.12, 0.0)
        ss_near = 0.07 / np.log10(i4 / i3)
        assert NFET_20NM_HP.subthreshold_swing < ss_near < 0.11

    def test_dibl_raises_leakage(self):
        d = _nfet()
        assert d.ids(0.9, 0.0, 0.0) > 3 * d.ids(0.1, 0.0, 0.0)

    def test_source_follower_cutoff_at_high_source(self):
        """With both channel terminals near VDD and the gate at VDD the
        effective Vgs is ~0: the device must be off.  (This is the
        ground-referenced-EKV artifact the smooth-min source reference
        avoids.)"""
        d = _nfet()
        leak = abs(d.ids(0.85, 0.9, 0.9))
        on = abs(d.ids(0.9, 0.9, 0.0))
        assert leak < on * 1e-2


class TestPolarity:
    def test_pfet_conducts_with_low_gate(self):
        p = _pfet()
        on = abs(p.ids(0.0, 0.0, 0.9))     # |Vgs| = |Vds| = 0.9
        off = abs(p.ids(0.0, 0.9, 0.9))    # gate at source
        assert on > 1e-5
        assert off < on * 1e-3

    def test_pfet_current_sign(self):
        p = _pfet()
        # Current flows source -> drain inside a conducting PFET, i.e.
        # i_ds (drain -> source) is negative.
        assert p.ids(0.0, 0.0, 0.9) < 0.0

    @given(vg=bias, vd=bias, vs=bias)
    @settings(max_examples=60, deadline=None)
    def test_pfet_mirror_of_nfet(self, vg, vd, vs):
        """A PFET with mirrored card equals the negated mirrored NFET."""
        n_card = NFET_20NM_HP
        p_card = n_card.with_(polarity=-1)
        n = FinFET("n", "d", "g", "s", n_card)
        p = FinFET("p", "d", "g", "s", p_card)
        assert p.ids(vd, vg, vs) == pytest.approx(
            -n.ids(-vd, -vg, -vs), rel=1e-9, abs=1e-18
        )


class TestJacobian:
    @given(vg=bias, vd=bias, vs=bias)
    @settings(max_examples=60, deadline=None)
    def test_analytic_matches_finite_difference(self, vg, vd, vs):
        d = _nfet()
        i0, gd, gg, gs = d._evaluate(vd, vg, vs)
        h = 1e-7
        fd_d = (d.ids(vd + h, vg, vs) - d.ids(vd - h, vg, vs)) / (2 * h)
        fd_g = (d.ids(vd, vg + h, vs) - d.ids(vd, vg - h, vs)) / (2 * h)
        fd_s = (d.ids(vd, vg, vs + h) - d.ids(vd, vg, vs - h)) / (2 * h)
        scale = max(abs(fd_d), abs(fd_g), abs(fd_s), 1e-12)
        assert gd == pytest.approx(fd_d, rel=5e-3, abs=scale * 1e-4)
        assert gg == pytest.approx(fd_g, rel=5e-3, abs=scale * 1e-4)
        assert gs == pytest.approx(fd_s, rel=5e-3, abs=scale * 1e-4)

    def test_gate_conductance_positive(self):
        d = _nfet()
        for vg in np.linspace(0, 0.9, 10):
            _, _, gg, _ = d._evaluate(0.9, vg, 0.0)
            assert gg > 0


class TestRepr:
    def test_repr_mentions_polarity_and_fins(self):
        assert "n-ch" in repr(_nfet())
        assert "nfin=3" in repr(_pfet(3).__class__("x", "d", "g", "s",
                                                   PFET_20NM_HP, 3))
