"""Tests for the stochastic CIMS extension (write error rate, retention)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DeviceError
from repro.devices.mtj import MTJParams, MTJ_TABLE1

IC = MTJ_TABLE1.critical_current


class TestThermalTau:
    def test_zero_bias_is_retention(self):
        assert MTJ_TABLE1.thermal_tau(0.0) == MTJ_TABLE1.retention_time()

    def test_retention_exceeds_ten_years(self):
        """Delta = 60 gives the standard >> 10-year retention spec."""
        assert MTJ_TABLE1.retention_time() > 10 * 3.15e7

    def test_monotone_decreasing_in_current(self):
        taus = [MTJ_TABLE1.thermal_tau(m * IC)
                for m in (0.0, 0.3, 0.6, 0.9, 1.0)]
        assert all(t2 < t1 for t1, t2 in zip(taus, taus[1:]))

    def test_clamped_at_critical(self):
        assert MTJ_TABLE1.thermal_tau(2 * IC) == \
            MTJ_TABLE1.thermal_tau(1.0 * IC)

    def test_validation(self):
        with pytest.raises(DeviceError):
            MTJ_TABLE1.with_(delta=0.0)
        with pytest.raises(DeviceError):
            MTJ_TABLE1.with_(attempt_time=-1.0)
        with pytest.raises(DeviceError):
            MTJ_TABLE1.with_(t_sw_sigma=0.0)


class TestWriteErrorRate:
    def test_paper_design_point_is_reliable(self):
        """1.5 x Ic for 10 ns: WER well below 1e-6 — consistent with the
        paper treating it as 'complete magnetization switching'."""
        assert MTJ_TABLE1.write_error_rate(1.5 * IC, 10e-9) < 1e-6

    def test_subcritical_store_never_completes(self):
        """Well below Ic the thermal path is astronomically slow; near Ic
        a small thermally-assisted switching probability appears (the
        reason stores need a current *margin*, not just I = Ic)."""
        assert MTJ_TABLE1.write_error_rate(0.5 * IC, 10e-9) > 1 - 1e-9
        assert MTJ_TABLE1.write_error_rate(0.8 * IC, 10e-9) > 0.999

    def test_monotone_in_current(self):
        currents = np.linspace(0.5, 3.0, 40) * IC
        wers = [MTJ_TABLE1.write_error_rate(i, 10e-9) for i in currents]
        assert all(w2 <= w1 + 1e-15 for w1, w2 in zip(wers, wers[1:]))

    def test_monotone_in_duration(self):
        times = np.linspace(1e-9, 30e-9, 30)
        wers = [MTJ_TABLE1.write_error_rate(1.5 * IC, t) for t in times]
        assert all(w2 <= w1 + 1e-15 for w1, w2 in zip(wers, wers[1:]))

    def test_zero_duration(self):
        assert MTJ_TABLE1.write_error_rate(2 * IC, 0.0) == 1.0

    @given(mult=st.floats(min_value=0.1, max_value=5.0),
           t=st.floats(min_value=1e-12, max_value=1e-6))
    @settings(max_examples=60, deadline=None)
    def test_is_probability(self, mult, t):
        wer = MTJ_TABLE1.write_error_rate(mult * IC, t)
        assert 0.0 <= wer <= 1.0


class TestRequiredCurrent:
    def test_shorter_store_needs_more_current(self):
        """The paper's prose claim, quantified."""
        currents = [MTJ_TABLE1.required_current_for_wer(t, 1e-9)
                    for t in (20e-9, 10e-9, 5e-9, 2e-9)]
        assert all(i2 > i1 for i1, i2 in zip(currents, currents[1:]))

    def test_tighter_wer_needs_more_current(self):
        loose = MTJ_TABLE1.required_current_for_wer(10e-9, 1e-3)
        tight = MTJ_TABLE1.required_current_for_wer(10e-9, 1e-12)
        assert tight > loose

    def test_requirement_is_super_critical(self):
        assert MTJ_TABLE1.required_current_for_wer(10e-9, 1e-6) > IC

    def test_design_point_near_paper_margin(self):
        """A 10 ns store at ~1e-6 WER lands close to the paper's 1.5 x Ic
        current margin."""
        required = MTJ_TABLE1.required_current_for_wer(10e-9, 1e-6)
        assert required == pytest.approx(1.5 * IC, rel=0.15)

    def test_self_consistent_with_wer(self):
        """The required current always meets the target; it matches it
        tightly when the precessional tail (not the thermal floor)
        limits the error rate."""
        for t, wer in ((10e-9, 1e-6), (5e-9, 1e-9), (20e-9, 1e-3)):
            i_req = MTJ_TABLE1.required_current_for_wer(t, wer)
            achieved = MTJ_TABLE1.write_error_rate(i_req, t)
            assert achieved <= wer * 1.05
        # Tight target, thermal floor negligible: near equality.
        i_req = MTJ_TABLE1.required_current_for_wer(5e-9, 1e-9)
        assert MTJ_TABLE1.write_error_rate(i_req, 5e-9) == pytest.approx(
            1e-9, rel=0.1
        )

    def test_validation(self):
        with pytest.raises(DeviceError):
            MTJ_TABLE1.required_current_for_wer(10e-9, 1.5)
        with pytest.raises(DeviceError):
            MTJ_TABLE1.required_current_for_wer(0.0, 1e-6)
