"""Dynamic stamp-contract sanitizer over every shipped device.

Finite-differences each element's ``F(x) = A(x) @ x - b(x)`` against
its analytic stamps and asserts the observed sparsity stays inside
``stamp_pattern()`` — the numeric twin of the RV403 static rule (see
``repro.verify.stampcheck``).
"""

import numpy as np
import pytest

from repro.analysis.mna import Context
from repro.circuit import (
    Capacitor,
    Circuit,
    CurrentSource,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Element
from repro.circuit.switches import VoltageControlledSwitch
from repro.devices.finfet import FinFET
from repro.devices.mtj import MTJ, MTJState
from repro.devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from repro.verify import (
    assert_stamps_clean,
    check_circuit_stamps,
    check_element_stamp,
)


def sanitize(circuit, x=None, names=None, **kwargs):
    results = check_circuit_stamps(circuit, x=x, names=names, **kwargs)
    assert results, "no elements checked"
    assert_stamps_clean(results)
    return results


# -- passives and sources ---------------------------------------------------


def test_resistor_and_sources():
    c = Circuit("rc bench")
    c.add(VoltageSource("vin", "in", "0", dc=0.9))
    c.add(Resistor("r1", "in", "out", 1e4))
    c.add(CurrentSource("ipull", "out", "0", dc=1e-6))
    c.compile()
    x = np.array([0.9, 0.45, 1e-5])
    sanitize(c, x=x)


def test_capacitor_dc_is_open():
    c = Circuit("cap dc")
    c.add(VoltageSource("vin", "in", "0", dc=0.9))
    c.add(Capacitor("cl", "in", "0", 1e-15))
    results = sanitize(c, x=np.array([0.9, 0.0]), names=["cl"])
    # DC: open circuit, empty declared pattern, nothing stamped.
    assert results[0].ok


@pytest.mark.parametrize("method", ["be", "trap"])
def test_capacitor_transient_companion(method):
    c = Circuit("cap tran")
    c.add(VoltageSource("vin", "in", "0", dc=0.9))
    c.add(Capacitor("cl", "in", "0", 1e-15))
    c.compile()
    x = np.array([0.9, 0.0])
    c["cl"].init_state(Context(mode="dc", x=x))
    results = check_circuit_stamps(c, x=x, mode="tran", dt=1e-9,
                                   method=method, names=["cl"],
                                   # geq = C/dt ~ 1e-6 S: loosen the
                                   # absolute floor accordingly
                                   atol=1e-10)
    assert_stamps_clean(results)


def test_switch_on_off_and_mid_transition():
    c = Circuit("switch bench")
    c.add(VoltageSource("vc", "ctl", "0", dc=0.5))
    c.add(VoltageSource("vin", "in", "0", dc=0.9))
    c.add(VoltageControlledSwitch("sw", "in", "out", "ctl", "0",
                                  r_on=100.0, r_off=1e9))
    c.add(Resistor("rload", "out", "0", 1e5))
    c.compile()
    # ctl, in, out node order follows first-use; look indices up.
    i_ctl, i_in, i_out = (c.index_of(n) for n in ("ctl", "in", "out"))
    # Off, mid-transition, on — clear of the smoothstep's C1 kinks at
    # exactly v_off/v_on, where central FD picks up the curvature jump.
    for vctl in (-0.2, 0.5, 1.2):
        x = np.zeros(c.size)
        x[i_ctl] = vctl
        x[i_in] = 0.9
        x[i_out] = 0.3
        results = check_circuit_stamps(c, x=x, names=["sw"])
        assert_stamps_clean(results)


# -- devices ----------------------------------------------------------------


@pytest.mark.parametrize("params", [NFET_20NM_HP, PFET_20NM_HP],
                         ids=["nfet", "pfet"])
def test_finfet_jacobian_and_sparsity(params):
    c = Circuit("fet bench")
    c.add(VoltageSource("vd", "d", "0", dc=0.9))
    c.add(VoltageSource("vg", "g", "0", dc=0.9))
    c.add(VoltageSource("vs", "s", "0", dc=0.0))
    c.add(FinFET("m1", "d", "g", "s", params))
    c.compile()
    i_d, i_g, i_s = (c.index_of(n) for n in ("d", "g", "s"))
    # Saturation, triode, subthreshold and off bias points.
    for vd, vg, vs in ((0.9, 0.9, 0.0), (0.1, 0.9, 0.0),
                       (0.9, 0.2, 0.0), (0.9, 0.0, 0.0),
                       (0.0, 0.0, 0.9)):
        x = np.zeros(c.size)
        x[i_d], x[i_g], x[i_s] = vd, vg, vs
        results = check_circuit_stamps(c, x=x, names=["m1"], rtol=5e-4)
        assert_stamps_clean(results)


@pytest.mark.parametrize("state", [MTJState.PARALLEL,
                                   MTJState.ANTIPARALLEL],
                         ids=["P", "AP"])
def test_mtj_jacobian_and_sparsity(state):
    c = Circuit("mtj bench")
    c.add(VoltageSource("vb", "free", "0", dc=0.3))
    c.add(MTJ("mtj", "free", "pinned", state=state))
    c.add(Resistor("rret", "pinned", "0", 1e3))
    c.compile()
    i_free, i_pinned = c.index_of("free"), c.index_of("pinned")
    for bias in (0.0, 0.15, 0.4):   # TMR rolloff is bias-dependent in AP
        x = np.zeros(c.size)
        x[i_free] = bias
        x[i_pinned] = 0.02
        results = check_circuit_stamps(c, x=x, names=["mtj"])
        assert_stamps_clean(results)


def test_full_cell_testbench_is_clean():
    """Every element of the shipped NV-SRAM bench honours the contract."""
    from repro.characterize.testbench import build_cell_testbench

    circuit = build_cell_testbench("nv").circuit
    circuit.compile()
    x = np.full(circuit.size, 0.45)
    assert_stamps_clean(check_circuit_stamps(circuit, x=x, rtol=5e-4))


# -- the sanitizer itself must catch violations -----------------------------


class _LeakyElement(Element):
    """Deliberately broken: stamps an entry it never declares."""

    def __init__(self, name, p, n, leak_to):
        super().__init__(name, (p, n, leak_to))
        self.g = 1e-4

    def stamp(self, stamper, ctx):
        p, n, leak = self.node_index
        stamper.conductance(p, n, self.g)
        stamper.matrix(p, leak, self.g)   # undeclared coupling

    def stamp_pattern(self, mode="dc"):
        from repro.circuit.netlist import conductance_pattern
        p, n, _leak = self.node_index
        return conductance_pattern(p, n)


class _WrongJacobianElement(Element):
    """Deliberately broken: stamped G is not dI/dV."""

    def __init__(self, name, p, n):
        super().__init__(name, (p, n))

    def stamp(self, stamper, ctx):
        p, n = self.node_index
        v = ctx.v(p) - ctx.v(n)
        i = 1e-3 * v * v * v
        g_wrong = 1e-3 * v * v          # correct would be 3e-3 * v^2
        stamper.conductance(p, n, g_wrong)
        stamper.current(p, n, i - g_wrong * v)

    def stamp_pattern(self, mode="dc"):
        from repro.circuit.netlist import conductance_pattern
        p, n = self.node_index
        return conductance_pattern(p, n)


def test_sanitizer_catches_undeclared_entry():
    c = Circuit("leaky")
    c.add(VoltageSource("v1", "a", "0", dc=1.0))
    c.add(_LeakyElement("bad", "a", "0", "c"))
    c.add(Resistor("r1", "c", "0", 1e3))
    c.compile()
    result = check_element_stamp(c["bad"], c.size,
                                 np.full(c.size, 0.5))
    assert not result.ok
    assert result.pattern_violations
    assert "outside stamp_pattern" in result.describe()
    with pytest.raises(AssertionError, match="sanitizer failures"):
        assert_stamps_clean([result])


def test_sanitizer_catches_wrong_jacobian():
    c = Circuit("wrong-g")
    c.add(VoltageSource("v1", "a", "0", dc=1.0))
    c.add(_WrongJacobianElement("bad", "a", "0"))
    c.compile()
    x = np.full(c.size, 0.5)
    result = check_element_stamp(c["bad"], c.size, x)
    assert not result.ok
    assert result.jacobian_mismatches
