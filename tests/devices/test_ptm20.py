"""Tests pinning the realised 20 nm technology card to its targets."""

import pytest

from repro.devices.ptm20 import (
    CGATE_PER_FIN,
    CJUNCTION_PER_FIN,
    FIN_HEIGHT,
    FIN_WIDTH,
    NFET_20NM_HP,
    PFET_20NM_HP,
    VDD_NOMINAL,
    WEFF_PER_FIN,
    ioff_per_fin,
    ion_per_fin,
    technology_summary,
)


class TestGeometry:
    def test_table1_dimensions(self):
        assert FIN_WIDTH == 15e-9
        assert FIN_HEIGHT == 28e-9
        assert WEFF_PER_FIN == pytest.approx(71e-9)
        assert VDD_NOMINAL == 0.9

    def test_parasitic_caps_sane(self):
        # Sub-femtofarad per-fin parasitics at 20 nm.
        assert 1e-17 < CGATE_PER_FIN < 2e-16
        assert 1e-18 < CJUNCTION_PER_FIN < 1e-16


class TestCalibration:
    """Pin the card's headline figures; these anchor every energy number
    in EXPERIMENTS.md, so drift must fail loudly."""

    def test_ion_n(self):
        assert ion_per_fin(NFET_20NM_HP) == pytest.approx(95e-6, rel=0.10)

    def test_ion_p(self):
        assert ion_per_fin(PFET_20NM_HP) == pytest.approx(85e-6, rel=0.10)

    def test_ioff_n_in_hp_range(self):
        ioff = ioff_per_fin(NFET_20NM_HP)
        assert 1e-9 < ioff < 2e-8   # a few nA/fin: HP-class leakage

    def test_ioff_p_in_hp_range(self):
        ioff = ioff_per_fin(PFET_20NM_HP)
        assert 1e-9 < ioff < 2e-8

    def test_on_off_ratio(self):
        ratio = ion_per_fin(NFET_20NM_HP) / ioff_per_fin(NFET_20NM_HP)
        assert ratio > 1e3

    def test_summary_keys(self):
        summary = technology_summary()
        expected = {
            "vdd", "weff_per_fin", "ion_n_per_fin", "ion_p_per_fin",
            "ioff_n_per_fin", "ioff_p_per_fin", "ss_n_mv_per_dec",
            "ss_p_mv_per_dec", "dibl_n_mv_per_v", "dibl_p_mv_per_v",
        }
        assert set(summary) == expected

    def test_summary_at_lower_vdd(self):
        low = technology_summary(0.7)
        nom = technology_summary(0.9)
        assert low["ion_n_per_fin"] < nom["ion_n_per_fin"]
        assert low["ioff_n_per_fin"] < nom["ioff_n_per_fin"]  # DIBL
