"""Tests for SI-quantity parsing and engineering formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnitError
from repro.units import (
    NS,
    PJ,
    THERMAL_VOLTAGE_300K,
    format_eng,
    parse_quantity,
)


class TestParseQuantity:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0.9", 0.9),
            ("1e-9", 1e-9),
            ("-3.3", -3.3),
            ("10n", 10e-9),
            ("1.5u", 1.5e-6),
            ("1.5µ", 1.5e-6),
            ("20p", 20e-12),
            ("2k", 2e3),
            ("5meg", 5e6),
            ("3m", 3e-3),
            ("7f", 7e-15),
            ("2a", 2e-18),
            ("4g", 4e9),
            ("1t", 1e12),
            ("+.5", 0.5),
        ],
    )
    def test_basic(self, text, expected):
        assert parse_quantity(text) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("10ns", 10e-9),       # trailing unit letters ignored
            ("2kohm", 2e3),
            ("0.65V", 0.65),       # unknown suffix => multiplier one
            ("1.5MEG", 1.5e6),     # case-insensitive
        ],
    )
    def test_suffix_tails(self, text, expected):
        assert parse_quantity(text) == pytest.approx(expected)

    def test_passthrough_numbers(self):
        assert parse_quantity(3) == 3.0
        assert parse_quantity(2.5) == 2.5
        assert isinstance(parse_quantity(3), float)

    @pytest.mark.parametrize("bad", ["", "volts", "1..2", "--3", "n10"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(UnitError):
            parse_quantity(bad)

    @given(st.floats(min_value=-1e18, max_value=1e18,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip_plain_floats(self, value):
        assert parse_quantity(repr(value)) == pytest.approx(value, rel=1e-12)


class TestFormatEng:
    @pytest.mark.parametrize(
        "value,unit,expected",
        [
            (3.3e-9, "s", "3.30 ns"),
            (2.34e-11, "J", "23.40 pJ"),
            (0.0, "W", "0.00 W"),
            (1.0, "V", "1.00 V"),
            (4.7e3, "ohm", "4.70 kohm"),
            (1.5e7, "Hz", "15.00 MHz"),
            (-2e-6, "A", "-2.00 uA"),
        ],
    )
    def test_formatting(self, value, unit, expected):
        assert format_eng(value, unit) == expected

    def test_nan_and_inf(self):
        assert format_eng(float("nan"), "V") == "nan V"
        assert format_eng(float("inf"), "s") == "inf s"
        assert format_eng(float("-inf"), "s") == "-inf s"

    def test_digits(self):
        assert format_eng(1.23456e-9, "s", digits=4) == "1.2346 ns"

    @given(st.floats(min_value=1e-17, max_value=1e13, allow_nan=False))
    def test_mantissa_in_engineering_range(self, value):
        text = format_eng(value, "X")
        mantissa = float(text.split()[0])
        assert 0.99 <= abs(mantissa) < 1000.1


class TestConstants:
    def test_unit_constants(self):
        assert NS == 1e-9
        assert PJ == 1e-12

    def test_thermal_voltage(self):
        # kT/q at 300 K.
        assert THERMAL_VOLTAGE_300K == pytest.approx(0.02585, rel=1e-3)
