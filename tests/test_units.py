"""Tests for SI-quantity parsing and engineering formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnitError
from repro.units import (
    NS,
    PJ,
    THERMAL_VOLTAGE_300K,
    format_eng,
    parse_quantity,
)


class TestParseQuantity:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0.9", 0.9),
            ("1e-9", 1e-9),
            ("-3.3", -3.3),
            ("10n", 10e-9),
            ("1.5u", 1.5e-6),
            ("1.5µ", 1.5e-6),
            ("20p", 20e-12),
            ("2k", 2e3),
            ("5meg", 5e6),
            ("3m", 3e-3),
            ("7f", 7e-15),
            ("2a", 2e-18),
            ("4g", 4e9),
            ("1t", 1e12),
            ("+.5", 0.5),
        ],
    )
    def test_basic(self, text, expected):
        assert parse_quantity(text) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("10ns", 10e-9),       # trailing unit letters ignored
            ("2kohm", 2e3),
            ("0.65V", 0.65),       # unknown suffix => multiplier one
            ("1.5MEG", 1.5e6),     # case-insensitive
        ],
    )
    def test_suffix_tails(self, text, expected):
        assert parse_quantity(text) == pytest.approx(expected)

    def test_passthrough_numbers(self):
        assert parse_quantity(3) == 3.0
        assert parse_quantity(2.5) == 2.5
        assert isinstance(parse_quantity(3), float)

    @pytest.mark.parametrize("bad", ["", "volts", "1..2", "--3", "n10"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(UnitError):
            parse_quantity(bad)

    @given(st.floats(min_value=-1e18, max_value=1e18,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip_plain_floats(self, value):
        assert parse_quantity(repr(value)) == pytest.approx(value, rel=1e-12)


class TestFormatEng:
    @pytest.mark.parametrize(
        "value,unit,expected",
        [
            (3.3e-9, "s", "3.30 ns"),
            (2.34e-11, "J", "23.40 pJ"),
            (0.0, "W", "0.00 W"),
            (1.0, "V", "1.00 V"),
            (4.7e3, "ohm", "4.70 kohm"),
            (1.5e7, "Hz", "15.00 MHz"),
            (-2e-6, "A", "-2.00 uA"),
        ],
    )
    def test_formatting(self, value, unit, expected):
        assert format_eng(value, unit) == expected

    def test_nan_and_inf(self):
        assert format_eng(float("nan"), "V") == "nan V"
        assert format_eng(float("inf"), "s") == "inf s"
        assert format_eng(float("-inf"), "s") == "-inf s"

    def test_digits(self):
        assert format_eng(1.23456e-9, "s", digits=4) == "1.2346 ns"

    @given(st.floats(min_value=1e-17, max_value=1e13, allow_nan=False))
    def test_mantissa_in_engineering_range(self, value):
        text = format_eng(value, "X")
        mantissa = float(text.split()[0])
        assert 0.99 <= abs(mantissa) < 1000.1

    @pytest.mark.parametrize(
        "value,digits,expected",
        [
            # Values that *round* past the prefix boundary must roll
            # over to the next prefix, never print "1000.00 n...".
            (999.999e-9, 2, "1.00 us"),
            (999.9999e-6, 2, "1.00 ms"),
            (999.996e3, 2, "1.00 M"),
            (-999.999e-9, 2, "-1.00 us"),
            # At higher precision the same value stays below the
            # boundary and keeps its prefix.
            (999.999e-9, 4, "999.9990 ns"),
            # Values that round to exactly 999.95/999.99 stay put.
            (999.95e-9, 2, "999.95 ns"),
            (999.4e-9, 2, "999.40 ns"),
        ],
    )
    def test_prefix_boundary_rollover(self, value, digits, expected):
        assert format_eng(value, "s" if "M" not in expected else "",
                          digits=digits) == expected

    def test_no_prefix_above_tera(self):
        # Nothing to roll over into past the largest prefix.
        assert format_eng(999.9999e12, "W") == "1000.00 TW"

    @given(st.floats(min_value=1e-17, max_value=1e13, allow_nan=False),
           st.integers(min_value=0, max_value=6))
    def test_rendered_mantissa_never_reaches_1000(self, value, digits):
        text = format_eng(value, "X", digits=digits)
        mantissa = float(text.split()[0])
        assert abs(mantissa) < 1000.0


#: format_eng prefixes that parse_quantity reads back at the same scale.
#: "M" (mega) is excluded: SPICE spells mega "meg", so a lone "m" parses
#: as *milli* — see test_mega_milli_asymmetry.
_ROUNDTRIP_SCALES = [1e12, 1e9, 1e3, 1.0, 1e-3, 1e-6,
                     1e-9, 1e-12, 1e-15, 1e-18]


class TestRoundTrip:
    """format_eng -> parse_quantity closes the loop (SPICE-suffix caveats)."""

    @given(
        mantissa=st.floats(min_value=1.0, max_value=999.0,
                           allow_nan=False, allow_infinity=False),
        scale=st.sampled_from(_ROUNDTRIP_SCALES),
        sign=st.sampled_from([1.0, -1.0]),
    )
    def test_format_then_parse(self, mantissa, scale, sign):
        value = sign * mantissa * scale
        text = format_eng(value, "", digits=9)
        assert parse_quantity(text.replace(" ", "")) == pytest.approx(
            value, rel=1e-8
        )

    @given(
        mantissa=st.floats(min_value=1.0, max_value=999.0,
                           allow_nan=False, allow_infinity=False),
        scale=st.sampled_from(_ROUNDTRIP_SCALES),
    )
    def test_format_then_parse_with_unit(self, mantissa, scale):
        # A trailing unit name must not change the parsed magnitude.
        value = mantissa * scale
        text = format_eng(value, "s", digits=9)
        assert parse_quantity(text.replace(" ", "")) == pytest.approx(
            value, rel=1e-8
        )

    @given(
        mantissa=st.floats(min_value=-1e6, max_value=1e6,
                           allow_nan=False, allow_infinity=False),
        suffix_mult=st.sampled_from(
            [("meg", 1e6), ("t", 1e12), ("g", 1e9), ("k", 1e3),
             ("m", 1e-3), ("u", 1e-6), ("n", 1e-9), ("p", 1e-12),
             ("f", 1e-15), ("a", 1e-18)]
        ),
    )
    def test_constructed_suffix_strings(self, mantissa, suffix_mult):
        suffix, mult = suffix_mult
        text = repr(mantissa) + suffix
        assert parse_quantity(text) == pytest.approx(mantissa * mult)
        # SPICE suffixes are case-insensitive.
        assert parse_quantity(text.upper()) == pytest.approx(mantissa * mult)

    def test_mega_milli_asymmetry(self):
        # The documented SPICE trap: format_eng writes mega as "M", but
        # parse_quantity (like SPICE) needs "meg" — a bare "m" is milli.
        assert format_eng(1.5e7, "Hz") == "15.00 MHz"
        assert parse_quantity("15.00MHz") == pytest.approx(15.00e-3)
        assert parse_quantity("15meg") == pytest.approx(1.5e7)


class TestConstants:
    def test_unit_constants(self):
        assert NS == 1e-9
        assert PJ == 1e-12

    def test_thermal_voltage(self):
        # kT/q at 300 K.
        assert THERMAL_VOLTAGE_300K == pytest.approx(0.02585, rel=1e-3)
