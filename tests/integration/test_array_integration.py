"""Multi-cell array integration: the single-cell results transfer.

Runs real transients on small SPICE-level arrays with shared bitlines,
word lines and per-row power switches — checking store/restore and
row-level power gating work when cells electrically interact.
"""

import pytest

from repro.analysis import operating_point, transient
from repro.analysis.transient import TransientOptions
from repro.circuit import Step
from repro.cells import build_cell_array
from repro.devices.mtj import MTJState

VDD = 0.9
V_SR = 0.65
V_CTRL = 0.5


@pytest.fixture()
def array2x2():
    return build_cell_array(2, 2)


class TestArrayStore:
    def test_row_store_encodes_row_data(self, array2x2):
        """Storing row 0 flips exactly that row's MTJs to its data."""
        tb = array2x2
        c = tb.circuit
        data = [[True, False], [False, True]]
        # Program all MTJs to the complement so every store must switch.
        for row in tb.cells:
            for cell in row:
                cell.set_mtj_states(c, MTJState.PARALLEL,
                                    MTJState.ANTIPARALLEL)
                if cell.stored_data(c) is data[tb.cells.index(row)][row.index(cell)]:
                    cell.set_mtj_states(c, MTJState.ANTIPARALLEL,
                                        MTJState.PARALLEL)
        # Two-step store on row 0 only.
        c["vsr0"].set_waveform(Step(0.0, V_SR, 1e-9, 100e-12))
        c["vctrl0"].set_waveform(Step(0.0, V_CTRL, 11e-9, 100e-12))
        res = transient(
            c, 21e-9, ic=tb.initial_conditions(data),
            options=TransientOptions(dt_initial=20e-12),
        )
        # Row 0 now encodes its data; row 1 untouched.
        for col in range(2):
            assert tb.cells[0][col].stored_data(c) is data[0][col]
        assert all(name.startswith("cell0_") for _, name, _ in res.events)

    def test_store_does_not_disturb_neighbours(self, array2x2):
        tb = array2x2
        c = tb.circuit
        data = [[True, True], [False, True]]
        c["vsr0"].set_waveform(Step(0.0, V_SR, 1e-9, 100e-12))
        c["vctrl0"].set_waveform(Step(0.0, V_CTRL, 11e-9, 100e-12))
        res = transient(c, 21e-9, ic=tb.initial_conditions(data))
        final = res.final_solution()
        for r in range(2):
            for col in range(2):
                assert tb.cells[r][col].read_data(final, VDD) is data[r][col]


class TestRowPowerGating:
    def test_gated_row_collapses_other_survives(self, array2x2):
        tb = array2x2
        c = tb.circuit
        c["vpg1"].set_waveform(Step(0.0, 1.0, 1e-9, 200e-12))
        data = [[True, False], [True, False]]
        res = transient(c, 30e-9, ic=tb.initial_conditions(data))
        final = res.final_solution()
        # Row 1's virtual rail decays (slowly - leakage discharges it),
        # row 0 still holds its data solid.
        assert final.voltage("vvdd1") < final.voltage("vvdd0")
        for col in range(2):
            assert tb.cells[0][col].read_data(final, VDD) is data[0][col]

    def test_restore_after_row_shutdown(self):
        tb = build_cell_array(1, 2)
        c = tb.circuit
        # Power switch off initially, MTJs hold a known pattern.
        tb.cells[0][0].set_mtj_states(c, MTJState.ANTIPARALLEL,
                                      MTJState.PARALLEL)   # True
        tb.cells[0][1].set_mtj_states(c, MTJState.PARALLEL,
                                      MTJState.ANTIPARALLEL)  # False
        c["vpg0"].set_waveform(Step(1.0, 0.0, 1e-9, 200e-12))
        c["vsr0"].set_level(V_SR)
        c["vctrl0"].set_level(0.0)
        c["vbl0"].set_level(0.0)
        c["vblb0"].set_level(0.0)
        c["vbl1"].set_level(0.0)
        c["vblb1"].set_level(0.0)
        ic = {"vvdd0": 0.0}
        for cell in tb.cells[0]:
            ic[cell.q] = 0.0
            ic[cell.qb] = 0.0
        res = transient(c, 8e-9, ic=ic)
        final = res.final_solution()
        assert final.voltage("vvdd0") > 0.8 * VDD
        assert tb.cells[0][0].read_data(final, VDD) is True
        assert tb.cells[0][1].read_data(final, VDD) is False


class TestArrayStatic:
    def test_static_power_scales_with_cells(self):
        def total_power(rows, cols):
            tb = build_cell_array(rows, cols)
            data = [[True] * cols for _ in range(rows)]
            sol = operating_point(tb.circuit,
                                  ic=tb.initial_conditions(data))
            return -sol.branch_current("vdd") * VDD

        p1 = total_power(1, 1)
        p4 = total_power(2, 2)
        # Within 40%: bitline/switch overheads are not per-cell-linear.
        assert p4 == pytest.approx(4 * p1, rel=0.4)
