"""The paper's headline claims, asserted against simulated numbers.

Every test cites the claim it checks.  These run on the reference domain
(N = 512, M = 32) with the session-cached characterisations, so they
exercise the whole stack: device models -> transient characterisation ->
energy composition -> BET.
"""

import numpy as np
import pytest

from repro.pg.bet import break_even_time
from repro.pg.sequences import Architecture, BenchmarkSpec

T_SL = 100e-9


def _e(model, arch, n_rw, t_sl=T_SL, t_sd=0.0, **kw):
    return model.e_cyc(BenchmarkSpec(arch, n_rw=n_rw, t_sl=t_sl,
                                     t_sd=t_sd, **kw))


class TestFig7aClaims:
    def test_nvpg_approaches_osr_asymptotically(self, energy_model):
        """'When n_RW increases, E_cyc for the NVPG architecture
        approaches asymptotically to that for the OSR architecture.'"""
        ratios = [
            _e(energy_model, Architecture.NVPG, n)
            / _e(energy_model, Architecture.OSR, n)
            for n in (1, 10, 100, 1000, 10000)
        ]
        assert all(r2 < r1 for r1, r2 in zip(ratios, ratios[1:]))
        assert ratios[-1] < 1.05
        assert ratios[0] > 2.0   # the store dominates a single pass

    def test_nof_monotonically_worse_than_osr(self, energy_model):
        """'E_cyc for the NOF architecture monotonously increases with
        increasing n_RW and is much higher than that for OSR.'"""
        for n in (10, 100, 1000):
            nof = _e(energy_model, Architecture.NOF, n)
            osr = _e(energy_model, Architecture.OSR, n)
            assert nof > 2.0 * osr

    def test_nvpg_close_to_nof_at_single_pass(self, energy_model):
        """'E_cyc of NVPG is almost the same as NOF at n_RW = 1 since the
        store count is equal.'  (With N = 512 the serialised store phase
        makes NVPG somewhat higher — the Fig. 7(b) caveat.)"""
        nvpg = _e(energy_model, Architecture.NVPG, 1)
        nof = _e(energy_model, Architecture.NOF, 1)
        assert nvpg == pytest.approx(nof, rel=0.6)

    def test_read_write_ratio_does_not_change_story(self, ctx, domain):
        """'When a repetition ratio of the read operation to the write
        operation enlarges (10 times or more), these features remain
        unchanged.'"""
        cond10 = ctx.cond.with_(read_write_ratio=10.0)
        model = ctx.energy_model(domain, cond=cond10)
        ratio_small = (_e(model, Architecture.NVPG, 1)
                       / _e(model, Architecture.OSR, 1))
        ratio_large = (_e(model, Architecture.NVPG, 10000)
                       / _e(model, Architecture.OSR, 10000))
        assert ratio_large < 1.05 < ratio_small
        # NOF's relative penalty shrinks with a read-heavy mix (reads do
        # not write back) but it stays clearly worse than OSR.
        for n in (10, 1000):
            assert _e(model, Architecture.NOF, n) > \
                1.3 * _e(model, Architecture.OSR, n)


class TestFig7bClaims:
    def test_large_domain_penalises_nvpg_at_small_n_rw(self, ctx):
        """'For very small n_RW, E_cyc for the NVPG architecture with
        larger N (>= 256) is higher than that for the NOF architecture.'"""
        from repro.cells import PowerDomain

        large = ctx.energy_model(PowerDomain(1024, 32))
        assert _e(large, Architecture.NVPG, 1) > \
            _e(large, Architecture.NOF, 1)

    def test_penalty_recovers_by_n_rw_10(self, ctx):
        """'This unwanted effect is rapidly reduced with increasing n_RW
        to more than ~10.'"""
        from repro.cells import PowerDomain

        large = ctx.energy_model(PowerDomain(1024, 32))
        assert _e(large, Architecture.NVPG, 30) < \
            _e(large, Architecture.NOF, 30)

    def test_small_domain_no_penalty(self, ctx):
        from repro.cells import PowerDomain

        small = ctx.energy_model(PowerDomain(32, 32))
        assert _e(small, Architecture.NVPG, 1) < \
            1.5 * _e(small, Architecture.NOF, 1)


class TestFig8Claims:
    def test_nvpg_bet_several_tens_of_microseconds(self, energy_model):
        """'The NVPG architecture has a sufficiently short BET
        (~ several 10 us).'"""
        bet = break_even_time(energy_model, Architecture.NVPG, n_rw=10,
                              t_sl=T_SL).bet
        assert 10e-6 < bet < 500e-6

    def test_nof_bet_much_longer(self, energy_model):
        """'E_cyc for the NOF architecture requires much longer BET.'"""
        for n_rw in (10, 100, 1000):
            nvpg = break_even_time(energy_model, Architecture.NVPG,
                                   n_rw=n_rw, t_sl=T_SL).bet
            nof = break_even_time(energy_model, Architecture.NOF,
                                  n_rw=n_rw, t_sl=T_SL).bet
            assert nof > 4 * nvpg

    def test_nof_bet_strongly_n_rw_dependent(self, energy_model):
        """'This condition strongly depends on n_RW.'"""
        bet10 = break_even_time(energy_model, Architecture.NOF, n_rw=10,
                                t_sl=T_SL).bet
        bet1000 = break_even_time(energy_model, Architecture.NOF,
                                  n_rw=1000, t_sl=T_SL).bet
        assert bet1000 > 20 * bet10


class TestFig9Claims:
    def test_bet_grows_with_n_and_n_rw(self, ctx):
        """'BET increases with increasing N or n_RW.'"""
        from repro.cells import PowerDomain

        bets = {}
        for n in (32, 512, 2048):
            model = ctx.energy_model(PowerDomain(n, 32))
            for n_rw in (10, 1000):
                bets[(n, n_rw)] = break_even_time(
                    model, Architecture.NVPG, n_rw=n_rw, t_sl=T_SL).bet
        assert bets[(32, 10)] < bets[(512, 10)] < bets[(2048, 10)]
        assert bets[(32, 10)] < bets[(32, 1000)]
        assert bets[(512, 10)] < bets[(512, 1000)]

    def test_store_free_reduces_bet_to_microseconds(self, energy_model):
        """'Store-free shutdown can dramatically reduce BET to several
        us.'"""
        full = break_even_time(energy_model, Architecture.NVPG, n_rw=10,
                               t_sl=T_SL).bet
        free = break_even_time(energy_model, Architecture.NVPG, n_rw=10,
                               t_sl=T_SL, store_free=True).bet
        assert free < full / 5
        assert 1e-6 < free < 40e-6

    def test_fast_low_jc_configuration_shortens_bet(self, ctx):
        """Fig. 9(b): 1 GHz + Jc = 1e6 A/cm^2 (with biases re-derived per
        the Fig. 3 methodology) gives much shorter BET without
        store-free."""
        from repro.cells import PowerDomain
        from repro.characterize.store import derive_store_biases
        from repro.devices.mtj import MTJ_FIG9B

        domain = PowerDomain(512, 32)
        base_bet = break_even_time(
            ctx.energy_model(domain), Architecture.NVPG, n_rw=10,
            t_sl=T_SL).bet
        fast_cond = derive_store_biases(
            ctx.cond.fast_variant(), PowerDomain(32, 32),
            mtj_params=MTJ_FIG9B,
        )
        fast_model = ctx.energy_model(domain, cond=fast_cond,
                                      mtj_params=MTJ_FIG9B)
        fast_bet = break_even_time(fast_model, Architecture.NVPG,
                                   n_rw=10, t_sl=T_SL).bet
        assert fast_bet < base_bet / 1.5


class TestPerformanceClaims:
    def test_nvpg_no_speed_degradation(self, energy_model):
        """'The NV-SRAM cell with the NVPG architecture can have the same
        read/write speed as the 6T-SRAM cell.'"""
        assert energy_model.effective_cycle_time(Architecture.NVPG) == \
            energy_model.effective_cycle_time(Architecture.OSR)

    def test_nof_severe_degradation(self, energy_model):
        """'The cell executing the NOF architecture suffers from the
        degradation of the read/write cycle speed.'"""
        nof = energy_model.effective_cycle_time(Architecture.NOF)
        osr = energy_model.effective_cycle_time(Architecture.OSR)
        assert nof > 5 * osr


class TestFig6cClaims:
    def test_static_power_comparable_in_normal_and_sleep(
            self, nv_char, vt_char):
        """'The static power of the NV-SRAM cell is comparable to that of
        the 6T-SRAM cell during the normal operation and sleep modes.'"""
        assert nv_char.p_normal == pytest.approx(vt_char.p_normal,
                                                 rel=0.25)
        assert nv_char.p_sleep == pytest.approx(vt_char.p_sleep, rel=0.25)

    def test_super_cutoff_dramatic_reduction(self, nv_char):
        """'The static power during the shutdown mode can be dramatically
        reduced by the super-cutoff technique.'"""
        assert nv_char.p_shutdown < nv_char.p_sleep / 3
        assert nv_char.p_shutdown < nv_char.p_shutdown_nominal / 5
