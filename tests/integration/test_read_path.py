"""Full read-path integration: cell -> bitlines -> sense amplifier.

The characterisation testbench measures reads as a bitline differential;
this integration closes the loop with a real latch-type sense amp
resolving that differential to full rails — for both data values, on
both the 6T and NV-SRAM cells, at array-scale bitline loading.
"""

import pytest

from repro.analysis import transient
from repro.analysis.transient import TransientOptions
from repro.circuit import (
    Capacitor,
    Circuit,
    PiecewiseLinear,
    VoltageControlledSwitch,
    VoltageSource,
)
from repro.cells import PowerDomain, add_nvsram, add_senseamp, add_sram6t

VDD = 0.9

# Read timing: precharge, word line, then fire the SA.
T_PRECH_END = 1.0e-9
T_WL_ON = 1.2e-9
T_ISO_OFF = 2.6e-9
T_SAE_ON = 2.75e-9
T_END = 4.0e-9


def _read_path(kind: str, data: bool, n_rows: int = 512):
    c = Circuit(f"read-path-{kind}")
    c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
    c.add(VoltageSource("vprech", "prech", "0", waveform=PiecewiseLinear(
        [(0.0, VDD), (T_PRECH_END, VDD), (T_PRECH_END + 50e-12, 0.0)])))
    c.add(VoltageSource("vwl", "wl", "0", waveform=PiecewiseLinear(
        [(0.0, 0.0), (T_WL_ON, 0.0), (T_WL_ON + 50e-12, VDD)])))
    c.add(VoltageSource("viso", "iso", "0", waveform=PiecewiseLinear(
        [(0.0, VDD), (T_ISO_OFF, VDD), (T_ISO_OFF + 50e-12, 0.0)])))
    c.add(VoltageSource("vsae", "sae", "0", waveform=PiecewiseLinear(
        [(0.0, 0.0), (T_SAE_ON, 0.0), (T_SAE_ON + 50e-12, VDD)])))

    c_bl = PowerDomain(n_wordlines=n_rows, word_bits=32).bitline_capacitance
    for bl in ("bl", "blb"):
        c.add(Capacitor(f"c_{bl}", bl, "0", c_bl))
        c.add(VoltageControlledSwitch(
            f"sw_prech_{bl}", bl, "vdd", "prech", "0",
            r_on=4e3, v_on=VDD, v_off=0.0,
        ))

    if kind == "nv":
        c.add(VoltageSource("vsr", "sr", "0", dc=0.0))
        c.add(VoltageSource("vctrl", "ctrl", "0", dc=0.07))
        cell = add_nvsram(c, "cell", "vdd", "bl", "blb", "wl", "sr",
                          "ctrl")
        core = cell.core
    else:
        core = cell = add_sram6t(c, "cell", "vdd", "bl", "blb", "wl")

    sa = add_senseamp(c, "sa", "bl", "blb", "sae", "iso", "vdd")
    ic = core.initial_conditions(data, VDD)
    result = transient(c, T_END, ic=ic,
                       options=TransientOptions(dt_initial=10e-12))
    return c, core, sa, result


class TestReadPath:
    @pytest.mark.parametrize("kind", ["6t", "nv"])
    @pytest.mark.parametrize("data", [True, False])
    def test_sense_amp_resolves_stored_bit(self, kind, data):
        _, core, sa, result = _read_path(kind, data)
        final = result.final_solution()
        # SRAM convention: reading a stored 1 (Q high) leaves BL high and
        # discharges BLB through the QB-side pass gate.
        assert sa.read_output(final) is data
        assert abs(sa.differential(final)) > 0.8 * VDD

    @pytest.mark.parametrize("kind", ["6t", "nv"])
    def test_read_is_nondestructive(self, kind):
        _, core, sa, result = _read_path(kind, True)
        assert core.read_data(result.final_solution(), VDD) is True

    def test_bitline_differential_develops_before_firing(self):
        _, core, sa, result = _read_path("nv", True)
        diff = result.sample("bl", T_ISO_OFF) - result.sample(
            "blb", T_ISO_OFF)
        assert diff > 0.05   # the sense margin the SA amplifies

    def test_deep_bitline_still_resolves(self):
        """2048-row bitline (8 kB domain): slower slew, same outcome."""
        _, core, sa, result = _read_path("nv", False, n_rows=2048)
        assert sa.read_output(result.final_solution()) is False

    def test_nv_cell_matches_6t_discharge_rate(self):
        """The PS-FinFETs must not slow the read: equal bitline slew."""
        def discharge(kind):
            _, _, _, result = _read_path(kind, True)
            return result.sample("blb", T_ISO_OFF)

        assert discharge("nv") == pytest.approx(discharge("6t"),
                                                abs=0.02)
