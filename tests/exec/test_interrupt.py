"""Interrupt semantics: SIGINT drains, journal survives, resume finishes.

The acceptance test for the campaign engine: a run killed mid-flight
must leave a valid journal, exit non-zero, and a ``--resume`` must
execute only the remaining points while producing the same aggregate
results as an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.exec import Campaign, CampaignOptions, make_task, run_campaign

SRC = Path(__file__).resolve().parents[2] / "src"

N_TASKS = 8
WORK = 0.3

#: The ``__main__`` guard is load-bearing: spawn workers re-import the
#: parent's main module, and an unguarded driver would recurse.
DRIVER = f"""\
import sys

from repro.exec import (Campaign, CampaignInterrupted, CampaignOptions,
                        make_task, run_campaign)

if __name__ == "__main__":
    tasks = [make_task({{"x": float(i), "work": {WORK}}}, label=f"t{{i}}")
             for i in range({N_TASKS})]
    campaign = Campaign(name="sigint-demo",
                        fn="repro.exec.tasks:demo_task", tasks=tasks)
    try:
        run_campaign(campaign, journal=sys.argv[1],
                     options=CampaignOptions(workers=1, resume=True,
                                             drain_grace=10.0))
    except CampaignInterrupted as exc:
        print(exc.result.summary())
        sys.exit(130)
    sys.exit(0)
"""


def _campaign():
    tasks = [make_task({"x": float(i), "work": WORK}, label=f"t{i}")
             for i in range(N_TASKS)]
    return Campaign(name="sigint-demo", fn="repro.exec.tasks:demo_task",
                    tasks=tasks)


def _task_end_count(path: Path) -> int:
    if not path.exists():
        return 0
    count = 0
    for line in path.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        count += record.get("kind") == "task_end"
    return count


def test_sigint_flushes_journal_and_resume_completes(tmp_path):
    journal = tmp_path / "campaign.jsonl"
    driver = tmp_path / "driver.py"
    driver.write_text(DRIVER)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")

    proc = subprocess.Popen(
        [sys.executable, str(driver), str(journal)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # let at least two tasks reach the journal, then interrupt
        deadline = time.time() + 120.0
        while time.time() < deadline and _task_end_count(journal) < 2:
            if proc.poll() is not None:
                break
            time.sleep(0.05)
        assert proc.poll() is None, (
            f"driver finished before it could be interrupted:\n"
            f"{proc.communicate()[0]}")
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    # non-zero exit, and the drain summary reached stdout
    assert proc.returncode == 130, out
    assert "INTERRUPTED" in out

    # the journal is valid JSONL with an interrupt record and a strict
    # subset of the task outcomes
    records = [json.loads(line)
               for line in journal.read_text().splitlines()]
    kinds = [r["kind"] for r in records]
    assert "campaign_begin" in kinds
    assert "campaign_interrupted" in kinds
    n_done = _task_end_count(journal)
    assert 2 <= n_done < N_TASKS

    # resume completes only the remaining points...
    resumed = run_campaign(_campaign(), journal=journal,
                           options=CampaignOptions(workers=0, resume=True))
    assert resumed.n_replayed == n_done
    executed = [o for o in resumed.completed if not o.replayed]
    assert len(executed) == N_TASKS - n_done

    # ...and the aggregate results are identical to an uninterrupted run
    reference = run_campaign(_campaign(),
                             options=CampaignOptions(workers=0))
    assert resumed.results() == reference.results()
