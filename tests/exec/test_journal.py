"""Journal semantics: durability, torn-line tolerance, keyed replay."""

import json

import pytest

from repro.exec import (
    COMPLETED,
    QUARANTINED,
    Campaign,
    CampaignError,
    Journal,
    TaskOutcome,
    journal_status,
    make_task,
    render_status,
)

DEMO_FN = "repro.exec.tasks:demo_task"


def _campaign(n=2, name="demo"):
    return Campaign(name=name, fn=DEMO_FN,
                    tasks=[make_task({"x": float(i)}) for i in range(n)])


def _outcome(task_id, status=COMPLETED, **kwargs):
    return TaskOutcome(task_id=task_id, status=status, **kwargs)


class TestAppendReplay:
    def test_round_trip_adds_timestamp(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"kind": "x", "value": 1})
        records = journal.replay()
        assert len(records) == 1
        assert records[0]["value"] == 1
        assert "ts" in records[0]

    def test_missing_file_replays_empty(self, tmp_path):
        journal = Journal(tmp_path / "nope.jsonl")
        assert journal.replay() == []
        assert not journal.exists()

    def test_torn_trailing_line_tolerated(self, tmp_path):
        """The crash artefact: a half-written last record is dropped."""
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"kind": "a"})
        journal.append({"kind": "b"})
        with open(path, "a") as handle:
            handle.write('{"kind": "tor')   # kill -9 mid-append
        assert [r["kind"] for r in journal.replay()] == ["a", "b"]

    def test_torn_middle_line_stops_replay(self, tmp_path):
        """Corruption *before* the end is not a crash signature; the
        suffix cannot be trusted and is not replayed."""
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "a"}\n{"kind": "tor\n{"kind": "c"}\n')
        assert [r["kind"] for r in Journal(path).replay()] == ["a"]


class TestOutcomesFor:
    def test_filters_by_campaign_key(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.task_end("key-a", _outcome("t1"))
        journal.task_end("key-b", _outcome("t2"))
        outcomes = journal.outcomes_for("key-a")
        assert set(outcomes) == {"t1"}
        assert outcomes["t1"].replayed is True

    def test_later_records_win(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.task_end("k", _outcome("t1", status=QUARANTINED))
        journal.task_end("k", _outcome("t1", status=COMPLETED,
                                       result={"y": 4.0}))
        outcomes = journal.outcomes_for("k")
        assert outcomes["t1"].status == COMPLETED
        assert outcomes["t1"].result == {"y": 4.0}

    def test_ignores_non_task_records(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        campaign = _campaign()
        journal.begin(campaign, workers=2)
        journal.task_end(campaign.key, _outcome("t1"))
        journal.end(campaign.key, {COMPLETED: 1}, elapsed=0.1)
        assert set(journal.outcomes_for(campaign.key)) == {"t1"}


class TestJournalStatus:
    def test_empty_journal_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="no journal records"):
            journal_status(tmp_path / "missing.jsonl")

    def test_status_summarises_runs(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        campaign = _campaign(n=3, name="sweep")
        journal.begin(campaign, workers=2)
        journal.task_end(campaign.key,
                         _outcome(campaign.tasks[0].task_id))
        journal.interrupted(campaign.key, "SIGINT", completed=1,
                            remaining=2)
        journal.begin(campaign, workers=2, resumed=1)
        for task in campaign.tasks[1:]:
            journal.task_end(campaign.key, _outcome(task.task_id))
        journal.end(campaign.key, {COMPLETED: 3}, elapsed=0.5)

        status = journal_status(path)
        (entry,) = status["campaigns"]
        assert entry["campaign"] == "sweep"
        assert entry["runs"] == 2
        assert entry["ended"] is True
        assert entry["counts"][COMPLETED] == 3

        text = render_status(status)
        assert "sweep" in text
        assert "complete" in text
        assert "3/3 completed" in text

    def test_interrupted_run_is_visible(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        campaign = _campaign(n=2)
        journal.begin(campaign, workers=1)
        journal.task_end(campaign.key,
                         _outcome(campaign.tasks[0].task_id))
        journal.interrupted(campaign.key, "SIGTERM", completed=1,
                            remaining=1)
        (entry,) = journal_status(path)["campaigns"]
        assert entry["interrupted"] is True
        assert entry["ended"] is False
        assert "interrupted" in render_status(journal_status(path))


class TestDurability:
    def test_each_record_is_one_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"kind": "a", "blob": list(range(50))})
        journal.append({"kind": "b"})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)


class TestTornTailFuzz:
    """Crash-at-every-byte: truncating a valid journal anywhere inside
    its final record must cost at most that record on ``--resume``."""

    def _journal_with_tasks(self, tmp_path, n=3):
        campaign = _campaign(n=n)
        journal = Journal(tmp_path / "fuzz.jsonl")
        journal.begin(campaign, workers=1)
        for task in campaign.tasks:
            journal.task_end(campaign.key,
                             _outcome(task.task_id, elapsed=0.01))
        return campaign, journal

    def test_every_truncation_point_of_final_record(self, tmp_path):
        campaign, journal = self._journal_with_tasks(tmp_path)
        data = journal.path.read_bytes()
        # Byte offset where the final record starts (after the
        # second-to-last newline of the file).
        last_start = data.rstrip(b"\n").rfind(b"\n") + 1
        full = [r["task_id"] for r in journal.replay()
                if r.get("kind") == "task_end"]
        assert len(full) == 3
        for cut in range(last_start, len(data)):
            journal.path.write_bytes(data[:cut])
            records = journal.replay()
            kinds = [r.get("kind") for r in records]
            # Everything before the torn record is intact...
            assert kinds[0] == "campaign_begin", cut
            recovered = [r["task_id"] for r in records
                         if r.get("kind") == "task_end"]
            assert recovered in (full[:2], full), cut
            # ...and resume sees exactly those terminal outcomes.
            outcomes = journal.outcomes_for(campaign.key)
            assert sorted(outcomes) == sorted(recovered), cut

    def test_truncation_never_raises(self, tmp_path):
        _campaign_obj, journal = self._journal_with_tasks(tmp_path, n=1)
        data = journal.path.read_bytes()
        for cut in range(len(data) + 1):
            journal.path.write_bytes(data[:cut])
            journal.replay()                      # must not raise
