"""Per-task timeout overrides and the executor's serving-layer hooks."""

import time

import pytest

from repro.errors import ReproError
from repro.exec import (
    Campaign,
    CampaignOptions,
    make_task,
    run_campaign,
)
from repro.exec.campaign import QUARANTINED
from repro.exec.executor import CampaignInterrupted

DEMO_FN = "repro.exec.tasks:demo_task"
CHAOS_FN = "repro.exec.tasks:chaos_task"


class TestTimeoutOverride:
    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ReproError, match="timeout"):
            make_task({"x": 1.0}, timeout=0.0)

    def test_timeout_is_policy_not_identity(self):
        plain = make_task({"x": 1.0})
        with_timeout = make_task({"x": 1.0}, timeout=5.0)
        assert plain.task_id == with_timeout.task_id
        key_a = Campaign(name="c", fn=DEMO_FN, tasks=[plain]).key
        key_b = Campaign(name="c", fn=DEMO_FN, tasks=[with_timeout]).key
        assert key_a == key_b

    @pytest.mark.stress
    def test_per_task_timeout_fires_before_the_global_one(self):
        """A 0.75 s override must beat a 60 s global watchdog."""
        task = make_task({"index": 0, "fault": "worker_hang",
                          "hang": 120.0},
                         label="hang", timeout=0.75)
        campaign = Campaign(name="override", fn=CHAOS_FN, tasks=[task])
        start = time.monotonic()
        result = run_campaign(campaign, options=CampaignOptions(
            workers=1, task_timeout=60.0, max_retries=0,
            drain_grace=0.5))
        elapsed = time.monotonic() - start
        (outcome,) = result.quarantined
        assert outcome.status == QUARANTINED
        assert outcome.failures[0]["kind"] == "timeout"
        assert "0.75" in outcome.failures[0]["detail"]
        assert elapsed < 30.0    # nowhere near the 60 s global


class TestOnOutcomeTap:
    def test_tap_sees_every_terminal_outcome_in_order(self):
        seen = []
        campaign = Campaign(
            name="tap", fn=DEMO_FN,
            tasks=[make_task({"x": float(i)}) for i in range(3)])
        run_campaign(campaign, options=CampaignOptions(
            workers=0, on_outcome=seen.append))
        assert [o.result["x"] for o in seen] == [0.0, 1.0, 2.0]

    def test_broken_tap_does_not_break_the_run(self):
        def explode(outcome):
            raise RuntimeError("observer bug")

        campaign = Campaign(name="tap", fn=DEMO_FN,
                            tasks=[make_task({"x": 1.0})])
        result = run_campaign(campaign, options=CampaignOptions(
            workers=0, on_outcome=explode))
        assert result.counts()["completed"] == 1


class TestExternalStop:
    def test_stop_poll_interrupts_between_inline_tasks(self):
        level = {"value": 0}
        seen = []

        def tap(outcome):
            seen.append(outcome)
            level["value"] = 1    # request a graceful stop after task 1

        campaign = Campaign(
            name="stoppable", fn=DEMO_FN,
            tasks=[make_task({"x": float(i)}) for i in range(4)])
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_campaign(campaign, options=CampaignOptions(
                workers=0, on_outcome=tap,
                stop_requested=lambda: level["value"]))
        partial = excinfo.value.result
        assert partial.counts()["completed"] == len(seen) == 1

    def test_broken_stop_poll_is_ignored(self):
        def bad_poll():
            raise RuntimeError("poll bug")

        campaign = Campaign(name="c", fn=DEMO_FN,
                            tasks=[make_task({"x": 2.0})])
        result = run_campaign(campaign, options=CampaignOptions(
            workers=0, stop_requested=bad_poll))
        assert result.counts()["completed"] == 1
