"""Campaign data model: content addressing, task specs, outcomes."""

import pytest

from repro.exec import (
    COMPLETED,
    QUARANTINED,
    SKIPPED,
    Campaign,
    CampaignError,
    CampaignResult,
    TaskOutcome,
    make_task,
    resolve_task_fn,
    stable_hash,
)

DEMO_FN = "repro.exec.tasks:demo_task"


class TestStableHash:
    def test_deterministic(self):
        value = {"a": 1, "b": [2.5, "x"]}
        assert stable_hash(value) == stable_hash(dict(value))

    def test_key_order_insensitive(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert stable_hash({"x": 2.0}) != stable_hash({"x": 3.0})

    def test_length(self):
        assert len(stable_hash({"x": 1}, length=24)) == 24


class TestTaskSpec:
    def test_content_derived_id(self):
        a = make_task({"x": 1.0})
        b = make_task({"x": 1.0}, label="different label")
        assert a.task_id == b.task_id

    def test_different_params_different_id(self):
        assert make_task({"x": 1.0}).task_id != make_task({"x": 2.0}).task_id

    def test_explicit_id_wins(self):
        assert make_task({"x": 1.0}, task_id="tid").task_id == "tid"

    def test_non_json_params_rejected(self):
        with pytest.raises(CampaignError, match="JSON"):
            make_task({"x": object()})


class TestCampaign:
    def _campaign(self, n=3):
        return Campaign(name="demo", fn=DEMO_FN,
                        tasks=[make_task({"x": float(i)}) for i in range(n)])

    def test_len_and_lookup(self):
        c = self._campaign()
        assert len(c) == 3
        tid = c.tasks[1].task_id
        assert c.task(tid).params == {"x": 1.0}
        with pytest.raises(CampaignError, match="no task"):
            c.task("nope")

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(CampaignError, match="duplicate"):
            Campaign(name="dup", fn=DEMO_FN,
                     tasks=[make_task({"x": 1.0}), make_task({"x": 1.0})])

    def test_key_is_stable(self):
        assert self._campaign().key == self._campaign().key

    def test_key_tracks_definition(self):
        base = self._campaign()
        renamed = Campaign(name="other", fn=base.fn, tasks=base.tasks)
        fewer = Campaign(name=base.name, fn=base.fn, tasks=base.tasks[:-1])
        assert len({base.key, renamed.key, fewer.key}) == 3

    def test_resolve_fn(self):
        fn = self._campaign().resolve_fn()
        assert fn({"x": 3.0})["y"] == 9.0


class TestResolveTaskFn:
    def test_bad_shape(self):
        with pytest.raises(CampaignError, match="pkg.mod:fn"):
            resolve_task_fn("no-colon-here")

    def test_unknown_module(self):
        with pytest.raises(CampaignError, match="cannot import"):
            resolve_task_fn("repro.no_such_module:fn")

    def test_not_callable(self):
        with pytest.raises(CampaignError, match="callable"):
            resolve_task_fn("repro.exec.tasks:__doc__")


class TestTaskOutcome:
    def test_round_trip(self):
        outcome = TaskOutcome(task_id="t1", status=QUARANTINED, attempts=3,
                              elapsed=1.5, label="point 1",
                              failures=[{"kind": "crash", "detail": "x"}])
        back = TaskOutcome.from_dict(outcome.to_dict(), replayed=True)
        assert back.task_id == "t1"
        assert back.status == QUARANTINED
        assert back.attempts == 3
        assert back.failures == outcome.failures
        assert back.replayed is True
        assert outcome.replayed is False

    def test_from_dict_tolerates_missing_optionals(self):
        back = TaskOutcome.from_dict({"task_id": "t", "status": COMPLETED})
        assert back.attempts == 1
        assert back.failures == []


class TestCampaignResult:
    def _result(self):
        outcomes = {
            "a": TaskOutcome(task_id="a", status=COMPLETED,
                             result={"y": 1.0}, replayed=True),
            "b": TaskOutcome(task_id="b", status=SKIPPED,
                             skip={"error_type": "ConvergenceError",
                                   "reason": "no"}),
            "c": TaskOutcome(task_id="c", status=QUARANTINED, attempts=3,
                             failures=[{"kind": "timeout", "detail": "t"}]),
        }
        return CampaignResult(campaign="demo", key="k" * 24,
                              outcomes=outcomes,
                              order=["a", "b", "c", "d"], interrupted=True)

    def test_counts_and_views(self):
        result = self._result()
        assert result.counts() == {COMPLETED: 1, SKIPPED: 1, QUARANTINED: 1}
        assert [o.task_id for o in result.completed] == ["a"]
        assert result.remaining == ["d"]
        assert result.n_replayed == 1
        assert result.retries == 2
        assert result.results() == {"a": {"y": 1.0}}

    def test_summary_and_render(self):
        result = self._result()
        summary = result.summary()
        assert "1/4 completed" in summary
        assert "INTERRUPTED" in summary
        rendered = result.render()
        assert "quarantined" in rendered
        assert "resume with --resume" in rendered

    def test_to_dict_is_json_able(self):
        import json

        payload = self._result().to_dict()
        assert payload["kind"] == "campaign_result"
        json.dumps(payload)
