"""Executor chaos harness: N tasks in, N classified outcomes out."""

import pytest

from repro.recovery.faults import (
    EXEC_FAULT_EXPECTED,
    EXEC_FAULT_KINDS,
    build_executor_chaos_campaign,
    chaos_executor,
    render_exec_chaos,
)

#: Fault kinds that are safe to execute inline (no worker to sacrifice:
#: a crash fault would take the test process down with it).
INLINE_SAFE = ("task_error", "conv_skip", "slow_task")


class TestCampaignBuilder:
    def test_one_task_per_fault_plus_healthy(self, tmp_path):
        campaign = build_executor_chaos_campaign(tmp_path, n_healthy=3)
        assert len(campaign) == len(EXEC_FAULT_KINDS) + 3
        faults = [t.params.get("fault") for t in campaign.tasks]
        for kind in EXEC_FAULT_KINDS:
            assert kind in faults

    def test_scratch_namespaces_the_key(self, tmp_path):
        a = build_executor_chaos_campaign(tmp_path / "a")
        b = build_executor_chaos_campaign(tmp_path / "b")
        assert a.key != b.key

    def test_every_kind_has_an_expectation(self):
        for kind in EXEC_FAULT_KINDS:
            assert kind in EXEC_FAULT_EXPECTED


class TestInlineChaos:
    def test_classification_audit(self, tmp_path):
        """The inline-safe slice of the matrix, cheap enough for tier 1."""
        report = chaos_executor(tmp_path, n_healthy=2, workers=0,
                                kinds=INLINE_SAFE, task_timeout=None)
        assert report["ok"], render_exec_chaos(report)
        assert report["n_in"] == report["n_out"] == len(INLINE_SAFE) + 2
        assert report["counts"]["skipped"] == 1       # conv_skip
        assert report["counts"]["quarantined"] == 1   # task_error

    def test_render_mentions_verdict(self, tmp_path):
        report = chaos_executor(tmp_path, n_healthy=1, workers=0,
                                kinds=("conv_skip",), task_timeout=None)
        text = render_exec_chaos(report)
        assert "PASS" in text
        assert "conv_skip" in text


@pytest.mark.stress
class TestFullChaosMatrix:
    def test_all_faults_classified_with_spawn_workers(self, tmp_path):
        """The full matrix: crash, hang, slow, flaky, poison, skip."""
        report = chaos_executor(tmp_path, n_healthy=2, workers=2,
                                task_timeout=5.0, max_retries=1)
        assert report["ok"], render_exec_chaos(report)
        n = len(EXEC_FAULT_KINDS) + 2
        assert report["n_in"] == report["n_out"] == n
        by_label = {row["label"]: row for row in report["rows"]}
        assert by_label["fault:flaky_crash"]["attempts"] >= 2
        assert by_label["fault:worker_hang"]["actual"] == "quarantined"

    def test_journalled_chaos_resumes(self, tmp_path):
        """A second run over the same journal replays every verdict."""
        journal = tmp_path / "chaos.jsonl"
        first = chaos_executor(tmp_path, n_healthy=1, workers=2,
                               task_timeout=5.0, max_retries=1,
                               journal=journal)
        assert first["ok"]
        again = chaos_executor(tmp_path, n_healthy=1, workers=2,
                               task_timeout=5.0, max_retries=1,
                               journal=journal)
        assert again["ok"]
        assert again["counts"] == first["counts"]
