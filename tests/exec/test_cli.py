"""CLI surface of the campaign engine: ``repro campaign`` and friends."""

import json

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_campaign_actions_parse(self):
        args = build_parser().parse_args(
            ["campaign", "run", "demo", "--workers", "0",
             "--journal", "j.jsonl", "--resume"])
        assert args.command == "campaign"
        assert args.action == "run"
        assert args.name == "demo"
        assert args.workers == 0
        assert args.resume is True

    def test_resume_action_implies_resume(self):
        args = build_parser().parse_args(
            ["campaign", "resume", "demo", "--journal", "j.jsonl"])
        assert args.resume is True

    def test_campaign_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_figures_accept_campaign_flags(self):
        for command in ("fig7a", "fig7b", "fig7c", "fig8", "fig9",
                        "variability"):
            args = build_parser().parse_args(
                [command, "--workers", "2", "--journal", "j.jsonl"])
            assert args.workers == 2
            assert args.journal == "j.jsonl"

    def test_chaos_executor_flags(self):
        args = build_parser().parse_args(
            ["chaos", "--executor", "--workers", "3", "--scratch", "/tmp/x"])
        assert args.executor is True
        assert args.workers == 3


class TestCampaignCommand:
    def test_list(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "store-yield" in out

    def test_unknown_name_is_usage_error(self, capsys):
        assert main(["campaign", "run", "nope", "--workers", "0"]) == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_resume_without_journal_is_usage_error(self, capsys):
        assert main(["campaign", "resume", "demo"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_run_status_resume_round_trip(self, tmp_path, capsys):
        journal = str(tmp_path / "demo.jsonl")
        assert main(["campaign", "run", "demo", "--tasks", "3",
                     "--workers", "0", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "3/3 completed" in out

        assert main(["campaign", "status", journal]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "complete" in out

        assert main(["campaign", "resume", "demo", "--tasks", "3",
                     "--workers", "0", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "3 replayed from journal" in out

    def test_status_on_missing_journal_is_usage_error(self, tmp_path,
                                                      capsys):
        missing = str(tmp_path / "none.jsonl")
        assert main(["campaign", "status", missing]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_quarantine_exits_nonzero(self, tmp_path, capsys, monkeypatch):
        """A campaign ending with quarantined tasks fails the exit code."""
        from repro.exec import Campaign, make_task, registry

        def build_poison(options):
            return Campaign(
                name="poison", fn="repro.exec.tasks:chaos_task",
                tasks=[make_task({"index": 0, "fault": "task_error",
                                  "scratch": str(tmp_path)})])

        monkeypatch.setitem(registry._BUILDERS, "poison", build_poison)
        assert main(["campaign", "run", "poison", "--workers", "0"]) == 1
        assert "quarantined" in capsys.readouterr().out


class TestChaosExecutorCommand:
    def test_inline_matrix_and_json_report(self, tmp_path, capsys,
                                           monkeypatch):
        """--executor wires chaos_executor + render and the exit code.

        The CLI handler is exercised with the inline-safe fault subset
        (spawn faults belong to the stress job); ``chaos_executor`` is
        wrapped so the full matrix never runs in tier 1.
        """
        import repro.recovery.faults as faults

        real = faults.chaos_executor

        def inline_only(scratch, **kwargs):
            kwargs.update(workers=0, task_timeout=None,
                          kinds=("task_error", "conv_skip"))
            return real(scratch, **kwargs)

        monkeypatch.setattr(faults, "chaos_executor", inline_only)
        assert main(["chaos", "--executor", "--scratch", str(tmp_path),
                     "--faults", "1",
                     "--json", str(tmp_path / "report.json")]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["kind"] == "exec_chaos_report"
        assert report["ok"] is True


@pytest.mark.stress
class TestChaosExecutorSpawn:
    def test_full_cli_run(self, tmp_path, capsys):
        assert main(["chaos", "--executor", "--scratch", str(tmp_path),
                     "--faults", "1", "--workers", "2"]) == 0
        assert "PASS" in capsys.readouterr().out
