"""Named campaign builders behind ``repro campaign run``."""

import pytest

from repro.exec import CampaignError, available_campaigns, build_campaign


class TestRegistry:
    def test_catalog(self):
        names = available_campaigns()
        assert "demo" in names
        assert "store-yield" in names
        assert "snm" in names
        assert "chaos" in names

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(CampaignError, match="available:"):
            build_campaign("no-such-campaign")

    def test_demo_builder_options(self):
        campaign = build_campaign("demo", tasks=3)
        assert len(campaign) == 3
        assert campaign.name == "demo"

    def test_same_options_same_key(self):
        """Content addressing is what makes CLI --resume line up."""
        assert build_campaign("demo", tasks=3).key == \
            build_campaign("demo", tasks=3).key
        assert build_campaign("demo", tasks=3).key != \
            build_campaign("demo", tasks=4).key

    def test_store_yield_builder(self):
        campaign = build_campaign("store-yield", samples=5, seed=1)
        assert len(campaign) == 5

    def test_chaos_builder_requires_scratch(self):
        with pytest.raises(CampaignError, match="scratch"):
            build_campaign("chaos")

    def test_chaos_builder(self, tmp_path):
        campaign = build_campaign("chaos", scratch=str(tmp_path))
        assert campaign.name == "exec-chaos"


class TestTaskFunctionRefs:
    """The static _TASK_FNS table must track the builders: the RV6xx
    purity lint seeds its task roots from it without building
    campaigns, so a drifted entry silently un-lints a campaign."""

    def test_table_covers_every_builder(self):
        from repro.exec.registry import _TASK_FNS
        assert sorted(_TASK_FNS) == available_campaigns()

    def test_refs_match_built_campaigns(self, tmp_path):
        from repro.exec.registry import _TASK_FNS
        built = {
            "demo": build_campaign("demo", tasks=1),
            "store-yield": build_campaign("store-yield", samples=1),
            "snm": build_campaign("snm", samples=1),
            "chaos": build_campaign("chaos", scratch=str(tmp_path),
                                    tasks=1),
        }
        for name, campaign in built.items():
            assert campaign.fn == _TASK_FNS[name], (
                f"{name}: registry table says {_TASK_FNS[name]!r} but "
                f"the builder produced {campaign.fn!r}")

    def test_refs_resolve_to_real_functions(self):
        import importlib

        from repro.exec.registry import task_function_refs
        for ref in task_function_refs():
            modname, _, fn = ref.partition(":")
            module = importlib.import_module(modname)
            assert callable(getattr(module, fn)), ref
