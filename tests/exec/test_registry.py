"""Named campaign builders behind ``repro campaign run``."""

import pytest

from repro.exec import CampaignError, available_campaigns, build_campaign


class TestRegistry:
    def test_catalog(self):
        names = available_campaigns()
        assert "demo" in names
        assert "store-yield" in names
        assert "snm" in names
        assert "chaos" in names

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(CampaignError, match="available:"):
            build_campaign("no-such-campaign")

    def test_demo_builder_options(self):
        campaign = build_campaign("demo", tasks=3)
        assert len(campaign) == 3
        assert campaign.name == "demo"

    def test_same_options_same_key(self):
        """Content addressing is what makes CLI --resume line up."""
        assert build_campaign("demo", tasks=3).key == \
            build_campaign("demo", tasks=3).key
        assert build_campaign("demo", tasks=3).key != \
            build_campaign("demo", tasks=4).key

    def test_store_yield_builder(self):
        campaign = build_campaign("store-yield", samples=5, seed=1)
        assert len(campaign) == 5

    def test_chaos_builder_requires_scratch(self):
        with pytest.raises(CampaignError, match="scratch"):
            build_campaign("chaos")

    def test_chaos_builder(self, tmp_path):
        campaign = build_campaign("chaos", scratch=str(tmp_path))
        assert campaign.name == "exec-chaos"
