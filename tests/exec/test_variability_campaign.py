"""Campaign-routed Monte Carlo must match the serial loops bit-for-bit.

The per-sample seeding (``sample_rng``) makes each sample's variates a
function of its index alone, so the serial loop, the campaign executor
and a journal resume all see identical draws — the property that makes
``--workers`` and ``--resume`` safe for published statistics.
"""

import numpy as np
import pytest

from repro.cells import PowerDomain
from repro.characterize.variability import (
    read_snm_distribution,
    sample_rng,
    snm_campaign,
    store_yield_analysis,
    store_yield_campaign,
)
from repro.pg.modes import OperatingConditions

COND = OperatingConditions()
DOMAIN = PowerDomain(64, 32)


class TestSampleRng:
    def test_streams_depend_only_on_index(self):
        a = sample_rng(2015, 3).standard_normal(4)
        b = sample_rng(2015, 3).standard_normal(4)
        c = sample_rng(2015, 4).standard_normal(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestCampaignBuilders:
    def test_store_yield_campaign_shape(self):
        campaign = store_yield_campaign(COND, DOMAIN, n_samples=5, seed=7)
        assert len(campaign) == 5
        assert campaign.fn == "repro.exec.tasks:store_yield_sample_task"
        # same definition -> same key; different seed -> different key
        assert campaign.key == store_yield_campaign(
            COND, DOMAIN, n_samples=5, seed=7).key
        assert campaign.key != store_yield_campaign(
            COND, DOMAIN, n_samples=5, seed=8).key

    def test_snm_campaign_shape(self):
        campaign = snm_campaign(COND, n_samples=3, seed=7)
        assert len(campaign) == 3
        assert campaign.fn == "repro.exec.tasks:snm_sample_task"


class TestStoreYieldEquivalence:
    def test_campaign_matches_serial(self):
        serial = store_yield_analysis(COND, DOMAIN, n_samples=4, seed=11)
        routed = store_yield_analysis(COND, DOMAIN, n_samples=4, seed=11,
                                      workers=0)
        assert np.array_equal(serial.margins, routed.margins)

    def test_journalled_run_and_replay_match_serial(self, tmp_path):
        journal = tmp_path / "yield.jsonl"
        serial = store_yield_analysis(COND, DOMAIN, n_samples=4, seed=11)
        first = store_yield_analysis(COND, DOMAIN, n_samples=4, seed=11,
                                     workers=0, journal=journal)
        replayed = store_yield_analysis(COND, DOMAIN, n_samples=4, seed=11,
                                        workers=0, journal=journal)
        assert np.array_equal(serial.margins, first.margins)
        assert np.array_equal(serial.margins, replayed.margins)


class TestSnmEquivalence:
    def test_campaign_matches_serial(self):
        serial = read_snm_distribution(COND, n_samples=3, seed=5)
        routed = read_snm_distribution(COND, n_samples=3, seed=5,
                                       workers=0)
        assert np.array_equal(serial.snm, routed.snm)


@pytest.mark.stress
class TestSpawnEquivalence:
    """Same equality through real spawn workers (slower: worker imports)."""

    def test_store_yield_parallel_matches_serial(self):
        serial = store_yield_analysis(COND, DOMAIN, n_samples=6, seed=7)
        parallel = store_yield_analysis(COND, DOMAIN, n_samples=6, seed=7,
                                        workers=2)
        assert np.array_equal(serial.margins, parallel.margins)
