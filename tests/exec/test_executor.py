"""Executor semantics: classification, retry policy, resume, pooling."""

import json

import pytest

from repro.errors import ReproError
from repro.exec import (
    COMPLETED,
    QUARANTINED,
    SKIPPED,
    Campaign,
    CampaignError,
    CampaignOptions,
    Journal,
    TaskOutcome,
    make_task,
    retry_delay,
    run_campaign,
)

DEMO_FN = "repro.exec.tasks:demo_task"
CHAOS_FN = "repro.exec.tasks:chaos_task"


def demo_campaign(n=4, name="demo"):
    return Campaign(
        name=name, fn=DEMO_FN,
        tasks=[make_task({"x": float(i)}, label=f"square {i}")
               for i in range(n)],
    )


def chaos_campaign(scratch, kinds, name="inline-chaos"):
    tasks = [
        make_task({"index": i, "fault": kind, "scratch": str(scratch)},
                  label=f"fault:{kind}" if kind else f"healthy {i}")
        for i, kind in enumerate(kinds)
    ]
    return Campaign(name=name, fn=CHAOS_FN, tasks=tasks)


class TestOptions:
    def test_negative_workers_rejected(self):
        with pytest.raises(ReproError, match="workers"):
            CampaignOptions(workers=-1)

    def test_negative_retries_rejected(self):
        with pytest.raises(ReproError, match="max_retries"):
            CampaignOptions(max_retries=-1)


class TestRetryDelay:
    def test_deterministic_per_task_and_attempt(self):
        opts = CampaignOptions()
        assert retry_delay(opts, "tid", 1) == retry_delay(opts, "tid", 1)
        assert retry_delay(opts, "tid", 1) != retry_delay(opts, "other", 1)

    def test_jitter_bounded(self):
        opts = CampaignOptions(backoff_base=0.25, backoff_cap=5.0)
        delay = retry_delay(opts, "tid", 1)
        assert 0.125 <= delay < 0.375    # base * [0.5, 1.5)

    def test_backoff_grows_and_caps(self):
        opts = CampaignOptions(backoff_base=0.25, backoff_cap=5.0)
        assert retry_delay(opts, "tid", 20) <= opts.backoff_cap


class TestInline:
    OPTS = dict(workers=0)

    def test_completes_all(self):
        result = run_campaign(demo_campaign(),
                              options=CampaignOptions(**self.OPTS))
        assert result.counts() == {COMPLETED: 4, SKIPPED: 0, QUARANTINED: 0}
        assert sorted(o.result["y"] for o in result.completed) == \
            [0.0, 1.0, 4.0, 9.0]
        assert not result.interrupted

    def test_analysis_error_recorded_and_skipped(self, tmp_path):
        """A deterministic solver failure is skipped, never retried."""
        campaign = chaos_campaign(tmp_path, ["conv_skip", None])
        result = run_campaign(campaign,
                              options=CampaignOptions(**self.OPTS))
        (skipped,) = result.skipped
        assert skipped.attempts == 1
        assert skipped.skip["error_type"] == "ConvergenceError"
        assert len(result.completed) == 1

    def test_poison_task_quarantined_immediately(self, tmp_path):
        campaign = chaos_campaign(tmp_path, ["task_error", None])
        result = run_campaign(campaign,
                              options=CampaignOptions(**self.OPTS))
        (poisoned,) = result.quarantined
        assert poisoned.attempts == 1
        assert poisoned.failures[-1]["kind"] == "poison"
        assert "RuntimeError" in poisoned.failures[-1]["detail"]
        assert len(result.completed) == 1

    def test_bad_fn_reference_fails_fast(self):
        campaign = Campaign(name="bad", fn="repro.exec.tasks:no_such_fn",
                            tasks=[make_task({"x": 1.0})])
        with pytest.raises(CampaignError, match="callable"):
            run_campaign(campaign, options=CampaignOptions(**self.OPTS))

    def test_forensics_dumped_on_quarantine(self, tmp_path):
        campaign = chaos_campaign(tmp_path, ["task_error"])
        forensics = tmp_path / "forensics"
        run_campaign(campaign, options=CampaignOptions(
            workers=0, forensics_dir=forensics))
        (dump,) = forensics.glob("*.json")
        payload = json.loads(dump.read_text())
        assert payload["kind"] == "task_failure"
        assert payload["status"] == QUARANTINED


class TestResume:
    def test_second_run_replays_everything(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        campaign = demo_campaign()
        first = run_campaign(campaign, journal=journal,
                             options=CampaignOptions(workers=0))
        second = run_campaign(campaign, journal=journal,
                              options=CampaignOptions(workers=0,
                                                      resume=True))
        assert second.n_replayed == 4
        assert second.results() == first.results()

    def test_resume_executes_only_missing_tasks(self, tmp_path):
        campaign = demo_campaign()
        journal = Journal(tmp_path / "j.jsonl")
        done = campaign.tasks[0]
        journal.task_end(campaign.key, TaskOutcome(
            task_id=done.task_id, status=COMPLETED,
            result={"x": 0.0, "y": 0.0}))
        result = run_campaign(campaign, journal=journal,
                              options=CampaignOptions(workers=0,
                                                      resume=True))
        assert result.n_replayed == 1
        assert result.counts()[COMPLETED] == 4
        executed = [o for o in result.completed if not o.replayed]
        assert len(executed) == 3

    def test_resume_ignores_other_campaign_keys(self, tmp_path):
        campaign = demo_campaign()
        journal = Journal(tmp_path / "j.jsonl")
        journal.task_end("some-other-campaign-key", TaskOutcome(
            task_id=campaign.tasks[0].task_id, status=COMPLETED,
            result={"x": 99.0, "y": 99.0}))
        result = run_campaign(campaign, journal=journal,
                              options=CampaignOptions(workers=0,
                                                      resume=True))
        assert result.n_replayed == 0
        assert result.results()[campaign.tasks[0].task_id]["y"] == 0.0

    def test_without_resume_flag_journal_is_write_only(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        campaign = demo_campaign(n=2)
        run_campaign(campaign, journal=journal,
                     options=CampaignOptions(workers=0))
        again = run_campaign(campaign, journal=journal,
                             options=CampaignOptions(workers=0))
        assert again.n_replayed == 0


class TestPooled:
    """Spawn-worker pool; kept small because each worker pays an import."""

    def test_parallel_matches_inline(self):
        campaign = demo_campaign(n=6, name="pooled-demo")
        inline = run_campaign(campaign, options=CampaignOptions(workers=0))
        pooled = run_campaign(campaign, options=CampaignOptions(workers=2))
        assert pooled.results() == inline.results()
        assert pooled.counts()[COMPLETED] == 6

    def test_flaky_crash_retried_to_completion(self, tmp_path):
        """A worker crash consumes a retry, not the campaign."""
        campaign = chaos_campaign(tmp_path, ["flaky_crash"], name="flaky")
        result = run_campaign(campaign, options=CampaignOptions(
            workers=1, max_retries=2, backoff_base=0.05, backoff_cap=0.2))
        (outcome,) = result.completed
        assert outcome.attempts == 2
        assert outcome.failures[0]["kind"] == "crash"
