"""The shared atomic-write helper: envelope semantics, crash hooks,
scratch hygiene."""

import json
import os

import pytest

from repro.exec import atomicio
from repro.exec.atomicio import CRASHPOINTS, atomic_write_text


@pytest.fixture(autouse=True)
def _no_leaked_hook():
    yield
    atomicio._CRASH_HOOK = None


def test_writes_exact_text(tmp_path):
    target = tmp_path / "cache.json"
    payload = json.dumps({"a": 1}, indent=2, sort_keys=True)
    atomic_write_text(target, payload)
    assert target.read_text() == payload


def test_overwrites_in_one_step(tmp_path):
    target = tmp_path / "cache.json"
    atomic_write_text(target, "old")
    atomic_write_text(target, "new")
    assert target.read_text() == "new"


def test_no_scratch_files_left(tmp_path):
    atomic_write_text(tmp_path / "cache.json", "x")
    assert sorted(p.name for p in tmp_path.iterdir()) == ["cache.json"]


def test_scratch_cleaned_on_failure(tmp_path):
    def boom(point):
        if point == "pre-rename":
            raise RuntimeError("injected")

    atomicio._CRASH_HOOK = boom
    with pytest.raises(RuntimeError):
        atomic_write_text(tmp_path / "cache.json", "x")
    assert list(tmp_path.iterdir()) == []


def test_crash_hook_sees_every_point(tmp_path):
    seen = []
    atomicio._CRASH_HOOK = seen.append
    atomic_write_text(tmp_path / "cache.json", "x")
    assert tuple(seen) == CRASHPOINTS


def test_encoding_respected(tmp_path):
    target = tmp_path / "cache.txt"
    atomic_write_text(target, "café", encoding="latin-1")
    assert target.read_bytes() == b"caf\xe9"


def test_non_durable_skips_fsync(tmp_path, monkeypatch):
    calls = []
    real = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
    try:
        atomic_write_text(tmp_path / "scratch.txt", "x", durable=False)
        assert calls == []
        atomic_write_text(tmp_path / "scratch.txt", "y")
        assert len(calls) == 1
    finally:
        monkeypatch.setattr(os, "fsync", real)
