"""Tests for the experiment context (memoisation and overrides)."""

import pytest

from repro.cells import PowerDomain
from repro.devices.mtj import MTJ_FIG9B
from repro.experiments import ExperimentContext
from repro.pg.modes import OperatingConditions


@pytest.fixture()
def fresh_ctx(tmp_path):
    return ExperimentContext(cache_dir=tmp_path)


class TestMemoisation:
    def test_same_inputs_same_object(self, ctx):
        domain = PowerDomain(64, 32)
        a = ctx.characterization("nv", domain)
        b = ctx.characterization("nv", domain)
        assert a is b

    def test_kind_distinguished(self, ctx):
        domain = PowerDomain(64, 32)
        assert ctx.characterization("nv", domain) is not \
            ctx.characterization("6t", domain)

    def test_domain_distinguished(self, ctx):
        a = ctx.characterization("nv", PowerDomain(64, 32))
        b = ctx.characterization("nv", PowerDomain(128, 32))
        assert a is not b
        assert a.n_wordlines != b.n_wordlines

    def test_cond_override_distinguished(self, ctx):
        domain = PowerDomain(64, 32)
        base = ctx.characterization("nv", domain)
        fast = ctx.characterization("nv", domain,
                                    cond=ctx.cond.fast_variant())
        assert fast is not base
        assert fast.frequency == 1e9

    def test_mtj_override_distinguished(self, ctx):
        domain = PowerDomain(64, 32)
        base = ctx.characterization("nv", domain)
        relaxed = ctx.characterization("nv", domain,
                                       mtj_params=MTJ_FIG9B)
        assert relaxed is not base


class TestEnergyModelFactory:
    def test_model_uses_matching_domain(self, ctx):
        domain = PowerDomain(64, 32)
        model = ctx.energy_model(domain)
        assert model.domain is domain
        assert model.nv.n_wordlines == 64
        assert model.volatile.kind == "6t"

    def test_model_cond_override(self, ctx):
        domain = PowerDomain(64, 32)
        fast = ctx.energy_model(domain, cond=ctx.cond.fast_variant())
        assert fast.cond.frequency == 1e9


class TestDefaults:
    def test_default_conditions_are_table1(self):
        ctx = ExperimentContext()
        assert ctx.cond == OperatingConditions()

    def test_disk_cache_round_trip(self, fresh_ctx, tmp_path):
        domain = PowerDomain(32, 32)
        first = fresh_ctx.characterization("6t", domain)
        # A new context with the same cache dir loads from disk.
        clone = ExperimentContext(cache_dir=tmp_path)
        second = clone.characterization("6t", domain)
        assert second == first
        assert any(tmp_path.iterdir())
