"""Tests for the consolidated reproduction report."""

import pytest

from repro.experiments.summary import ClaimCheck, SummaryResult, run_summary


@pytest.fixture(scope="module")
def scorecard(ctx):
    return run_summary(ctx, include_figures=False)


class TestScorecard:
    def test_every_claim_passes(self, scorecard):
        failed = [c.claim for c in scorecard.claims if not c.passed]
        assert failed == []
        assert scorecard.all_passed

    def test_claim_inventory(self, scorecard):
        text = " ".join(c.claim for c in scorecard.claims)
        for phrase in ("asymptotically", "NOF", "super cutoff",
                       "store-free", "domain depth"):
            assert phrase in text
        assert len(scorecard.claims) >= 9

    def test_measured_strings_nonempty(self, scorecard):
        assert all(c.measured for c in scorecard.claims)

    def test_render_scorecard(self, scorecard):
        text = scorecard.render()
        assert "Headline-claim scorecard" in text
        assert "PASS" in text
        assert "FAIL" not in text

    def test_render_flags_failures(self):
        result = SummaryResult(claims=[
            ClaimCheck("it works", "no it doesn't", False),
        ])
        assert "FAIL" in result.render()
        assert not result.all_passed


class TestFullReport:
    def test_sections_present(self, ctx):
        result = run_summary(ctx, include_figures=True)
        titles = [t for t, _ in result.sections]
        for expected in ("Table I", "Fig. 1", "Fig. 3", "Fig. 4",
                         "Fig. 5", "Fig. 7(a)", "Fig. 7(b)", "Fig. 8",
                         "Fig. 9(a)", "Fig. 9(b)"):
            assert expected in titles
        text = result.render()
        assert "Fig. 9(b): BET vs domain depth N" in text
