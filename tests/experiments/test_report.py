"""Tests for the report rendering helpers."""

from repro.experiments.report import eng, render_table, series_block


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(("a", "bbbb"), [(1, 2.5), (33, 4.0)],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # All rows share the same width.
        assert len({len(line) for line in lines[1:]}) == 1

    def test_float_formatting(self):
        text = render_table(("x",), [(1.23456789e-13,)])
        assert "1.235e-13" in text

    def test_no_title(self):
        text = render_table(("x",), [(1,)])
        assert text.splitlines()[0].strip() == "x"


class TestEng:
    def test_eng_wrapper(self):
        assert eng(2.5e-12, "J") == "2.50 pJ"


class TestSeriesBlock:
    def test_block_structure(self):
        text = series_block("curve", [1e-9, 2e-9], [1e-12, 2e-12],
                            "s", "J")
        lines = text.splitlines()
        assert lines[0] == "# curve"
        assert len(lines) == 3
        assert "1.00 ns" in lines[1]
        assert "2.00 pJ" in lines[2]
