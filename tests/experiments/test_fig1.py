"""Tests for the Fig. 1 power-timeline experiment."""

import numpy as np
import pytest

from repro.cells import PowerDomain
from repro.experiments.fig1 import PowerTimeline, run_fig1
from repro.pg.sequences import Architecture

SMALL = PowerDomain(64, 32)


@pytest.fixture(scope="module")
def result(ctx):
    return run_fig1(ctx, domain=SMALL)


class TestTimelines:
    def test_both_architectures_present(self, result):
        archs = {tl.architecture for tl in result.timelines}
        assert archs == {Architecture.NVPG, Architecture.NOF}

    def test_levels_match_windows(self, result):
        for tl in result.timelines:
            assert len(tl.levels) == len(tl.labels)
            assert len(tl.times) == len(tl.levels) + 1
            assert np.all(np.diff(tl.times) >= 0)
            assert np.all(tl.levels >= 0)

    def test_nof_average_exceeds_nvpg(self, result):
        by_arch = {tl.architecture: tl for tl in result.timelines}
        assert by_arch[Architecture.NOF].average_power() > \
            by_arch[Architecture.NVPG].average_power()

    def test_shutdown_is_the_floor(self, result):
        for tl in result.timelines:
            shutdown_levels = [
                lvl for lvl, lab in zip(tl.levels, tl.labels)
                if lab == "shutdown"
            ]
            assert shutdown_levels
            assert min(shutdown_levels) == pytest.approx(min(tl.levels))

    def test_store_is_a_spike(self, result):
        by_arch = {tl.architecture: tl for tl in result.timelines}
        nvpg = by_arch[Architecture.NVPG]
        store = [lvl for lvl, lab in zip(nvpg.levels, nvpg.labels)
                 if lab.startswith("store")]
        normal = [lvl for lvl, lab in zip(nvpg.levels, nvpg.labels)
                  if lab == "sleep"]
        assert min(store) > 10 * max(normal)

    def test_render_contains_staircase(self, result):
        text = result.render()
        assert "NVPG" in text and "NOF" in text
        assert "#" in text and "|" in text

    def test_average_power_consistent(self, result):
        tl = result.timelines[0]
        widths = np.diff(tl.times)
        manual = float(np.sum(widths * tl.levels) / tl.times[-1])
        assert tl.average_power() == pytest.approx(manual)
