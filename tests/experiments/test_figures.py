"""Smoke + shape tests for every experiment module.

The deep quantitative assertions about the paper's claims live in
``tests/integration/test_paper_claims.py``; here each figure runner is
checked for structure, rendering and internal consistency at reduced
resolution so the whole file stays fast.
"""

import numpy as np
import pytest

from repro.cells import PowerDomain
from repro.experiments import (
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig7a,
    run_fig7b,
    run_fig7c,
    run_fig8,
    run_fig9,
    run_table1,
)
from repro.pg.sequences import Architecture

SMALL_DOMAIN = PowerDomain(64, 32)
N_RW = (1, 10, 100, 1000)


class TestTable1:
    def test_runs_and_renders(self):
        result = run_table1()
        text = result.render()
        assert "Table I" in text
        # Spot-check paper constants are reproduced verbatim.
        assert "0.65 V" in text          # V_SR
        assert "20.00 nm" in text        # L and MTJ diameter
        assert "6.37 kohm" in text       # R_P
        assert "12.73 kohm" in text      # R_AP
        assert "15.71 uA" in text        # Ic

    def test_row_count(self):
        assert len(run_table1().rows) > 20


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(domain=SMALL_DOMAIN, points=11)

    def test_panels_present(self, result):
        assert len(result.leakage.v_ctrl) == 11
        assert len(result.store_h.bias) == 11
        assert len(result.store_l.bias) == 11

    def test_render_contains_design_points(self, result):
        text = result.render()
        assert "Fig. 3(a)" in text
        assert "optimal V_CTRL" in text
        assert "x Ic" in text


class TestFig4:
    def test_shape(self):
        result = run_fig4(domain=SMALL_DOMAIN, nfsw_values=(1, 3, 5, 7))
        assert list(result.sweep.nfsw) == [1, 3, 5, 7]
        assert "Fig. 4" in result.render()
        assert result.nfsw_for_target is not None


class TestFig5:
    def test_timelines(self):
        result = run_fig5()
        assert len(result.timelines) == 3
        text = result.render()
        for arch in ("OSR", "NVPG", "NOF"):
            assert arch in text
        # NOF pass is longer than OSR's by wake+store overheads.
        assert result.durations[2] > result.durations[0]


class TestFig7:
    def test_fig7a_families(self, ctx):
        result = run_fig7a(ctx, domain=SMALL_DOMAIN, n_rw_values=N_RW,
                           t_sl_values=(0.0, 100e-9))
        assert len(result.sweeps) == 2
        sweep = result.sweeps[0]
        assert set(sweep.e_cyc) == {"osr", "nvpg", "nof"}
        assert "E_cyc" in result.render()

    def test_fig7a_larger_t_sl_raises_energy(self, ctx):
        result = run_fig7a(ctx, domain=SMALL_DOMAIN, n_rw_values=(10,),
                           t_sl_values=(0.0, 1e-6))
        e0 = result.sweeps[0].e_cyc["osr"][0]
        e1 = result.sweeps[1].e_cyc["osr"][0]
        assert e1 > e0

    def test_fig7b_domain_family(self, ctx):
        result = run_fig7b(ctx, n_values=(32, 128), n_rw_values=(1, 10))
        assert len(result.sweeps) == 2
        assert "128 B" in result.sweeps[0].label

    def test_fig7c_t_sd_family(self, ctx):
        result = run_fig7c(ctx, domain=SMALL_DOMAIN, n_rw_values=(10,),
                           t_sd_values=(10e-6, 1e-3))
        e_small = result.sweeps[0].e_cyc["nvpg"][0]
        e_large = result.sweeps[1].e_cyc["nvpg"][0]
        assert e_large > e_small

    def test_rows_match_grid(self, ctx):
        result = run_fig7a(ctx, domain=SMALL_DOMAIN, n_rw_values=N_RW,
                           t_sl_values=(0.0,))
        rows = result.sweeps[0].rows()
        assert len(rows) == len(N_RW)
        assert all(len(r) == 4 for r in rows)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return run_fig8(ctx, domain=SMALL_DOMAIN, n_rw_values=(10, 100),
                        t_sd_points=41)

    def test_curve_inventory(self, result):
        # (NVPG + NOF) x two n_RW values.
        assert len(result.curves) == 4

    def test_normalised_curves_cross_unity(self, result):
        for curve in result.curves:
            if curve.bet_numeric is None:
                continue
            norm = curve.e_cyc_normalised
            assert norm[0] > 1.0
            assert norm[-1] < 1.0

    def test_closed_form_matches_numeric(self, result):
        for curve in result.curves:
            if curve.bet_numeric is None:
                continue
            assert curve.bet_numeric == pytest.approx(
                curve.bet_closed_form.bet, rel=0.05
            )

    def test_render(self, result):
        text = result.render()
        assert "Fig. 8(a)" in text
        assert "BET" in text


class TestFig9:
    def test_panel_a_series(self, ctx):
        result = run_fig9(ctx, panel="a", n_values=(32, 128),
                          n_rw_values=(10,))
        assert result.panel == "a"
        labels = [s.label for s in result.series]
        assert "n_RW=10" in labels
        assert "n_RW=10 (store-free)" in labels
        assert "Fig. 9(a)" in result.render()

    def test_store_free_always_shorter(self, ctx):
        result = run_fig9(ctx, panel="a", n_values=(32, 256),
                          n_rw_values=(10,))
        by_label = {s.label: s.bet for s in result.series}
        assert np.all(by_label["n_RW=10 (store-free)"]
                      < by_label["n_RW=10"])

    def test_bad_panel_rejected(self, ctx):
        with pytest.raises(ValueError):
            run_fig9(ctx, panel="c")
