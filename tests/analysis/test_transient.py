"""Tests for the adaptive transient integrator."""

import numpy as np
import pytest

from repro.errors import TimestepError
from repro.analysis import transient
from repro.analysis.transient import TransientOptions, _collect_breakpoints
from repro.circuit import (
    Capacitor,
    Circuit,
    Pulse,
    Resistor,
    Step,
    VoltageSource,
)


def _rc(waveform, r=1e3, cap=1e-12):
    c = Circuit()
    c.add(VoltageSource("v", "in", "0", waveform=waveform))
    c.add(Resistor("r", "in", "out", r))
    c.add(Capacitor("c", "out", "0", cap))
    return c


class TestBasics:
    def test_bad_span_rejected(self):
        c = _rc(Step(0, 1, 0, 1e-12))
        with pytest.raises(TimestepError):
            transient(c, 0.0)
        with pytest.raises(TimestepError):
            transient(c, 1e-9, t_start=2e-9)

    def test_result_shape(self):
        c = _rc(Step(0, 1, 1e-9, 1e-12))
        res = transient(c, 5e-9)
        assert res.time[0] == 0.0
        assert res.time[-1] == pytest.approx(5e-9, rel=1e-9)
        assert np.all(np.diff(res.time) > 0)
        assert res.states.shape == (len(res.time), c.size)

    def test_starts_from_operating_point(self):
        c = _rc(Step(0.5, 1.0, 2e-9, 1e-12))
        res = transient(c, 1e-9)
        # Before the step the cap sits at the DC solution (0.5 V).
        assert res.voltage("out")[0] == pytest.approx(0.5, rel=1e-3)

    def test_ic_respected(self):
        c = _rc(Step(0.0, 0.0, 1e-9, 1e-12))
        res = transient(c, 3e-9, ic={"out": 0.8})
        # No drive: the cap discharges from the IC through R.
        assert res.voltage("out")[0] == pytest.approx(0.8, rel=1e-2)
        assert res.voltage("out")[-1] < 0.15

    def test_stats_recorded(self):
        c = _rc(Step(0, 1, 1e-9, 1e-12))
        res = transient(c, 5e-9)
        assert res.stats["accepted_steps"] == len(res.time) - 1


class TestAccuracy:
    def test_rc_step_response(self):
        tau = 1e-9
        c = _rc(Step(0, 1, 0, 1e-13), r=1e3, cap=1e-12)
        res = transient(c, 6 * tau)
        for t in (0.5e-9, 1e-9, 3e-9):
            assert res.sample("out", t) == pytest.approx(
                1 - np.exp(-t / tau), rel=8e-3
            )

    def test_periodic_pulse_train(self):
        wave = Pulse(0, 1, delay=0.0, rise=50e-12, fall=50e-12,
                     width=400e-12, period=1e-9)
        c = _rc(wave, r=100, cap=1e-13)   # tau = 10 ps, follows the pulse
        res = transient(c, 4e-9)
        assert res.sample("out", 0.25e-9) == pytest.approx(1.0, abs=2e-2)
        assert res.sample("out", 0.9e-9) == pytest.approx(0.0, abs=2e-2)
        assert res.sample("out", 2.25e-9) == pytest.approx(1.0, abs=2e-2)

    def test_tight_tolerance_improves_accuracy(self):
        tau = 1e-9
        c = _rc(Step(0, 1, 0, 1e-13))
        loose = transient(c, 3 * tau,
                          options=TransientOptions(lte_reltol=3e-2))
        c2 = _rc(Step(0, 1, 0, 1e-13))
        tight = transient(c2, 3 * tau,
                          options=TransientOptions(lte_reltol=1e-4))
        exact = 1 - np.exp(-2.0)
        err_loose = abs(loose.sample("out", 2e-9) - exact)
        err_tight = abs(tight.sample("out", 2e-9) - exact)
        # Both land inside their tolerance class; the tight run is
        # accurate in absolute terms and uses more steps.
        assert err_tight < 1e-3
        assert err_loose < 5e-2
        assert len(tight.time) > len(loose.time)

    def test_breakpoints_not_skipped(self):
        """A 10 ps glitch deep inside a long quiet span is still seen."""
        wave = Pulse(0, 1, delay=50e-9, rise=1e-12, fall=1e-12,
                     width=10e-12)
        c = _rc(wave, r=10, cap=1e-14)   # fast RC follows the glitch
        res = transient(c, 100e-9)
        peak = np.max(res.voltage("out"))
        assert peak > 0.9


class TestBreakpointCollection:
    def test_collects_and_sorts(self):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0",
                            waveform=Step(0, 1, 3e-9, 1e-12)))
        c.add(VoltageSource("v2", "b", "0",
                            waveform=Step(0, 1, 1e-9, 1e-12)))
        c.add(Resistor("r1", "a", "0", 100))
        c.add(Resistor("r2", "b", "0", 100))
        bps = _collect_breakpoints(c, 0.0, 10e-9)
        assert bps == sorted(bps)
        assert 1e-9 in bps and 3e-9 in bps

    def test_excludes_start(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", waveform=Step(0, 1, 0.0, 1e-12)))
        c.add(Resistor("r", "a", "0", 100))
        bps = _collect_breakpoints(c, 0.0, 1e-9)
        assert 0.0 not in bps


class TestStepControl:
    def test_max_steps_guard(self):
        c = _rc(Step(0, 1, 0, 1e-13))
        with pytest.raises(TimestepError):
            transient(c, 10e-9,
                      options=TransientOptions(max_steps=3))

    def test_dt_max_respected(self):
        c = _rc(Step(0, 1, 0, 1e-13))
        res = transient(c, 10e-9,
                        options=TransientOptions(dt_max=0.2e-9))
        assert np.max(np.diff(res.time)) <= 0.2e-9 * (1 + 1e-9)
