"""Edge-case tests for the transient integrator."""

import numpy as np
import pytest

from repro.analysis import transient
from repro.analysis.transient import TransientOptions
from repro.circuit import (
    Capacitor,
    Circuit,
    Pulse,
    Resistor,
    Step,
    VoltageSource,
)
from repro.devices.mtj import MTJ, MTJState


class TestNonzeroStart:
    def test_t_start_offsets_window(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0",
                            waveform=Step(0.0, 1.0, 5e-9, 1e-12)))
        c.add(Resistor("r", "in", "out", 100))
        c.add(Capacitor("cl", "out", "0", 1e-14))
        res = transient(c, 8e-9, t_start=4e-9)
        assert res.time[0] == pytest.approx(4e-9)
        assert res.time[-1] == pytest.approx(8e-9)
        # The step at 5 ns is inside the window and resolved.
        assert res.sample("out", 4.5e-9) < 0.05
        assert res.sample("out", 7e-9) > 0.95

    def test_op_taken_at_t_start(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0",
                            waveform=Step(0.2, 0.8, 1e-9, 1e-12)))
        c.add(Resistor("r", "in", "out", 100))
        c.add(Capacitor("cl", "out", "0", 1e-15))
        res = transient(c, 5e-9, t_start=2e-9)
        # At t_start the step already happened: the OP sees 0.8 V.
        assert res.voltage("out")[0] == pytest.approx(0.8, abs=1e-3)


class TestEventHandling:
    def _mtj_bench(self, drive):
        c = Circuit()
        c.add(VoltageSource("v", "drv", "0", waveform=drive))
        mtj = c.add(MTJ("y1", "drv", "0", state=MTJState.ANTIPARALLEL))
        return c, mtj

    def test_event_at_waveform_breakpoint(self):
        """A drive edge that instantly exceeds Ic: the switching event
        lands shortly after the breakpoint without integrator upset."""
        c, mtj = self._mtj_bench(Step(0.0, 0.35, 2e-9, 1e-12))
        res = transient(c, 12e-9)
        assert len(res.events) == 1
        t_event = res.events[0][0]
        assert 2e-9 < t_event < 8e-9
        assert mtj.state is MTJState.PARALLEL

    def test_pulse_too_short_to_switch(self):
        """A 200 ps super-critical pulse cannot complete the switching
        (t_sw ~ ns) and the progress relaxes afterwards."""
        c, mtj = self._mtj_bench(
            Pulse(0.0, 0.35, delay=1e-9, rise=10e-12, fall=10e-12,
                  width=0.2e-9))
        res = transient(c, 30e-9)
        assert res.events == []
        assert mtj.state is MTJState.ANTIPARALLEL
        assert mtj.progress < 0.05   # relaxed away

    def test_repeated_subcritical_pulses_do_not_accumulate(self):
        """Pulses spaced >> relax_time: progress cannot ratchet up."""
        c, mtj = self._mtj_bench(
            Pulse(0.0, 0.35, delay=1e-9, rise=10e-12, fall=10e-12,
                  width=0.3e-9, period=30e-9))
        res = transient(c, 200e-9)
        assert res.events == []
        assert mtj.state is MTJState.ANTIPARALLEL

    def test_back_to_back_switching_events(self):
        """Drive one way then the other: two events, final state P->AP
        round trip recorded in order."""
        from repro.circuit import PiecewiseLinear

        wave = PiecewiseLinear([
            (0.0, 0.0), (1e-9, 0.0), (1.1e-9, 0.35),     # AP -> P
            (10e-9, 0.35), (10.1e-9, -0.2),              # P -> AP
            (25e-9, -0.2),
        ])
        c, mtj = self._mtj_bench(wave)
        res = transient(c, 25e-9)
        kinds = [e[2] for e in res.events]
        assert kinds == ["AP->P", "P->AP"]
        assert mtj.state is MTJState.ANTIPARALLEL


class TestRecordingIntegrity:
    def test_no_duplicate_timepoints(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0",
                            waveform=Pulse(0, 1, delay=1e-9, rise=50e-12,
                                           fall=50e-12, width=1e-9,
                                           period=2.5e-9)))
        c.add(Resistor("r", "in", "out", 1e3))
        c.add(Capacitor("cl", "out", "0", 1e-13))
        res = transient(c, 10e-9)
        assert np.all(np.diff(res.time) > 0)

    def test_breakpoints_are_sample_points(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0",
                            waveform=Step(0, 1, 3e-9, 1e-10)))
        c.add(Resistor("r", "in", "0", 1e3))
        res = transient(c, 6e-9)
        # The corner instants appear (within float fuzz) in the record.
        for corner in (3e-9, 3.1e-9):
            assert np.min(np.abs(res.time - corner)) < 1e-15 + 1e-9 * 1e-6

    def test_final_time_exact(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r", "in", "0", 1e3))
        res = transient(c, 7.77e-9)
        assert res.time[-1] == pytest.approx(7.77e-9, rel=1e-12)
