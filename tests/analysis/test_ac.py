"""Tests for the AC small-signal analysis."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis.ac import ac_analysis
from repro.circuit import Capacitor, Circuit, Resistor, VoltageSource
from repro.devices import FinFET, NFET_20NM_HP, PFET_20NM_HP

FREQS = np.logspace(5, 10, 101)


def _rc(r=1e3, cap=1e-12):
    c = Circuit("rc")
    c.add(VoltageSource("v", "in", "0", dc=0.0, ac=1.0))
    c.add(Resistor("r", "in", "out", r))
    c.add(Capacitor("c", "out", "0", cap))
    return c


class TestRcLowPass:
    def test_transfer_function(self):
        r, cap = 1e3, 1e-12
        res = ac_analysis(_rc(r, cap), FREQS)
        w = 2 * np.pi * FREQS
        expected = 1.0 / np.sqrt(1.0 + (w * r * cap) ** 2)
        np.testing.assert_allclose(res.magnitude("out"), expected,
                                   rtol=1e-6)

    def test_phase(self):
        r, cap = 1e3, 1e-12
        res = ac_analysis(_rc(r, cap), FREQS)
        f_pole = 1 / (2 * np.pi * r * cap)
        phase_at_pole = np.interp(f_pole, FREQS, res.phase_deg("out"))
        assert phase_at_pole == pytest.approx(-45.0, abs=1.5)

    def test_corner_frequency(self):
        r, cap = 2e3, 0.5e-12
        res = ac_analysis(_rc(r, cap), FREQS)
        f3db = res.corner_frequency("out")
        assert f3db == pytest.approx(1 / (2 * np.pi * r * cap), rel=0.03)

    def test_input_node_flat(self):
        res = ac_analysis(_rc(), FREQS)
        np.testing.assert_allclose(res.magnitude("in"), 1.0, rtol=1e-9)

    def test_magnitude_db(self):
        res = ac_analysis(_rc(), FREQS)
        db = res.magnitude_db("out")
        assert db[0] == pytest.approx(0.0, abs=0.01)
        assert db[-1] < -20.0

    def test_no_corner_for_flat_response(self):
        c = Circuit("divider")
        c.add(VoltageSource("v", "in", "0", ac=1.0))
        c.add(Resistor("r1", "in", "out", 1e3))
        c.add(Resistor("r2", "out", "0", 1e3))
        res = ac_analysis(c, FREQS)
        assert res.corner_frequency("out") is None
        np.testing.assert_allclose(res.magnitude("out"), 0.5, rtol=1e-9)


class TestValidation:
    def test_needs_stimulus(self):
        c = Circuit("quiet")
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r", "in", "0", 1e3))
        with pytest.raises(AnalysisError, match="stimulus"):
            ac_analysis(c, [1e6])

    def test_needs_positive_frequencies(self):
        with pytest.raises(AnalysisError):
            ac_analysis(_rc(), [0.0, 1e6])
        with pytest.raises(AnalysisError):
            ac_analysis(_rc(), [])


class TestLinearisedDevices:
    def _common_source(self):
        """N-FinFET common-source stage with a resistive load."""
        c = Circuit("cs-amp")
        c.add(VoltageSource("vdd", "vdd", "0", dc=0.9))
        c.add(VoltageSource("vin", "in", "0", dc=0.45, ac=1.0))
        c.add(Resistor("rl", "vdd", "out", 20e3))
        c.add(FinFET("m1", "out", "in", "0", NFET_20NM_HP))
        c.add(Capacitor("cl", "out", "0", 1e-15))
        return c

    def test_common_source_gain_matches_gm(self):
        c = self._common_source()
        res = ac_analysis(c, [1e5])   # well below the output pole
        # Expected |gain| = gm * (RL || ro) from the device Jacobian.
        m1 = c["m1"]
        vd = res.op.voltage("out")
        _, g_d, g_m, _ = m1._evaluate(vd, 0.45, 0.0)
        r_out = 1.0 / (1.0 / 20e3 + g_d)
        expected = g_m * r_out
        assert res.magnitude("out")[0] == pytest.approx(expected,
                                                        rel=1e-3)

    def test_amplifier_rolls_off(self):
        """A heavy 100 fF load puts the output pole near 100 MHz."""
        c = self._common_source()
        c.remove("cl")
        c.add(Capacitor("cl", "out", "0", 100e-15))
        res = ac_analysis(c, FREQS)
        assert res.magnitude("out")[-1] < res.magnitude("out")[0] / 10
        f3db = res.corner_frequency("out")
        assert f3db is not None
        assert 5e7 < f3db < 5e8

    def test_inverter_gain_at_trip_point(self):
        """Cross-coupled regeneration needs loop gain > 1: each inverter
        must amplify at its switching threshold."""
        c = Circuit("inv")
        c.add(VoltageSource("vdd", "vdd", "0", dc=0.9))
        c.add(VoltageSource("vin", "in", "0", dc=0.40, ac=1.0))
        c.add(FinFET("pu", "out", "in", "vdd", PFET_20NM_HP))
        c.add(FinFET("pd", "out", "in", "0", NFET_20NM_HP))
        c.add(Capacitor("cl", "out", "0", 1e-15))
        res = ac_analysis(c, [1e5])
        assert res.magnitude("out")[0] > 3.0

    def test_bitline_time_constant(self):
        """The precharge-device + bitline-cap pole sets read timing."""
        from repro.cells.array import PowerDomain

        c = Circuit("bitline")
        c.add(VoltageSource("v", "drv", "0", dc=0.9, ac=1.0))
        r_prech = 4e3
        c_bl = PowerDomain(512, 32).bitline_capacitance
        c.add(Resistor("rp", "drv", "bl", r_prech))
        c.add(Capacitor("cb", "bl", "0", c_bl))
        res = ac_analysis(c, np.logspace(5, 11, 121))
        f3db = res.corner_frequency("bl")
        assert f3db == pytest.approx(1 / (2 * np.pi * r_prech * c_bl),
                                     rel=0.05)
