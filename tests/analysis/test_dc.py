"""Tests for the DC operating-point analysis (homotopy, basin selection)."""

import pytest

from repro.analysis import operating_point
from repro.analysis.dc import OperatingPointOptions
from repro.circuit import Circuit, Resistor, Step, VoltageSource
from repro.devices import FinFET, NFET_20NM_HP, PFET_20NM_HP


def _latch(vdd=0.9):
    """Cross-coupled inverter pair — a bistable circuit."""
    c = Circuit("latch")
    c.add(VoltageSource("vdd", "vdd", "0", dc=vdd))
    c.add(FinFET("pu1", "q", "qb", "vdd", PFET_20NM_HP))
    c.add(FinFET("pd1", "q", "qb", "0", NFET_20NM_HP))
    c.add(FinFET("pu2", "qb", "q", "vdd", PFET_20NM_HP))
    c.add(FinFET("pd2", "qb", "q", "0", NFET_20NM_HP))
    return c


class TestOperatingPoint:
    def test_time_evaluates_waveforms(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0",
                            waveform=Step(0.0, 1.0, 1e-9, 1e-12)))
        c.add(Resistor("r", "a", "0", 100))
        sol0 = operating_point(c, time=0.0)
        sol1 = operating_point(c, time=5e-9)
        assert sol0.voltage("a") == pytest.approx(0.0, abs=1e-9)
        assert sol1.voltage("a") == pytest.approx(1.0, rel=1e-6)

    def test_warm_start(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 100))
        first = operating_point(c)
        second = operating_point(c, x0=first.x)
        assert second.voltage("a") == pytest.approx(1.0, rel=1e-9)


class TestBasinSelection:
    def test_latch_follows_ic_high(self):
        c = _latch()
        sol = operating_point(c, ic={"q": 0.9, "qb": 0.0})
        assert sol.voltage("q") > 0.85
        assert sol.voltage("qb") < 0.05

    def test_latch_follows_ic_low(self):
        c = _latch()
        sol = operating_point(c, ic={"q": 0.0, "qb": 0.9})
        assert sol.voltage("q") < 0.05
        assert sol.voltage("qb") > 0.85

    def test_clamps_released_solution_is_true_op(self):
        """After release, the solution satisfies the unclamped KCL: the
        latch outputs are complementary rails, not the clamp targets."""
        c = _latch()
        sol = operating_point(c, ic={"q": 0.7, "qb": 0.1})
        # 0.7 is not a stable level; the latch must regenerate to ~VDD.
        assert sol.voltage("q") > 0.85

    def test_ic_on_unknown_node_rejected(self):
        from repro.errors import NetlistError

        c = _latch()
        with pytest.raises(NetlistError):
            operating_point(c, ic={"nonexistent": 1.0})


class TestHomotopyFallbacks:
    def test_gmin_ladder_options_used(self):
        """A solve with very tight Newton budget still succeeds through
        the gmin ladder."""
        c = _latch()
        opts = OperatingPointOptions()
        opts.newton.max_iterations = 150
        sol = operating_point(c, ic={"q": 0.9, "qb": 0.0}, options=opts)
        assert sol.voltage("q") > 0.85

    def test_fets_off_everything_floats_to_defined_state(self):
        """With the supply at 0 every node must solve to ~0 (gmin)."""
        c = _latch(vdd=0.0)
        sol = operating_point(c)
        assert abs(sol.voltage("q")) < 1e-3
        assert abs(sol.voltage("qb")) < 1e-3
