"""Tests for DC sweeps with warm-started continuation."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis import dc_sweep, operating_point
from repro.circuit import Circuit, Resistor, VoltageSource
from repro.devices import FinFET, NFET_20NM_HP, PFET_20NM_HP


def _inverter():
    c = Circuit()
    c.add(VoltageSource("vdd", "vdd", "0", dc=0.9))
    c.add(VoltageSource("vin", "in", "0", dc=0.0))
    c.add(FinFET("pu", "out", "in", "vdd", PFET_20NM_HP))
    c.add(FinFET("pd", "out", "in", "0", NFET_20NM_HP))
    return c


class TestDcSweep:
    def test_divider_sweep_linear(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=0.0))
        c.add(Resistor("r1", "a", "m", 1000))
        c.add(Resistor("r2", "m", "0", 1000))
        res = dc_sweep(c, "v", [0.0, 0.5, 1.0, 2.0])
        np.testing.assert_allclose(res.voltage("m"),
                                   [0.0, 0.25, 0.5, 1.0], atol=1e-8)

    def test_inverter_vtc_monotone_falling(self):
        c = _inverter()
        res = dc_sweep(c, "vin", np.linspace(0.0, 0.9, 31))
        vtc = res.voltage("out")
        assert vtc[0] > 0.85
        assert vtc[-1] < 0.05
        assert np.all(np.diff(vtc) <= 1e-9)

    def test_source_state_restored_after_sweep(self):
        c = _inverter()
        original = c["vin"].dc
        dc_sweep(c, "vin", [0.0, 0.9])
        assert c["vin"].dc == original

    def test_measure_callback(self):
        c = _inverter()
        res = dc_sweep(c, "vin", [0.0, 0.9])
        currents = res.measure(lambda sol: sol.branch_current("vdd"))
        assert len(currents) == 2

    def test_branch_current_accessor(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=0.0))
        c.add(Resistor("r", "a", "0", 100))
        res = dc_sweep(c, "v", [1.0, 2.0])
        np.testing.assert_allclose(res.branch_current("v"),
                                   [-0.01, -0.02], rtol=1e-6)

    def test_empty_values_rejected(self):
        c = _inverter()
        with pytest.raises(AnalysisError):
            dc_sweep(c, "vin", [])

    def test_non_source_rejected(self):
        c = _inverter()
        with pytest.raises(AnalysisError):
            dc_sweep(c, "pu", [0.0])

    def test_len(self):
        c = _inverter()
        assert len(dc_sweep(c, "vin", [0.0, 0.45, 0.9])) == 3


class TestWarmStartBasin:
    def test_bistable_stays_on_branch(self):
        """Sweeping a latch supply up and down keeps the selected state."""
        c = Circuit()
        c.add(VoltageSource("vdd", "vdd", "0", dc=0.9))
        c.add(FinFET("pu1", "q", "qb", "vdd", PFET_20NM_HP))
        c.add(FinFET("pd1", "q", "qb", "0", NFET_20NM_HP))
        c.add(FinFET("pu2", "qb", "q", "vdd", PFET_20NM_HP))
        c.add(FinFET("pd2", "qb", "q", "0", NFET_20NM_HP))
        values = np.linspace(0.9, 0.5, 9)
        res = dc_sweep(c, "vdd", values, ic={"q": 0.9, "qb": 0.0})
        q = res.voltage("q")
        qb = res.voltage("qb")
        # Q tracks the (lowered) rail, QB stays low: state retained.
        np.testing.assert_allclose(q, values, atol=0.05)
        assert np.all(qb < 0.05)
