"""Tests for the damped Newton solver."""

import math

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.analysis.mna import Context
from repro.analysis.solver import NewtonOptions, newton_solve
from repro.circuit import Circuit, Resistor, VoltageSource
from repro.circuit.netlist import Element


class ExponentialDevice(Element):
    """A diode-like element: I = Is (exp(V/vt) - 1) from p to n."""

    is_linear = False

    def __init__(self, name, p, n, i_sat=1e-12, vt=0.026):
        super().__init__(name, (p, n))
        self.i_sat = i_sat
        self.vt = vt

    def stamp(self, stamper, ctx):
        p, n = self.node_index
        v = min(ctx.v(p) - ctx.v(n), 1.5)   # clip to avoid overflow
        i = self.i_sat * (math.exp(v / self.vt) - 1.0)
        g = self.i_sat / self.vt * math.exp(v / self.vt)
        stamper.conductance(p, n, g)
        stamper.current(p, n, i - g * v)


class TestLinearSolve:
    def test_single_iteration_exact(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r1", "a", "b", 1000))
        c.add(Resistor("r2", "b", "0", 1000))
        c.compile()
        x = newton_solve(c, Context(), np.zeros(c.size))
        assert x[c.index_of("b")] == pytest.approx(0.5, rel=1e-6)

    def test_wrong_guess_size_rejected(self):
        c = Circuit()
        c.add(Resistor("r", "a", "0", 100))
        c.compile()
        with pytest.raises(ConvergenceError):
            newton_solve(c, Context(), np.zeros(7))


class TestNonlinearSolve:
    def test_diode_resistor_converges(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r", "in", "d", 1000))
        c.add(ExponentialDevice("d1", "d", "0"))
        c.compile()
        x = newton_solve(c, Context(), np.zeros(c.size))
        v_d = x[c.index_of("d")]
        # Check KCL: resistor current equals diode current.
        i_r = (1.0 - v_d) / 1000
        i_d = 1e-12 * (math.exp(v_d / 0.026) - 1.0)
        assert i_r == pytest.approx(i_d, rel=1e-4)
        assert 0.4 < v_d < 0.7

    def test_damping_limits_overshoot(self):
        """From a terrible initial guess the damped solve still converges."""
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r", "in", "d", 1000))
        c.add(ExponentialDevice("d1", "d", "0"))
        c.compile()
        bad_guess = np.full(c.size, 5.0)
        x = newton_solve(c, Context(), bad_guess)
        assert 0.4 < x[c.index_of("d")] < 0.7

    def test_iteration_limit_raises(self):
        c = Circuit()
        c.add(VoltageSource("v", "in", "0", dc=1.0))
        c.add(Resistor("r", "in", "d", 1000))
        c.add(ExponentialDevice("d1", "d", "0"))
        c.compile()
        opts = NewtonOptions(max_iterations=1)
        with pytest.raises(ConvergenceError) as err:
            newton_solve(c, Context(), np.zeros(c.size), opts)
        assert err.value.iterations == 1

    def test_gmin_regularises_floating_node(self):
        """A node with only a capacitor (open in DC) still solves."""
        from repro.circuit import Capacitor

        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "b", 1000))
        c.add(Capacitor("cfloat", "c", "0", 1e-15))
        c.add(Resistor("r2", "b", "0", 1000))
        c.compile()
        x = newton_solve(c, Context(), np.zeros(c.size))
        assert x[c.index_of("c")] == pytest.approx(0.0, abs=1e-9)

    def test_source_scale_respected(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=2.0))
        c.add(Resistor("r", "a", "0", 100))
        c.compile()
        x = newton_solve(c, Context(source_scale=0.5), np.zeros(c.size))
        assert x[c.index_of("a")] == pytest.approx(1.0, rel=1e-6)
