"""Cross-cutting property tests on the simulation engine.

These check physical invariants on randomly generated circuits — the
class of bug (sign errors, double-stamping, lost energy) that targeted
unit tests can miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import ac_analysis, operating_point, transient
from repro.circuit import (
    Capacitor,
    Circuit,
    Resistor,
    Step,
    VoltageSource,
)
from repro.devices import FinFET, NFET_20NM_HP, PFET_20NM_HP

resistors = st.lists(st.floats(min_value=50, max_value=1e6),
                     min_size=2, max_size=7)


def _random_ladder(rs, v=1.0, with_caps=False, stepped=False):
    """A resistor ladder in -> n1 -> ... -> gnd, optional caps per node.

    ``stepped=True`` drives the input with a 0 -> v step at t = 0 (for
    transient energy tests); otherwise the source is a plain DC level.
    """
    c = Circuit("ladder")
    wave = Step(0.0, v, 0.0, 1e-13) if stepped else None
    c.add(VoltageSource("v", "n0", "0", dc=v, waveform=wave, ac=1.0))
    for i, r in enumerate(rs):
        c.add(Resistor(f"r{i}", f"n{i}", f"n{i + 1}", r))
        if with_caps:
            c.add(Capacitor(f"c{i}", f"n{i + 1}", "0", 1e-13))
    c.add(Resistor("rload", f"n{len(rs)}", "0", 1e3))
    return c


class TestDcInvariants:
    @given(rs=resistors)
    @settings(max_examples=40, deadline=None)
    def test_kcl_at_every_internal_node(self, rs):
        c = _random_ladder(rs)
        sol = operating_point(c)
        for i in range(1, len(rs)):
            i_in = c[f"r{i - 1}"].current(sol)
            i_out = c[f"r{i}"].current(sol)
            assert i_in == pytest.approx(i_out, rel=1e-6, abs=1e-12)

    @given(rs=resistors)
    @settings(max_examples=40, deadline=None)
    def test_voltages_monotone_down_the_ladder(self, rs):
        c = _random_ladder(rs)
        sol = operating_point(c)
        levels = [sol.voltage(f"n{i}") for i in range(len(rs) + 1)]
        assert all(a >= b - 1e-9 for a, b in zip(levels, levels[1:]))
        assert levels[0] == pytest.approx(1.0, rel=1e-6)

    @given(rs=resistors)
    @settings(max_examples=40, deadline=None)
    def test_source_power_equals_dissipation(self, rs):
        c = _random_ladder(rs)
        sol = operating_point(c)
        delivered = c["v"].delivered_power(sol)
        dissipated = sum(
            c[name].power(sol) for name in c.element_names()
            if name.startswith("r")
        )
        # The gmin floor (1 pS per node to ground) sinks a sliver of
        # current the resistor sum doesn't see — allow it.
        assert delivered == pytest.approx(dissipated, rel=1e-4)


class TestTransientInvariants:
    @given(rs=st.lists(st.floats(min_value=100, max_value=1e5),
                       min_size=2, max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_energy_conservation_rc_ladder(self, rs):
        """Source energy = resistive dissipation + stored cap energy."""
        c = _random_ladder(rs, with_caps=True, stepped=True)
        tau_max = sum(rs) * 1e-13 * len(rs)
        res = transient(c, max(40 * tau_max, 1e-9))
        e_source = res.energy(["v"])

        final = res.final_solution()
        e_caps = sum(
            0.5 * c[f"c{i}"].capacitance * final.voltage(f"n{i + 1}") ** 2
            for i in range(len(rs))
        )
        # Dissipation integral from the recorded samples.
        e_diss = 0.0
        for name in c.element_names():
            if not name.startswith("r"):
                continue
            r = c[name]
            p_node, n_node = r.node_names
            dv = res.voltage(p_node) - res.voltage(n_node)
            power = dv * dv * r.conductance
            e_diss += float(np.trapezoid(power, res.time))
        assert e_source == pytest.approx(e_caps + e_diss, rel=2e-2)

    @given(v=st.floats(min_value=0.2, max_value=1.0))
    @settings(max_examples=10, deadline=None)
    def test_cmos_inverter_transition_energy(self, v):
        """Charging an inverter's load through the PFET draws ~C*V^2
        from the supply (half stored, half dissipated) regardless of
        the device's nonlinearity."""
        c = Circuit("inv-energy")
        c.add(VoltageSource("vdd", "vdd", "0", dc=v))
        c.add(VoltageSource("vin", "in", "0",
                            waveform=Step(v, 0.0, 1e-10, 1e-11)))
        c.add(FinFET("pu", "out", "in", "vdd", PFET_20NM_HP))
        c.add(FinFET("pd", "out", "in", "0", NFET_20NM_HP))
        cap = 10e-15
        c.add(Capacitor("cl", "out", "0", cap))
        res = transient(c, 3e-9, ic={"out": 0.0})
        e_vdd = res.energy(["vdd"])
        assert e_vdd == pytest.approx(cap * v * v, rel=0.1)

    def test_bistable_never_drifts(self):
        """A quiet latch holds its state over a long transient."""
        c = Circuit("latch-hold")
        c.add(VoltageSource("vdd", "vdd", "0", dc=0.9))
        c.add(FinFET("pu1", "q", "qb", "vdd", PFET_20NM_HP))
        c.add(FinFET("pd1", "q", "qb", "0", NFET_20NM_HP))
        c.add(FinFET("pu2", "qb", "q", "vdd", PFET_20NM_HP))
        c.add(FinFET("pd2", "qb", "q", "0", NFET_20NM_HP))
        c.add(Capacitor("cq", "q", "0", 1e-16))
        c.add(Capacitor("cqb", "qb", "0", 1e-16))
        res = transient(c, 1e-6, ic={"q": 0.9, "qb": 0.0})
        assert np.all(res.voltage("q") > 0.85)
        assert np.all(res.voltage("qb") < 0.05)


class TestAcConsistency:
    @given(rs=resistors)
    @settings(max_examples=15, deadline=None)
    def test_dc_limit_matches_operating_point(self, rs):
        """At very low frequency the AC transfer equals the DC divider
        ratio (unit stimulus, linear network)."""
        c = _random_ladder(rs)
        res = ac_analysis(c, [1e-1])
        sol = operating_point(c)
        for i in range(1, len(rs) + 1):
            node = f"n{i}"
            assert res.magnitude(node)[0] == pytest.approx(
                sol.voltage(node), rel=1e-6
            )

    def test_transient_sine_matches_ac(self):
        """The AC magnitude/phase predicts the steady-state transient
        response — two independent code paths, one answer."""
        from repro.circuit import Sine

        r, cap, freq = 1e3, 1e-12, 100e6
        c = Circuit("xcheck")
        c.add(VoltageSource("v", "in", "0", ac=1.0,
                            waveform=Sine(0.0, 1.0, freq)))
        c.add(Resistor("r", "in", "out", r))
        c.add(Capacitor("c", "out", "0", cap))
        ac = ac_analysis(c, [freq])
        mag = ac.magnitude("out")[0]

        res = transient(c, 8 / freq)
        tail = res.voltage("out")[res.time > 6 / freq]
        assert float(np.max(np.abs(tail))) == pytest.approx(mag,
                                                            rel=2e-2)
