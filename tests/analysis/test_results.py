"""Tests for Solution / TransientResult containers and measurements."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis import operating_point, transient
from repro.analysis.results import TransientResult, _windowed_trapezoid
from repro.circuit import (
    Capacitor,
    Circuit,
    Pulse,
    Resistor,
    Step,
    VoltageSource,
)


@pytest.fixture()
def rc_result():
    c = Circuit()
    c.add(VoltageSource("v", "in", "0",
                        waveform=Step(0.0, 1.0, 1e-9, 1e-12)))
    c.add(Resistor("r", "in", "out", 1e3))
    c.add(Capacitor("c", "out", "0", 1e-12))
    return transient(c, 6e-9)


class TestSolution:
    def test_voltages_dict(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 100))
        sol = operating_point(c)
        volts = sol.voltages()
        assert volts == {"a": pytest.approx(1.0)}

    def test_repr(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 100))
        sol = operating_point(c)
        assert "Solution" in repr(sol)


class TestTransientAccessors:
    def test_voltage_and_differential(self, rc_result):
        v_in = rc_result.voltage("in")
        v_out = rc_result.voltage("out")
        diff = rc_result.differential("in", "out")
        np.testing.assert_allclose(diff, v_in - v_out)

    def test_ground_voltage_is_zero(self, rc_result):
        np.testing.assert_array_equal(rc_result.voltage("0"), 0.0)

    def test_sample_interpolates(self, rc_result):
        mid = rc_result.sample("in", 0.5e-9)
        assert mid == pytest.approx(0.0, abs=1e-9)

    def test_solution_at_index_and_final(self, rc_result):
        final = rc_result.final_solution()
        assert final.time == rc_result.time[-1]
        first = rc_result.solution_at_index(0)
        assert first.time == rc_result.time[0]

    def test_crossing_time_rise(self, rc_result):
        t = rc_result.crossing_time("out", 0.5, "rise")
        # V(out) = 1 - exp(-(t - 1ns)/1ns) crosses 0.5 at 1ns + ln2.
        assert t == pytest.approx(1e-9 + np.log(2) * 1e-9, rel=2e-2)

    def test_crossing_time_fall_none(self, rc_result):
        assert rc_result.crossing_time("out", 0.5, "fall") is None

    def test_crossing_after(self, rc_result):
        t = rc_result.crossing_time("out", 0.5, "rise", after=3e-9)
        assert t is None  # already above threshold by then

    def test_peak(self, rc_result):
        assert rc_result.peak("in") == pytest.approx(1.0, rel=1e-6)
        with pytest.raises(AnalysisError):
            rc_result.peak("in", t0=10e-9, t1=20e-9)

    def test_length_mismatch_rejected(self, rc_result):
        with pytest.raises(AnalysisError):
            TransientResult(rc_result.circuit, rc_result.time,
                            rc_result.states[:-1])


class TestEnergyIntegration:
    def test_full_window_default(self, rc_result):
        total = rc_result.energy(["v"])
        windowed = rc_result.energy(["v"], 0.0, float(rc_result.time[-1]))
        assert total == pytest.approx(windowed)

    def test_energy_additivity(self, rc_result):
        t_mid = 3e-9
        t_end = float(rc_result.time[-1])
        e1 = rc_result.energy(["v"], 0.0, t_mid)
        e2 = rc_result.energy(["v"], t_mid, t_end)
        assert e1 + e2 == pytest.approx(rc_result.energy(["v"]), rel=1e-9)

    def test_empty_window_zero(self, rc_result):
        assert rc_result.energy(["v"], 2e-9, 2e-9) == 0.0
        assert rc_result.energy(["v"], 3e-9, 2e-9) == 0.0

    def test_cv2_charging_energy(self, rc_result):
        # The source delivers C*V^2 to charge an RC to V.
        assert rc_result.energy(["v"]) == pytest.approx(1e-12, rel=2e-2)

    def test_average_power(self, rc_result):
        t_end = float(rc_result.time[-1])
        p = rc_result.average_power(["v"], 0.0, t_end)
        assert p == pytest.approx(rc_result.energy(["v"]) / t_end, rel=1e-12)
        with pytest.raises(AnalysisError):
            rc_result.average_power(["v"], 1e-9, 1e-9)


class TestWindowedTrapezoid:
    def test_constant_function(self):
        t = np.linspace(0, 1, 11)
        v = np.full(11, 2.0)
        assert _windowed_trapezoid(t, v, 0.25, 0.75) == pytest.approx(1.0)

    def test_partial_segments_interpolated(self):
        t = np.array([0.0, 1.0])
        v = np.array([0.0, 1.0])
        # Integral of f(t)=t over [0.5, 1] = 0.375.
        assert _windowed_trapezoid(t, v, 0.5, 1.0) == pytest.approx(0.375)

    def test_clamps_to_record(self):
        t = np.array([0.0, 1.0])
        v = np.array([1.0, 1.0])
        assert _windowed_trapezoid(t, v, -5.0, 5.0) == pytest.approx(1.0)


class TestEvents:
    def test_events_matching(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 100))
        res = transient(c, 1e-9)
        res.events.append((1e-10, "cell.mtjq", "P->AP"))
        res.events.append((2e-10, "cell.mtjqb", "AP->P"))
        assert len(res.events_matching("mtjq")) == 2  # substring match
        assert len(res.events_matching("P->AP")) == 1
