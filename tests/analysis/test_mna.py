"""Tests for the MNA stamper and evaluation context."""

import numpy as np
import pytest

from repro.analysis.mna import Context, Stamper


class TestStamper:
    def test_conductance_stamp(self):
        s = Stamper(3)
        s.conductance(0, 1, 2.0)
        assert s.A[0, 0] == 2.0
        assert s.A[1, 1] == 2.0
        assert s.A[0, 1] == -2.0
        assert s.A[1, 0] == -2.0
        assert s.A[2, 2] == 0.0

    def test_conductance_to_ground_skips_ground_row(self):
        s = Stamper(2)
        s.conductance(0, -1, 3.0)
        assert s.A[0, 0] == 3.0
        assert np.count_nonzero(s.A) == 1

    def test_conductance_from_ground(self):
        s = Stamper(2)
        s.conductance(-1, 1, 3.0)
        assert s.A[1, 1] == 3.0
        assert np.count_nonzero(s.A) == 1

    def test_current_stamp_signs(self):
        s = Stamper(2)
        s.current(0, 1, 1e-3)   # pushes current 0 -> 1
        assert s.b[0] == -1e-3
        assert s.b[1] == 1e-3

    def test_current_to_ground(self):
        s = Stamper(2)
        s.current(0, -1, 1e-3)
        assert s.b[0] == -1e-3
        assert s.b[1] == 0.0

    def test_vccs_stamp(self):
        s = Stamper(4)
        s.vccs(0, 1, 2, 3, 0.5)
        assert s.A[0, 2] == 0.5
        assert s.A[0, 3] == -0.5
        assert s.A[1, 2] == -0.5
        assert s.A[1, 3] == 0.5

    def test_vccs_with_grounded_terminals(self):
        s = Stamper(2)
        s.vccs(0, -1, 1, -1, 0.25)
        assert s.A[0, 1] == 0.25
        assert np.count_nonzero(s.A) == 1

    def test_matrix_and_rhs_raw(self):
        s = Stamper(3)
        s.matrix(2, 0, 1.0)
        s.rhs(2, 0.9)
        assert s.A[2, 0] == 1.0
        assert s.b[2] == 0.9
        s.matrix(-1, 0, 1.0)    # ground rows are ignored
        s.rhs(-1, 5.0)
        assert s.b.sum() == 0.9

    def test_clear(self):
        s = Stamper(2)
        s.conductance(0, 1, 1.0)
        s.rhs(0, 1.0)
        s.clear()
        assert not s.A.any()
        assert not s.b.any()

    def test_stamps_accumulate(self):
        s = Stamper(2)
        s.conductance(0, -1, 1.0)
        s.conductance(0, -1, 2.0)
        assert s.A[0, 0] == 3.0


class TestContext:
    def test_ground_voltage_is_zero(self):
        ctx = Context(x=np.array([1.0, 2.0]))
        assert ctx.v(-1) == 0.0
        assert ctx.v(0) == 1.0
        assert ctx.v(1) == 2.0

    def test_defaults(self):
        ctx = Context()
        assert ctx.mode == "dc"
        assert ctx.source_scale == 1.0
        assert ctx.method == "trap"
