"""Numerical-trust layer tests: certification, conditioning defenses,
the fail-fast stamp guard, and trust threading into results.

The linear-algebra primitives are tested directly on small dense
systems; the integration tests then check that every analysis result
carries the certification fields and that a deliberately ill-conditioned
floating-rail deck (conductances spanning ~14 decades, the power-gating
corner the paper's architectures live in) triggers the defenses and
still certifies.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import dc_sweep, operating_point, transient
from repro.analysis.mna import Context
from repro.analysis.solver import NewtonOptions, newton_solve
from repro.analysis.transient import TransientOptions
from repro.analysis.trust import (
    Certificate,
    TrustAccumulator,
    TrustOptions,
    certify,
    describe_offenders,
    equilibrated_solve,
    equilibration_scales,
    locate_nonfinite_stamps,
    onenorm_condest,
    refine,
    residual_inf_norm,
)
from repro.circuit import Circuit, CurrentSource, Resistor, VoltageSource
from repro.devices import FinFET, NFET_20NM_HP, PFET_20NM_HP
from repro.errors import ConvergenceError, StampError


def _spread_matrix(decades: float, n: int = 6, seed: int = 0) -> np.ndarray:
    """A well-posed but badly scaled SPD-ish test matrix."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((n, n)) + n * np.eye(n)
    scales = np.logspace(0.0, -decades, n)
    return base * scales[:, None]


class TestCondest:
    def test_identity(self):
        assert onenorm_condest(np.eye(4)) == pytest.approx(1.0)

    def test_matches_exact_condition_number(self):
        A = _spread_matrix(6.0)
        exact = np.linalg.cond(A, 1)
        est = onenorm_condest(A)
        # Hager's estimator is a lower bound that is nearly always tight.
        assert est <= exact * 1.001
        assert est >= exact * 0.1

    def test_singular_matrix_reports_inf(self):
        A = np.ones((3, 3))
        assert math.isinf(onenorm_condest(A))

    def test_empty_system(self):
        assert onenorm_condest(np.zeros((0, 0))) == pytest.approx(1.0)


class TestEquilibration:
    def test_scales_are_powers_of_two(self):
        A = _spread_matrix(9.0)
        r, c = equilibration_scales(A)
        for s in np.concatenate([r, c]):
            mantissa, _ = np.frexp(s)
            assert mantissa == pytest.approx(0.5)  # exact power of two

    def test_equilibration_reduces_condition(self):
        A = _spread_matrix(10.0)
        r, c = equilibration_scales(A)
        scaled = A * r[:, None] * c[None, :]
        assert onenorm_condest(scaled) < onenorm_condest(A) / 1e3

    def test_equilibrated_solve_matches_plain_on_clean_system(self):
        A = _spread_matrix(1.0)
        b = np.arange(1.0, A.shape[0] + 1.0)
        np.testing.assert_allclose(equilibrated_solve(A, b),
                                   np.linalg.solve(A, b),
                                   rtol=1e-10, atol=1e-12)

    def test_singular_still_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            equilibrated_solve(np.ones((2, 2)), np.ones(2))


class TestRefine:
    def test_refinement_reduces_residual(self):
        A = _spread_matrix(6.0)
        b = np.ones(A.shape[0])
        x = np.linalg.solve(A, b)
        # Poison the solution slightly so there is something to refine.
        x_bad = x * (1.0 + 1e-6)
        refined, rounds = refine(A, b, x_bad, rounds=2)
        assert rounds >= 1
        assert residual_inf_norm(A, b, refined) \
            < residual_inf_norm(A, b, x_bad)

    def test_no_rounds_requested(self):
        A = np.eye(2)
        x, rounds = refine(A, np.ones(2), np.ones(2), rounds=0)
        assert rounds == 0


class TestCertify:
    def test_clean_solve_is_left_alone(self):
        A = 2.0 * np.eye(3)
        b = np.array([2.0, 4.0, 6.0])
        x = np.linalg.solve(A, b)
        out, cert = certify(A, b, x, TrustOptions())
        assert out is x  # untouched, not even copied
        assert cert.residual_norm == pytest.approx(0.0, abs=1e-15)
        assert cert.cond_estimate == pytest.approx(1.0)
        assert not cert.defended()

    def test_certify_disabled_returns_nan_fields(self):
        A = np.eye(2)
        _, cert = certify(A, np.ones(2), np.ones(2),
                          TrustOptions(certify=False))
        assert math.isnan(cert.residual_norm)
        assert math.isnan(cert.cond_estimate)

    def test_bad_residual_triggers_defenses(self):
        A = _spread_matrix(12.0)
        b = np.ones(A.shape[0])
        x_awful = np.linalg.solve(A, b) * 1.5   # way past threshold
        out, cert = certify(A, b, x_awful, TrustOptions())
        assert cert.defended()
        assert cert.residual_norm < cert.residual_before

    def test_certificate_json_round_trip(self):
        cert = Certificate(residual_norm=1e-12, cond_estimate=1e9,
                           refined=True, equilibrated=True,
                           refinement_rounds=1, residual_before=1e-3)
        payload = cert.to_dict()
        assert payload["refined"] is True
        assert payload["cond_estimate"] == pytest.approx(1e9)
        assert cert.rcond == pytest.approx(1e-9)

    @given(row_exp=st.integers(min_value=-20, max_value=20),
           col_exp=st.integers(min_value=-20, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_solution_invariant_under_row_column_scaling(self, row_exp,
                                                         col_exp):
        """Property (satellite): scaling rows of [A|b] by 2^row_exp and
        a column of A by 2^col_exp (with the matching unknown rescale)
        must not change the equilibrated solution beyond roundoff."""
        A = _spread_matrix(4.0, seed=7)
        b = np.arange(1.0, A.shape[0] + 1.0)
        x_ref = equilibrated_solve(A, b)

        r = 2.0 ** row_exp
        c = 2.0 ** col_exp
        A_scaled = A * r
        A_scaled[:, 0] *= c
        x_scaled = equilibrated_solve(A_scaled, b * r)
        # unknown 0 was rescaled by 1/c; undo it before comparing.
        x_back = x_scaled.copy()
        x_back[0] *= c
        np.testing.assert_allclose(x_back, x_ref, rtol=1e-9, atol=1e-12)


def _ill_conditioned_rail(g_leak: float = 1e-10):
    """A floating virtual-rail deck spanning ~11 decades of conductance.

    ``vvdd`` hangs behind an almost-off power switch (modelled as a huge
    resistor) while the bitline side carries a stiff low-impedance
    branch — the exact structure a super-cutoff shutdown produces.  The
    leakage conductance stays above the gmin floor so the rail voltage
    is set by the leakage divider, not by gmin.
    """
    c = Circuit("floating-vvdd")
    c.add(VoltageSource("vdd", "vdd", "0", dc=0.9))
    # Cut-off power switch: pS-scale path onto the virtual rail.
    c.add(Resistor("rsw", "vdd", "vvdd", 1.0 / g_leak))
    c.add(Resistor("rleak", "vvdd", "0", 1.0 / g_leak))
    # Stiff periphery on the same matrix: 10 S branch.
    c.add(Resistor("rstiff", "vdd", "bl", 0.1))
    c.add(Resistor("rload", "bl", "0", 0.1))
    return c


class TestSolutionAnnotations:
    def test_operating_point_carries_certificate(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        sol = operating_point(c)
        assert math.isfinite(sol.residual_norm)
        assert sol.residual_norm < 1e-9
        assert math.isfinite(sol.cond_estimate)
        assert sol.cond_estimate >= 1.0
        assert sol.cert is not None
        assert sol.refined == sol.cert.defended()

    def test_dc_sweep_solutions_certified(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        res = dc_sweep(c, "v", [0.5, 1.0, 1.5])
        assert np.all(np.isfinite(res.residual_norms()))
        assert np.all(np.isfinite(res.cond_estimates()))

    def test_transient_carries_aggregates(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        result = transient(c, 1e-9)
        assert math.isfinite(result.residual_norm)
        assert math.isfinite(result.cond_estimate)
        assert result.stats["certified_steps"] >= result.stats["accepted_steps"]
        assert result.stats["defended_steps"] >= 0.0

    def test_nonlinear_deck_certifies(self):
        c = Circuit("inv")
        c.add(VoltageSource("vdd", "vdd", "0", dc=0.9))
        c.add(VoltageSource("vin", "in", "0", dc=0.45))
        c.add(FinFET("mp", "out", "in", "vdd", PFET_20NM_HP))
        c.add(FinFET("mn", "out", "in", "0", NFET_20NM_HP))
        sol = operating_point(c)
        # Amps-scale residual of a FinFET deck: far below device currents.
        assert sol.residual_norm < 1e-9
        assert sol.cond_estimate > 1.0

    def test_ill_conditioned_rail_defends_and_certifies(self):
        """Acceptance: the floating-VVDD deck crosses the rcond
        threshold, the defenses fire, and the result still certifies."""
        from repro.analysis.solver import GMIN_FLOOR

        g_leak = 1e-10
        c = _ill_conditioned_rail(g_leak)
        trust = TrustOptions(rcond_threshold=1e-10)
        sol = operating_point(c)
        # ~11 decades of conductance spread shows in the estimate ...
        assert sol.cond_estimate > 1e9
        # ... and a direct certified solve through tightened thresholds
        # fires the equilibration + refinement path.
        c.compile()
        ctx = Context()
        x = newton_solve(c, ctx, np.zeros(c.size),
                         NewtonOptions(trust=trust))
        cert = ctx.cert
        assert cert is not None
        assert cert.equilibrated or cert.refined
        assert math.isfinite(cert.residual_norm)
        assert cert.residual_norm <= max(cert.residual_before, 1e-12)
        # The rail solves to the (gmin-loaded) leakage divider midpoint.
        expected = 0.9 * g_leak / (2.0 * g_leak + GMIN_FLOOR)
        vvdd = x[c.index_of("vvdd")]
        assert vvdd == pytest.approx(expected, rel=1e-6)


class TestStampGuard:
    class _NanDevice(Resistor):
        def stamp(self, stamper, ctx):
            p, n = self.node_index
            stamper.conductance(p, n, float("nan"))

    def _deck(self):
        c = Circuit("broken")
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "b", 1e3))
        c.add(self._NanDevice("bad", "b", "0", 1e3))
        c.compile()
        return c

    def test_dc_stamp_guard_fails_fast_with_provenance(self):
        c = self._deck()
        with pytest.raises(StampError) as info:
            newton_solve(c, Context(), np.zeros(c.size))
        err = info.value
        assert "bad" in str(err)
        assert err.offenders
        assert err.offenders[0]["element"] == "bad"
        assert "b" in err.offenders[0]["rows"]
        payload = err.to_dict()
        assert payload["kind"] == "stamp_failure"

    def test_stamp_guard_passes_through_operating_point(self):
        """No recovery rung can fix a NaN deck: the ladder must not
        swallow the StampError into dozens of doomed rung attempts."""
        c = self._deck()
        with pytest.raises(StampError):
            operating_point(c)

    def test_transient_mode_stays_convergence_error(self):
        """In transient the failure may be time-local, so the integrator
        keeps dt-cut/backoff ownership via ConvergenceError."""
        c = self._deck()
        ctx = Context(mode="tran", time=1e-9, dt=1e-12,
                      x=np.zeros(c.size))
        with pytest.raises(ConvergenceError) as info:
            newton_solve(c, ctx, np.zeros(c.size))
        assert not isinstance(info.value, StampError)
        assert "bad" in str(info.value)

    def test_locate_offenders_and_summary(self):
        c = self._deck()
        ctx = Context(x=np.zeros(c.size))
        offenders = locate_nonfinite_stamps(c, ctx)
        assert [o["element"] for o in offenders] == ["bad"]
        assert "bad" in describe_offenders(offenders)
        assert describe_offenders([])  # empty case has a message too

    def test_nonfinite_initial_guess_rejected(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        c.compile()
        guess = np.full(c.size, np.nan)
        with pytest.raises(ConvergenceError):
            newton_solve(c, Context(), guess)


class TestAccumulator:
    def test_folds_solutions_and_certificates(self):
        acc = TrustAccumulator()
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        acc.note(operating_point(c))
        acc.note(Certificate(residual_norm=1e-8, cond_estimate=1e10,
                             equilibrated=True))
        extras = acc.as_extras()
        assert extras["trust_certified_solves"] == 2.0
        assert extras["trust_defended_solves"] == 1.0
        assert extras["trust_cond_estimate_max"] == pytest.approx(1e10)
        assert extras["trust_residual_norm_max"] >= 1e-8

    def test_nan_fields_do_not_poison_maxima(self):
        acc = TrustAccumulator()
        acc.note(Certificate())   # all-NaN certificate
        assert acc.solves == 1
        assert acc.residual_norm_max == 0.0
        assert math.isfinite(acc.as_extras()["trust_cond_estimate_max"])
