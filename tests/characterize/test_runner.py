"""Tests for the full characterisation pass (simulated numbers).

These use the session-scoped cached characterisations from conftest, so
the suite pays for the transient simulations once.
"""

import pytest

from repro.characterize.runner import characterize_cell
from repro.devices.mtj import MTJ_TABLE1


class TestNvCharacterization:
    def test_functional_checks_passed(self, nv_char):
        assert nv_char.restore_ok
        assert nv_char.store_events >= 2

    def test_energies_positive_and_ordered(self, nv_char):
        assert 0 < nv_char.e_read < 1e-12
        assert 0 < nv_char.e_write < 1e-12
        # The 20 ns MTJ store dwarfs a single read/write cycle.
        assert nv_char.e_store > 3 * (nv_char.e_read + nv_char.e_write)
        assert nv_char.e_store == pytest.approx(
            nv_char.e_store_h + nv_char.e_store_l
        )
        assert nv_char.e_restore > 0

    def test_static_power_ladder(self, nv_char):
        """normal > sleep > super-cutoff shutdown (Fig. 6(c) ordering)."""
        assert nv_char.p_normal > nv_char.p_sleep > nv_char.p_shutdown > 0

    def test_super_cutoff_beats_nominal_shutdown(self, nv_char):
        assert nv_char.p_shutdown < nv_char.p_shutdown_nominal / 3

    def test_store_currents_exceed_critical(self, nv_char):
        """CIMS happened, so the drive exceeded Ic during both steps."""
        ic = MTJ_TABLE1.critical_current
        assert nv_char.store_current_h > ic
        assert nv_char.store_current_l > ic

    def test_delays_fit_cycle(self, nv_char):
        t_cyc = 1.0 / nv_char.frequency
        assert 0 < nv_char.read_delay < t_cyc / 2
        assert 0 < nv_char.write_delay < t_cyc / 2

    def test_timings_recorded(self, nv_char):
        assert nv_char.t_store == pytest.approx(20e-9)
        assert nv_char.t_restore == pytest.approx(2e-9)


class TestVolatileCharacterization:
    def test_no_store_fields(self, vt_char):
        assert vt_char.e_store == 0.0
        assert vt_char.e_restore == 0.0
        assert vt_char.store_events == 0

    def test_shutdown_equals_sleep(self, vt_char):
        """The volatile cell cannot power off; its long period is sleep."""
        assert vt_char.p_shutdown == vt_char.p_sleep

    def test_static_power_ladder(self, vt_char):
        assert vt_char.p_normal > vt_char.p_sleep > 0


class TestPaperComparisons:
    def test_nvpg_speed_matches_6t(self, nv_char, vt_char):
        """Paper: the NV-SRAM cell under NVPG has the same read/write
        speed as the 6T cell (PS-FinFETs isolate the MTJs)."""
        assert nv_char.read_delay == pytest.approx(vt_char.read_delay,
                                                   rel=0.10)
        assert nv_char.write_delay == pytest.approx(vt_char.write_delay,
                                                    rel=0.15)

    def test_leakage_comparable_in_normal_mode(self, nv_char, vt_char):
        """Paper Fig. 3(a)/6(c): with V_CTRL control the NV cell's static
        power is comparable to the 6T cell's."""
        assert nv_char.p_normal == pytest.approx(vt_char.p_normal,
                                                 rel=0.25)

    def test_read_write_energy_comparable(self, nv_char, vt_char):
        assert nv_char.e_read == pytest.approx(vt_char.e_read, rel=0.2)
        assert nv_char.e_write == pytest.approx(vt_char.e_write, rel=0.2)


class TestCaching:
    def test_cache_hit_is_fast_and_equal(self, ctx, domain, nv_char):
        again = characterize_cell("nv", ctx.cond, domain,
                                  cache_dir=ctx.cache_dir)
        assert again == nv_char

    def test_unknown_kind_rejected(self):
        from repro.errors import CharacterizationError

        with pytest.raises(CharacterizationError):
            characterize_cell("9t", cache_dir=None)
