"""Tests for the NV-FF characterisation."""

import pytest

from repro.errors import CharacterizationError
from repro.characterize.ff_runner import (
    FlipFlopCharacterization,
    characterize_nvff,
)
from repro.pg.modes import OperatingConditions


@pytest.fixture(scope="module")
def ff():
    return characterize_nvff(OperatingConditions())


class TestCharacterization:
    def test_functional_checks(self, ff):
        assert ff.restore_ok
        assert ff.store_events == 2

    def test_clock_energy_ordering(self, ff):
        """Toggling costs more than holding; both are sub-femtojoule to
        femtojoule scale for a 20-transistor FF at 0.9 V."""
        assert 0 < ff.e_clock_hold < ff.e_clock_toggle < 1e-14

    def test_clk_to_q_fast(self, ff):
        assert 0 < ff.clk_to_q_delay < 0.2e-9

    def test_static_ladder(self, ff):
        assert ff.p_normal > ff.p_shutdown > 0
        assert ff.p_shutdown < ff.p_normal / 5

    def test_store_costs_dominate_clocking(self, ff):
        assert ff.e_store > 20 * ff.e_clock_toggle

    def test_ff_leaks_more_than_sram_cell(self, ff, nv_char):
        """A 20-transistor FF leaks more than an 8T+2MTJ cell."""
        assert ff.p_normal > nv_char.p_normal

    def test_activity_interpolation(self, ff):
        mid = ff.e_clock(0.5)
        assert ff.e_clock_hold < mid < ff.e_clock_toggle
        assert ff.e_clock(0.0) == ff.e_clock_hold
        assert ff.e_clock(1.0) == ff.e_clock_toggle
        with pytest.raises(CharacterizationError):
            ff.e_clock(1.5)

    def test_json_roundtrip(self, ff):
        clone = FlipFlopCharacterization.from_json(ff.to_json())
        assert clone == ff

    def test_cache_roundtrip(self, tmp_path):
        a = characterize_nvff(OperatingConditions(), cache_dir=tmp_path)
        b = characterize_nvff(OperatingConditions(), cache_dir=tmp_path)
        assert a == b

    def test_validation_catches_bad_record(self, ff):
        import dataclasses

        bad = dataclasses.replace(ff, restore_ok=False)
        with pytest.raises(CharacterizationError):
            bad.validate()
