"""Tests for the MTJ access-disturb analysis (NOF hazard)."""

import pytest

from repro.cells import PowerDomain
from repro.characterize.disturb import (
    DisturbReport,
    nof_access_disturb,
    nvpg_access_disturb,
)
from repro.pg.modes import Mode, OperatingConditions

COND = OperatingConditions()
DOMAIN = PowerDomain(64, 32)


@pytest.fixture(scope="module")
def nof_read():
    return nof_access_disturb(Mode.READ, COND, DOMAIN)


@pytest.fixture(scope="module")
def nof_write():
    return nof_access_disturb(Mode.WRITE, COND, DOMAIN)


@pytest.fixture(scope="module")
def nvpg_read():
    return nvpg_access_disturb(Mode.READ, COND, DOMAIN)


class TestNofStress:
    def test_reads_stress_but_do_not_flip(self, nof_read):
        """With retention engaged, reads push substantial sub-critical
        current through the junctions — a real but bounded hazard."""
        assert 0.3 < nof_read.peak_current_ratio < 1.0
        assert not nof_read.flipped
        assert nof_read.peak_progress < 0.5

    def test_writes_reach_the_write_back_regime(self, nof_write):
        """NOF writes drive the MTJs at/above Ic — that is precisely the
        'every-cycle write back' mechanism (and its energy cost)."""
        assert nof_write.peak_current_ratio > 0.9

    def test_report_fields(self, nof_read):
        assert isinstance(nof_read, DisturbReport)
        assert nof_read.mode == "read"

    def test_safe_property(self, nof_read):
        assert nof_read.safe == (
            not nof_read.flipped and nof_read.peak_current_ratio < 0.95
        )

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            nof_access_disturb(Mode.SLEEP, COND, DOMAIN)


class TestNvpgIsolation:
    def test_psfinfets_isolate_completely(self, nvpg_read):
        """The electrical-separation claim in its sharpest form: with SR
        off, junction currents during accesses are ~zero."""
        assert nvpg_read.peak_current_ratio < 1e-2
        assert nvpg_read.peak_progress == 0.0
        assert not nvpg_read.flipped

    def test_write_burst_also_isolated(self):
        report = nvpg_access_disturb(Mode.WRITE, COND, DOMAIN)
        assert report.peak_current_ratio < 1e-2
        assert not report.flipped

    def test_contrast_with_nof(self, nof_read, nvpg_read):
        assert nof_read.peak_current_ratio > \
            50 * max(nvpg_read.peak_current_ratio, 1e-6)
