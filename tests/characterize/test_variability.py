"""Tests for the Monte-Carlo variability analyses."""

import numpy as np
import pytest

from repro.errors import CharacterizationError
from repro.cells import PowerDomain
from repro.characterize.variability import (
    SnmDistribution,
    StoreYieldResult,
    VariationModel,
    read_snm_distribution,
    store_yield_analysis,
)
from repro.devices.mtj import MTJ_TABLE1
from repro.devices.ptm20 import NFET_20NM_HP
from repro.pg.modes import OperatingConditions

COND = OperatingConditions()
DOMAIN = PowerDomain(64, 32)


class TestVariationModel:
    def test_fet_sampling_moves_vth(self):
        rng = np.random.default_rng(1)
        model = VariationModel(sigma_vth=0.025)
        samples = [model.sample_fet(NFET_20NM_HP, rng).vth0
                   for _ in range(300)]
        assert np.std(samples) == pytest.approx(0.025, rel=0.2)
        assert np.mean(samples) == pytest.approx(NFET_20NM_HP.vth0,
                                                 abs=0.005)

    def test_zero_sigma_gives_nominal_vth(self):
        rng = np.random.default_rng(1)
        model = VariationModel(sigma_vth=0.0, sigma_ispec_rel=0.0)
        sample = model.sample_fet(NFET_20NM_HP, rng)
        assert sample.vth0 == NFET_20NM_HP.vth0
        assert sample.i_spec == NFET_20NM_HP.i_spec

    def test_mtj_sampling(self):
        rng = np.random.default_rng(2)
        model = VariationModel(sigma_ic_rel=0.05)
        ics = [model.sample_mtj(MTJ_TABLE1, rng).critical_current
               for _ in range(300)]
        spread = np.std(np.log(ics))
        assert spread == pytest.approx(0.05, rel=0.25)


class TestStoreYield:
    @pytest.fixture(scope="class")
    def result(self) -> StoreYieldResult:
        return store_yield_analysis(COND, DOMAIN, n_samples=50, seed=7)

    def test_all_samples_switch(self, result):
        """At Table I biases every corner still clears Ic — the store
        functions across variation even where the 1.5x margin does not
        hold (which is exactly what the margin is budgeted for)."""
        assert result.switching_yield == 1.0

    def test_margins_distributed(self, result):
        assert result.margins.std() > 0.0
        assert 1.0 < result.percentile(50) < 2.0

    def test_margin_yield_leq_switching_yield(self, result):
        assert result.margin_yield <= result.switching_yield

    def test_deterministic_given_seed(self):
        a = store_yield_analysis(COND, DOMAIN, n_samples=5, seed=11)
        b = store_yield_analysis(COND, DOMAIN, n_samples=5, seed=11)
        np.testing.assert_array_equal(a.margins, b.margins)

    def test_larger_variation_widens_distribution(self):
        tight = store_yield_analysis(
            COND, DOMAIN, n_samples=40, seed=3,
            variation=VariationModel(sigma_vth=0.005, sigma_ic_rel=0.01),
        )
        wide = store_yield_analysis(
            COND, DOMAIN, n_samples=40, seed=3,
            variation=VariationModel(sigma_vth=0.05, sigma_ic_rel=0.10),
        )
        assert wide.margins.std() > 2 * tight.margins.std()

    def test_bad_sample_count(self):
        with pytest.raises(CharacterizationError):
            store_yield_analysis(COND, DOMAIN, n_samples=0)


class TestSnmDistribution:
    @pytest.fixture(scope="class")
    def result(self) -> SnmDistribution:
        return read_snm_distribution(COND, n_samples=30, seed=5)

    def test_mean_below_nominal(self, result):
        """Mismatch can only hurt the worst lobe: the mean MC read SNM
        sits below the nominal symmetric value."""
        from repro.characterize.snm import static_noise_margin

        nominal = static_noise_margin(COND, read_mode=True)
        assert result.mean < nominal

    def test_spread_reflects_sigma(self, result):
        assert 0.005 < result.std < 0.05

    def test_yield_high_at_nominal_sigma(self, result):
        assert result.stability_yield > 0.9

    def test_hold_mode_stronger_than_read(self):
        hold = read_snm_distribution(COND, n_samples=20, read_mode=False,
                                     seed=9)
        read = read_snm_distribution(COND, n_samples=20, read_mode=True,
                                     seed=9)
        assert hold.mean > read.mean

    def test_underdrive_improves_mc_read_snm(self):
        base = read_snm_distribution(COND, n_samples=20, seed=13)
        assisted = read_snm_distribution(
            COND.with_(wl_underdrive=0.1), n_samples=20, seed=13,
        )
        assert assisted.mean > base.mean

    def test_bad_sample_count(self):
        with pytest.raises(CharacterizationError):
            read_snm_distribution(COND, n_samples=0)


class TestAsymmetricButterfly:
    def test_reduces_to_symmetric(self):
        from repro.characterize.snm import (
            _butterfly_snm,
            _butterfly_snm_two,
            butterfly_curve,
        )

        curve = butterfly_curve(COND, read_mode=False)
        sym, _ = _butterfly_snm(curve.vin, curve.vout)
        two, lobes = _butterfly_snm_two(curve.vin, curve.vout, curve.vout)
        assert two == pytest.approx(sym, rel=1e-9)
        assert lobes[0] == pytest.approx(lobes[1], rel=1e-6)

    def test_skewed_pair_has_unequal_lobes(self):
        from repro.characterize.snm import _butterfly_snm_two, butterfly_curve

        curve = butterfly_curve(COND, read_mode=False)
        # Inverter 2 with a shifted switching threshold.
        import numpy as np

        vin = curve.vin
        shifted = np.interp(np.clip(vin - 0.08, 0, None), vin, curve.vout)
        snm, lobes = _butterfly_snm_two(vin, curve.vout, shifted)
        assert abs(lobes[0] - lobes[1]) > 1e-3
        assert snm == pytest.approx(min(lobes))
