"""Tests for the characterisation disk cache."""

from pathlib import Path

import pytest

from repro.cells import PowerDomain
from repro.characterize import cache
from repro.exec import atomicio
from repro.characterize.data import CellCharacterization
from repro.pg.modes import OperatingConditions


def _record():
    return CellCharacterization(
        kind="6t", n_wordlines=32, vdd=0.9, frequency=300e6,
        e_read=1e-15, e_write=1e-15, p_normal=1e-9, p_sleep=0.5e-9,
        p_shutdown=0.5e-9, p_shutdown_nominal=0.5e-9,
    )


class TestCacheKey:
    def test_deterministic(self):
        k1 = cache.cache_key(kind="nv", cond=OperatingConditions(),
                             domain=PowerDomain(512, 32))
        k2 = cache.cache_key(kind="nv", cond=OperatingConditions(),
                             domain=PowerDomain(512, 32))
        assert k1 == k2

    def test_sensitive_to_inputs(self):
        base = cache.cache_key(kind="nv", cond=OperatingConditions(),
                               domain=PowerDomain(512, 32))
        other_kind = cache.cache_key(kind="6t", cond=OperatingConditions(),
                                     domain=PowerDomain(512, 32))
        other_cond = cache.cache_key(
            kind="nv", cond=OperatingConditions(frequency=1e9),
            domain=PowerDomain(512, 32),
        )
        other_domain = cache.cache_key(kind="nv",
                                       cond=OperatingConditions(),
                                       domain=PowerDomain(64, 32))
        assert len({base, other_kind, other_cond, other_domain}) == 4

    def test_dataclass_type_disambiguates(self):
        """Two different dataclasses with equal fields hash differently."""
        from repro.devices.mtj import MTJ_TABLE1

        a = cache.cache_key(x=MTJ_TABLE1)
        b = cache.cache_key(x=MTJ_TABLE1.with_(jc=1e10))
        assert a != b


class TestLoadStore:
    def test_roundtrip(self, tmp_path):
        record = _record()
        cache.store(tmp_path, "abc", record)
        assert cache.load(tmp_path, "abc") == record

    def test_missing_returns_none(self, tmp_path):
        assert cache.load(tmp_path, "missing") is None

    def test_disabled_cache(self):
        cache.store(None, "abc", _record())  # no-op
        assert cache.load(None, "abc") is None

    def test_corrupt_entry_quarantined_with_warning(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.warns(RuntimeWarning, match="bad.json"):
            assert cache.load(tmp_path, "bad") is None
        assert not (tmp_path / "bad.json").exists()
        assert (tmp_path / cache.CORRUPT_SUBDIR / "bad.json").exists()

    def test_stale_schema_entry_quarantined(self, tmp_path):
        (tmp_path / "stale.json").write_text('{"unexpected": 1}')
        with pytest.warns(RuntimeWarning, match="stale.json"):
            assert cache.load(tmp_path, "stale") is None
        assert (tmp_path / cache.CORRUPT_SUBDIR / "stale.json").exists()

    def test_old_schema_envelope_quarantined(self, tmp_path):
        """A well-formed envelope from an older schema is invalidated."""
        cache.store(tmp_path, "old", _record())
        text = (tmp_path / "old.json").read_text()
        (tmp_path / "old.json").write_text(
            text.replace(f'"schema": {cache.CACHE_SCHEMA_VERSION}',
                         '"schema": 4'))
        with pytest.warns(RuntimeWarning, match="schema"):
            assert cache.load(tmp_path, "old") is None

    def test_checksum_mismatch_quarantined(self, tmp_path):
        """A flipped payload value no longer matches the checksum."""
        import json

        cache.store(tmp_path, "flip", _record())
        envelope = json.loads((tmp_path / "flip.json").read_text())
        envelope["payload"]["e_read"] = 123.0
        (tmp_path / "flip.json").write_text(json.dumps(envelope))
        with pytest.warns(RuntimeWarning, match="checksum mismatch"):
            assert cache.load(tmp_path, "flip") is None
        assert (tmp_path / cache.CORRUPT_SUBDIR / "flip.json").exists()

    def test_quarantine_does_not_hide_good_entries(self, tmp_path):
        record = _record()
        cache.store(tmp_path, "good", record)
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.warns(RuntimeWarning):
            cache.load(tmp_path, "bad")
        assert cache.load(tmp_path, "good") == record

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        cache.store(target, "abc", _record())
        assert (target / "abc.json").exists()


class TestUnwritableDir:
    @pytest.fixture(autouse=True)
    def _fresh_warn_state(self, monkeypatch):
        monkeypatch.setattr(cache, "_UNWRITABLE", set())

    def test_store_degrades_to_cache_off(self, tmp_path, monkeypatch):
        """An unwritable directory warns once, then goes quiet."""
        def refuse(*args, **kwargs):
            raise OSError(30, "Read-only file system")

        # The staging lives in the shared atomic-write helper now.
        monkeypatch.setattr(atomicio.tempfile, "mkstemp", refuse)
        with pytest.warns(RuntimeWarning, match="not writable"):
            cache.store(tmp_path, "ro1", _record())
        # second store: silently skipped, no second warning
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            cache.store(tmp_path, "ro2", _record())
        assert cache.load(tmp_path, "ro1") is None

    def test_failed_rename_degrades(self, tmp_path, monkeypatch):
        real_replace = cache.os.replace

        def refuse(src, dst):
            if str(dst).endswith("ro.json"):
                raise OSError(30, "Read-only file system")
            return real_replace(src, dst)

        monkeypatch.setattr(cache.os, "replace", refuse)
        with pytest.warns(RuntimeWarning, match="not writable"):
            cache.store(tmp_path, "ro", _record())
        # the staged temp file must not leak
        assert [p for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert cache.default_cache_dir() == tmp_path
