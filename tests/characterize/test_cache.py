"""Tests for the characterisation disk cache."""

from pathlib import Path

import pytest

from repro.cells import PowerDomain
from repro.characterize import cache
from repro.characterize.data import CellCharacterization
from repro.pg.modes import OperatingConditions


def _record():
    return CellCharacterization(
        kind="6t", n_wordlines=32, vdd=0.9, frequency=300e6,
        e_read=1e-15, e_write=1e-15, p_normal=1e-9, p_sleep=0.5e-9,
        p_shutdown=0.5e-9, p_shutdown_nominal=0.5e-9,
    )


class TestCacheKey:
    def test_deterministic(self):
        k1 = cache.cache_key(kind="nv", cond=OperatingConditions(),
                             domain=PowerDomain(512, 32))
        k2 = cache.cache_key(kind="nv", cond=OperatingConditions(),
                             domain=PowerDomain(512, 32))
        assert k1 == k2

    def test_sensitive_to_inputs(self):
        base = cache.cache_key(kind="nv", cond=OperatingConditions(),
                               domain=PowerDomain(512, 32))
        other_kind = cache.cache_key(kind="6t", cond=OperatingConditions(),
                                     domain=PowerDomain(512, 32))
        other_cond = cache.cache_key(
            kind="nv", cond=OperatingConditions(frequency=1e9),
            domain=PowerDomain(512, 32),
        )
        other_domain = cache.cache_key(kind="nv",
                                       cond=OperatingConditions(),
                                       domain=PowerDomain(64, 32))
        assert len({base, other_kind, other_cond, other_domain}) == 4

    def test_dataclass_type_disambiguates(self):
        """Two different dataclasses with equal fields hash differently."""
        from repro.devices.mtj import MTJ_TABLE1

        a = cache.cache_key(x=MTJ_TABLE1)
        b = cache.cache_key(x=MTJ_TABLE1.with_(jc=1e10))
        assert a != b


class TestLoadStore:
    def test_roundtrip(self, tmp_path):
        record = _record()
        cache.store(tmp_path, "abc", record)
        assert cache.load(tmp_path, "abc") == record

    def test_missing_returns_none(self, tmp_path):
        assert cache.load(tmp_path, "missing") is None

    def test_disabled_cache(self):
        cache.store(None, "abc", _record())  # no-op
        assert cache.load(None, "abc") is None

    def test_corrupt_entry_ignored(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.load(tmp_path, "bad") is None

    def test_stale_schema_entry_ignored(self, tmp_path):
        (tmp_path / "stale.json").write_text('{"unexpected": 1}')
        assert cache.load(tmp_path, "stale") is None

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        cache.store(target, "abc", _record())
        assert (target / "abc.json").exists()


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert cache.default_cache_dir() == tmp_path
