"""Tests for the static-noise-margin butterfly analysis."""

import numpy as np
import pytest

from repro.characterize.snm import butterfly_curve, static_noise_margin
from repro.pg.modes import OperatingConditions

COND = OperatingConditions()


@pytest.fixture(scope="module")
def hold_curve():
    return butterfly_curve(COND, read_mode=False)


@pytest.fixture(scope="module")
def read_curve():
    return butterfly_curve(COND, read_mode=True)


class TestButterfly:
    def test_vtc_is_inverting(self, hold_curve):
        assert hold_curve.vout[0] > 0.85
        assert hold_curve.vout[-1] < 0.05

    def test_snm_positive(self, hold_curve, read_curve):
        assert hold_curve.snm > 0
        assert read_curve.snm > 0

    def test_read_snm_smaller_than_hold(self, hold_curve, read_curve):
        """The asserted pass-gate degrades the low-node margin."""
        assert read_curve.snm < hold_curve.snm

    def test_hold_snm_plausible_range(self, hold_curve):
        # A (1,1,1) 20 nm cell at 0.9 V: hold SNM is a few hundred mV.
        assert 0.15 < hold_curve.snm < 0.45

    def test_read_snm_plausible_range(self, read_curve):
        # The paper notes the aggressive (1,1) design lowers stability;
        # read SNM is small but nonzero without assist.
        assert 0.01 < read_curve.snm < 0.25

    def test_lobes_reported(self, hold_curve):
        lo, hi = sorted(hold_curve.lobe_margins)
        assert hold_curve.snm == pytest.approx(lo)

    def test_mode_label(self, hold_curve, read_curve):
        assert hold_curve.mode == "hold"
        assert read_curve.mode == "read"


class TestBiasAssist:
    def test_underdrive_recovers_read_margin(self):
        """Paper Section II: word-line underdrive stabilises the
        aggressive (1,1) design."""
        base = static_noise_margin(COND, read_mode=True)
        assisted = static_noise_margin(
            OperatingConditions(wl_underdrive=0.1), read_mode=True)
        assert assisted > base * 1.2

    def test_underdrive_does_not_affect_hold(self):
        base = static_noise_margin(COND, read_mode=False)
        assisted = static_noise_margin(
            OperatingConditions(wl_underdrive=0.1), read_mode=False)
        assert assisted == pytest.approx(base, rel=1e-6)


class TestSizingTrends:
    def test_stronger_driver_improves_read_snm(self):
        weak = static_noise_margin(COND, read_mode=True, nfd=1)
        strong = static_noise_margin(COND, read_mode=True, nfd=2)
        assert strong > weak

    def test_wider_passgate_degrades_read_snm(self):
        narrow = static_noise_margin(COND, read_mode=True, nfp=1)
        wide = static_noise_margin(COND, read_mode=True, nfp=2)
        assert wide < narrow

    def test_convenience_wrapper(self):
        assert static_noise_margin(COND, read_mode=False) == pytest.approx(
            butterfly_curve(COND, read_mode=False).snm
        )
