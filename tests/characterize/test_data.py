"""Tests for characterisation records and validation."""

import pytest

from repro.errors import CharacterizationError
from repro.characterize.data import CellCharacterization


def _valid_nv(**overrides):
    payload = dict(
        kind="nv", n_wordlines=512, vdd=0.9, frequency=300e6,
        e_read=25e-15, e_write=26e-15,
        p_normal=14e-9, p_sleep=7e-9, p_shutdown=1.2e-9,
        p_shutdown_nominal=17e-9,
        e_store=270e-15, e_store_h=170e-15, e_store_l=100e-15,
        t_store=20e-9, e_restore=27e-15, t_restore=2e-9,
        read_delay=130e-12, write_delay=80e-12,
        store_current_h=21e-6, store_current_l=20e-6,
        store_events=2, restore_ok=True,
    )
    payload.update(overrides)
    return CellCharacterization(**payload)


class TestValidation:
    def test_valid_record_passes(self):
        _valid_nv().validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(CharacterizationError):
            CellCharacterization(kind="8t", n_wordlines=1, vdd=0.9,
                                 frequency=1e9)

    def test_failed_restore_rejected(self):
        with pytest.raises(CharacterizationError, match="restore"):
            _valid_nv(restore_ok=False).validate()

    def test_missing_store_events_rejected(self):
        with pytest.raises(CharacterizationError, match="MTJ"):
            _valid_nv(store_events=1).validate()

    def test_shutdown_must_beat_sleep(self):
        with pytest.raises(CharacterizationError):
            _valid_nv(p_shutdown=8e-9).validate()

    def test_zero_store_energy_rejected_for_nv(self):
        with pytest.raises(CharacterizationError):
            _valid_nv(e_store=0.0).validate()

    def test_6t_does_not_need_store(self):
        record = CellCharacterization(
            kind="6t", n_wordlines=512, vdd=0.9, frequency=300e6,
            e_read=25e-15, e_write=26e-15,
            p_normal=14e-9, p_sleep=6e-9, p_shutdown=6e-9,
            p_shutdown_nominal=6e-9,
        )
        record.validate()

    def test_is_nonvolatile(self):
        assert _valid_nv().is_nonvolatile
        assert not CellCharacterization(
            kind="6t", n_wordlines=1, vdd=0.9, frequency=1e9
        ).is_nonvolatile


class TestSerialisation:
    def test_json_roundtrip(self):
        record = _valid_nv(extras={"note": 1.5})
        clone = CellCharacterization.from_json(record.to_json())
        assert clone == record

    def test_json_is_stable_text(self):
        a = _valid_nv().to_json()
        b = _valid_nv().to_json()
        assert a == b
