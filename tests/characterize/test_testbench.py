"""Tests for the shared single-cell testbench."""

import pytest

from repro.errors import CharacterizationError
from repro.analysis import operating_point
from repro.cells import PowerDomain
from repro.characterize.testbench import (
    LINE_SOURCES,
    SUPPLY_SOURCES,
    build_cell_testbench,
)
from repro.devices.mtj import MTJState
from repro.pg.modes import Mode, OperatingConditions


class TestConstruction:
    def test_unknown_kind_rejected(self):
        with pytest.raises(CharacterizationError):
            build_cell_testbench("8t")

    def test_nv_has_mtjs_6t_does_not(self):
        nv = build_cell_testbench("nv")
        vt = build_cell_testbench("6t")
        assert "cell.mtjq" in nv.circuit
        assert "cell.mtjq" not in vt.circuit

    def test_all_line_sources_exist(self):
        tb = build_cell_testbench("nv")
        for source in LINE_SOURCES.values():
            assert source in tb.circuit
        for source in SUPPLY_SOURCES:
            assert source in tb.circuit

    def test_bitline_cap_follows_domain(self):
        small = build_cell_testbench("nv", domain=PowerDomain(32, 32))
        large = build_cell_testbench("nv", domain=PowerDomain(2048, 32))
        assert (large.circuit["c_bl"].capacitance
                > small.circuit["c_bl"].capacitance)

    def test_nfsw_override(self):
        tb = build_cell_testbench("nv", nfsw=3)
        assert tb.circuit["psw.sw"].nfin == 3

    def test_core_accessor(self):
        nv = build_cell_testbench("nv")
        vt = build_cell_testbench("6t")
        assert nv.core.q == "cell.q"
        assert vt.core.q == "cell.q"
        with pytest.raises(CharacterizationError):
            vt.nv_cell


class TestModeApplication:
    def test_standby_biases(self):
        tb = build_cell_testbench("nv")
        tb.apply_mode(Mode.STANDBY)
        assert tb.circuit["vrail"].dc == 0.9
        assert tb.circuit["vctrl"].dc == 0.07
        assert tb.circuit["vpg"].dc == 0.0

    def test_shutdown_biases(self):
        tb = build_cell_testbench("nv")
        tb.apply_mode(Mode.SHUTDOWN)
        assert tb.circuit["vpg"].dc == 1.0

    def test_volatile_masks_sr_ctrl(self):
        tb = build_cell_testbench("6t")
        tb.apply_mode(Mode.STORE_H)
        assert tb.circuit["vsr"].dc == 0.0
        assert tb.circuit["vctrl"].dc == 0.0

    def test_op_converges_in_every_mode(self):
        for mode in Mode:
            tb = build_cell_testbench("nv")
            tb.apply_mode(mode)
            ic = None if mode is Mode.SHUTDOWN else tb.initial_conditions(True)
            sol = operating_point(tb.circuit, ic=ic)
            assert all(abs(v) < 1.3 for v in sol.voltages().values())


class TestMtjData:
    def test_set_mtj_data_encoding(self):
        tb = build_cell_testbench("nv")
        tb.set_mtj_data(True)
        assert tb.nv_cell.mtj_q(tb.circuit).state is MTJState.ANTIPARALLEL
        assert tb.nv_cell.mtj_qb(tb.circuit).state is MTJState.PARALLEL
        tb.set_mtj_data(False)
        assert tb.nv_cell.mtj_q(tb.circuit).state is MTJState.PARALLEL

    def test_initial_conditions_include_vvdd(self):
        tb = build_cell_testbench("nv")
        ic = tb.initial_conditions(True)
        assert ic["vvdd"] == tb.cond.vdd
        assert ic["cell.q"] == tb.cond.vdd
        assert ic["cell.qb"] == 0.0
