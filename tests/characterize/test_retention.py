"""Tests for the data-retention-voltage analysis."""

import numpy as np
import pytest

from repro.errors import CharacterizationError
from repro.characterize.retention import (
    DEFAULT_MARGIN,
    retention_voltage_sweep,
)
from repro.pg.modes import OperatingConditions

COND = OperatingConditions()


@pytest.fixture(scope="module")
def sweep():
    return retention_voltage_sweep(COND,
                                   rail_values=np.linspace(0.15, 0.9, 14))


class TestRetentionSweep:
    def test_margin_grows_with_rail(self, sweep):
        # Above the DRV the hold margin increases with the rail.
        valid = sweep.hold_snm > 0
        snm_valid = sweep.hold_snm[valid]
        assert np.all(np.diff(snm_valid) > -1e-3)

    def test_retention_voltage_found(self, sweep):
        assert sweep.retention_voltage is not None
        # A 20 nm latch retains data well below the paper's 0.7 V sleep
        # rail but not arbitrarily low.
        assert 0.1 < sweep.retention_voltage < 0.6

    def test_sleep_rail_has_headroom(self, sweep):
        """The paper's 0.7 V sleep rail must clear the DRV comfortably —
        the quantitative justification of the sleep-mode choice."""
        assert sweep.sleep_headroom is not None
        assert sweep.sleep_headroom > 0.1

    def test_margin_threshold_respected(self, sweep):
        idx = list(sweep.rail).index(sweep.retention_voltage)
        assert sweep.hold_snm[idx] >= sweep.margin
        if idx > 0:
            assert sweep.hold_snm[idx - 1] < sweep.margin

    def test_rows(self, sweep):
        rows = sweep.rows()
        assert len(rows) == len(sweep.rail)

    def test_unreachable_margin(self):
        strict = retention_voltage_sweep(
            COND, rail_values=[0.2, 0.3], margin=5.0,
        )
        assert strict.retention_voltage is None
        assert strict.sleep_headroom is None

    def test_bad_rails_rejected(self):
        with pytest.raises(CharacterizationError):
            retention_voltage_sweep(COND, rail_values=[-0.1, 0.5])
