"""Cache observability: hit/miss/quarantine/age counters and the
generic payload envelope used by the serve layer and the NV-FF runner."""

import json
import threading

import pytest

from repro.characterize import cache


@pytest.fixture(autouse=True)
def _fresh_counters():
    cache.STATS.reset()
    yield
    cache.STATS.reset()


def _payload():
    return {"kind": "demo", "value": 42.0}


class TestCounters:
    def test_miss_then_store_then_hit(self, tmp_path):
        assert cache.load_payload(tmp_path, "k") is None
        cache.store_payload(tmp_path, "k", _payload())
        assert cache.load_payload(tmp_path, "k") == _payload()
        snap = cache.STATS.snapshot()
        assert snap["misses"] == 1
        assert snap["hits"] == 1
        assert snap["stores"] == 1
        assert snap["hit_rate"] == 0.5

    def test_hit_age_is_tracked(self, tmp_path):
        cache.store_payload(tmp_path, "k", _payload())
        cache.load_payload(tmp_path, "k")
        snap = cache.STATS.snapshot()
        assert snap["last_hit_age_s"] is not None
        assert snap["last_hit_age_s"] >= 0.0
        assert snap["max_hit_age_s"] >= snap["last_hit_age_s"]

    def test_entry_age_helper(self, tmp_path):
        assert cache.entry_age_s(tmp_path, "missing") is None
        cache.store_payload(tmp_path, "k", _payload())
        assert cache.entry_age_s(tmp_path, "k") >= 0.0

    def test_none_cache_dir_counts_nothing(self):
        assert cache.load_payload(None, "k") is None
        assert cache.STATS.snapshot()["misses"] == 0


class TestQuarantine:
    def test_corrupt_entry_quarantined_and_counted(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.warns(RuntimeWarning, match="discarding cache entry"):
            assert cache.load_payload(tmp_path, "bad") is None
        assert (tmp_path / cache.CORRUPT_SUBDIR / "bad.json").exists()
        snap = cache.STATS.snapshot()
        assert snap["quarantined"] == 1
        assert snap["misses"] == 1      # the caller still saw a miss

    def test_checksum_mismatch_quarantined(self, tmp_path):
        cache.store_payload(tmp_path, "k", _payload())
        path = tmp_path / "k.json"
        envelope = json.loads(path.read_text())
        envelope["payload"]["value"] = 43.0     # silent corruption
        path.write_text(json.dumps(envelope))
        with pytest.warns(RuntimeWarning, match="checksum"):
            assert cache.load_payload(tmp_path, "k") is None
        assert cache.STATS.snapshot()["quarantined"] == 1

    def test_concurrent_readers_during_quarantine_all_miss_cleanly(
            self, tmp_path):
        """Racing readers of a corrupt entry must all get a clean miss
        (one mover wins the quarantine rename; the rest must tolerate
        the entry vanishing underneath them)."""
        n = 8
        (tmp_path / "torn.json").write_text('{"schema": 0')
        barrier = threading.Barrier(n)
        results, errors = [], []

        def read():
            try:
                barrier.wait(timeout=5.0)
                import warnings
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    results.append(cache.load_payload(tmp_path, "torn"))
            except Exception as err:    # noqa: BLE001 - the assertion
                errors.append(err)

        threads = [threading.Thread(target=read) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not errors
        assert results == [None] * n
        snap = cache.STATS.snapshot()
        assert snap["quarantined"] >= 1
        assert snap["misses"] == n
        # a fresh store over the quarantined key works immediately
        cache.store_payload(tmp_path, "torn", _payload())
        assert cache.load_payload(tmp_path, "torn") == _payload()

    def test_reject_payload_for_type_mismatch(self, tmp_path):
        cache.store_payload(tmp_path, "k", {"unexpected": "shape"})
        cache.load_payload(tmp_path, "k")
        with pytest.warns(RuntimeWarning, match="does not fit"):
            cache.reject_payload(tmp_path, "k",
                                 "payload does not fit the result type")
        assert cache.load_payload(tmp_path, "k") is None
        assert cache.STATS.snapshot()["quarantined"] == 1


class TestEnvelope:
    def test_payload_roundtrip_is_schema_stamped(self, tmp_path):
        cache.store_payload(tmp_path, "k", _payload())
        envelope = json.loads((tmp_path / "k.json").read_text())
        assert envelope["schema"] == cache.CACHE_SCHEMA_VERSION
        assert envelope["payload"] == _payload()
        assert "sha256" in envelope

    def test_nvff_runner_uses_the_envelope(self, tmp_path):
        """NV-FF cache entries share the generic envelope (schema 7)."""
        from repro.characterize.ff_runner import characterize_nvff

        first = characterize_nvff(cache_dir=tmp_path)
        files = [p for p in tmp_path.iterdir() if p.suffix == ".json"]
        assert len(files) == 1
        envelope = json.loads(files[0].read_text())
        assert envelope["schema"] == cache.CACHE_SCHEMA_VERSION
        cache.STATS.reset()
        again = characterize_nvff(cache_dir=tmp_path)
        assert cache.STATS.snapshot()["hits"] == 1
        assert again.to_json() == first.to_json()
