"""Tests for the Fig. 3 / Fig. 4 sweep characterisations."""

import numpy as np
import pytest

from repro.cells import PowerDomain
from repro.characterize.leakage import leakage_vs_vctrl
from repro.characterize.store import (
    derive_store_biases,
    store_current_vs_vctrl,
    store_current_vs_vsr,
    verify_store_bias_choice,
)
from repro.characterize.vvdd import vvdd_vs_nfsw
from repro.devices.mtj import MTJ_FIG9B
from repro.pg.modes import OperatingConditions

DOMAIN = PowerDomain(64, 32)   # small domain keeps the sweeps fast
COND = OperatingConditions()


@pytest.fixture(scope="module")
def leakage():
    return leakage_vs_vctrl(COND, DOMAIN,
                            v_ctrl_values=np.linspace(0.0, 0.3, 16))


@pytest.fixture(scope="module")
def store_h():
    return store_current_vs_vsr(COND, DOMAIN,
                                v_sr_values=np.linspace(0.0, 0.9, 19))


@pytest.fixture(scope="module")
def store_l():
    return store_current_vs_vctrl(COND, DOMAIN,
                                  v_ctrl_values=np.linspace(0.0, 0.9, 19))


class TestLeakageSweep:
    def test_minimum_at_small_positive_vctrl(self, leakage):
        """Fig. 3(a): the leakage minimum sits near V_CTRL ~ 0.07 V."""
        assert 0.02 <= leakage.v_ctrl_optimal <= 0.15

    def test_minimum_is_interior(self, leakage):
        i = leakage.i_leak_nv
        assert leakage.i_leak_nv_min < i[0]
        assert leakage.i_leak_nv_min < i[-1]

    def test_nv_comparable_to_6t_at_optimum(self, leakage):
        assert leakage.i_leak_nv_min == pytest.approx(leakage.i_leak_6t,
                                                      rel=0.3)

    def test_rows_shape(self, leakage):
        rows = leakage.rows()
        assert len(rows) == 16
        assert all(len(r) == 3 for r in rows)


class TestStoreCurrentSweeps:
    def test_h_store_monotonic_in_vsr(self, store_h):
        assert np.all(np.diff(store_h.current) >= -1e-9)

    def test_h_store_margin_reachable(self, store_h):
        assert store_h.bias_at_margin is not None
        assert 0.4 < store_h.bias_at_margin < 0.9

    def test_l_store_monotonic_saturating(self, store_l):
        diffs = np.diff(store_l.current)
        assert np.all(diffs >= -1e-9)
        # The AP-path current saturates: late slope << early slope.
        early = store_l.current[6] - store_l.current[2]
        late = store_l.current[-1] - store_l.current[-5]
        assert late < early

    def test_margin_fields(self, store_h):
        assert store_h.i_required == pytest.approx(
            1.5 * store_h.i_critical
        )
        assert store_h.bias_name == "v_sr"

    def test_table1_biases_drive_cims(self, store_h, store_l):
        """At Table I biases both store currents exceed Ic, so the 10 ns
        store completes (margin < 1.5x with our card; see EXPERIMENTS)."""
        i_h = np.interp(COND.v_sr, store_h.bias, store_h.current)
        i_l = np.interp(COND.v_ctrl_store, store_l.bias, store_l.current)
        assert i_h > store_h.i_critical
        assert i_l > store_l.i_critical

    def test_verify_store_bias_choice(self):
        summary = verify_store_bias_choice(COND, DOMAIN)
        assert summary["i_at_table1_vsr"] > 0
        assert 0 < summary["v_sr_required"] < 0.9


class TestDeriveStoreBiases:
    def test_derived_biases_meet_margin(self):
        derived = derive_store_biases(COND, DOMAIN)
        sweep = store_current_vs_vsr(derived, DOMAIN)
        i_at = np.interp(derived.v_sr, sweep.bias, sweep.current)
        assert i_at >= sweep.i_required * 0.98

    def test_low_jc_card_needs_much_lower_biases(self):
        relaxed = derive_store_biases(COND, DOMAIN, mtj_params=MTJ_FIG9B)
        base = derive_store_biases(COND, DOMAIN)
        assert relaxed.v_sr < base.v_sr - 0.1


class TestVvddSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return vvdd_vs_nfsw(COND, DOMAIN, nfsw_values=range(1, 9))

    def test_store_mode_sags_more(self, sweep):
        assert np.all(sweep.vvdd_store <= sweep.vvdd_normal + 1e-9)

    def test_monotone_in_nfsw(self, sweep):
        assert np.all(np.diff(sweep.vvdd_store) > 0)

    def test_paper_target_reachable(self, sweep):
        nfsw = sweep.smallest_nfsw_for(0.97)
        assert nfsw is not None
        assert nfsw <= 7   # the paper's (conservative) choice

    def test_retention_fraction(self, sweep):
        frac = sweep.retention_fraction_store()
        assert np.all((0 < frac) & (frac <= 1.0))
