"""End-to-end serving tests against an in-process server.

One module-scoped server (inline workers, demo + chaos test routes)
backs the cheap request/response tests; the shedding and breaker tests
boot dedicated servers with budgets shrunk to force those paths.
"""

import threading

import pytest

from repro.serve import ServeClient, ServeOptions, ServerHandle


@pytest.fixture(scope="module")
def handle(tmp_path_factory):
    scratch = tmp_path_factory.mktemp("serve")
    options = ServeOptions(
        extra_routes=("demo", "chaos"),
        journal=scratch / "journal.jsonl",
        cache_dir=scratch / "cache",
        drain_grace=3.0,
        drain_settle_s=0.0,
    )
    with ServerHandle(options) as h:
        yield h


@pytest.fixture()
def client(handle):
    return ServeClient(port=handle.port)


class TestHealth:
    def test_healthz(self, client):
        resp = client.healthz()
        assert resp.code == 200
        assert resp.body["alive"] is True
        assert resp.body["draining"] is False

    def test_readyz(self, client):
        resp = client.readyz()
        assert resp.code == 200
        assert resp.body["ready"] is True

    def test_metrics_shape(self, client):
        m = client.metrics()
        for section in ("server", "admission", "coalesce", "breaker",
                        "backend", "characterize_cache"):
            assert section in m, section
        assert m["breaker"]["state"] == "closed"


class TestTaskRequests:
    def test_ok_roundtrip(self, client):
        resp = client.task("demo", {"params": {"x": 5.0}})
        assert resp.code == 200
        assert resp.status == "ok"
        assert resp.body["result"] == {"x": 5.0, "y": 25.0}
        assert resp.body["served_by"] == "backend"
        assert resp.body["degraded"] is False
        assert resp.body["coalesced"] is False

    def test_repeat_is_served_from_memo_with_age(self, client):
        body = {"params": {"x": 6.0}}
        client.task("demo", body)
        resp = client.task("demo", body)
        assert resp.status == "ok"
        assert resp.body["served_by"] == "memo"
        assert resp.body["age_s"] >= 0.0

    def test_unknown_field_is_400(self, client):
        resp = client.task("demo", {"bogus": 1})
        assert resp.code == 400
        assert resp.status == "bad-request"
        assert "bogus" in resp.body["detail"]

    def test_unknown_route_is_404(self, client):
        assert client.task("tarnish", {}).code == 404

    def test_wrong_method_is_405(self, client):
        assert client._request("PUT", "/v1/demo", {}).code == 405

    def test_unparseable_body_is_400(self, client, handle):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                          timeout=10)
        try:
            conn.request("POST", "/v1/demo", body="{nope",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 400
        finally:
            conn.close()

    def test_deterministic_skip_is_422(self, client):
        resp = client.task("chaos",
                           {"params": {"index": 3, "fault": "conv_skip"}})
        assert resp.code == 422
        assert resp.status == "skipped"
        assert resp.body["skip"]["error_type"] == "ConvergenceError"

    def test_poison_task_is_502_failed(self, client):
        resp = client.task("chaos",
                           {"params": {"index": 4, "fault": "task_error"}})
        assert resp.code == 502
        assert resp.status == "failed"
        assert resp.body["failures"]

    def test_deadline_is_504(self, client):
        resp = client.task(
            "demo", {"params": {"x": 8.0, "work": 5.0},
                     "deadline_s": 0.3})
        assert resp.code == 504
        assert resp.status == "deadline"

    def test_concurrent_identical_requests_coalesce(self, client, handle):
        before = client.metrics()["backend"]["executions"]
        body = {"params": {"x": 12.0, "work": 0.4}}
        barrier = threading.Barrier(4)
        results = []

        def hit():
            barrier.wait(timeout=5.0)
            results.append(ServeClient(port=handle.port).task("demo", body))

        threads = [threading.Thread(target=hit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert len(results) == 4
        assert all(r.status == "ok" for r in results)
        assert sum(1 for r in results if r.body["coalesced"]) == 3
        after = client.metrics()["backend"]["executions"]
        assert after - before == 1


class TestCampaigns:
    def test_stream_emits_begin_tasks_end(self, client):
        records = list(client.campaign_stream(
            "demo", options={"tasks": 3}))
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "stream_begin"
        assert kinds.count("task_end") == 3
        assert kinds[-1] == "stream_end"
        assert records[0]["n_tasks"] == 3
        end = records[-1]
        assert end["status"] == "completed"
        assert end["summary"]["counts"]["completed"] == 3

    def test_non_stream_blocks_to_summary(self, client):
        resp = client.campaign("demo", options={"tasks": 2})
        assert resp.code == 200
        assert resp.body["outcome"] == "completed"
        assert resp.body["summary"]["counts"]["completed"] == 2

    def test_resume_replays_from_the_shared_journal(self, client):
        first = client.campaign("demo", options={"tasks": 4, "work": 0.0})
        assert first.body["outcome"] == "completed"
        again = client.campaign("demo", options={"tasks": 4, "work": 0.0},
                                resume=True)
        assert again.body["outcome"] == "completed"
        assert again.body["summary"]["n_replayed"] == 4

    def test_unknown_campaign_is_400(self, client):
        resp = client.campaign("does-not-exist")
        assert resp.code == 400

    def test_bad_options_are_400(self, client):
        resp = client.campaign("demo", options=7)
        assert resp.code == 400


class TestShedding:
    def test_admission_overflow_is_429_with_retry_after(self, tmp_path):
        options = ServeOptions(
            extra_routes=("demo",),
            cache_dir=tmp_path / "cache",
            interactive_slots=1,
            max_pending_interactive=1,
            drain_settle_s=0.0,
        )
        with ServerHandle(options) as h:
            slow = []

            def occupy():
                slow.append(ServeClient(port=h.port).task(
                    "demo", {"params": {"x": 1.0, "work": 1.0}}))

            t = threading.Thread(target=occupy)
            t.start()
            try:
                deadline = ServeClient(port=h.port)
                # wait until the slow request holds the only budget slot
                for _ in range(100):
                    if deadline.metrics()["admission"]["interactive"][
                            "pending"] == 1:
                        break
                    import time
                    time.sleep(0.01)
                resp = deadline.task("demo", {"params": {"x": 2.0}})
                assert resp.code == 429
                assert resp.status == "shed"
                assert resp.retry_after_s() >= 1.0
            finally:
                t.join(timeout=10.0)
            assert slow and slow[0].status == "ok"


class TestBreaker:
    def test_trip_degrade_recover(self, tmp_path):
        options = ServeOptions(
            extra_routes=("chaos",),
            cache_dir=tmp_path / "cache",
            breaker_window=4,
            breaker_min_samples=3,
            breaker_threshold=0.6,
            breaker_cooldown_s=0.4,
            drain_settle_s=0.0,
        )
        with ServerHandle(options) as h:
            client = ServeClient(port=h.port)
            healthy = {"params": {"index": 1}}
            warm = client.task("chaos", healthy)
            assert warm.status == "ok"

            for i in range(2):
                resp = client.task(
                    "chaos", {"params": {"index": 50 + i,
                                         "fault": "task_error"}})
                assert resp.status == "failed"
            assert client.metrics()["breaker"]["state"] == "open"

            degraded = client.task("chaos", healthy)
            assert degraded.code == 200
            assert degraded.status == "degraded"
            assert degraded.body["degraded"] is True
            assert degraded.body["result"] == warm.body["result"]

            novel = client.task("chaos", {"params": {"index": 99}})
            assert novel.code == 503
            assert novel.status == "unavailable"

            import time
            time.sleep(0.6)
            probe = client.task("chaos", {"params": {"index": 100}})
            assert probe.status == "ok"
            assert client.metrics()["breaker"]["state"] == "closed"
