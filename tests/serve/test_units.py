"""Unit tests for admission, coalescing and the circuit breaker."""

import asyncio

import pytest

from repro.serve.admission import AdmissionController
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.coalesce import Coalescer
from repro.serve.protocol import CAMPAIGN, INTERACTIVE


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestAdmission:
    def test_admits_until_limit_then_sheds(self):
        adm = AdmissionController({INTERACTIVE: 2})
        assert adm.try_admit(INTERACTIVE) is None
        assert adm.try_admit(INTERACTIVE) is None
        reason = adm.try_admit(INTERACTIVE)
        assert reason is not None and "budget full" in reason
        assert adm.snapshot()[INTERACTIVE]["shed"] == 1

    def test_release_reopens_budget(self):
        adm = AdmissionController({INTERACTIVE: 1})
        assert adm.try_admit(INTERACTIVE) is None
        assert adm.try_admit(INTERACTIVE) is not None
        adm.release(INTERACTIVE)
        assert adm.try_admit(INTERACTIVE) is None

    def test_classes_have_independent_budgets(self):
        adm = AdmissionController({INTERACTIVE: 1, CAMPAIGN: 1})
        assert adm.try_admit(CAMPAIGN) is None
        # a saturated campaign budget never blocks interactive work
        assert adm.try_admit(INTERACTIVE) is None

    def test_retry_after_scales_with_saturation(self):
        adm = AdmissionController({INTERACTIVE: 2}, retry_after_s=1.0)
        empty = adm.retry_after_s(INTERACTIVE)
        adm.try_admit(INTERACTIVE)
        adm.try_admit(INTERACTIVE)
        assert adm.retry_after_s(INTERACTIVE) > empty

    def test_unknown_class_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown request class"):
            AdmissionController({"batch": 4})

    def test_release_never_goes_negative(self):
        adm = AdmissionController({INTERACTIVE: 1})
        adm.release(INTERACTIVE)
        assert adm.pending(INTERACTIVE) == 0


class TestCoalescer:
    def test_first_join_creates_later_joins_attach(self):
        loop = asyncio.new_event_loop()
        try:
            co = Coalescer()
            g1, created1 = co.join("k", loop)
            g2, created2 = co.join("k", loop)
            assert created1 and not created2
            assert g1 is g2
            assert g1.waiters == 2
        finally:
            loop.close()

    def test_waiter_cap_sheds(self):
        loop = asyncio.new_event_loop()
        try:
            co = Coalescer(max_waiters=2)
            co.join("k", loop)
            co.join("k", loop)
            group, created = co.join("k", loop)
            assert group is None and not created
            assert co.snapshot()["rejected"] == 1
        finally:
            loop.close()

    def test_finish_resolves_every_waiter(self):
        loop = asyncio.new_event_loop()
        try:
            co = Coalescer()
            group, _ = co.join("k", loop)
            co.join("k", loop)
            co.finish("k", {"status": "ok"})
            assert group.future.result() == {"status": "ok"}
            assert co.inflight() == 0
            # a later identical request starts a fresh group
            _, created = co.join("k", loop)
            assert created
        finally:
            loop.close()

    def test_abort_drops_unadmitted_group(self):
        loop = asyncio.new_event_loop()
        try:
            co = Coalescer()
            co.join("k", loop)
            co.abort("k")
            assert co.inflight() == 0
        finally:
            loop.close()


class TestBreaker:
    def _breaker(self, **kw):
        clock = FakeClock()
        defaults = dict(window=8, min_samples=4, threshold=0.5,
                        cooldown_s=10.0, clock=clock)
        defaults.update(kw)
        return CircuitBreaker(**defaults), clock

    def test_starts_closed_and_allows(self):
        breaker, _ = self._breaker()
        assert breaker.state == CLOSED
        assert breaker.allow_execution()

    def test_trips_at_threshold_not_before(self):
        breaker, _ = self._breaker()
        breaker.record(False)
        breaker.record(False)
        breaker.record(False)
        assert breaker.state == CLOSED    # below min_samples
        breaker.record(False)
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allow_execution()

    def test_successes_hold_the_rate_down(self):
        breaker, _ = self._breaker()
        for _ in range(6):
            breaker.record(True)
        breaker.record(False)
        breaker.record(False)
        assert breaker.state == CLOSED    # 2/8 < 0.5

    def test_half_open_single_probe_then_close(self):
        breaker, clock = self._breaker()
        for _ in range(4):
            breaker.record(False)
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow_execution()      # the one probe
        assert not breaker.allow_execution()  # everyone else waits
        breaker.record(True)
        assert breaker.state == CLOSED
        assert breaker.failure_rate() == 0.0  # window cleared

    def test_failed_probe_reopens_for_another_cooldown(self):
        breaker, clock = self._breaker()
        for _ in range(4):
            breaker.record(False)
        clock.advance(10.0)
        assert breaker.allow_execution()
        breaker.record(False)
        assert breaker.state == OPEN
        assert breaker.trips == 2
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_snapshot_shape(self):
        breaker, _ = self._breaker()
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["trips"] == 0
        assert snap["failure_rate"] == 0.0
