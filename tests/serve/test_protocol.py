"""Canonicalisation: equivalent requests must hash identically."""

import pytest

from repro.serve.protocol import (
    STATUS_HTTP,
    ProtocolError,
    canonicalize,
)


class TestCanonicalKeys:
    def test_defaults_and_spelled_out_defaults_coalesce(self):
        from dataclasses import asdict

        from repro.pg.modes import OperatingConditions

        implicit = canonicalize("characterize", {})
        explicit = canonicalize("characterize", {
            "kind": "nv", "cond": asdict(OperatingConditions())})
        assert implicit.key == explicit.key
        assert implicit.params == explicit.params

    def test_different_params_different_key(self):
        base = canonicalize("characterize", {})
        other = canonicalize("characterize",
                             {"cond": {"frequency": 1e9}})
        assert base.key != other.key

    def test_policy_fields_stay_out_of_the_key(self):
        patient = canonicalize("characterize", {"deadline_s": 200.0})
        hurried = canonicalize("characterize", {"deadline_s": 1.0})
        assert patient.key == hurried.key
        assert patient.deadline_s == 200.0
        assert hurried.deadline_s == 1.0

    def test_routes_never_share_keys(self):
        assert (canonicalize("nvff", {}).key
                != canonicalize("characterize", {}).key)

    def test_passthrough_params_hash_by_content(self):
        a = canonicalize("demo", {"params": {"x": 2.0}})
        b = canonicalize("demo", {"params": {"x": 2.0}})
        c = canonicalize("demo", {"params": {"x": 3.0}})
        assert a.key == b.key
        assert a.key != c.key


class TestValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request field"):
            canonicalize("characterize", {"vdd": 0.9})

    def test_unknown_nested_field_rejected(self):
        with pytest.raises(ProtocolError, match="bad 'cond'"):
            canonicalize("characterize", {"cond": {"not_a_field": 1}})

    def test_bad_kind_rejected(self):
        with pytest.raises(ProtocolError, match="kind"):
            canonicalize("characterize", {"kind": "sram9t"})

    def test_bad_class_rejected(self):
        with pytest.raises(ProtocolError, match="class"):
            canonicalize("characterize", {"class": "batch"})

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            canonicalize("characterize", [1, 2])

    def test_non_object_params_rejected(self):
        with pytest.raises(ProtocolError, match="params"):
            canonicalize("demo", {"params": 7})

    def test_deadline_clamped_not_rejected(self):
        assert canonicalize("demo", {"deadline_s": 1e9}).deadline_s == 300.0
        assert canonicalize("demo", {"deadline_s": 0.0}).deadline_s == 0.05

    def test_unparseable_deadline_rejected(self):
        with pytest.raises(ProtocolError, match="deadline_s"):
            canonicalize("demo", {"deadline_s": "soon"})


class TestStatusVocabulary:
    def test_every_status_maps_to_a_real_http_code(self):
        for status, code in STATUS_HTTP.items():
            assert 200 <= code < 600, status

    def test_result_bearing_statuses_are_200(self):
        assert STATUS_HTTP["ok"] == 200
        assert STATUS_HTTP["degraded"] == 200

    def test_backpressure_statuses(self):
        assert STATUS_HTTP["shed"] == 429
        assert STATUS_HTTP["draining"] == 503
        assert STATUS_HTTP["deadline"] == 504
