"""The full serving-layer chaos suite (stress job)."""

import pytest

from repro.serve.chaos import chaos_serve, render_serve_chaos


@pytest.mark.stress
def test_serve_chaos_suite_passes(tmp_path):
    report = chaos_serve(str(tmp_path), n_clients=24, seed=2015,
                         workers=0)
    assert report["ok"], render_serve_chaos(report)
    assert report["requests_sent"] == report["responses_received"]
    names = [p["name"] for p in report["phases"]]
    assert names == ["coalesce", "storm", "shed", "breaker", "drain",
                     "journal"]
    coalesce = report["phases"][0]
    assert coalesce["backend_executions"] == 1
    assert coalesce["leaders"] == 1
