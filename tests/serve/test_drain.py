"""Drain semantics: readiness ordering, in-flight completion, journal
identity across a restart, and real SIGTERM handling (stress)."""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exec import CampaignOptions, Journal, run_campaign
from repro.exec.registry import build_campaign
from repro.serve import ServeClient, ServeOptions, ServerHandle


def _options(scratch, **overrides):
    base = dict(extra_routes=("demo",), journal=scratch / "journal.jsonl",
                cache_dir=scratch / "cache", drain_grace=5.0,
                drain_settle_s=0.3)
    base.update(overrides)
    return ServeOptions(**base)


class TestGracefulDrain:
    def test_readyz_flips_before_the_socket_closes(self, tmp_path):
        handle = ServerHandle(_options(tmp_path)).start()
        client = ServeClient(port=handle.port)
        assert client.readyz().code == 200
        handle.begin_drain()
        time.sleep(0.05)
        # inside the settle window: the socket still answers, but the
        # server already reports not-ready (and health stays alive)
        readyz = client.readyz()
        healthz = client.healthz()
        assert readyz.code == 503
        assert readyz.body["reason"] == "draining"
        assert healthz.code == 200
        assert healthz.body["draining"] is True
        handle.join(timeout=10.0)
        # only after the drain completes do connections get refused
        with pytest.raises(ConnectionRefusedError):
            socket.create_connection(("127.0.0.1", handle.port),
                                     timeout=2.0)

    def test_inflight_completes_while_new_work_is_refused(self, tmp_path):
        handle = ServerHandle(_options(tmp_path)).start()
        results = []

        def slow():
            results.append(ServeClient(port=handle.port).task(
                "demo", {"params": {"x": 9.0, "work": 0.8}}))

        worker = threading.Thread(target=slow)
        worker.start()
        time.sleep(0.2)     # let the slow request get admitted
        handle.begin_drain()
        time.sleep(0.05)
        refused = ServeClient(port=handle.port).task(
            "demo", {"params": {"x": 1.0}})
        assert refused.code == 503
        assert refused.status == "draining"
        worker.join(timeout=10.0)
        handle.join(timeout=10.0)
        assert results and results[0].status == "ok"
        assert results[0].body["result"]["y"] == 81.0

    def test_drain_mid_campaign_journals_interrupt_and_resumes(
            self, tmp_path):
        handle = ServerHandle(_options(tmp_path)).start()
        client = ServeClient(port=handle.port)
        records = []

        def stream():
            records.extend(client.campaign_stream(
                "demo", options={"tasks": 8, "work": 0.25}))

        worker = threading.Thread(target=stream)
        worker.start()
        time.sleep(0.6)     # a couple of tasks deep
        handle.begin_drain()
        worker.join(timeout=20.0)
        handle.join(timeout=20.0)

        assert records[0]["kind"] == "stream_begin"
        end = records[-1]
        assert end["kind"] == "stream_end"
        assert end["status"] == "interrupted"
        done_live = [r for r in records if r["kind"] == "task_end"]
        assert 0 < len(done_live) < 8

        # the journal saw exactly what the stream saw, plus the
        # interrupt marker
        key = records[0]["key"]
        journal = Journal(tmp_path / "journal.jsonl")
        outcomes = journal.outcomes_for(key)
        assert len(outcomes) == len(done_live)
        kinds = [r.get("kind") for r in journal.replay()]
        assert "campaign_interrupted" in kinds

        # a second server over the same journal resumes: finished work
        # replays identically, only the remainder executes
        handle2 = ServerHandle(_options(tmp_path)).start()
        try:
            resumed = ServeClient(port=handle2.port).campaign(
                "demo", options={"tasks": 8, "work": 0.25}, resume=True)
        finally:
            handle2.stop(hard=True)
            handle2.join(timeout=10.0)
        assert resumed.body["outcome"] == "completed"
        summary = resumed.body["summary"]
        assert summary["n_replayed"] == len(done_live)
        assert summary["counts"]["completed"] == 8
        final = journal.outcomes_for(key)
        for record in done_live:
            assert final[record["task_id"]].result == record["result"]


@pytest.mark.stress
class TestSigterm:
    def _free_port(self):
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            return s.getsockname()[1]

    def test_sigterm_drains_a_served_campaign_cleanly(self, tmp_path):
        src = Path(__file__).resolve().parents[2] / "src"
        journal = tmp_path / "journal.jsonl"
        port = self._free_port()
        env = {**os.environ, "PYTHONPATH": str(src)}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", str(port), "--workers", "0",
             "--extra-routes", "demo",
             "--journal", str(journal),
             "--cache-dir", str(tmp_path / "cache"),
             "--drain-grace", "10"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            client = ServeClient(port=port)
            for _ in range(100):
                try:
                    if client.readyz().code == 200:
                        break
                except OSError:
                    time.sleep(0.1)
            else:
                pytest.fail("server never became ready")

            records = []

            def stream():
                records.extend(client.campaign_stream(
                    "demo", options={"tasks": 20, "work": 0.25}))

            worker = threading.Thread(target=stream)
            worker.start()
            time.sleep(0.8)
            proc.send_signal(signal.SIGTERM)
            worker.join(timeout=30.0)
            assert proc.wait(timeout=30.0) == 0

            assert records and records[-1]["kind"] == "stream_end"
            assert records[-1]["status"] == "interrupted"
            done_live = [r for r in records if r["kind"] == "task_end"]
            assert 0 < len(done_live) < 20

            # the journal replays identically after the process is gone:
            # resuming executes only the remainder and the replayed
            # outcomes match what was streamed live
            result = run_campaign(
                build_campaign("demo", tasks=20, work=0.25),
                journal=journal,
                options=CampaignOptions(workers=0, resume=True))
            assert result.n_replayed == len(done_live)
            assert result.counts()["completed"] == 20
            results = result.results()
            for record in done_live:
                assert results[record["task_id"]] == record["result"]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
