"""The bench regression gate: tolerance policies, missing metrics,
end-to-end PASS/FAIL verdicts."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).parent.parent / "benchmarks" / "check_regression.py")
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


LINT_PAYLOAD = {
    "schema": 3, "modules": 111, "cold_s": 4.4, "warm_s": 0.1,
    "speedup": 44.0,
    "rv8xx_band": {"findings": 0},
    "rv9xx_band": {"findings": 0},
    "diagnostics": {"total": 15},
}


def write_pair(tmp_path, name, base, fresh):
    (tmp_path / "base").mkdir(exist_ok=True)
    (tmp_path / "fresh").mkdir(exist_ok=True)
    (tmp_path / "base" / name).write_text(json.dumps(base))
    (tmp_path / "fresh" / name).write_text(json.dumps(fresh))
    return tmp_path / "base", tmp_path / "fresh"


def run(tmp_path):
    return check_regression.run_checks(tmp_path / "base",
                                       tmp_path / "fresh")


def test_identical_files_pass(tmp_path):
    write_pair(tmp_path, "BENCH_lint.json", LINT_PAYLOAD, LINT_PAYLOAD)
    ok, rows = run(tmp_path)
    assert ok, check_regression.render(rows, ok)


def test_timing_noise_tolerated(tmp_path):
    fresh = dict(LINT_PAYLOAD, cold_s=9.9, warm_s=0.3, speedup=33.0)
    write_pair(tmp_path, "BENCH_lint.json", LINT_PAYLOAD, fresh)
    ok, _rows = run(tmp_path)
    assert ok          # raw seconds are not compared; ratio held up


def test_speedup_collapse_fails(tmp_path):
    fresh = dict(LINT_PAYLOAD, speedup=4.0)      # < 0.4 x 44
    write_pair(tmp_path, "BENCH_lint.json", LINT_PAYLOAD, fresh)
    ok, rows = run(tmp_path)
    assert not ok
    assert any(r["metric"] == "speedup" and r["status"] == "FAIL"
               for r in rows)


def test_new_findings_fail_exactly(tmp_path):
    fresh = json.loads(json.dumps(LINT_PAYLOAD))
    fresh["rv9xx_band"]["findings"] = 2
    write_pair(tmp_path, "BENCH_lint.json", LINT_PAYLOAD, fresh)
    ok, rows = run(tmp_path)
    assert not ok
    assert any(r["metric"] == "rv9xx_band.findings" for r in rows
               if r["status"] == "FAIL")


def test_vanished_metric_fails_new_metric_passes(tmp_path):
    base = json.loads(json.dumps(LINT_PAYLOAD))
    del base["rv9xx_band"]              # schema-2 era baseline
    fresh = json.loads(json.dumps(LINT_PAYLOAD))
    del fresh["diagnostics"]            # bench dropped coverage
    base["schema"] = fresh["schema"]
    write_pair(tmp_path, "BENCH_lint.json", base, fresh)
    ok, rows = run(tmp_path)
    verdicts = {r["metric"]: r["status"] for r in rows}
    assert verdicts["rv9xx_band.findings"] == "new"
    assert verdicts["diagnostics.total"] == "FAIL"
    assert not ok


def test_fig7_curves_compared_deeply(tmp_path):
    base = {"schema": 1,
            "fig7a": [{"label": "a", "e_cyc_j": {"nof": [1.0, 2.0]}}]}
    fresh = json.loads(json.dumps(base))
    fresh["fig7a"][0]["e_cyc_j"]["nof"][1] = 2.5
    write_pair(tmp_path, "BENCH_fig7.json", base, fresh)
    ok, rows = run(tmp_path)
    assert not ok
    (bad,) = [r for r in rows if r["status"] == "FAIL"]
    assert "nof[1]" in bad["detail"]


def test_engine_residual_growth_bounded(tmp_path):
    base = {"schema": 1,
            "certification": {"worst_residual_norm_a": 1e-13,
                              "defended_steps": 0}}
    fresh = json.loads(json.dumps(base))
    fresh["certification"]["worst_residual_norm_a"] = 1e-9
    write_pair(tmp_path, "BENCH_engine.json", base, fresh)
    ok, rows = run(tmp_path)
    assert not ok          # 1e4 x growth > the 1e3 allowance


def test_nothing_compared_is_a_failure(tmp_path):
    (tmp_path / "base").mkdir()
    (tmp_path / "fresh").mkdir()
    ok, rows = run(tmp_path)
    assert not ok
    assert any("no artefact" in r["detail"] for r in rows)


def test_cli_roundtrip(tmp_path, capsys):
    base_dir, fresh_dir = write_pair(
        tmp_path, "BENCH_lint.json", LINT_PAYLOAD, LINT_PAYLOAD)
    code = check_regression.main(["--baseline-dir", str(base_dir),
                                  "--fresh-dir", str(fresh_dir)])
    assert code == 0
    assert "PASS" in capsys.readouterr().out


def test_strict_missing_flags_unregenerated(tmp_path):
    base_dir, fresh_dir = write_pair(
        tmp_path, "BENCH_lint.json", LINT_PAYLOAD, LINT_PAYLOAD)
    (base_dir / "BENCH_engine.json").write_text(json.dumps({"schema": 1}))
    ok, rows = check_regression.run_checks(base_dir, fresh_dir,
                                           strict_missing=True)
    assert not ok
    assert any(r["file"] == "BENCH_engine.json"
               and r["status"] == "FAIL" for r in rows)
