"""Shared fixtures for the test suite.

Characterisations are expensive (a handful of transient simulations), so
a session-scoped context with the on-disk cache keeps repeat test runs
fast while first runs stay correct.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

# Route the characterisation cache into the repository so test runs are
# reproducible per checkout and easy to wipe.  Must happen before repro
# imports resolve the default cache directory.
_CACHE = Path(__file__).resolve().parent.parent / ".repro-cache"
os.environ.setdefault("REPRO_CACHE_DIR", str(_CACHE))

from repro.cells import PowerDomain                      # noqa: E402
from repro.experiments import ExperimentContext          # noqa: E402
from repro.pg.modes import OperatingConditions           # noqa: E402


@pytest.fixture(scope="session")
def cond() -> OperatingConditions:
    """The paper's Table I operating conditions."""
    return OperatingConditions()


@pytest.fixture(scope="session")
def domain() -> PowerDomain:
    """The paper's reference power domain (N = 512, M = 32: 2 kB)."""
    return PowerDomain(n_wordlines=512, word_bits=32)


@pytest.fixture(scope="session")
def small_domain() -> PowerDomain:
    """A small domain for fast transient tests."""
    return PowerDomain(n_wordlines=32, word_bits=32)


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """Session-wide experiment context (memoised characterisations)."""
    return ExperimentContext()


@pytest.fixture(scope="session")
def nv_char(ctx, domain):
    """Characterised NV-SRAM cell at the reference domain."""
    return ctx.characterization("nv", domain)


@pytest.fixture(scope="session")
def vt_char(ctx, domain):
    """Characterised 6T cell at the reference domain."""
    return ctx.characterization("6t", domain)


@pytest.fixture(scope="session")
def energy_model(ctx, domain):
    """Energy model over the reference domain."""
    return ctx.energy_model(domain)
