"""Tests for deck execution (end-to-end SPICE front end)."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.devices.mtj import MTJState
from repro.spice import parse_deck, run_deck


def run(body: str, **kwargs):
    deck = parse_deck("runner test\n" + body + "\n.end\n")
    return deck, run_deck(deck, **kwargs)


class TestOp:
    def test_divider(self):
        _, results = run("v1 in 0 2.0\nr1 in mid 1k\nr2 mid 0 1k\n.op")
        sol = results.operating_points()[0]
        assert sol.voltage("mid") == pytest.approx(1.0, rel=1e-6)

    def test_ic_selects_basin(self):
        body = """
v1 vdd 0 0.9
mpu1 q qb vdd pfet20hp
mpd1 q qb 0 nfet20hp
mpu2 qb q vdd pfet20hp
mpd2 qb q 0 nfet20hp
.ic v(q)=0.9 v(qb)=0
.op
"""
        _, results = run(body)
        sol = results.operating_points()[0]
        assert sol.voltage("q") > 0.8
        assert sol.voltage("qb") < 0.1


class TestDc:
    def test_inverter_vtc(self):
        body = """
vdd vdd 0 0.9
vin in 0 0
mpu out in vdd pfet20hp
mpd out in 0 nfet20hp
.dc vin 0 0.9 0.05
"""
        _, results = run(body)
        sweep = results.sweeps()[0]
        vtc = sweep.voltage("out")
        assert vtc[0] > 0.85
        assert vtc[-1] < 0.05

    def test_bad_step_rejected(self):
        deck = parse_deck("t\nv1 a 0 0\nr1 a 0 1\n.dc v1 0 1 0\n.end")
        with pytest.raises(Exception):
            run_deck(deck)


class TestTran:
    def test_rc_step(self):
        body = """
v1 in 0 pwl(0 0 1p 1)
r1 in out 1k
c1 out 0 1p
.tran 5n
"""
        _, results = run(body)
        tr = results.transients()[0]
        assert tr.sample("out", 1e-9) == pytest.approx(1 - np.exp(-1),
                                                       rel=1e-2)

    def test_step_hint_used(self):
        body = "v1 a 0 1\nr1 a 0 1k\n.tran 10p 1n"
        _, results = run(body)
        assert len(results.transients()[0]) > 10

    def test_mtj_store_deck(self):
        body = """
.param vdd=0.9
vdrv drv 0 pwl(0 0 0.5n 0 0.6n 0.35)
y1 drv 0 mtj_table1 state=AP
.tran 10n
"""
        deck, results = run(body)
        tr = results.transients()[0]
        # 0.35 V across a P-ward-driven AP junction: I ~ 33 uA > Ic.
        assert any("AP->P" in e[2] for e in tr.events)
        assert deck.circuit["y1"].state is MTJState.PARALLEL


class TestMultipleAnalyses:
    def test_cards_run_in_order(self):
        body = """
v1 in 0 1.0
r1 in out 1k
r2 out 0 1k
.op
.dc v1 0 1 0.5
.op
"""
        _, results = run(body)
        assert len(results) == 3
        assert len(results.operating_points()) == 2
        assert len(results.sweeps()) == 1

    def test_no_analysis_rejected(self):
        deck = parse_deck("t\nr1 a 0 1k\n.end")
        with pytest.raises(AnalysisError):
            run_deck(deck)


class TestFullCellDeck:
    """The headline integration: the paper's cell as a plain deck."""

    DECK = """NV-SRAM store/restore from a SPICE deck
.param vdd=0.9 vsr=0.65 vctrlst=0.5

.subckt nvcell vvdd bl blb wl sr ctrl
mpul q qb vvdd pfet20hp
mpur qb q vvdd pfet20hp
mpdl q qb 0 nfet20hp
mpdr qb q 0 nfet20hp
mpgl bl wl q nfet20hp
mpgr blb wl qb nfet20hp
cq q 0 0.14f
cqb qb 0 0.14f
mpsq q sr nq nfet20hp
mpsqb qb sr nqb nfet20hp
ymtjq ctrl nq mtj_table1 state=P
ymtjqb ctrl nqb mtj_table1 state=AP
.ends

vdd vdd 0 {vdd}
vbl bl 0 {vdd}
vblb blb 0 {vdd}
vwl wl 0 0
vsr sr 0 pwl(0 0 1n 0 1.1n {vsr})
vctrl ctrl 0 pwl(0 0 11n 0 11.1n {vctrlst})
xcell vdd bl blb wl sr ctrl nvcell
.ic v(xcell.q)=0.9 v(xcell.qb)=0
.tran 21n
.end
"""

    def test_two_step_store_executes(self):
        deck = parse_deck(self.DECK)
        results = run_deck(deck)
        tr = results.transients()[0]
        assert len(tr.events) == 2
        assert deck.circuit["xcell.ymtjq"].state is MTJState.ANTIPARALLEL
        assert deck.circuit["xcell.ymtjqb"].state is MTJState.PARALLEL
        # The latch survives the store.
        final = tr.final_solution()
        assert final.voltage("xcell.q") > 0.8


class TestMeasureCards:
    BODY = """
v1 in 0 pwl(0 0 1n 1)
r1 in out 1k
c1 out 0 1p
.tran 6n
.measure tran vpeak MAX v(out)
.measure tran vmin MIN v(out)
.measure tran vavg AVG v(out)
.measure tran vswing PP v(out)
.measure tran charge INTEG v(in)
.measure tran thalf WHEN v(out)=0.5 RISE
"""

    def test_all_kinds_evaluate(self):
        _, results = run(self.BODY)
        m = results.measurements
        assert m["vpeak"] == pytest.approx(1.0, abs=0.01)
        assert m["vmin"] == pytest.approx(0.0, abs=1e-6)
        assert 0.5 < m["vavg"] < 1.0
        assert m["vswing"] == pytest.approx(m["vpeak"] - m["vmin"])
        # integral of the ramp+hold input: 0.5n + 5n = 5.5 nV.s
        assert m["charge"] == pytest.approx(5.5e-9, rel=1e-2)
        # 0.5 V crossing: ramp reaches 0.5 at 0.5 ns, the RC lags ~ tau.
        assert 0.5e-9 < m["thalf"] < 2.5e-9

    def test_when_fall_missing_returns_none(self):
        _, results = run(self.BODY + ".measure tran tf WHEN v(out)=0.5 FALL")
        assert results.measurements["tf"] is None

    def test_measure_without_tran_rejected(self):
        deck = parse_deck(
            "t\nv1 a 0 1\nr1 a 0 1k\n.op\n"
            ".measure tran x MAX v(a)\n.end"
        )
        with pytest.raises(AnalysisError):
            run_deck(deck)

    def test_malformed_measure_rejected(self):
        from repro.errors import NetlistError

        for bad in (
            ".measure tran x MAX out",
            ".measure dc x MAX v(out)",
            ".measure tran x WHEN v(out)=0.5 SIDEWAYS",
            ".measure tran x MEDIAN v(out)",
        ):
            with pytest.raises(NetlistError):
                parse_deck(f"t\nr1 a 0 1k\n{bad}\n.end")
