"""Tests for the SPICE-deck parser."""

import pytest

from repro.errors import NetlistError, UnitError
from repro.circuit import Capacitor, Resistor, VoltageSource
from repro.circuit.waveforms import PiecewiseLinear, Pulse
from repro.devices.finfet import FinFET
from repro.devices.mtj import MTJ, MTJState
from repro.spice import parse_deck
from repro.spice.parser import DcCard, OpCard, TranCard, _logical_lines


def deck(body: str):
    return parse_deck("test deck\n" + body + "\n.end\n")


class TestLexer:
    def test_title_preserved(self):
        d = parse_deck("My Title Line\nr1 a 0 1k\n.end")
        assert d.title == "My Title Line"

    def test_comments_stripped(self):
        lines = _logical_lines("t\n* comment\nr1 a 0 1k ; tail\n$ gone\n")
        assert lines == ["t", "r1 a 0 1k"]

    def test_continuation_lines(self):
        d = deck("v1 in 0 pwl(0 0\n+ 1n 1)")
        assert isinstance(d.circuit["v1"].waveform, PiecewiseLinear)

    def test_continuation_as_first_line_rejected(self):
        with pytest.raises(NetlistError):
            _logical_lines("+ orphan\n.end")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(NetlistError):
            deck("v1 in 0 pulse(0 1")

    def test_cards_after_end_ignored(self):
        d = parse_deck("t\nr1 a 0 1k\n.end\nr2 b 0 1k\n")
        assert "r2" not in d.circuit

    def test_empty_deck_rejected(self):
        with pytest.raises(NetlistError):
            parse_deck("")

    def test_case_insensitive(self):
        d = deck("R1 A 0 1K\nV1 A 0 DC 1.0")
        assert "r1" in d.circuit
        assert d.circuit["r1"].resistance == pytest.approx(1000)


class TestPassives:
    def test_resistor(self):
        d = deck("r1 in out 4.7k")
        r = d.circuit["r1"]
        assert isinstance(r, Resistor)
        assert r.resistance == pytest.approx(4700)
        assert r.node_names == ("in", "out")

    def test_capacitor_with_ic(self):
        d = deck("c1 out 0 10f ic=0.5")
        c = d.circuit["c1"]
        assert isinstance(c, Capacitor)
        assert c.capacitance == pytest.approx(10e-15)
        assert c.ic == 0.5

    def test_malformed_resistor(self):
        with pytest.raises(NetlistError):
            deck("r1 a 0")


class TestSources:
    def test_dc_forms(self):
        d = deck("v1 a 0 0.9\nv2 b 0 dc 1.2\ni1 0 c 1m")
        assert d.circuit["v1"].dc == pytest.approx(0.9)
        assert d.circuit["v2"].dc == pytest.approx(1.2)
        assert d.circuit["i1"].dc == pytest.approx(1e-3)

    def test_pulse(self):
        d = deck("v1 a 0 pulse(0 0.9 1n 50p 50p 2n 5n)")
        w = d.circuit["v1"].waveform
        assert isinstance(w, Pulse)
        assert w.v2 == pytest.approx(0.9)
        assert w.period == pytest.approx(5e-9)

    def test_pulse_single_shot(self):
        d = deck("v1 a 0 pulse(0 1 0 1p 1p 1n)")
        assert d.circuit["v1"].waveform.period is None

    def test_pwl(self):
        d = deck("v1 a 0 pwl(0 0 1n 0.9 2n 0.45)")
        w = d.circuit["v1"].waveform
        assert w(1e-9) == pytest.approx(0.9)
        assert w(2e-9) == pytest.approx(0.45)

    def test_pwl_odd_values_rejected(self):
        with pytest.raises(NetlistError):
            deck("v1 a 0 pwl(0 0 1n)")

    def test_unknown_drive_rejected(self):
        with pytest.raises(NetlistError):
            deck("v1 a 0 sin(0 1 1meg)")


class TestDevices:
    def test_builtin_finfet_models(self):
        d = deck("m1 d g 0 nfet20hp nfin=3\nm2 d2 g 0 pfet20hp")
        m1 = d.circuit["m1"]
        assert isinstance(m1, FinFET)
        assert m1.nfin == 3
        assert m1.params.polarity == +1
        assert d.circuit["m2"].params.polarity == -1

    def test_custom_finfet_model(self):
        d = deck(".model myn nfet(vth0=0.3 dibl=0.05)\nm1 d g 0 myn")
        params = d.circuit["m1"].params
        assert params.vth0 == pytest.approx(0.3)
        assert params.dibl == pytest.approx(0.05)
        assert params.label == "myn"

    def test_unknown_model_rejected(self):
        with pytest.raises(NetlistError):
            deck("m1 d g 0 mystery")

    def test_model_kind_mismatch_rejected(self):
        with pytest.raises(NetlistError):
            deck("m1 d g 0 mtj_table1")

    def test_mtj_default_and_state(self):
        d = deck("y1 a b\ny2 c d mtj_table1 state=AP")
        assert isinstance(d.circuit["y1"], MTJ)
        assert d.circuit["y1"].state is MTJState.PARALLEL
        assert d.circuit["y2"].state is MTJState.ANTIPARALLEL

    def test_custom_mtj_model(self):
        d = deck(".model fast mtj(jc=1e10 tmr0=1.5)\ny1 a b fast")
        params = d.circuit["y1"].params
        assert params.jc == pytest.approx(1e10)
        assert params.tmr0 == pytest.approx(1.5)

    def test_bad_mtj_state_rejected(self):
        with pytest.raises(NetlistError):
            deck("y1 a b mtj_table1 state=X")

    def test_switch(self):
        d = deck("s1 a b c 0 ron=100 von=0.9")
        s = d.circuit["s1"]
        assert s.g_on == pytest.approx(1e-2)
        assert s.v_on == pytest.approx(0.9)


class TestParams:
    def test_substitution(self):
        d = deck(".param rload=2k vdd=0.9\nr1 a 0 {rload}\nv1 a 0 {vdd}")
        assert d.circuit["r1"].resistance == pytest.approx(2000)
        assert d.circuit["v1"].dc == pytest.approx(0.9)

    def test_undefined_param_rejected(self):
        with pytest.raises(NetlistError):
            deck("r1 a 0 {nope}")

    def test_params_inside_waveforms(self):
        d = deck(".param hi=0.9\nv1 a 0 pwl(0 0 1n {hi})")
        assert d.circuit["v1"].waveform(1e-9) == pytest.approx(0.9)


class TestSubcircuits:
    DIVIDER = """
.subckt div top tap
r1 top tap 1k
r2 tap 0 1k
.ends
v1 in 0 1.0
x1 in out div
"""

    def test_instantiation(self):
        d = deck(self.DIVIDER)
        assert "x1.r1" in d.circuit
        assert "div" in d.subcircuits

    def test_port_count_checked(self):
        with pytest.raises(NetlistError):
            deck(self.DIVIDER + "\nx2 in div")

    def test_unknown_subckt_rejected(self):
        with pytest.raises(NetlistError):
            deck("x1 a b nosuch")

    def test_unclosed_subckt_rejected(self):
        with pytest.raises(NetlistError):
            deck(".subckt s a\nr1 a 0 1k")

    def test_nested_subckt_rejected(self):
        with pytest.raises(NetlistError):
            deck(".subckt a x\n.subckt b y\n.ends\n.ends")


class TestAnalysisCards:
    def test_tran(self):
        d = deck("r1 a 0 1k\n.tran 10n")
        assert d.analyses == [TranCard(t_stop=10e-9)]

    def test_tran_with_step(self):
        d = deck("r1 a 0 1k\n.tran 1p 10n")
        assert d.analyses[0].t_step == pytest.approx(1e-12)
        assert d.analyses[0].t_stop == pytest.approx(10e-9)

    def test_dc(self):
        d = deck("v1 a 0 0\nr1 a 0 1k\n.dc v1 0 0.9 0.1")
        card = d.analyses[0]
        assert isinstance(card, DcCard)
        assert len(card.values()) == 10

    def test_op(self):
        d = deck("r1 a 0 1k\n.op")
        assert isinstance(d.analyses[0], OpCard)

    def test_ic(self):
        d = deck("c1 a 0 1f\n.ic v(a)=0.5 v(b)=0.1")
        assert d.ic == {"a": 0.5, "b": 0.1}

    def test_bad_ic_rejected(self):
        with pytest.raises(NetlistError):
            deck(".ic a=0.5")

    def test_unknown_directive_rejected(self):
        with pytest.raises(NetlistError):
            deck(".noise v(out) v1 dec")


class TestErrorPaths:
    """The parser must reject malformed decks with a located message."""

    def test_unknown_card_letter(self):
        with pytest.raises(NetlistError, match="unsupported element card"):
            deck("q1 a b c 1k")

    def test_pulse_too_few_args(self):
        with pytest.raises(NetlistError, match="PULSE needs"):
            deck("v1 a 0 pulse(0.9)")

    def test_pulse_non_numeric_arg(self):
        with pytest.raises(UnitError):
            deck("v1 a 0 pulse(0 1 zz)")

    def test_pwl_non_numeric_value(self):
        with pytest.raises(UnitError):
            deck("v1 a 0 pwl(0 zz)")

    def test_duplicate_element_name(self):
        with pytest.raises(NetlistError, match="duplicate element"):
            deck("r1 a 0 1k\nr1 b 0 1k")

    def test_tran_without_stop_time(self):
        with pytest.raises(NetlistError, match=r"\.tran needs"):
            deck("r1 a 0 1k\n.tran")

    def test_dc_wrong_arity(self):
        with pytest.raises(NetlistError, match=r"\.dc needs"):
            deck("v1 a 0 0\nr1 a 0 1k\n.dc v1 0 1")

    def test_finfet_too_few_nodes(self):
        with pytest.raises(NetlistError, match="M needs"):
            deck("m1 d g nfet20hp")

    def test_non_numeric_resistance(self):
        with pytest.raises(UnitError):
            deck("r1 a 0 zz")

    def test_unsupported_model_kind(self):
        with pytest.raises(NetlistError, match="unsupported model type"):
            deck(".model x diode(is=1e-14)\nr1 a 0 1k")

    def test_negative_capacitance(self):
        with pytest.raises(NetlistError, match="must be positive"):
            deck("c1 a 0 -1f")
