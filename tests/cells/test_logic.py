"""Tests for the CMOS logic primitives."""

import numpy as np
import pytest

from repro.analysis import dc_sweep, operating_point, transient
from repro.circuit import Circuit, Pulse, VoltageSource
from repro.cells.logic import (
    add_clock_buffer,
    add_inverter,
    add_transmission_gate,
)

VDD = 0.9


class TestInverter:
    def _bench(self):
        c = Circuit("inv")
        c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        c.add(VoltageSource("vin", "in", "0", dc=0.0))
        add_inverter(c, "i1", "in", "out", "vdd")
        return c

    def test_logic_levels(self):
        c = self._bench()
        res = dc_sweep(c, "vin", [0.0, VDD])
        assert res.voltage("out")[0] > 0.88
        assert res.voltage("out")[1] < 0.02

    def test_switching_threshold_near_midrail(self):
        c = self._bench()
        res = dc_sweep(c, "vin", np.linspace(0, VDD, 61))
        vtc = res.voltage("out")
        idx = int(np.argmin(np.abs(vtc - res.values)))
        assert 0.3 < res.values[idx] < 0.6

    def test_returns_output_node(self):
        c = Circuit("inv")
        c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        c.add(VoltageSource("vin", "in", "0", dc=0.0))
        assert add_inverter(c, "i1", "in", "out", "vdd") == "out"
        assert "i1.cout" in c


class TestTransmissionGate:
    def _bench(self, clk_level):
        c = Circuit("tg")
        c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        c.add(VoltageSource("va", "a", "0", dc=0.6))
        c.add(VoltageSource("vclk", "clk", "0", dc=clk_level))
        c.add(VoltageSource("vclkb", "clkb", "0", dc=VDD - clk_level))
        add_transmission_gate(c, "t1", "a", "b", "clk", "clkb")
        return c

    def test_conducts_when_clocked(self):
        sol = operating_point(self._bench(VDD))
        assert sol.voltage("b") == pytest.approx(0.6, abs=0.01)

    def test_off_current_orders_of_magnitude_below_on(self):
        """With both terminals driven, the off gate carries only
        subthreshold leakage.  (A *floating* node behind an off gate
        still drifts on nA-scale HP leakage — which is why the latches
        keep their feedback gates engaged.)"""

        def tg_current(clk_level):
            c = Circuit("tg")
            c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
            c.add(VoltageSource("va", "a", "0", dc=0.6))
            c.add(VoltageSource("vb", "b", "0", dc=0.0))
            c.add(VoltageSource("vclk", "clk", "0", dc=clk_level))
            c.add(VoltageSource("vclkb", "clkb", "0",
                                dc=VDD - clk_level))
            add_transmission_gate(c, "t1", "a", "b", "clk", "clkb")
            sol = operating_point(c)
            return abs(sol.branch_current("vb"))

        assert tg_current(VDD) > 1e3 * tg_current(0.0)

    def test_full_rail_transfer(self):
        """The complementary pair passes both strong 0 and strong 1."""
        for level in (0.0, VDD):
            c = Circuit("tg")
            c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
            c.add(VoltageSource("va", "a", "0", dc=level))
            c.add(VoltageSource("vclk", "clk", "0", dc=VDD))
            c.add(VoltageSource("vclkb", "clkb", "0", dc=0.0))
            add_transmission_gate(c, "t1", "a", "b", "clk", "clkb")
            sol = operating_point(c)
            assert sol.voltage("b") == pytest.approx(level, abs=0.01)


class TestClockBuffer:
    def test_complementary_phases(self):
        c = Circuit("ckbuf")
        c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        c.add(VoltageSource("vclk", "clk", "0",
                            waveform=Pulse(0, VDD, delay=1e-9,
                                           rise=50e-12, fall=50e-12,
                                           width=2e-9)))
        clk_i, clkb_i = add_clock_buffer(c, "b1", "clk", "vdd")
        res = transient(c, 4e-9)
        # Before the pulse: clk low, clkb high.
        assert res.sample(clk_i, 0.5e-9) < 0.05
        assert res.sample(clkb_i, 0.5e-9) > 0.85
        # During the pulse: inverted.
        assert res.sample(clk_i, 2e-9) > 0.85
        assert res.sample(clkb_i, 2e-9) < 0.05
