"""Tests for the header power switch and super cutoff."""

import pytest

from repro.analysis import operating_point
from repro.circuit import Circuit, Resistor, VoltageSource
from repro.cells import add_power_switch
from repro.cells.powerswitch import V_SUPER_CUTOFF

VDD = 0.9


def _bench(gate_v, nfsw=7, load=1e8):
    c = Circuit("psw")
    c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
    c.add(VoltageSource("vpg", "pg", "0", dc=gate_v))
    handle = add_power_switch(c, "psw", "vdd", "vvdd", "pg", nfsw=nfsw)
    c.add(Resistor("rl", "vvdd", "0", load))
    return c, handle


class TestOnState:
    def test_vvdd_tracks_vdd(self):
        c, _ = _bench(0.0)
        sol = operating_point(c)
        assert sol.voltage("vvdd") > 0.99 * VDD

    def test_more_fins_less_droop_under_load(self):
        heavy = 2e4  # ~45 uA load
        droops = []
        for nfsw in (1, 4, 8):
            c, _ = _bench(0.0, nfsw=nfsw, load=heavy)
            sol = operating_point(c)
            droops.append(VDD - sol.voltage("vvdd"))
        assert droops[0] > droops[1] > droops[2] > 0


class TestOffState:
    def test_nominal_off_rail_floats_to_leakage_balance(self):
        """With V_PG = VDD the switch still leaks: a light load leaves
        the virtual rail floating at a mid level (the paper's motivation
        for super cutoff), while a heavier load pulls it low."""
        c_light, _ = _bench(VDD, load=1e8)
        assert 0.2 * VDD < operating_point(c_light).voltage("vvdd") < VDD
        c_heavy, _ = _bench(VDD, load=1e6)
        assert operating_point(c_heavy).voltage("vvdd") < 0.2 * VDD

    def test_super_cutoff_leaks_much_less(self):
        c_nom, _ = _bench(VDD, load=1e8)
        c_sup, _ = _bench(V_SUPER_CUTOFF, load=1e8)
        i_nom = -operating_point(c_nom).branch_current("vdd")
        i_sup = -operating_point(c_sup).branch_current("vdd")
        assert i_sup < i_nom / 5.0

    def test_super_cutoff_voltage_constant(self):
        assert V_SUPER_CUTOFF == 1.0  # the paper's V_PG


class TestHandle:
    def test_handle_fields(self):
        c, handle = _bench(0.0, nfsw=5)
        assert handle.nfsw == 5
        assert handle.vvdd == "vvdd"
        assert handle.element_name in c
        assert "psw.cvvdd" in c
