"""Tests for the volatile 6T SRAM cell."""

import pytest

from repro.analysis import operating_point, transient
from repro.analysis.transient import TransientOptions
from repro.circuit import Capacitor, Circuit, Pulse, Step, VoltageSource
from repro.cells import add_sram6t

VDD = 0.9


def _cell_fixture(bl=VDD, blb=VDD, wl=0.0):
    c = Circuit("6t")
    c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
    c.add(VoltageSource("vbl", "bl", "0", dc=bl))
    c.add(VoltageSource("vblb", "blb", "0", dc=blb))
    c.add(VoltageSource("vwl", "wl", "0", dc=wl))
    cell = add_sram6t(c, "cell", "vdd", "bl", "blb", "wl")
    return c, cell


class TestStructure:
    def test_node_names(self):
        _, cell = _cell_fixture()
        assert cell.q == "cell.q"
        assert cell.qb == "cell.qb"

    def test_element_inventory(self):
        c, cell = _cell_fixture()
        for key in ("pul", "pur", "pdl", "pdr", "pgl", "pgr"):
            assert cell.element_names[key] in c
        assert "cell.cq" in c
        assert "cell.cwl" in c

    def test_initial_conditions_map(self):
        _, cell = _cell_fixture()
        ic = cell.initial_conditions(True, VDD)
        assert ic == {"cell.q": VDD, "cell.qb": 0.0}
        ic0 = cell.initial_conditions(False, VDD)
        assert ic0 == {"cell.q": 0.0, "cell.qb": VDD}


class TestHoldStability:
    @pytest.mark.parametrize("data", [True, False])
    def test_holds_both_states(self, data):
        c, cell = _cell_fixture()
        sol = operating_point(c, ic=cell.initial_conditions(data, VDD))
        assert cell.read_data(sol, VDD) is data
        high = max(sol.voltage(cell.q), sol.voltage(cell.qb))
        low = min(sol.voltage(cell.q), sol.voltage(cell.qb))
        assert high > 0.85 * VDD
        assert low < 0.05 * VDD

    def test_retention_at_low_rail(self):
        """The cell retains data at the 0.7 V sleep rail."""
        c, cell = _cell_fixture(bl=0.7, blb=0.7)
        c["vdd"].set_level(0.7)
        sol = operating_point(c, ic=cell.initial_conditions(True, 0.7))
        assert cell.read_data(sol, 0.7) is True

    def test_static_current_small(self):
        c, cell = _cell_fixture()
        sol = operating_point(c, ic=cell.initial_conditions(True, VDD))
        i = -sol.branch_current("vdd")
        assert 0 < i < 100e-9   # leakage, not conduction


class TestReadBehaviour:
    def test_wordline_on_does_not_flip(self):
        """Read-disturb check: asserting WL with precharged bitlines must
        not corrupt the data (read SNM > 0 for this sizing)."""
        c, cell = _cell_fixture(wl=VDD)
        sol = operating_point(c, ic=cell.initial_conditions(True, VDD))
        assert cell.read_data(sol, VDD) is True

    def test_low_node_rises_during_read(self):
        """The classic read-disturb bump on the low storage node."""
        c_hold, cell = _cell_fixture(wl=0.0)
        hold = operating_point(c_hold,
                               ic=cell.initial_conditions(True, VDD))
        c_read, cell_r = _cell_fixture(wl=VDD)
        read = operating_point(c_read,
                               ic=cell_r.initial_conditions(True, VDD))
        assert read.voltage(cell_r.qb) > hold.voltage(cell.qb)
        assert read.voltage(cell_r.qb) < 0.35 * VDD  # still reads as 0


class TestWriteBehaviour:
    def test_write_flips_cell(self):
        """Drive BLB high / BL low with WL pulsed: the cell must flip."""
        c = Circuit("6t-write")
        c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        c.add(VoltageSource("vbl", "bl", "0", dc=0.0))
        c.add(VoltageSource("vblb", "blb", "0", dc=VDD))
        c.add(VoltageSource("vwl", "wl", "0",
                            waveform=Pulse(0.0, VDD, delay=1e-9,
                                           rise=50e-12, fall=50e-12,
                                           width=1.5e-9)))
        cell = add_sram6t(c, "cell", "vdd", "bl", "blb", "wl")
        res = transient(c, 4e-9, ic=cell.initial_conditions(True, VDD))
        assert cell.read_data(res.final_solution(), VDD) is False

    def test_no_write_without_wordline(self):
        c = Circuit("6t-nowrite")
        c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        c.add(VoltageSource("vbl", "bl", "0", dc=0.0))
        c.add(VoltageSource("vblb", "blb", "0", dc=VDD))
        c.add(VoltageSource("vwl", "wl", "0", dc=0.0))
        cell = add_sram6t(c, "cell", "vdd", "bl", "blb", "wl")
        res = transient(c, 3e-9, ic=cell.initial_conditions(True, VDD))
        assert cell.read_data(res.final_solution(), VDD) is True
