"""Tests for the latch-type sense amplifier."""

import pytest

from repro.analysis import transient
from repro.analysis.transient import TransientOptions
from repro.circuit import Circuit, PiecewiseLinear, VoltageSource
from repro.cells.senseamp import add_senseamp

VDD = 0.9
T_SAMPLE = 1e-9     # iso high, sae low
T_SENSE = 1e-9      # iso low, sae high


def _bench(v_bl, v_blb):
    """Sample for 1 ns, then fire the SA for 1 ns."""
    c = Circuit("sa")
    c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
    c.add(VoltageSource("vbl", "bl", "0", dc=v_bl))
    c.add(VoltageSource("vblb", "blb", "0", dc=v_blb))
    c.add(VoltageSource("viso", "iso", "0", waveform=PiecewiseLinear(
        [(0.0, VDD), (T_SAMPLE, VDD), (T_SAMPLE + 50e-12, 0.0)])))
    c.add(VoltageSource("vsae", "sae", "0", waveform=PiecewiseLinear(
        [(0.0, 0.0), (T_SAMPLE + 100e-12, 0.0),
         (T_SAMPLE + 150e-12, VDD)])))
    sa = add_senseamp(c, "sa", "bl", "blb", "sae", "iso", "vdd")
    result = transient(c, T_SAMPLE + T_SENSE,
                       options=TransientOptions(dt_initial=10e-12))
    return c, sa, result


class TestRegeneration:
    @pytest.mark.parametrize("v_bl,v_blb,expected", [
        (0.9, 0.75, True),      # BL high: reads 1
        (0.75, 0.9, False),     # BLB high: reads 0
        (0.9, 0.85, True),      # 50 mV differential still resolves
        (0.85, 0.9, False),
    ])
    def test_resolves_differential(self, v_bl, v_blb, expected):
        _, sa, result = self._run(v_bl, v_blb)
        final = result.final_solution()
        assert sa.read_output(final) is expected
        # Full-rail regeneration.
        assert abs(sa.differential(final)) > 0.8 * VDD

    def _run(self, v_bl, v_blb):
        return _bench(v_bl, v_blb)

    def test_tracks_bitlines_before_firing(self):
        _, sa, result = _bench(0.9, 0.7)
        # During sampling the latch nodes follow BL/BLB (through the
        # n-pass gates, so the high side sits a Vth below).
        t = 0.9 * T_SAMPLE
        assert result.sample(sa.out, t) > result.sample(sa.outb, t)
        assert abs(result.sample(sa.outb, t) - 0.7) < 0.15

    def test_sense_delay_sub_nanosecond(self):
        """Regeneration (measured from isolation opening) is fast."""
        _, sa, result = _bench(0.9, 0.75)
        crossing = result.crossing_time(sa.outb, VDD / 2, "fall",
                                        after=T_SAMPLE)
        assert crossing is not None
        assert crossing - T_SAMPLE < 0.5e-9

    def test_small_differential_slower_than_large(self):
        def delay(v_blb):
            _, sa, result = _bench(0.9, v_blb)
            t = result.crossing_time(sa.outb, VDD / 2, "fall",
                                     after=T_SAMPLE)
            assert t is not None
            return t - T_SAMPLE

        assert delay(0.88) > delay(0.6)


class TestStructure:
    def test_handle_nodes(self):
        c = Circuit("sa")
        c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        c.add(VoltageSource("vbl", "bl", "0", dc=VDD))
        c.add(VoltageSource("vblb", "blb", "0", dc=VDD))
        c.add(VoltageSource("viso", "iso", "0", dc=0.0))
        c.add(VoltageSource("vsae", "sae", "0", dc=0.0))
        sa = add_senseamp(c, "sa0", "bl", "blb", "sae", "iso", "vdd")
        assert sa.out == "sa0.out"
        assert "sa0.tail" in c
        assert "sa0.iso1" in c
