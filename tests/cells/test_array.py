"""Tests for the power-domain arithmetic and SPICE-level arrays."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.analysis import operating_point
from repro.cells import PowerDomain, build_cell_array
from repro.cells.array import CBL_FIXED, CBL_PER_ROW


class TestPowerDomain:
    def test_paper_reference_sizes(self):
        # Fig. 7(b): N = 32..2048 with M = 32 spans 128 B .. 8 kB.
        assert PowerDomain(32, 32).size_bytes == 128
        assert PowerDomain(2048, 32).size_bytes == 8192

    def test_num_cells(self):
        assert PowerDomain(512, 32).num_cells == 16384

    def test_bitline_capacitance_scales_with_rows(self):
        small = PowerDomain(32, 32).bitline_capacitance
        large = PowerDomain(2048, 32).bitline_capacitance
        assert large > small
        assert small == pytest.approx(CBL_FIXED + 32 * CBL_PER_ROW)

    def test_access_pass_duration(self):
        pd = PowerDomain(512, 32)
        t_cyc = 1 / 300e6
        assert pd.access_pass_duration(t_cyc) == pytest.approx(
            2 * 512 * t_cyc
        )

    def test_store_phase_serialised(self):
        pd = PowerDomain(512, 32)
        assert pd.store_phase_duration(20e-9) == pytest.approx(512 * 20e-9)

    def test_idle_fraction(self):
        assert PowerDomain(1, 32).idle_fraction_during_pass() == 0.0
        assert PowerDomain(512, 32).idle_fraction_during_pass() == \
            pytest.approx(511 / 512)

    def test_validation(self):
        with pytest.raises(NetlistError):
            PowerDomain(0, 32)
        with pytest.raises(NetlistError):
            PowerDomain(32, 0)

    def test_str(self):
        assert "N=512" in str(PowerDomain(512, 32))

    @given(n=st.integers(min_value=1, max_value=4096),
           m=st.integers(min_value=1, max_value=128))
    @settings(max_examples=50, deadline=None)
    def test_size_consistency(self, n, m):
        pd = PowerDomain(n, m)
        assert pd.num_cells == n * m
        assert pd.size_bytes * 8 == pd.num_cells
        assert 0.0 <= pd.idle_fraction_during_pass() < 1.0


class TestBuildCellArray:
    def test_dimensions_validated(self):
        with pytest.raises(NetlistError):
            build_cell_array(0, 2)

    def test_structure(self):
        tb = build_cell_array(2, 2)
        assert tb.rows == 2
        assert tb.cols == 2
        # Shared column bitlines: one BL source pair per column only.
        assert "vbl0" in tb.circuit
        assert "vbl1" in tb.circuit
        assert "vbl2" not in tb.circuit
        # Per-row control lines.
        for r in range(2):
            for src in (f"vwl{r}", f"vsr{r}", f"vctrl{r}", f"vpg{r}"):
                assert src in tb.circuit

    def test_array_holds_checkerboard(self):
        tb = build_cell_array(2, 2)
        data = [[True, False], [False, True]]
        sol = operating_point(tb.circuit, ic=tb.initial_conditions(data))
        for r in range(2):
            for c in range(2):
                assert tb.cells[r][c].read_data(sol, tb.vdd) is data[r][c]

    def test_row_shutdown_leaves_other_row_intact(self):
        tb = build_cell_array(2, 1)
        tb.circuit["vpg1"].set_level(1.0)   # super cutoff row 1
        data = [[True], [True]]
        sol = operating_point(tb.circuit, ic=tb.initial_conditions(data))
        assert tb.cells[0][0].read_data(sol, tb.vdd) is True
        assert sol.voltage("vvdd1") < 0.3   # row 1 collapsed
        assert sol.voltage("vvdd0") > 0.85
