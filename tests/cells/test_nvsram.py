"""Tests for the NV-SRAM cell (Fig. 2): structure, store and restore."""

import pytest

from repro.analysis import operating_point, transient
from repro.circuit import Circuit, Step, VoltageSource
from repro.cells import add_nvsram, add_power_switch
from repro.devices.mtj import MTJState

VDD = 0.9
V_SR = 0.65
V_CTRL_STORE = 0.5


def _testbench(mtj_q=MTJState.PARALLEL, mtj_qb=MTJState.ANTIPARALLEL):
    c = Circuit("nv")
    c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
    c.add(VoltageSource("vbl", "bl", "0", dc=VDD))
    c.add(VoltageSource("vblb", "blb", "0", dc=VDD))
    c.add(VoltageSource("vwl", "wl", "0", dc=0.0))
    c.add(VoltageSource("vsr", "sr", "0", dc=0.0))
    c.add(VoltageSource("vctrl", "ctrl", "0", dc=0.07))
    cell = add_nvsram(c, "cell", "vdd", "bl", "blb", "wl", "sr", "ctrl",
                      mtj_q_state=mtj_q, mtj_qb_state=mtj_qb)
    return c, cell


class TestStructure:
    def test_handles(self):
        c, cell = _testbench()
        assert cell.q == "cell.q"
        assert cell.sq == "cell.sq"
        assert cell.mtj_q(c).name == "cell.mtjq"
        assert cell.mtj_qb(c).name == "cell.mtjqb"

    def test_set_mtj_states(self):
        c, cell = _testbench()
        cell.set_mtj_states(c, MTJState.ANTIPARALLEL, MTJState.PARALLEL)
        assert cell.mtj_q(c).state is MTJState.ANTIPARALLEL
        assert cell.mtj_qb(c).state is MTJState.PARALLEL

    def test_stored_data_decoding(self):
        c, cell = _testbench()
        cell.set_mtj_states(c, MTJState.ANTIPARALLEL, MTJState.PARALLEL)
        assert cell.stored_data(c) is True
        cell.set_mtj_states(c, MTJState.PARALLEL, MTJState.ANTIPARALLEL)
        assert cell.stored_data(c) is False
        cell.set_mtj_states(c, MTJState.PARALLEL, MTJState.PARALLEL)
        assert cell.stored_data(c) is None


class TestNormalMode:
    @pytest.mark.parametrize("data", [True, False])
    def test_holds_data_with_ps_fets_off(self, data):
        c, cell = _testbench()
        sol = operating_point(c, ic=cell.initial_conditions(data, VDD))
        assert cell.read_data(sol, VDD) is data

    def test_mtj_current_negligible_in_normal_mode(self):
        """The PS-FinFETs separate the MTJs from the latch (SR = 0)."""
        c, cell = _testbench()
        sol = operating_point(c, ic=cell.initial_conditions(True, VDD))
        i_q = abs(cell.mtj_q(c).current(sol))
        i_qb = abs(cell.mtj_qb(c).current(sol))
        assert i_q < 1e-8
        assert i_qb < 1e-8

    def test_sr_on_connects_mtjs(self):
        c, cell = _testbench()
        c["vsr"].set_level(V_SR)
        c["vctrl"].set_level(0.0)
        sol = operating_point(c, ic=cell.initial_conditions(True, VDD))
        # The high node now drives current through its MTJ into CTRL.
        assert abs(cell.mtj_q(c).current(sol)) > 1e-6


class TestStoreOperation:
    def _store_transient(self, data):
        """Two-step store with SR/CTRL waveforms; MTJs start inverted."""
        c = Circuit("nv-store")
        c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        c.add(VoltageSource("vbl", "bl", "0", dc=VDD))
        c.add(VoltageSource("vblb", "blb", "0", dc=VDD))
        c.add(VoltageSource("vwl", "wl", "0", dc=0.0))
        c.add(VoltageSource("vsr", "sr", "0",
                            waveform=Step(0.0, V_SR, 1e-9, 100e-12)))
        c.add(VoltageSource("vctrl", "ctrl", "0",
                            waveform=Step(0.0, V_CTRL_STORE, 11e-9,
                                          100e-12)))
        q0 = MTJState.PARALLEL if data else MTJState.ANTIPARALLEL
        qb0 = q0.opposite
        cell = add_nvsram(c, "cell", "vdd", "bl", "blb", "wl", "sr",
                          "ctrl", mtj_q_state=q0, mtj_qb_state=qb0)
        res = transient(c, 21e-9, ic=cell.initial_conditions(data, VDD))
        return c, cell, res

    @pytest.mark.parametrize("data", [True, False])
    def test_store_encodes_data(self, data):
        c, cell, res = self._store_transient(data)
        assert cell.stored_data(c) is data
        assert len(res.events) == 2  # both MTJs flipped

    def test_store_preserves_latch(self, ):
        c, cell, res = self._store_transient(True)
        assert cell.read_data(res.final_solution(), VDD) is True


class TestRestoreOperation:
    @pytest.mark.parametrize("data", [True, False])
    def test_restore_recovers_data(self, data):
        """Wake-up from a collapsed rail recovers the MTJ-encoded bit."""
        c = Circuit("nv-restore")
        c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        c.add(VoltageSource("vpg", "pg", "0",
                            waveform=Step(1.0, 0.0, 1e-9, 200e-12)))
        add_power_switch(c, "psw", "vdd", "vvdd", "pg", nfsw=7)
        c.add(VoltageSource("vbl", "bl", "0", dc=0.0))
        c.add(VoltageSource("vblb", "blb", "0", dc=0.0))
        c.add(VoltageSource("vwl", "wl", "0", dc=0.0))
        c.add(VoltageSource("vsr", "sr", "0", dc=V_SR))
        c.add(VoltageSource("vctrl", "ctrl", "0", dc=0.0))
        q_state = MTJState.ANTIPARALLEL if data else MTJState.PARALLEL
        cell = add_nvsram(c, "cell", "vvdd", "bl", "blb", "wl", "sr",
                          "ctrl", mtj_q_state=q_state,
                          mtj_qb_state=q_state.opposite)
        res = transient(
            c, 6e-9,
            ic={"vvdd": 0.0, cell.q: 0.0, cell.qb: 0.0},
        )
        final = res.final_solution()
        assert final.voltage("vvdd") > 0.8 * VDD
        assert cell.read_data(final, VDD) is data
        # Restore must not overwrite the MTJs.
        assert cell.stored_data(c) is data
