"""Tests for the nonvolatile D flip-flop."""

import pytest

from repro.analysis import transient
from repro.analysis.transient import TransientOptions
from repro.circuit import (
    Circuit,
    PiecewiseLinear,
    Pulse,
    Step,
    VoltageSource,
)
from repro.cells import add_nvff, add_power_switch
from repro.devices.mtj import MTJState

VDD = 0.9
V_SR = 0.65
V_CTRL = 0.5


def _clocked_bench(d_wave, clk_wave):
    c = Circuit("nvff-tb")
    c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
    c.add(VoltageSource("vpg", "pg", "0", dc=0.0))
    add_power_switch(c, "psw", "vdd", "vvdd", "pg", nfsw=14)
    c.add(VoltageSource("vclk", "clk", "0", waveform=clk_wave))
    c.add(VoltageSource("vd", "d", "0", waveform=d_wave))
    c.add(VoltageSource("vsr", "sr", "0", dc=0.0))
    c.add(VoltageSource("vctrl", "ctrl", "0", dc=0.07))
    ff = add_nvff(c, "ff", "d", "clk", "vvdd", "sr", "ctrl")
    return c, ff


class TestClockedBehaviour:
    def test_captures_on_rising_edges(self):
        clk = Pulse(0, VDD, delay=2e-9, rise=50e-12, fall=50e-12,
                    width=1.8e-9, period=4e-9)
        d = PiecewiseLinear([(0, VDD), (4e-9, VDD), (4.1e-9, 0.0),
                             (8e-9, 0.0), (8.1e-9, VDD)])
        c, ff = _clocked_bench(d, clk)
        res = transient(c, 12e-9, ic=ff.initial_conditions(False, VDD),
                        options=TransientOptions(dt_initial=20e-12))
        # Edge at 2 ns captures D=1; edge at 6 ns captures D=0;
        # edge at 10 ns captures D=1 again.
        assert res.sample(ff.q, 1.5e-9) < 0.1          # initial 0
        assert res.sample(ff.q, 3.5e-9) > 0.8
        assert res.sample(ff.q, 7.5e-9) < 0.1
        assert res.sample(ff.q, 11.5e-9) > 0.8

    def test_opaque_while_clock_low(self):
        """D wiggles with the clock parked low: Q must not move."""
        clk = PiecewiseLinear([(0.0, 0.0)])
        d = Pulse(0, VDD, delay=1e-9, rise=50e-12, fall=50e-12,
                  width=1e-9, period=2.5e-9)
        c, ff = _clocked_bench(d, clk)
        res = transient(c, 8e-9, ic=ff.initial_conditions(True, VDD),
                        options=TransientOptions(dt_initial=20e-12))
        assert min(res.voltage(ff.q)) > 0.7

    def test_complementary_internal_nodes(self):
        clk = Pulse(0, VDD, delay=2e-9, rise=50e-12, fall=50e-12,
                    width=1.8e-9, period=4e-9)
        d = PiecewiseLinear([(0.0, VDD)])
        c, ff = _clocked_bench(d, clk)
        res = transient(c, 5e-9, ic=ff.initial_conditions(False, VDD),
                        options=TransientOptions(dt_initial=20e-12))
        final = res.final_solution()
        assert abs(final.voltage(ff.q) + final.voltage(ff.s3)
                   - VDD) < 0.05  # complementary


def _store_bench(data):
    c = Circuit("nvff-store")
    c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
    c.add(VoltageSource("vpg", "pg", "0", dc=0.0))
    add_power_switch(c, "psw", "vdd", "vvdd", "pg", nfsw=14)
    c.add(VoltageSource("vclk", "clk", "0", dc=0.0))
    c.add(VoltageSource("vd", "d", "0", dc=0.0))
    c.add(VoltageSource("vsr", "sr", "0",
                        waveform=Step(0.0, V_SR, 1e-9, 100e-12)))
    c.add(VoltageSource("vctrl", "ctrl", "0",
                        waveform=Step(0.0, V_CTRL, 11e-9, 100e-12)))
    ff = add_nvff(c, "ff", "d", "clk", "vvdd", "sr", "ctrl")
    ff.set_mtj_data(c, not data)       # force both MTJs to flip
    return c, ff


class TestStore:
    @pytest.mark.parametrize("data", [True, False])
    def test_two_step_store_encodes_q(self, data):
        c, ff = _store_bench(data)
        res = transient(c, 21e-9, ic=ff.initial_conditions(data, VDD),
                        options=TransientOptions(dt_initial=20e-12))
        assert ff.stored_data(c) is data
        assert len(res.events) == 2
        assert ff.read_q(res.final_solution(), VDD) is data  # no upset

    def test_no_store_without_sr(self):
        c = Circuit("nvff-nostore")
        c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        c.add(VoltageSource("vpg", "pg", "0", dc=0.0))
        add_power_switch(c, "psw", "vdd", "vvdd", "pg", nfsw=14)
        c.add(VoltageSource("vclk", "clk", "0", dc=0.0))
        c.add(VoltageSource("vd", "d", "0", dc=0.0))
        c.add(VoltageSource("vsr", "sr", "0", dc=0.0))
        c.add(VoltageSource("vctrl", "ctrl", "0",
                            waveform=Step(0.0, V_CTRL, 1e-9, 100e-12)))
        ff = add_nvff(c, "ff", "d", "clk", "vvdd", "sr", "ctrl")
        ff.set_mtj_data(c, False)
        res = transient(c, 10e-9, ic=ff.initial_conditions(True, VDD))
        assert len(res.events) == 0
        assert ff.stored_data(c) is False


class TestRestore:
    @pytest.mark.parametrize("data", [True, False])
    def test_wakeup_recovers_mtj_data(self, data):
        c = Circuit("nvff-restore")
        c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        c.add(VoltageSource("vpg", "pg", "0",
                            waveform=Step(1.0, 0.0, 1e-9, 200e-12)))
        add_power_switch(c, "psw", "vdd", "vvdd", "pg", nfsw=14)
        c.add(VoltageSource("vclk", "clk", "0", dc=0.0))
        c.add(VoltageSource("vd", "d", "0", dc=0.0))
        c.add(VoltageSource("vsr", "sr", "0", dc=V_SR))
        c.add(VoltageSource("vctrl", "ctrl", "0", dc=0.0))
        ff = add_nvff(c, "ff", "d", "clk", "vvdd", "sr", "ctrl")
        ff.set_mtj_data(c, data)
        ic = {"vvdd": 0.0, ff.q: 0.0, ff.s: 0.0, ff.s3: 0.0,
              "ff.m1": 0.0, "ff.m2": 0.0}
        res = transient(c, 8e-9, ic=ic,
                        options=TransientOptions(dt_initial=20e-12))
        final = res.final_solution()
        assert final.voltage("vvdd") > 0.8 * VDD
        assert ff.read_q(final, VDD) is data
        assert ff.stored_data(c) is data  # restore is non-destructive


class TestRoundTrip:
    def test_capture_store_collapse_restore(self):
        """Full lifecycle in one transient: clock in a 1, store it, cut
        the power switch, wake up, and find the 1 back at Q."""
        c = Circuit("nvff-roundtrip")
        c.add(VoltageSource("vdd", "vdd", "0", dc=VDD))
        c.add(VoltageSource("vpg", "pg", "0", waveform=PiecewiseLinear(
            [(0.0, 0.0), (33e-9, 0.0), (33.2e-9, 1.0),   # shutdown
             (43e-9, 1.0), (43.2e-9, 0.0)])))            # wake
        add_power_switch(c, "psw", "vdd", "vvdd", "pg", nfsw=14)
        c.add(VoltageSource("vclk", "clk", "0", waveform=Pulse(
            0, VDD, delay=2e-9, rise=50e-12, fall=50e-12, width=2e-9)))
        c.add(VoltageSource("vd", "d", "0", dc=VDD))
        c.add(VoltageSource("vsr", "sr", "0", waveform=PiecewiseLinear(
            [(0.0, 0.0), (8e-9, 0.0), (8.2e-9, V_SR),
             (32e-9, V_SR)])))
        c.add(VoltageSource("vctrl", "ctrl", "0", waveform=PiecewiseLinear(
            [(0.0, 0.0), (18e-9, 0.0), (18.2e-9, V_CTRL),
             (28e-9, V_CTRL), (28.4e-9, 0.0)])))
        ff = add_nvff(c, "ff", "d", "clk", "vvdd", "sr", "ctrl")
        ff.set_mtj_data(c, False)
        res = transient(c, 50e-9, ic=ff.initial_conditions(False, VDD),
                        options=TransientOptions(dt_initial=20e-12))
        final = res.final_solution()
        assert len(res.events) == 2          # both MTJs switched at store
        assert ff.stored_data(c) is True
        assert ff.read_q(final, VDD) is True
        # The rail really collapsed in between.
        vvdd_during_off = res.sample("vvdd", 42e-9)
        assert vvdd_during_off < final.voltage("vvdd")
