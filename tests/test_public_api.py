"""Public-API stability and documentation checks.

Downstream code imports from ``repro`` and the subpackage roots; these
tests pin that surface so refactors cannot silently drop names, and
enforce the documentation bar (every public module, class and function
carries a docstring).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

TOP_LEVEL_EXPORTS = [
    # errors
    "ReproError", "NetlistError", "AnalysisError", "ConvergenceError",
    "DeviceError", "CharacterizationError", "SequenceError",
    # circuit + analysis
    "Circuit", "Resistor", "Capacitor", "VoltageSource",
    "operating_point", "dc_sweep", "transient",
    # devices
    "FinFET", "FinFETParams", "MTJ", "MTJParams", "MTJState",
    "MTJ_TABLE1", "NFET_20NM_HP", "PFET_20NM_HP",
    # cells
    "PowerDomain", "add_nvsram", "add_sram6t", "add_power_switch",
    "build_cell_array",
    # pg
    "Architecture", "BenchmarkSpec", "CellEnergyModel", "Mode",
    "OperatingConditions", "benchmark_sequence", "break_even_time",
    # characterisation / experiments / spice
    "CellCharacterization", "characterize_cell", "build_cell_testbench",
    "ExperimentContext", "parse_deck", "run_deck",
]

SUBPACKAGE_EXPORTS = {
    "repro.circuit": ["Sine", "Exponential", "lint", "SubCircuit"],
    "repro.analysis": ["ac_analysis", "TransientOptions"],
    "repro.cells": ["add_nvff", "add_senseamp", "add_inverter"],
    "repro.pg": [
        "PowerDomainSimulator", "RegisterBankModel", "SystemModel",
        "CacheLevel", "epochs_from_access_times", "zipf_domain_trace",
    ],
    "repro.characterize": [
        "leakage_vs_vctrl", "store_current_vs_vsr", "derive_store_biases",
        "vvdd_vs_nfsw", "butterfly_curve", "retention_voltage_sweep",
        "store_yield_analysis", "characterize_nvff",
        "nof_access_disturb",
    ],
    "repro.experiments": [
        "run_table1", "run_fig1", "run_fig3", "run_fig4", "run_fig5",
        "run_fig6", "run_fig7a", "run_fig7b", "run_fig7c", "run_fig8",
        "run_fig9", "run_summary",
    ],
    "repro.verify": [
        "REGISTRY", "Diagnostic", "Finding", "Report", "Rule",
        "Severity", "VerifyConfig", "assert_clean", "lint_enabled",
        "render_json", "render_sarif", "render_text", "rule",
        "run_rules", "verify_circuit", "verify_deck",
        "verify_deck_file",
    ],
}


class TestTopLevel:
    @pytest.mark.parametrize("name", TOP_LEVEL_EXPORTS)
    def test_export_present(self, name):
        assert hasattr(repro, name), f"repro.{name} missing"
        assert name in repro.__all__

    def test_version(self):
        assert repro.__version__

    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None


class TestSubpackages:
    @pytest.mark.parametrize("module,names", sorted(
        SUBPACKAGE_EXPORTS.items()))
    def test_exports(self, module, names):
        mod = importlib.import_module(module)
        for name in names:
            assert hasattr(mod, name), f"{module}.{name} missing"


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        if info.name.endswith("__main__"):
            continue   # importing it would execute the CLI
        yield importlib.import_module(info.name)


class TestDocumentation:
    def test_every_module_has_docstring(self):
        undocumented = [
            m.__name__ for m in _walk_modules()
            if not (m.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_public_callables_documented(self):
        missing = []
        for module in _walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ or "").strip():
                        missing.append(f"{module.__name__}.{name}")
        assert missing == []
