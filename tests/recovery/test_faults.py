"""Fault-injection tests.

The quick tests check the injection mechanics and the chaos invariant on
a small fault count; the ``stress``-marked test is the ISSUE acceptance
run: >= 20 faults, zero unhandled exceptions, every fault accounted for.
"""

import numpy as np
import pytest

from repro.characterize.testbench import build_cell_testbench
from repro.circuit import Resistor
from repro.devices.finfet import FinFET
from repro.devices.mtj import MTJ
from repro.recovery.faults import (
    FAULT_KINDS,
    FaultSpec,
    chaos_operating_points,
    chaos_store_transient,
    inject_fault,
    sample_fault,
)

OUTCOMES = {"converged", "recovered", "skipped"}


def _nv_circuit():
    return build_cell_testbench("nv").circuit


class TestInjectFault:
    def test_vth_shift_moves_threshold(self):
        c = _nv_circuit()
        fet = next(e for e in c.elements() if isinstance(e, FinFET))
        before = fet.params.vth0
        ic = inject_fault(c, FaultSpec("vth_shift", fet.name, magnitude=0.3))
        assert ic == {}
        assert fet.params.vth0 == pytest.approx(before + 0.3)

    def test_device_open_collapses_current(self):
        c = _nv_circuit()
        fet = next(e for e in c.elements() if isinstance(e, FinFET))
        before = fet.params.i_spec
        inject_fault(c, FaultSpec("device_open", fet.name, magnitude=1e-9))
        assert fet.params.i_spec == pytest.approx(before * 1e-9)

    def test_mtj_drift_scales_resistance(self):
        c = _nv_circuit()
        mtj = next(e for e in c.elements() if isinstance(e, MTJ))
        before = mtj.params.ra_product
        inject_fault(c, FaultSpec("mtj_drift", mtj.name, magnitude=100.0))
        assert mtj.params.ra_product == pytest.approx(before * 100.0)

    def test_node_short_adds_resistor(self):
        c = _nv_circuit()
        n_before = len(list(c.elements()))
        inject_fault(c, FaultSpec("node_short", "q"))
        shorts = [e for e in c.elements()
                  if isinstance(e, Resistor) and e.name.startswith("rfault")]
        assert len(list(c.elements())) == n_before + 1
        assert shorts and shorts[-1].resistance == pytest.approx(1.0)

    def test_bad_ic_returns_override(self):
        c = _nv_circuit()
        ic = inject_fault(c, FaultSpec("bad_ic", "q", magnitude=1.7))
        assert ic == {"q": 1.7}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            inject_fault(_nv_circuit(), FaultSpec("gamma_ray", "q"))

    def test_sample_fault_deterministic_and_applicable(self):
        c = _nv_circuit()
        rng = np.random.default_rng(7)
        specs = [sample_fault(c, rng) for _ in range(10)]
        assert all(s.kind in FAULT_KINDS for s in specs)
        rng2 = np.random.default_rng(7)
        again = [sample_fault(c, rng2) for _ in range(10)]
        assert [s.kind for s in specs] == [s.kind for s in again]


class TestChaosQuick:
    def test_every_fault_accounted_for(self):
        """The core property: N faults in, N structured outcomes out —
        converged, recovered, or skipped; never a silent drop."""
        report = chaos_operating_points(target="nv", n_faults=6, seed=3)
        assert len(report.records) == 6
        assert all(r.outcome in OUTCOMES for r in report.records)
        for r in report.records:
            if r.outcome == "skipped":
                assert r.skip is not None
                assert r.skip.error_type
            if r.outcome == "recovered":
                assert r.rung is not None
        assert sum(report.counts().values()) == 6

    def test_report_round_trips_to_dict(self):
        report = chaos_operating_points(target="6t", n_faults=3, seed=5)
        payload = report.to_dict()
        assert payload["kind"] == "chaos_report"
        assert len(payload["records"]) == 3
        text = report.render()
        assert "chaos" in text.lower()

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            chaos_operating_points(target="dram", n_faults=1)


@pytest.mark.stress
class TestChaosStress:
    def test_twenty_faults_dc(self):
        """ISSUE acceptance: >= 20 faults, zero unhandled exceptions."""
        report = chaos_operating_points(target="nv", n_faults=20, seed=2015)
        assert len(report.records) == 20
        assert all(r.outcome in OUTCOMES for r in report.records)
        # The harness must exercise several distinct failure modes.
        assert len({r.fault.kind for r in report.records}) >= 3

    def test_transient_chaos(self):
        report = chaos_store_transient(n_faults=4, seed=2015)
        assert len(report.records) == 4
        assert all(r.outcome in OUTCOMES for r in report.records)
