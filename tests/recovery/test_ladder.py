"""Recovery-ladder tests: pathological decks that fail a plain Newton
solve but converge through escalation, trace bookkeeping, and the
transient-local ladder."""

import numpy as np
import pytest

from repro.analysis import operating_point
from repro.analysis.dc import OperatingPointOptions
from repro.analysis.mna import Context
from repro.analysis.solver import NewtonOptions, newton_solve
from repro.circuit import Circuit, Resistor, VoltageSource
from repro.devices import FinFET, NFET_20NM_HP, PFET_20NM_HP
from repro.errors import ConvergenceError
from repro.recovery import (
    LadderResult,
    RecoveryOptions,
    recover_dc,
    recover_transient_step,
)


def _latch(vdd=0.9):
    c = Circuit("latch")
    c.add(VoltageSource("vdd", "vdd", "0", dc=vdd))
    c.add(FinFET("pu1", "q", "qb", "vdd", PFET_20NM_HP))
    c.add(FinFET("pd1", "q", "qb", "0", NFET_20NM_HP))
    c.add(FinFET("pu2", "qb", "q", "vdd", PFET_20NM_HP))
    c.add(FinFET("pd2", "qb", "q", "0", NFET_20NM_HP))
    return c


STARVED = NewtonOptions(max_iterations=3)


class TestRecoverDc:
    def test_clean_solve_reports_no_rung(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        result = recover_dc(c)
        assert isinstance(result, LadderResult)
        assert result.rung is None
        assert not result.recovered
        assert [a.rung for a in result.trace] == ["plain"]

    def test_ladder_recovers_deck_plain_newton_cannot(self):
        """The headline behaviour: a deck the starved plain solve fails
        converges through the ladder, and the result matches a healthy
        direct solve."""
        c = _latch()
        c.compile()
        with pytest.raises(ConvergenceError):
            newton_solve(c, Context(), np.zeros(c.size), STARVED)

        result = recover_dc(c, newton=STARVED)
        assert result.recovered
        assert result.rung is not None
        # The recovered point satisfies the unmodified equations.
        from repro.analysis.solver import kcl_residual
        r = kcl_residual(c, Context(), result.x)
        assert float(np.max(np.abs(r))) < 1e-7

    def test_trace_records_failed_rungs_before_success(self):
        c = _latch()
        result = recover_dc(c, newton=STARVED)
        assert result.trace[0].rung == "plain"
        assert not result.trace[0].ok
        assert result.trace[-1].ok

    def test_disabled_ladder_raises_immediately(self):
        c = _latch()
        with pytest.raises(ConvergenceError) as info:
            recover_dc(c, newton=STARVED,
                       options=RecoveryOptions(enabled=False))
        assert [a["rung"] for a in info.value.ladder_trace] == ["plain"]

    def test_exhausted_ladder_carries_full_trace(self):
        c = _latch()
        options = RecoveryOptions(damping_factors=(0.5,),
                                  damping_iteration_boost=1,
                                  gmin_steps=(), pseudo_transient=False,
                                  source_ramp=False)
        with pytest.raises(ConvergenceError) as info:
            recover_dc(c, newton=NewtonOptions(max_iterations=2),
                       options=options)
        err = info.value
        rungs = [a["rung"] for a in err.ladder_trace]
        assert rungs == ["plain", "equilibrate", "damping"]
        assert "recovery ladder exhausted" in str(err)
        assert isinstance(err.__cause__, ConvergenceError)

    def test_equilibrate_rung_can_be_disabled(self):
        c = _latch()
        options = RecoveryOptions(equilibrate=False, damping_factors=(0.5,),
                                  damping_iteration_boost=1,
                                  gmin_steps=(), pseudo_transient=False,
                                  source_ramp=False)
        with pytest.raises(ConvergenceError) as info:
            recover_dc(c, newton=NewtonOptions(max_iterations=2),
                       options=options)
        rungs = [a["rung"] for a in info.value.ladder_trace]
        assert rungs == ["plain", "damping"]

    def test_starved_failure_boosts_damping_budget(self):
        """A damping-starved plain failure doubles the damping-rung
        iteration boost — visible in the trace detail."""
        c = _latch()
        # max_iterations=2 exits with every step damped (starved).
        result = recover_dc(c, newton=NewtonOptions(max_iterations=2),
                            options=RecoveryOptions(
                                damping_factors=(0.1,),
                                damping_iteration_boost=4))
        damping = [a for a in result.trace if a.rung == "damping"]
        assert damping
        assert "boost=8x" in damping[0].detail

    def test_source_ramp_disabled_respected(self):
        c = _latch()
        options = RecoveryOptions(damping_factors=(), gmin_steps=(),
                                  pseudo_transient=False, source_ramp=False)
        with pytest.raises(ConvergenceError) as info:
            recover_dc(c, newton=NewtonOptions(max_iterations=2),
                       options=options)
        assert all(a["rung"] != "source-ramp"
                   for a in info.value.ladder_trace)


class TestOperatingPointIntegration:
    def test_solution_annotated_clean(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        sol = operating_point(c)
        assert sol.recovery_rung is None
        assert sol.recovery_trace

    def test_solution_annotated_recovered(self):
        c = _latch()
        opts = OperatingPointOptions()
        opts.newton.max_iterations = 3
        sol = operating_point(c, options=opts)
        assert sol.recovery_rung is not None
        assert any(not a["ok"] for a in sol.recovery_trace)
        assert sol.voltage("vdd") == pytest.approx(0.9, rel=1e-3)

    def test_basin_preserved_through_recovery(self):
        """An ic-pinned solve going through the ladder must stay in the
        requested stability basin (source ramping is disabled for the
        clamp-release re-solve)."""
        c = _latch()
        opts = OperatingPointOptions()
        opts.newton.max_iterations = 3
        for q_high in (True, False):
            ic = {"q": 0.9 if q_high else 0.0,
                  "qb": 0.0 if q_high else 0.9}
            sol = operating_point(c, ic=ic, options=opts)
            if q_high:
                assert sol.voltage("q") > sol.voltage("qb")
            else:
                assert sol.voltage("q") < sol.voltage("qb")


class TestRecoverTransientStep:
    def _step_setup(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "b", 1e3))
        c.add(Resistor("r2", "b", "0", 1e3))
        c.compile()
        x_prev = newton_solve(c, Context(), np.zeros(c.size))
        ctx = Context(mode="tran", time=1e-9, dt=1e-12, method="trap",
                      x=x_prev)
        return c, ctx, x_prev

    def test_recovers_from_terrible_guess(self):
        c, ctx, x_prev = self._step_setup()
        guess = np.full(c.size, 1e6)   # absurd predictor output
        result = recover_transient_step(c, ctx, x_prev, guess,
                                        NewtonOptions(max_iterations=5))
        assert result is not None
        assert result.rung in ("damping", "backward-euler", "gmin-step")
        assert result.x[c.index_of("b")] == pytest.approx(0.5, rel=1e-3)

    def test_disabled_returns_none(self):
        c, ctx, x_prev = self._step_setup()
        result = recover_transient_step(
            c, ctx, x_prev, np.full(c.size, 1e6),
            NewtonOptions(max_iterations=1),
            options=RecoveryOptions(enabled=False))
        assert result is None
