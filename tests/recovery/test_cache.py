"""Concurrency-safety of the characterisation cache writer."""

import json
import os

import pytest

from repro.characterize import cache
from repro.characterize.data import CellCharacterization


def _result():
    return CellCharacterization(kind="nv", n_wordlines=8, vdd=0.9,
                                frequency=100e6, e_read=1e-15)


class TestStore:
    def test_round_trip(self, tmp_path):
        cache.store(tmp_path, "k1", _result())
        loaded = cache.load(tmp_path, "k1")
        assert loaded is not None
        assert loaded.kind == "nv"
        assert loaded.e_read == pytest.approx(1e-15)

    def test_survives_fixed_name_collision(self, tmp_path):
        """The old writer staged into the fixed path ``<key>.tmp``; a
        stale artifact (or a concurrent writer) at that exact name broke
        it.  The mkstemp-based writer must not care."""
        (tmp_path / "k1.tmp").mkdir()   # poison the legacy staging name
        cache.store(tmp_path, "k1", _result())
        assert cache.load(tmp_path, "k1") is not None

    def test_no_stale_temp_files_after_store(self, tmp_path):
        cache.store(tmp_path, "k2", _result())
        leftovers = [p for p in tmp_path.iterdir()
                     if p.is_file() and p.suffix == ".tmp"]
        assert leftovers == []

    def test_failed_write_cleans_up(self, tmp_path, monkeypatch):
        class Broken(CellCharacterization):
            def to_json(self):
                raise RuntimeError("serialisation exploded")

        broken = Broken(kind="nv", n_wordlines=8, vdd=0.9, frequency=100e6)
        with pytest.raises(RuntimeError):
            cache.store(tmp_path, "k3", broken)
        assert not (tmp_path / "k3.json").exists()
        assert [p for p in tmp_path.iterdir() if p.is_file()] == []

    def test_concurrent_writers_interleaved(self, tmp_path):
        """Simulate two writers racing on one key: each stages into its
        own temp file, so the losing rename still leaves valid JSON."""
        a = _result()
        b = _result()
        b.e_read = 2e-15
        cache.store(tmp_path, "k4", a)
        cache.store(tmp_path, "k4", b)
        envelope = json.loads((tmp_path / "k4.json").read_text())
        assert envelope["payload"]["e_read"] == pytest.approx(2e-15)

    def test_disabled_cache_is_noop(self, tmp_path):
        cache.store(None, "k5", _result())
        assert cache.load(None, "k5") is None
