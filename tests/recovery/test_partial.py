"""Partial-result semantics: skip records, skip-tolerant sweeps and the
characterisation drivers that consume them."""

import numpy as np
import pytest

from repro.analysis import dc_sweep
from repro.analysis.dc import OperatingPointOptions
from repro.analysis.solver import NewtonOptions
from repro.circuit import Circuit, Resistor, VoltageSource
from repro.devices import FinFET, NFET_20NM_HP, PFET_20NM_HP
from repro.errors import AnalysisError, CharacterizationError, ConvergenceError
from repro.recovery import SkipRecord, run_point, skip_payload
from repro.recovery.ladder import RecoveryOptions


def _latch_with_source():
    c = Circuit("latch+vin")
    c.add(VoltageSource("vdd", "vdd", "0", dc=0.9))
    c.add(VoltageSource("vin", "in", "0", dc=0.0))
    c.add(Resistor("rin", "in", "q", 1e6))
    c.add(FinFET("pu1", "q", "qb", "vdd", PFET_20NM_HP))
    c.add(FinFET("pd1", "q", "qb", "0", NFET_20NM_HP))
    c.add(FinFET("pu2", "qb", "q", "vdd", PFET_20NM_HP))
    c.add(FinFET("pd2", "qb", "q", "0", NFET_20NM_HP))
    return c


def _hopeless_options():
    """Options under which the latch cannot converge at all."""
    opts = OperatingPointOptions(
        newton=NewtonOptions(max_iterations=2),
        gmin_steps=(),
        source_steps=(),
        recovery=RecoveryOptions(damping_factors=(), gmin_steps=(),
                                 pseudo_transient=False, source_ramp=False),
    )
    return opts


class TestRunPoint:
    def test_success_passthrough(self):
        value, skip = run_point(lambda: 42.0, index=3, label="x=3")
        assert value == 42.0
        assert skip is None

    def test_analysis_error_becomes_skip(self):
        def boom():
            raise ConvergenceError("no luck", iterations=7, residual=1e-3)

        value, skip = run_point(boom, index=5, label="x=5", stage="test",
                                extra_key="extra_value")
        assert value is None
        assert isinstance(skip, SkipRecord)
        assert skip.index == 5
        assert skip.error_type == "ConvergenceError"
        assert skip.residual == pytest.approx(1e-3)
        assert skip.extra["extra_key"] == "extra_value"

    def test_programming_errors_propagate(self):
        with pytest.raises(ZeroDivisionError):
            run_point(lambda: 1 / 0)

    def test_skip_payload_envelope(self):
        _, skip = run_point(
            lambda: (_ for _ in ()).throw(AnalysisError("bad")),
            index=0, stage="unit")
        payload = skip_payload([skip])
        assert payload["kind"] == "skip_records"
        assert payload["stage"] == "unit"
        assert len(payload["records"]) == 1


class TestSweepSkips:
    def test_raise_policy_propagates(self):
        c = _latch_with_source()
        with pytest.raises(ConvergenceError):
            dc_sweep(c, "vin", [0.0, 0.4], options=_hopeless_options())

    def test_invalid_policy_rejected(self):
        c = _latch_with_source()
        with pytest.raises(AnalysisError):
            dc_sweep(c, "vin", [0.0], on_error="ignore")

    def test_skip_policy_annotates_every_point(self):
        """The contract: an N-point sweep always returns N entries."""
        c = _latch_with_source()
        values = np.linspace(0.0, 0.4, 7)
        sweep = dc_sweep(c, "vin", values, options=_hopeless_options(),
                         on_error="skip")
        assert len(sweep) == 7
        assert len(sweep.solutions) == 7
        assert sweep.num_skipped == 7
        v = sweep.voltage("q")
        assert v.shape == (7,)
        assert np.all(np.isnan(v))
        for i, record in enumerate(sweep.skips):
            assert record.index == i
            assert record.stage == "dc_sweep"
            assert record.extra["value"] == pytest.approx(values[i])

    def test_partial_failure_keeps_good_points(self, monkeypatch):
        """Failing only the middle point must not disturb its neighbours."""
        from repro.analysis import sweep as sweep_mod

        real_op = sweep_mod.operating_point
        calls = {"n": 0}

        def flaky(circuit, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise ConvergenceError("injected failure")
            return real_op(circuit, **kwargs)

        monkeypatch.setattr(sweep_mod, "operating_point", flaky)
        c = _latch_with_source()
        sweep = dc_sweep(c, "vin", [0.0, 0.1, 0.2], on_error="skip")
        v = sweep.voltage("vdd")
        assert np.isnan(v[1])
        assert v[0] == pytest.approx(0.9, rel=1e-3)
        assert v[2] == pytest.approx(0.9, rel=1e-3)
        assert sweep.num_skipped == 1


class TestCharacterizeDrivers:
    def test_vvdd_sweep_records_skips(self, monkeypatch):
        from repro.characterize import vvdd as vvdd_mod

        real_op = vvdd_mod.operating_point
        calls = {"n": 0}

        def flaky(circuit, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:   # second nfsw point, normal mode
                raise ConvergenceError("injected failure")
            return real_op(circuit, **kwargs)

        monkeypatch.setattr(vvdd_mod, "operating_point", flaky)
        sweep = vvdd_mod.vvdd_vs_nfsw(nfsw_values=(6, 7, 8))
        assert len(sweep.skips) == 1
        assert np.isnan(sweep.vvdd_normal).sum() == 1
        # The target query still works off the converged points.
        assert sweep.smallest_nfsw_for(0.9) is not None

    def test_store_yield_counts_failed_samples(self, monkeypatch):
        from repro.characterize import variability as var_mod

        real_op = var_mod.operating_point
        calls = {"n": 0}

        def flaky(circuit, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:    # first sample fails outright
                raise ConvergenceError("injected failure")
            return real_op(circuit, **kwargs)

        monkeypatch.setattr(var_mod, "operating_point", flaky)
        result = var_mod.store_yield_analysis(n_samples=3, seed=11)
        assert result.n_failed == 1
        assert len(result.margins) == 3
        assert np.isnan(result.margins).sum() == 1
        # Failed corners count against yield, not toward it.
        assert result.margin_yield <= 2 / 3
        assert np.isfinite(result.percentile(50))

    def test_leakage_sweep_total_failure_raises(self, monkeypatch):
        """Every point skipped must raise, not report a NaN optimum."""
        from repro.characterize import leakage as leak_mod

        class _AllNanSweep:
            skips = []

            def measure(self, fn):
                return np.full(2, np.nan)

        monkeypatch.setattr(leak_mod, "dc_sweep",
                            lambda *a, **k: _AllNanSweep())
        with pytest.raises(ConvergenceError, match="every V_CTRL point"):
            leak_mod.leakage_vs_vctrl(v_ctrl_values=[0.0, 0.1])
