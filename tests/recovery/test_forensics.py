"""Failure-forensics tests: true KCL residuals, damping starvation,
structured timestep errors, and the render/dump/load round trip."""

import json
import math

import numpy as np
import pytest

from repro.analysis.mna import Context
from repro.analysis.solver import (
    NewtonOptions,
    kcl_residual,
    newton_solve,
    row_labels,
    worst_offenders,
)
from repro.analysis.transient import TransientOptions, transient
from repro.circuit import Circuit, Resistor, VoltageSource
from repro.circuit.netlist import Element
from repro.devices import FinFET, NFET_20NM_HP, PFET_20NM_HP
from repro.errors import ConvergenceError, TimestepError
from repro.recovery import dump_failure, load_failure, render_failure
from repro.recovery.ladder import RecoveryOptions


def _latch(vdd=0.9):
    c = Circuit("latch")
    c.add(VoltageSource("vdd", "vdd", "0", dc=vdd))
    c.add(FinFET("pu1", "q", "qb", "vdd", PFET_20NM_HP))
    c.add(FinFET("pd1", "q", "qb", "0", NFET_20NM_HP))
    c.add(FinFET("pu2", "qb", "q", "vdd", PFET_20NM_HP))
    c.add(FinFET("pd2", "qb", "q", "0", NFET_20NM_HP))
    return c


def _failing_error(max_iterations=4):
    c = _latch()
    c.compile()
    with pytest.raises(ConvergenceError) as info:
        newton_solve(c, Context(), np.zeros(c.size),
                     NewtonOptions(max_iterations=max_iterations))
    return c, info.value


class TestKclResidual:
    def test_residual_is_true_kcl_infnorm_at_final_iterate(self):
        """The satellite fix: ``err.residual`` must be ``‖A·x − b‖∞`` in
        amps at the returned iterate — not a voltage-delta norm."""
        c, err = _failing_error()
        assert err.x is not None
        x = np.asarray(err.x)
        r = kcl_residual(c, Context(), x)
        assert err.residual == pytest.approx(float(np.max(np.abs(r))),
                                             rel=1e-9)

    def test_residual_vector_matches_helper(self):
        c, err = _failing_error()
        r = kcl_residual(c, Context(), np.asarray(err.x))
        np.testing.assert_allclose(np.asarray(err.residual_vector), r,
                                   rtol=1e-9)

    def test_linear_circuit_solution_has_tiny_residual(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r1", "a", "b", 1e3))
        c.add(Resistor("r2", "b", "0", 1e3))
        c.compile()
        x = newton_solve(c, Context(), np.zeros(c.size))
        r = kcl_residual(c, Context(), x)
        assert float(np.max(np.abs(r))) < 1e-9

    def test_worst_offenders_named_and_sorted(self):
        c, err = _failing_error()
        assert err.worst_nodes
        names = [n for n, _ in err.worst_nodes]
        labels = set(row_labels(c))
        assert set(names) <= labels
        magnitudes = [abs(v) for _, v in err.worst_nodes]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_row_labels_cover_branches(self):
        c = _latch()
        labels = row_labels(c)
        assert "I(vdd)" in labels
        assert len(labels) == c.size

    def test_worst_offenders_count(self):
        c = _latch()
        c.compile()
        r = np.arange(float(c.size))
        assert len(worst_offenders(c, r, count=2)) == 2


class TestDampingStarvation:
    def test_damped_streak_surfaced(self):
        """With a tiny budget every step is damped: the error must carry
        the streak and flag the starvation."""
        _, err = _failing_error(max_iterations=2)
        assert err.damped_streak == 2
        assert "damping-starved" in str(err)

    def test_streak_reset_by_undamped_steps(self):
        c = Circuit()
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "0", 1e3))
        c.compile()
        # A linear solve converges undamped; nothing to report.
        x = newton_solve(c, Context(), np.zeros(c.size))
        assert x[c.index_of("a")] == pytest.approx(1.0)


class _NanAfter(Element):
    """Stamps a well-behaved conductance until ``t_bad``, NaN afterward."""

    is_linear = False

    def __init__(self, name, p, t_bad):
        super().__init__(name, (p, "0"))
        self.t_bad = t_bad

    def stamp(self, stamper, ctx):
        p, _ = self.node_index
        value = float("nan") if ctx.time > self.t_bad else 1e-6
        stamper.conductance(p, -1, value)


class TestTimestepError:
    def test_structured_context(self):
        c = Circuit("doomed")
        c.add(VoltageSource("v", "a", "0", dc=1.0))
        c.add(Resistor("r", "a", "b", 1e3))
        c.add(_NanAfter("bad", "b", t_bad=0.5e-9))
        with pytest.raises(TimestepError) as info:
            transient(c, 2e-9, options=TransientOptions(dt_initial=0.1e-9))
        err = info.value
        assert math.isfinite(err.time)
        assert err.time <= 0.5e-9 + 1e-12
        assert err.rejected_steps > 0
        assert err.dt_history
        assert isinstance(err.cause, ConvergenceError)
        payload = err.to_dict()
        assert payload["kind"] == "timestep_failure"
        assert payload["cause"]["kind"] == "convergence_failure"


class TestRenderDumpLoad:
    def test_convergence_round_trip(self, tmp_path):
        _, err = _failing_error()
        path = dump_failure(err, tmp_path / "failure.json")
        payload = load_failure(path)
        assert payload["kind"] == "convergence_failure"
        text = render_failure(payload)
        assert "KCL residual" in text
        assert "worst offenders" in text

    def test_ladder_trace_rendered(self):
        c = _latch()
        from repro.recovery import recover_dc
        options = RecoveryOptions(damping_factors=(), gmin_steps=(),
                                  pseudo_transient=False, source_ramp=False)
        with pytest.raises(ConvergenceError) as info:
            recover_dc(c, newton=NewtonOptions(max_iterations=2),
                       options=options)
        text = render_failure(info.value)
        assert "recovery ladder" in text
        assert "plain" in text

    def test_render_accepts_raw_dict(self):
        assert "unknown" not in render_failure(
            {"kind": "convergence_failure", "message": "boom"})

    def test_render_unknown_kind_dumps_json(self):
        payload = {"kind": "mystery", "detail": 42}
        assert json.loads(render_failure(payload)) == payload
