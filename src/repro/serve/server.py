"""The asyncio HTTP/JSON server: admission -> coalesce -> execute -> respond.

Dependency-free by construction (stdlib ``asyncio`` plus a minimal
handwritten HTTP/1.1 layer): one connection per request, JSON bodies,
``Connection: close`` everywhere except the chunked campaign stream.

The request path for ``POST /v1/<route>``:

1. **drain gate** — a draining server answers ``503 draining``.
2. **canonicalise** (:mod:`repro.serve.protocol`) — defaults filled,
   unknown fields rejected, content key computed.
3. **coalesce** (:mod:`repro.serve.coalesce`) — identical in-flight
   requests share one group; only a group *leader* passes admission.
4. **admission** (:mod:`repro.serve.admission`) — bounded per-class
   budget; full means ``429`` with ``Retry-After``.
5. **probe / breaker / execute** — cache first; breaker open means
   cache-only degraded mode; otherwise the group takes a per-class
   concurrency slot and runs on the executor with the request deadline
   as its watchdog (:mod:`repro.serve.backend`).
6. **respond** — every waiter gets exactly one terminal status from
   :data:`repro.serve.protocol.STATUS_HTTP`; a waiter whose own
   deadline fires answers ``504`` without cancelling the shared
   execution.

``GET /healthz`` stays alive through a drain; ``GET /readyz`` flips to
503 the moment a drain begins — strictly before the listening socket
closes — so a load balancer stops routing before the server stops
answering.  ``GET /metrics`` exposes every subsystem's counters.

Blocking executor work runs on dedicated daemon threads (bounded by
the per-class slots), so a hung inline task can never block process
exit after a hard stop.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Set, Tuple, Union

from ..errors import ReproError
from ..exec.campaign import (
    COMPLETED,
    QUARANTINED,
    SKIPPED,
    CampaignError,
)
from ..exec.executor import CampaignInterrupted, CampaignOptions, run_campaign
from .admission import AdmissionController
from .backend import ROUTE_FNS, ExecBackend
from .breaker import OPEN, CircuitBreaker
from .coalesce import Coalescer
from .protocol import (
    CAMPAIGN,
    INTERACTIVE,
    STATUS_HTTP,
    ProtocolError,
    ServeRequest,
    canonicalize,
)

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
    502: "Bad Gateway", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Seconds allowed for reading one request head/body off the socket.
_READ_TIMEOUT_S = 10.0


@dataclass
class ServeOptions:
    """Policy knobs for one server instance.

    Defaults are sized for a small trusted deployment; the chaos
    harness and the unit tests shrink the budgets to force every
    shedding / breaker / drain path deterministically.
    """

    host: str = "127.0.0.1"
    port: int = 0                       # 0 = ephemeral, see ReproServer.port
    extra_routes: Tuple[str, ...] = ()  # "demo" / "chaos" test routes
    workers: int = 0                    # executor processes per execution
    max_retries: int = 1
    warmup_grace: float = 30.0
    journal: Optional[Union[str, Path]] = None
    cache_dir: Optional[Union[str, Path]] = "auto"
    forensics_dir: Optional[Union[str, Path]] = None
    default_deadline_s: float = 30.0
    min_deadline_s: float = 0.05
    max_deadline_s: float = 300.0
    interactive_slots: int = 4
    campaign_slots: int = 1
    max_pending_interactive: int = 64
    max_pending_campaign: int = 4
    max_group_waiters: int = 64
    retry_after_s: float = 0.5
    breaker_window: int = 16
    breaker_min_samples: int = 4
    breaker_threshold: float = 0.5
    breaker_cooldown_s: float = 5.0
    drain_grace: float = 10.0
    drain_settle_s: float = 0.05    # readyz-503 window before socket close
    campaign_queue_s: float = 60.0
    memo_size: int = 512
    max_body_bytes: int = 1_000_000
    progress: Optional[Callable[[str], None]] = None


def _spawn_blocking(loop: asyncio.AbstractEventLoop,
                    fn: Callable, *args: Any) -> "asyncio.Future":
    """Run ``fn(*args)`` on a fresh daemon thread; await the result.

    Deliberately not a thread *pool*: concurrency is already bounded by
    the per-class slots, and daemon threads guarantee a hard stop is
    never blocked by a hung inline task (a non-daemon pool thread
    would pin the process in its atexit join).
    """
    future = loop.create_future()

    def _resolve(result: Any, exc: Optional[BaseException]) -> None:
        if future.cancelled():
            return
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)

    def _runner() -> None:
        try:
            result = fn(*args)
        except BaseException as err:  # lint: skip=RV405 — ferried across the thread boundary and re-raised at the await site
            result, exc = None, err
        else:
            exc = None
        try:
            loop.call_soon_threadsafe(_resolve, result, exc)
        except RuntimeError:
            pass    # loop already closed (hard stop); nobody is waiting

    threading.Thread(target=_runner, daemon=True,
                     name="repro-serve-exec").start()
    return future


class ReproServer:
    """One serving instance; all public methods run on its event loop."""

    def __init__(self, options: Optional[ServeOptions] = None):
        self.options = options or ServeOptions()
        opts = self.options
        routes = {"characterize": ROUTE_FNS["characterize"],
                  "nvff": ROUTE_FNS["nvff"]}
        for name in opts.extra_routes:
            if name not in ROUTE_FNS:
                raise ReproError(f"unknown extra route {name!r}")
            routes[name] = ROUTE_FNS[name]
        cache_dir = opts.cache_dir
        if cache_dir == "auto":
            from ..characterize.cache import default_cache_dir
            cache_dir = default_cache_dir()
        self.backend = ExecBackend(
            routes,
            workers=opts.workers,
            max_retries=opts.max_retries,
            warmup_grace=opts.warmup_grace,
            journal=opts.journal,
            cache_dir=cache_dir,
            forensics_dir=opts.forensics_dir,
            memo_size=opts.memo_size,
            stop_level=lambda: self._drain_level,
        )
        self.admission = AdmissionController(
            {INTERACTIVE: opts.max_pending_interactive,
             CAMPAIGN: opts.max_pending_campaign},
            retry_after_s=opts.retry_after_s,
        )
        self.coalescer = Coalescer(max_waiters=opts.max_group_waiters)
        self.breaker = CircuitBreaker(
            window=opts.breaker_window,
            min_samples=opts.breaker_min_samples,
            threshold=opts.breaker_threshold,
            cooldown_s=opts.breaker_cooldown_s,
        )
        self.port: Optional[int] = None
        self._drain_level = 0
        self._ready = False
        self._active = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped: Optional[asyncio.Event] = None
        self._drain_task: Optional["asyncio.Future"] = None
        self._slots: Dict[str, asyncio.Semaphore] = {}
        self._group_tasks: Set["asyncio.Task"] = set()
        self._started_at: Optional[float] = None
        self.responses: Dict[str, int] = {}
        self.requests_by_route: Dict[str, int] = {}

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._slots = {
            INTERACTIVE: asyncio.Semaphore(self.options.interactive_slots),
            CAMPAIGN: asyncio.Semaphore(self.options.campaign_slots),
        }
        self._server = await asyncio.start_server(
            self._handle, self.options.host, self.options.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = loop.time()
        self._ready = True
        self._progress(f"serving on http://{self.options.host}:{self.port} "
                       f"(routes: {', '.join(sorted(self.backend.routes))})")

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def run(self) -> None:
        await self.start()
        await self.wait_stopped()

    def begin_drain(self) -> int:
        """First call: graceful drain.  Second: hard stop.  Loop-only.

        Readiness flips *immediately* — before in-flight work finishes
        and strictly before the listening socket closes.
        """
        self._drain_level += 1
        self._ready = False
        if self._drain_task is None:
            self._drain_task = asyncio.ensure_future(self._drain())
            self._progress(
                f"drain requested: readyz now 503, in-flight work gets "
                f"{self.options.drain_grace:g}s (signal again to stop now)")
        return self._drain_level

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        # the settle window keeps the socket accepting (readyz already
        # answers 503) long enough for a load balancer probe to observe
        # not-ready *before* connections start being refused
        settle_deadline = loop.time() + self.options.drain_settle_s
        grace_deadline = loop.time() + max(self.options.drain_grace,
                                           self.options.drain_settle_s)
        while self._drain_level < 2 and loop.time() < grace_deadline:
            idle = (self._active == 0
                    and self.coalescer.inflight() == 0
                    and self.backend.snapshot()["inflight"] == 0)
            if idle and loop.time() >= settle_deadline:
                break
            await asyncio.sleep(0.02)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._progress("drained: socket closed, journal flushed")
        self._stopped.set()

    def _progress(self, message: str) -> None:
        if self.options.progress is not None:
            try:
                self.options.progress(message)
            except Exception:  # lint: skip=RV405 — a broken progress sink must not break serving
                pass

    # -- connection handling --------------------------------------------

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await asyncio.wait_for(reader.readline(), _READ_TIMEOUT_S)
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise ProtocolError("malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            hline = await asyncio.wait_for(reader.readline(),
                                           _READ_TIMEOUT_S)
            if hline in (b"\r\n", b"\n", b""):
                break
            name, _, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError as err:
            raise ProtocolError(f"bad Content-Length: {err}") from err
        if length > self.options.max_body_bytes:
            raise ProtocolError(
                f"body of {length} bytes exceeds the "
                f"{self.options.max_body_bytes}-byte limit")
        body = b""
        if length > 0:
            body = await asyncio.wait_for(reader.readexactly(length),
                                          _READ_TIMEOUT_S)
        return method, target, headers, body

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._active += 1
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, target, _headers, raw = parsed
            await self._dispatch(method, target, raw, writer)
        except ProtocolError as err:
            await self._try_respond(writer, "bad-request",
                                    {"detail": str(err)})
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, ConnectionError, ValueError):
            pass    # client gone or unparseable stream: nothing to answer
        except Exception as err:  # lint: skip=RV405 — last-resort handler: one broken connection must not kill the accept loop; detail goes to the client
            await self._try_respond(writer, "error", {"detail": repr(err)})
        finally:
            self._active -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, method: str, target: str, raw: bytes,
                        writer: asyncio.StreamWriter) -> None:
        if method == "GET":
            if target == "/healthz":
                body = {"alive": True, "draining": self._drain_level > 0}
                return await self._respond(writer, "ok", body)
            if target == "/readyz":
                if self._ready:
                    return await self._respond(writer, "ok",
                                               {"ready": True})
                reason = ("draining" if self._drain_level > 0
                          else "starting")
                return await self._respond(writer, "unavailable",
                                           {"ready": False,
                                            "reason": reason})
            if target == "/metrics":
                return await self._respond(writer, "ok", self.metrics())
            return await self._respond(writer, "not-found",
                                       {"target": target})
        if method != "POST":
            return await self._respond(writer, "method-not-allowed",
                                       {"method": method})
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ProtocolError(f"body is not valid JSON: {err}") from err
        if target == "/v1/campaign":
            return await self._handle_campaign(body, writer)
        if target.startswith("/v1/"):
            route = target[len("/v1/"):]
            if route in self.backend.routes:
                return await self._handle_task(route, body, writer)
        return await self._respond(writer, "not-found", {"target": target})

    # -- responses -------------------------------------------------------

    async def _respond(self, writer: asyncio.StreamWriter, status: str,
                       body: Dict[str, Any],
                       retry_after_s: Optional[float] = None) -> None:
        self.responses[status] = self.responses.get(status, 0) + 1
        code = STATUS_HTTP.get(status, 500)
        payload = json.dumps({"status": status, **body}).encode()
        lines = [f"HTTP/1.1 {code} {_REASONS.get(code, 'Unknown')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(payload)}",
                 "Connection: close"]
        if retry_after_s is not None:
            lines.append(f"Retry-After: {max(1, math.ceil(retry_after_s))}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
        await writer.drain()

    async def _try_respond(self, writer: asyncio.StreamWriter, status: str,
                           body: Dict[str, Any]) -> None:
        try:
            await self._respond(writer, status, body)
        except (ConnectionError, OSError):
            pass    # the client hung up first; the outcome still counted

    # -- interactive task requests --------------------------------------

    async def _handle_task(self, route: str, body: Any,
                           writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        self.requests_by_route[route] = (
            self.requests_by_route.get(route, 0) + 1)
        if self._drain_level > 0:
            return await self._respond(
                writer, "draining", {"detail": "server is draining"})
        try:
            req = canonicalize(
                route, body,
                default_deadline_s=self.options.default_deadline_s,
                min_deadline_s=self.options.min_deadline_s,
                max_deadline_s=self.options.max_deadline_s)
        except ProtocolError as err:
            return await self._respond(writer, "bad-request",
                                       {"detail": str(err)})
        deadline_at = loop.time() + req.deadline_s

        # join/admit/schedule happen in this same loop tick: an aborted
        # group can never have collected waiters
        group, created = self.coalescer.join(req.key, loop)
        if group is None:
            return await self._respond(
                writer, "shed",
                {"detail": "coalesce group is at its waiter cap",
                 "key": req.key},
                retry_after_s=self.admission.retry_after_s(req.klass))
        if created:
            reason = self.admission.try_admit(req.klass)
            if reason is not None:
                self.coalescer.abort(req.key)
                return await self._respond(
                    writer, "shed", {"detail": reason, "key": req.key},
                    retry_after_s=self.admission.retry_after_s(req.klass))
            runner = loop.create_task(
                self._run_group(group, req, deadline_at))
            self._group_tasks.add(runner)
            runner.add_done_callback(self._group_tasks.discard)

        remaining = deadline_at - loop.time()
        try:
            outcome = await asyncio.wait_for(
                asyncio.shield(group.future), timeout=max(remaining, 0.001))
        except asyncio.TimeoutError:
            # this waiter's deadline; the shared execution (shielded)
            # continues for any waiter with more patience
            return await self._respond(
                writer, "deadline",
                {"key": req.key, "deadline_s": req.deadline_s})
        payload = dict(outcome)
        status = payload.pop("status")
        payload["key"] = req.key
        payload["coalesced"] = not created
        retry_after = (self.admission.retry_after_s(req.klass)
                       if status in ("shed", "unavailable") else None)
        await self._respond(writer, status, payload,
                            retry_after_s=retry_after)

    async def _run_group(self, group, req: ServeRequest,
                         deadline_at: float) -> None:
        """Leader path: resolve the group with exactly one outcome."""
        outcome: Dict[str, Any] = {"status": "error",
                                   "detail": "group left unresolved"}
        try:
            hit = self.backend.probe(req)
            if self.breaker.state == OPEN:
                outcome = self._degraded_outcome(hit)
            elif hit is not None:
                outcome = {"status": "ok", "result": hit.payload,
                           "served_by": hit.source, "age_s": hit.age_s,
                           "degraded": False}
            else:
                outcome = await self._execute_group(req, deadline_at)
        except Exception as err:  # lint: skip=RV405 — the group future must resolve no matter what; detail rides the error response
            outcome = {"status": "error", "detail": repr(err)}
        finally:
            self.coalescer.finish(req.key, outcome)
            self.admission.release(req.klass)

    def _degraded_outcome(self, hit) -> Dict[str, Any]:
        if hit is not None:
            return {"status": "degraded", "degraded": True,
                    "result": hit.payload, "served_by": hit.source,
                    "age_s": hit.age_s,
                    "detail": "circuit breaker open: cache-only mode"}
        return {"status": "unavailable",
                "detail": "circuit breaker open and no cached result",
                "breaker": self.breaker.snapshot()}

    async def _execute_group(self, req: ServeRequest,
                             deadline_at: float) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        sem = self._slots[req.klass]
        remaining = deadline_at - loop.time()
        try:
            await asyncio.wait_for(sem.acquire(),
                                   timeout=max(remaining, 0.001))
        except asyncio.TimeoutError:
            return {"status": "deadline", "stage": "queued",
                    "deadline_s": req.deadline_s}
        try:
            if not self.breaker.allow_execution():
                # opened (or the half-open probe is taken) while queued
                return self._degraded_outcome(self.backend.probe(req))
            remaining = max(deadline_at - loop.time(), 0.05)
            try:
                summary = await _spawn_blocking(
                    loop, self.backend.execute, req, remaining)
            except Exception:
                self.breaker.record(False)
                raise
            if summary["status"] in (COMPLETED, SKIPPED):
                # a skip is a healthy backend saying "bad input":
                # deterministic analysis failures must not trip the breaker
                self.breaker.record(True)
            elif summary["status"] in (QUARANTINED, "error"):
                self.breaker.record(False)
            return self._wire_outcome(summary)
        finally:
            sem.release()

    @staticmethod
    def _wire_outcome(summary: Dict[str, Any]) -> Dict[str, Any]:
        status = summary["status"]
        common = {k: summary[k] for k in ("attempts", "elapsed_s")
                  if k in summary}
        if status == COMPLETED:
            return {"status": "ok", "result": summary.get("result"),
                    "served_by": "backend", "degraded": False, **common}
        if status == SKIPPED:
            return {"status": "skipped", "skip": summary.get("skip"),
                    **common}
        if status == QUARANTINED:
            return {"status": "failed",
                    "failures": summary.get("failures"), **common}
        if status == "interrupted":
            return {"status": "draining",
                    "detail": "execution interrupted by server stop"}
        return {"status": "error",
                "detail": summary.get("detail", "backend error")}

    # -- campaign submission --------------------------------------------

    async def _handle_campaign(self, body: Any,
                               writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        self.requests_by_route["campaign"] = (
            self.requests_by_route.get("campaign", 0) + 1)
        if self._drain_level > 0:
            return await self._respond(
                writer, "draining", {"detail": "server is draining"})
        if not isinstance(body, dict) or not isinstance(
                body.get("name"), str):
            return await self._respond(
                writer, "bad-request",
                {"detail": "campaign submission needs a 'name' string"})
        name = body["name"]
        options_dict = body.get("options", {})
        if not isinstance(options_dict, dict):
            return await self._respond(
                writer, "bad-request",
                {"detail": "'options' must be a JSON object"})
        stream = bool(body.get("stream", True))
        resume = bool(body.get("resume", False))
        workers = int(body.get("workers", self.options.workers))
        task_timeout = body.get("task_timeout")

        reason = self.admission.try_admit(CAMPAIGN)
        if reason is not None:
            return await self._respond(
                writer, "shed", {"detail": reason},
                retry_after_s=self.admission.retry_after_s(CAMPAIGN))
        acquired = False
        try:
            from ..exec.registry import build_campaign
            try:
                campaign = build_campaign(name, **options_dict)
            except (CampaignError, TypeError, ValueError) as err:
                return await self._respond(writer, "bad-request",
                                           {"detail": str(err)})
            sem = self._slots[CAMPAIGN]
            try:
                await asyncio.wait_for(
                    sem.acquire(), timeout=self.options.campaign_queue_s)
            except asyncio.TimeoutError:
                return await self._respond(
                    writer, "shed",
                    {"detail": "no campaign slot within "
                               f"{self.options.campaign_queue_s:g}s"},
                    retry_after_s=self.admission.retry_after_s(CAMPAIGN))
            acquired = True
            if self._drain_level > 0:
                return await self._respond(
                    writer, "draining", {"detail": "server is draining"})

            queue: "asyncio.Queue" = asyncio.Queue()

            def _tap(outcome) -> None:
                # called on the campaign thread; hop onto the loop
                try:
                    loop.call_soon_threadsafe(
                        queue.put_nowait,
                        {"kind": "task_end", **outcome.to_dict()})
                except RuntimeError:
                    pass    # loop closed mid-hard-stop

            copts = CampaignOptions(
                workers=workers,
                task_timeout=(None if task_timeout is None
                              else float(task_timeout)),
                max_retries=int(body.get("max_retries",
                                         self.options.max_retries)),
                forensics_dir=self.options.forensics_dir,
                resume=resume,
                on_outcome=_tap if stream else None,
                # campaigns honour the *graceful* drain level too: a
                # SIGTERM stops dispatch and journals an interrupt record
                stop_requested=lambda: self._drain_level,
            )
            fut = _spawn_blocking(loop, self._run_campaign_blocking,
                                  campaign, copts)
            if not stream:
                kind, summary = await fut
                status = "error" if kind == "error" else "ok"
                return await self._respond(
                    writer, status,
                    {"campaign": name, "outcome": kind, "summary": summary})
            await self._stream_campaign(writer, name, campaign, queue, fut)
        finally:
            if acquired:
                self._slots[CAMPAIGN].release()
            self.admission.release(CAMPAIGN)

    def _run_campaign_blocking(self, campaign, copts):
        try:
            result = run_campaign(campaign, journal=self.backend.journal,
                                  options=copts)
        except CampaignInterrupted as err:
            partial = err.result.to_dict()
            partial["n_replayed"] = err.result.n_replayed
            return "interrupted", partial
        except Exception as err:  # lint: skip=RV405 — the stream must still emit its terminal record; detail rides it
            return "error", {"detail": repr(err)}
        summary = result.to_dict()
        summary["n_replayed"] = result.n_replayed
        return "completed", summary

    async def _stream_campaign(self, writer, name, campaign, queue,
                               fut) -> None:
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/jsonl\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode())

        def chunk(record: Dict[str, Any]) -> bytes:
            data = (json.dumps(record, sort_keys=True) + "\n").encode()
            return f"{len(data):X}\r\n".encode() + data + b"\r\n"

        writer.write(chunk({"kind": "stream_begin", "campaign": name,
                            "key": campaign.key,
                            "n_tasks": len(campaign)}))
        await writer.drain()
        self.responses["ok"] = self.responses.get("ok", 0) + 1

        sentinel = object()
        fut.add_done_callback(lambda _f: queue.put_nowait(sentinel))
        while True:
            item = await queue.get()
            if item is sentinel:
                break
            writer.write(chunk(item))
            await writer.drain()
        kind, summary = await fut
        # drain any records that raced the sentinel
        while not queue.empty():
            item = queue.get_nowait()
            if item is not sentinel:
                writer.write(chunk(item))
        writer.write(chunk({"kind": "stream_end", "status": kind,
                            "summary": summary}))
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- observability ---------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        from ..characterize.cache import STATS as cache_stats

        loop_time = None
        if self._started_at is not None:
            try:
                loop_time = (asyncio.get_running_loop().time()
                             - self._started_at)
            except RuntimeError:
                loop_time = None
        return {
            "server": {
                "ready": self._ready,
                "draining": self._drain_level > 0,
                "drain_level": self._drain_level,
                "active_connections": self._active,
                "uptime_s": loop_time,
                "routes": sorted(self.backend.routes),
            },
            "requests": dict(self.requests_by_route),
            "responses": dict(self.responses),
            "admission": self.admission.snapshot(),
            "coalesce": self.coalescer.snapshot(),
            "breaker": self.breaker.snapshot(),
            "backend": self.backend.snapshot(),
            "characterize_cache": cache_stats.snapshot(),
        }


class ServerHandle:
    """Run a :class:`ReproServer` on a dedicated event-loop thread.

    The in-process harness used by tests, the chaos mode and the
    benchmark: ``with ServerHandle(options) as handle`` yields a
    running server whose loop lives on a daemon thread; ``stop()``
    (or leaving the block) hard-drains it and joins the thread.
    """

    def __init__(self, options: Optional[ServeOptions] = None):
        self.options = options or ServeOptions()
        self.server: Optional[ReproServer] = None
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ServerHandle":
        self._thread = threading.Thread(target=self._main, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ReproError("server failed to start within 30s")
        if self.error is not None:
            raise ReproError(f"server failed to start: {self.error!r}")
        return self

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as err:  # lint: skip=RV405 — surfaced to the starting thread via self.error
            self.error = err
            self._ready.set()

    async def _amain(self) -> None:
        self.server = ReproServer(self.options)
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self.port = self.server.port
        self._ready.set()
        await self.server.wait_stopped()

    def _call_on_loop(self, fn: Callable[[], Any]) -> None:
        if self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(fn)
        except RuntimeError:
            pass    # loop already closed

    def begin_drain(self) -> None:
        """Request a graceful drain (one SIGTERM equivalent)."""
        self._call_on_loop(self.server.begin_drain)

    def stop(self, hard: bool = True) -> None:
        """Drain and stop; ``hard=True`` skips the grace period."""
        self.begin_drain()
        if hard:
            self.begin_drain()

    def join(self, timeout: float = 30.0) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop(hard=True)
        self.join()
