"""Single-flight request coalescing.

Concurrent requests with the same canonical key share one execution:
the first becomes the *leader* (it is admitted, scheduled and runs the
group to a terminal outcome), later arrivals *attach* as waiters on the
same future.  Groups are bounded — once ``max_waiters`` requesters are
attached, further identical requests are shed rather than growing an
unbounded waiter list.

All operations run on the server's event loop; the leader's join and
its admission check happen in the same loop tick, so an aborted group
can never have picked up waiters in between.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


@dataclass
class CoalesceGroup:
    """One in-flight execution and everyone waiting on it."""

    key: str
    future: "asyncio.Future[Dict[str, Any]]"
    waiters: int = 1

    def resolve(self, outcome: Dict[str, Any]) -> None:
        if not self.future.done():
            self.future.set_result(outcome)


@dataclass
class Coalescer:
    """Key -> in-flight group map with bounded attachment."""

    max_waiters: int = 64
    _groups: Dict[str, CoalesceGroup] = field(default_factory=dict)
    started: int = 0
    attached: int = 0
    rejected: int = 0
    peak_waiters: int = 0

    def join(self, key: str,
             loop: asyncio.AbstractEventLoop
             ) -> Tuple[Optional[CoalesceGroup], bool]:
        """Join the group for ``key``; returns ``(group, created)``.

        ``(None, False)`` means the existing group is at its waiter cap
        and this request must be shed (bounded memory beats fairness).
        """
        group = self._groups.get(key)
        if group is None:
            group = CoalesceGroup(key=key, future=loop.create_future())
            self._groups[key] = group
            self.started += 1
            self.peak_waiters = max(self.peak_waiters, 1)
            return group, True
        if group.waiters >= self.max_waiters:
            self.rejected += 1
            return None, False
        group.waiters += 1
        self.attached += 1
        self.peak_waiters = max(self.peak_waiters, group.waiters)
        return group, False

    def abort(self, key: str) -> None:
        """Drop a just-created group whose leader was not admitted."""
        self._groups.pop(key, None)

    def finish(self, key: str, outcome: Dict[str, Any]) -> None:
        """Resolve and retire the group; every waiter sees ``outcome``."""
        group = self._groups.pop(key, None)
        if group is not None:
            group.resolve(outcome)

    def inflight(self) -> int:
        return len(self._groups)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "inflight": len(self._groups),
            "started": self.started,
            "attached": self.attached,
            "rejected": self.rejected,
            "peak_waiters": self.peak_waiters,
            "max_waiters": self.max_waiters,
        }
