"""Characterisation-as-a-service: the hardened async serving layer.

``repro.serve`` fronts :func:`repro.characterize.runner.characterize_cell`,
:func:`repro.characterize.ff_runner.characterize_nvff` and campaign
submission with a dependency-free asyncio HTTP/JSON server.  The
robustness contract (see ``docs/SERVICE.md``):

* **Single-flight coalescing** — requests are canonicalised and
  content-hashed with the campaign ``task_id`` rules; concurrent
  identical requests attach to one in-flight execution.
* **Admission control** — bounded per-class (interactive vs. campaign)
  admission with explicit ``429 + Retry-After`` load shedding; memory
  is bounded everywhere (queues, coalesce groups, result memo).
* **Deadlines end-to-end** — each request's deadline becomes the
  executor watchdog timeout for its task, and the waiter's own timer;
  one of them always fires, so every request gets a terminal answer.
* **Degraded mode** — a circuit breaker over backend quarantines trips
  the server to cache-only serving: stale-but-stamped results carry
  ``degraded: true``; novel requests get ``503`` until recovery.
* **Graceful drain** — SIGTERM flips ``/readyz``, stops admission,
  drains in-flight work through the executor's two-stage drain and
  flushes the journal before the socket closes.
"""

from .admission import AdmissionController
from .backend import ExecBackend
from .breaker import CircuitBreaker
from .coalesce import Coalescer
from .protocol import (
    CAMPAIGN,
    INTERACTIVE,
    ProtocolError,
    ServeRequest,
    canonicalize,
)
from .server import ReproServer, ServeOptions, ServerHandle
from .client import ServeClient

__all__ = [
    "AdmissionController",
    "CAMPAIGN",
    "CircuitBreaker",
    "Coalescer",
    "ExecBackend",
    "INTERACTIVE",
    "ProtocolError",
    "ReproServer",
    "ServeClient",
    "ServeOptions",
    "ServeRequest",
    "ServerHandle",
    "canonicalize",
]
