"""Minimal blocking client for the serve API (stdlib ``http.client``).

Used by the chaos harness, the serve benchmark and the tests; it is
also the reference for how to talk to the server from anywhere else.
One connection per call (the server closes after each response), JSON
in / JSON out, and a line iterator over the chunked campaign stream.

``ServeResponse`` keeps the HTTP code and the decoded body together so
callers can assert on either without re-parsing.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from ..errors import ReproError


@dataclass
class ServeResponse:
    """One terminal HTTP response from the server."""

    code: int
    body: Dict[str, Any]
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def status(self) -> str:
        return self.body.get("status", "")

    @property
    def ok(self) -> bool:
        return self.code == 200

    def retry_after_s(self) -> Optional[float]:
        value = self.headers.get("retry-after")
        return None if value is None else float(value)


class ServeClient:
    """Blocking JSON client bound to one server address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # -- plumbing --------------------------------------------------------

    def _request(self, method: str, target: str,
                 body: Optional[Dict[str, Any]] = None) -> ServeResponse:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, target, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as err:
                raise ReproError(
                    f"server sent non-JSON body for {target}: {err}") from err
            return ServeResponse(
                code=resp.status, body=decoded,
                headers={k.lower(): v for k, v in resp.getheaders()})
        finally:
            conn.close()

    # -- health / observability -----------------------------------------

    def healthz(self) -> ServeResponse:
        return self._request("GET", "/healthz")

    def readyz(self) -> ServeResponse:
        return self._request("GET", "/readyz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics").body

    # -- task routes -----------------------------------------------------

    def task(self, route: str,
             body: Optional[Dict[str, Any]] = None) -> ServeResponse:
        """POST one request to ``/v1/<route>`` and return the response."""
        return self._request("POST", f"/v1/{route}", body or {})

    def characterize(self, **body: Any) -> ServeResponse:
        return self.task("characterize", body)

    def nvff(self, **body: Any) -> ServeResponse:
        return self.task("nvff", body)

    # -- campaigns -------------------------------------------------------

    def campaign(self, name: str, *, options: Optional[Dict[str, Any]] = None,
                 **extra: Any) -> ServeResponse:
        """Submit a campaign without streaming; blocks until terminal."""
        body = {"name": name, "options": options or {}, "stream": False}
        body.update(extra)
        return self._request("POST", "/v1/campaign", body)

    def campaign_stream(self, name: str, *,
                        options: Optional[Dict[str, Any]] = None,
                        **extra: Any) -> Iterator[Dict[str, Any]]:
        """Submit a campaign and yield its JSONL progress records.

        Yields ``stream_begin``, one ``task_end`` per terminal task,
        then ``stream_end`` (or a plain error/shed response body if the
        submission never got a stream).  The connection closes when the
        iterator is exhausted.
        """
        body = {"name": name, "options": options or {}, "stream": True}
        body.update(extra)
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("POST", "/v1/campaign", body=json.dumps(body),
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            if resp.getheader("Transfer-Encoding", "").lower() != "chunked":
                raw = resp.read()
                yield json.loads(raw.decode("utf-8")) if raw else {}
                return
            # http.client de-chunks transparently; records are lines
            while True:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()
