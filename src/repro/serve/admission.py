"""Admission control: bounded per-class load with explicit shedding.

The server admits a request *group* (one coalesced execution) into a
per-class budget before scheduling it; when a class is at its limit the
request is shed with ``429`` and a ``Retry-After`` hint instead of
queueing unboundedly.  Interactive and campaign traffic have separate
budgets so a long campaign can never starve interactive
characterisation queries of admission — the only shared resource left
is the executor itself, which the per-class concurrency slots in the
server partition the same way.

Single-threaded by design: every call happens on the server's event
loop, so plain integers are race-free.
"""

from __future__ import annotations

from typing import Dict, Optional

from .protocol import REQUEST_CLASSES


class AdmissionController:
    """Bounded admitted-group accounting per request class."""

    def __init__(self, limits: Dict[str, int],
                 retry_after_s: float = 1.0):
        for klass in limits:
            if klass not in REQUEST_CLASSES:
                raise ValueError(f"unknown request class {klass!r}")
        self._limits = {k: int(v) for k, v in limits.items()}
        self._pending = {k: 0 for k in self._limits}
        self._retry_after_s = float(retry_after_s)
        self.admitted = {k: 0 for k in self._limits}
        self.shed = {k: 0 for k in self._limits}
        self.peak = {k: 0 for k in self._limits}

    def try_admit(self, klass: str) -> Optional[str]:
        """Admit one group, or return the shed reason.

        The caller owns exactly one :meth:`release` per successful
        admission (the serve layer does it in the group's ``finally``).
        """
        limit = self._limits.get(klass)
        if limit is None:
            return f"unknown request class {klass!r}"
        if self._pending[klass] >= limit:
            self.shed[klass] += 1
            return (f"{klass} admission budget full "
                    f"({self._pending[klass]}/{limit} in flight)")
        self._pending[klass] += 1
        self.admitted[klass] += 1
        self.peak[klass] = max(self.peak[klass], self._pending[klass])
        return None

    def release(self, klass: str) -> None:
        if self._pending.get(klass, 0) > 0:
            self._pending[klass] -= 1

    def pending(self, klass: Optional[str] = None) -> int:
        if klass is not None:
            return self._pending.get(klass, 0)
        return sum(self._pending.values())

    def retry_after_s(self, klass: str) -> float:
        """Retry-After hint: the base backoff, scaled by saturation."""
        limit = max(self._limits.get(klass, 1), 1)
        depth = self._pending.get(klass, 0)
        return self._retry_after_s * (1.0 + depth / limit)

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        return {
            klass: {
                "limit": self._limits[klass],
                "pending": self._pending[klass],
                "admitted": self.admitted[klass],
                "shed": self.shed[klass],
                "peak": self.peak[klass],
            }
            for klass in self._limits
        }
