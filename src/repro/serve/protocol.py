"""Wire protocol: request canonicalisation and response mapping.

Coalescing only works if equivalent requests hash identically, so the
server never hashes raw bodies.  Every characterisation request is
rebuilt through the same parameter dataclasses the task functions use
(:class:`~repro.pg.modes.OperatingConditions`,
:class:`~repro.cells.PowerDomain`, device cards), which fills defaults
and rejects unknown fields; the fully-expanded params dict is then
content-hashed with the campaign ``stable_hash`` rules (float-repr
normalisation included).  ``{"cond": {}}`` and an explicit
spelled-out default condition therefore coalesce onto one execution.

The response side is a closed status vocabulary — every request
terminates in exactly one of :data:`STATUS_HTTP`'s statuses (the serve
N-in/N-out invariant, chaos-tested in ``repro chaos --serve``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional

from ..errors import ReproError
from ..exec.campaign import stable_hash

#: Request classes for admission priorities.
INTERACTIVE = "interactive"
CAMPAIGN = "campaign"
REQUEST_CLASSES = (INTERACTIVE, CAMPAIGN)

#: Terminal response statuses and their HTTP codes.  ``ok`` and
#: ``degraded`` both carry a result payload (``degraded`` stamps it as
#: cache-only, served while the breaker is open); ``skipped`` is a
#: deterministic analysis failure (would fail identically on retry);
#: ``failed`` is a quarantined task (crash / hang / poison after the
#: retry budget); the rest are serving-layer outcomes.
STATUS_HTTP: Dict[str, int] = {
    "ok": 200,
    "degraded": 200,
    "bad-request": 400,
    "skipped": 422,
    "shed": 429,
    "error": 500,
    "failed": 502,
    "draining": 503,
    "unavailable": 503,
    "deadline": 504,
    "not-found": 404,
    "method-not-allowed": 405,
}

#: Cell kinds accepted by the characterize route.
CELL_KINDS = ("nv", "6t")

#: Fields every request may carry in addition to route-specific ones.
_COMMON_FIELDS = frozenset({"deadline_s", "class"})

_ROUTE_FIELDS: Dict[str, frozenset] = {
    "characterize": frozenset({"kind", "cond", "domain", "nfet", "pfet",
                               "mtj"}),
    "nvff": frozenset({"cond", "nfet", "pfet", "mtj"}),
    # passthrough routes (demo / chaos) take one opaque params object
    "params": frozenset({"params"}),
}


class ProtocolError(ReproError):
    """The request body is malformed; maps to ``400 bad-request``."""


@dataclass(frozen=True)
class ServeRequest:
    """One canonicalised request.

    ``key`` is the content hash of ``(route, params)`` — the coalescing
    identity, the backend task id, and the cache-memo key, all one
    value.  ``deadline_s`` and ``klass`` are execution policy and stay
    out of the hash (two clients asking the same question with
    different patience still share one execution).
    """

    route: str
    params: Dict[str, Any]
    key: str
    klass: str = INTERACTIVE
    deadline_s: float = 30.0


def _expand(factory, payload: Any, default, name: str) -> Optional[dict]:
    """Rebuild a parameter dataclass and return its full ``asdict``.

    Filling every default is what makes canonicalisation total: a body
    that spells out the default voltage and one that omits it produce
    byte-identical params.
    """
    if payload is None:
        return None if default is None else asdict(default)
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"{name!r} must be a JSON object")
    try:
        return asdict(factory(**payload))
    except (TypeError, ReproError) as err:
        raise ProtocolError(f"bad {name!r}: {err}") from err


def _characterize_params(body: Mapping[str, Any]) -> Dict[str, Any]:
    from ..cells import PowerDomain
    from ..devices.mtj import MTJ_TABLE1, MTJParams
    from ..devices.finfet import FinFETParams
    from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
    from ..pg.modes import OperatingConditions

    kind = body.get("kind", "nv")
    if kind not in CELL_KINDS:
        raise ProtocolError(f"kind must be one of {CELL_KINDS}, "
                            f"got {kind!r}")
    return {
        "kind": kind,
        "cond": _expand(OperatingConditions, body.get("cond"),
                        OperatingConditions(), "cond"),
        "domain": _expand(PowerDomain, body.get("domain"),
                          PowerDomain(), "domain"),
        "nfet": _expand(FinFETParams, body.get("nfet"),
                        NFET_20NM_HP, "nfet"),
        "pfet": _expand(FinFETParams, body.get("pfet"),
                        PFET_20NM_HP, "pfet"),
        "mtj": _expand(MTJParams, body.get("mtj"), MTJ_TABLE1, "mtj"),
    }


def _nvff_params(body: Mapping[str, Any]) -> Dict[str, Any]:
    from ..devices.mtj import MTJ_TABLE1, MTJParams
    from ..devices.finfet import FinFETParams
    from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
    from ..pg.modes import OperatingConditions

    return {
        "cond": _expand(OperatingConditions, body.get("cond"),
                        OperatingConditions(), "cond"),
        "nfet": _expand(FinFETParams, body.get("nfet"),
                        NFET_20NM_HP, "nfet"),
        "pfet": _expand(FinFETParams, body.get("pfet"),
                        PFET_20NM_HP, "pfet"),
        "mtj": _expand(MTJParams, body.get("mtj"), MTJ_TABLE1, "mtj"),
    }


def _passthrough_params(body: Mapping[str, Any]) -> Dict[str, Any]:
    params = body.get("params", {})
    if not isinstance(params, Mapping):
        raise ProtocolError("'params' must be a JSON object")
    try:
        json.dumps(params)
    except (TypeError, ValueError) as err:
        raise ProtocolError(f"'params' is not JSON data: {err}") from err
    return dict(params)


def canonicalize(route: str, body: Mapping[str, Any], *,
                 default_deadline_s: float = 30.0,
                 min_deadline_s: float = 0.05,
                 max_deadline_s: float = 300.0) -> ServeRequest:
    """Validate and canonicalise one request body.

    Raises :class:`ProtocolError` on unknown fields, malformed
    parameter objects or an unusable deadline; the deadline is clamped
    into ``[min_deadline_s, max_deadline_s]`` rather than rejected.
    """
    if not isinstance(body, Mapping):
        raise ProtocolError("request body must be a JSON object")
    allowed = _ROUTE_FIELDS.get(route, _ROUTE_FIELDS["params"])
    unknown = sorted(set(body) - set(allowed) - _COMMON_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown request field(s) {unknown}; "
            f"{route!r} accepts {sorted(allowed | _COMMON_FIELDS)}")

    klass = body.get("class", INTERACTIVE)
    if klass not in REQUEST_CLASSES:
        raise ProtocolError(f"class must be one of {REQUEST_CLASSES}, "
                            f"got {klass!r}")
    try:
        deadline_s = float(body.get("deadline_s", default_deadline_s))
    except (TypeError, ValueError) as err:
        raise ProtocolError(f"bad deadline_s: {err}") from err
    deadline_s = min(max(deadline_s, min_deadline_s), max_deadline_s)

    if route == "characterize":
        params = _characterize_params(body)
    elif route == "nvff":
        params = _nvff_params(body)
    else:
        params = _passthrough_params(body)

    key = stable_hash({"route": route, "params": params}, length=24)
    return ServeRequest(route=route, params=params, key=key,
                        klass=klass, deadline_s=deadline_s)
