"""Chaos harness for the serving layer (``repro chaos --serve``).

Boots a real server in-process, then attacks it with concurrent
clients and injected backend faults, phase by phase:

* **coalesce** — K identical concurrent requests; asserts exactly one
  backend execution and K identical answers.
* **storm** — a mixed wave of duplicate, novel and malformed requests;
  asserts the N-in/N-out invariant (every request gets exactly one
  terminal response from the closed status vocabulary) and that no
  canonical key executes more than once.
* **shed** — floods past the admission budget; asserts explicit
  ``429`` shedding with ``Retry-After`` instead of queue growth.
* **breaker** — poisons the backend until the circuit breaker trips;
  asserts cache-only degraded serving (``degraded: true``), ``503``
  for novel work, and closed-loop recovery after the cooldown.
* **drain** — graceful drain under load; asserts ``/readyz`` flips
  while in-flight work completes, new work is refused, the socket then
  closes, and the journal replays cleanly afterwards.

Faults are injected through the ``chaos`` route's ``task_error`` kind
(an in-task raise), which is safe at every ``workers`` setting — the
process-killing fault kinds would take the in-process server down when
``workers=0`` runs tasks inline.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from .client import ServeClient, ServeResponse
from .protocol import STATUS_HTTP
from .server import ServeOptions, ServerHandle


def _progress(sink: Optional[Callable[[str], None]], message: str) -> None:
    if sink is not None:
        sink(message)


def _settle(client: ServeClient, timeout_s: float = 15.0) -> None:
    """Wait until the server has no admitted groups or running tasks.

    Phases must not leak load into each other: a deadline-abandoned
    leader can still be executing when its waiters are long gone.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        m = client.metrics()
        if (m["admission"]["interactive"]["pending"] == 0
                and m["backend"]["inflight"] == 0
                and m["coalesce"]["inflight"] == 0):
            return
        time.sleep(0.05)


def _valid(resp: ServeResponse) -> bool:
    """A terminal response: known status, matching HTTP code."""
    return (resp.status in STATUS_HTTP
            and STATUS_HTTP[resp.status] == resp.code)


def chaos_serve(scratch: str, n_clients: int = 24, n_unique: int = 6,
                seed: int = 2015, workers: int = 0,
                progress: Optional[Callable[[str], None]] = None,
                ) -> Dict[str, Any]:
    """Run the full serve chaos suite; returns a JSON-able report."""
    import random

    rng = random.Random(seed)
    scratch_dir = Path(scratch)
    scratch_dir.mkdir(parents=True, exist_ok=True)
    journal_path = scratch_dir / "serve-journal.jsonl"
    options = ServeOptions(
        extra_routes=("demo", "chaos"),
        workers=workers,
        journal=journal_path,
        cache_dir=scratch_dir / "cache",
        interactive_slots=2,
        max_pending_interactive=8,
        breaker_window=8,
        breaker_min_samples=4,
        breaker_threshold=0.5,
        breaker_cooldown_s=1.0,
        retry_after_s=0.2,
        drain_grace=8.0,
        drain_settle_s=0.1,
    )
    phases: List[Dict[str, Any]] = []
    sent = 0
    received = 0

    handle = ServerHandle(options).start()
    client = ServeClient(port=handle.port)
    try:
        # -- phase: coalesce --------------------------------------------
        k = max(4, min(n_clients, 8))
        body = {"params": {"x": 7.0, "work": 0.6}}
        exec_before = client.metrics()["backend"]["executions"]
        barrier = threading.Barrier(k)

        def identical() -> ServeResponse:
            barrier.wait(timeout=10.0)
            return ServeClient(port=handle.port).task("demo", body)

        with ThreadPoolExecutor(max_workers=k) as pool:
            responses = [f.result()
                         for f in [pool.submit(identical)
                                   for _ in range(k)]]
        sent += k
        received += len(responses)
        _settle(client)
        exec_delta = (client.metrics()["backend"]["executions"]
                      - exec_before)
        answers = {json.dumps(r.body.get("result"), sort_keys=True)
                   for r in responses}
        leaders = sum(1 for r in responses if r.body.get("coalesced")
                      is False)
        coalesce_ok = (all(r.status == "ok" for r in responses)
                       and exec_delta == 1
                       and len(answers) == 1
                       and leaders == 1)
        phases.append({"name": "coalesce", "ok": coalesce_ok,
                       "clients": k, "backend_executions": exec_delta,
                       "distinct_answers": len(answers),
                       "leaders": leaders})
        _progress(progress,
                  f"coalesce: {k} identical clients -> {exec_delta} "
                  f"backend execution(s)")

        # -- phase: storm -----------------------------------------------
        exec_before = client.metrics()["backend"]["executions"]
        plans: List[Dict[str, Any]] = []
        for i in range(n_clients):
            roll = rng.random()
            if roll < 0.15:
                plans.append({"route": "demo", "body": {"bogus": i},
                              "expect": "bad-request"})
            elif roll < 0.25:
                plans.append({"route": f"missing-{i}", "body": {},
                              "expect": "not-found"})
            else:
                x = float(rng.randrange(n_unique))
                plans.append({"route": "demo",
                              "body": {"params": {"x": x, "work": 0.15}},
                              "expect": None})
        distinct_keys = {json.dumps(p["body"], sort_keys=True)
                         for p in plans if p["expect"] is None}

        def attack(plan: Dict[str, Any]) -> ServeResponse:
            return ServeClient(port=handle.port).task(plan["route"],
                                                      plan["body"])

        with ThreadPoolExecutor(max_workers=min(n_clients, 16)) as pool:
            responses = [f.result()
                         for f in [pool.submit(attack, p) for p in plans]]
        sent += len(plans)
        received += len(responses)
        _settle(client)
        exec_delta = (client.metrics()["backend"]["executions"]
                      - exec_before)
        all_terminal = all(_valid(r) for r in responses)
        expected_ok = all(
            r.status == p["expect"]
            for p, r in zip(plans, responses) if p["expect"] is not None)
        answers_ok = all(
            r.body["result"]["y"] == p["body"]["params"]["x"] ** 2
            for p, r in zip(plans, responses)
            if p["expect"] is None and r.status == "ok")
        storm_ok = (all_terminal and expected_ok and answers_ok
                    and exec_delta <= len(distinct_keys))
        phases.append({
            "name": "storm", "ok": storm_ok, "clients": len(plans),
            "distinct_keys": len(distinct_keys),
            "backend_executions": exec_delta,
            "statuses": _status_counts(responses)})
        _progress(progress,
                  f"storm: {len(plans)} mixed clients, "
                  f"{len(distinct_keys)} distinct keys -> {exec_delta} "
                  f"executions, statuses {_status_counts(responses)}")

        # -- phase: shed ------------------------------------------------
        flood = options.max_pending_interactive * 2
        barrier = threading.Barrier(flood)

        def novel(i: int) -> ServeResponse:
            barrier.wait(timeout=10.0)
            return ServeClient(port=handle.port).task(
                "demo", {"params": {"x": 1000.0 + i, "work": 0.5}})

        with ThreadPoolExecutor(max_workers=flood) as pool:
            responses = [f.result()
                         for f in [pool.submit(novel, i)
                                   for i in range(flood)]]
        sent += flood
        received += len(responses)
        _settle(client)
        shed = [r for r in responses if r.status == "shed"]
        shed_ok = (all(_valid(r) for r in responses)
                   and len(shed) > 0
                   and all(r.code == 429 and r.retry_after_s() is not None
                           and r.retry_after_s() >= 1.0 for r in shed))
        phases.append({"name": "shed", "ok": shed_ok, "clients": flood,
                       "shed": len(shed),
                       "statuses": _status_counts(responses)})
        _progress(progress,
                  f"shed: {flood} novel clients against a budget of "
                  f"{options.max_pending_interactive} -> {len(shed)} shed "
                  f"with Retry-After")

        # -- phase: breaker ---------------------------------------------
        healthy = {"params": {"index": 1}}
        warm = client.task("chaos", healthy)
        sent += 1
        received += 1
        trips_before = client.metrics()["breaker"]["trips"]
        poison_sent = 0
        for i in range(12):
            r = client.task(
                "chaos", {"params": {"index": 100 + i,
                                     "fault": "task_error"}})
            poison_sent += 1
            sent += 1
            received += 1
            if not _valid(r):
                break
            if client.metrics()["breaker"]["state"] == "open":
                break
        state_tripped = client.metrics()["breaker"]["state"]
        degraded = client.task("chaos", healthy)
        unavailable = client.task("chaos", {"params": {"index": 777}})
        sent += 2
        received += 2
        time.sleep(options.breaker_cooldown_s + 0.2)
        recovered = client.task("chaos", {"params": {"index": 888}})
        after = client.task("chaos", {"params": {"index": 999}})
        sent += 2
        received += 2
        _settle(client)
        metrics = client.metrics()
        breaker_ok = (
            warm.status == "ok"
            and state_tripped == "open"
            and metrics["breaker"]["trips"] > trips_before
            and degraded.status == "degraded"
            and degraded.body.get("degraded") is True
            and degraded.body.get("result") == warm.body.get("result")
            and unavailable.code == 503
            and unavailable.status == "unavailable"
            and recovered.status == "ok"
            and after.status == "ok"
            and metrics["breaker"]["state"] == "closed")
        phases.append({
            "name": "breaker", "ok": breaker_ok,
            "poison_requests": poison_sent,
            "state_after_poison": state_tripped,
            "degraded_status": degraded.status,
            "novel_while_open": unavailable.status,
            "state_after_recovery": metrics["breaker"]["state"],
            "trips": metrics["breaker"]["trips"]})
        _progress(progress,
                  f"breaker: {poison_sent} poisoned requests -> "
                  f"{state_tripped}; degraded={degraded.status}, "
                  f"novel={unavailable.status}, after cooldown "
                  f"{metrics['breaker']['state']}")

        # -- phase: drain -----------------------------------------------
        inflight_result: List[ServeResponse] = []

        def slow() -> None:
            inflight_result.append(ServeClient(port=handle.port).task(
                "demo", {"params": {"x": 55.0, "work": 1.0}}))

        worker = threading.Thread(target=slow)
        worker.start()
        sent += 1
        time.sleep(0.25)        # let the slow request get admitted
        handle.begin_drain()
        time.sleep(0.05)
        readyz = client.readyz()
        healthz = client.healthz()
        refused = client.task("demo", {"params": {"x": 2.0}})
        sent += 1
        received += 1
        worker.join(timeout=15.0)
        received += len(inflight_result)
        handle.join(timeout=15.0)
        drain_ok = (
            readyz.code == 503
            and healthz.code == 200
            and healthz.body.get("draining") is True
            and refused.status == "draining"
            and len(inflight_result) == 1
            and inflight_result[0].status == "ok"
            and not worker.is_alive())
        phases.append({
            "name": "drain", "ok": drain_ok,
            "readyz_during_drain": readyz.code,
            "healthz_during_drain": healthz.code,
            "new_request_during_drain": refused.status,
            "inflight_status": (inflight_result[0].status
                                if inflight_result else "lost")})
        _progress(progress,
                  f"drain: readyz={readyz.code}, in-flight="
                  f"{phases[-1]['inflight_status']}, "
                  f"new={refused.status}")
    finally:
        handle.stop(hard=True)
        handle.join(timeout=15.0)

    # -- journal replay after the server is gone ------------------------
    from ..exec.journal import Journal

    journal = Journal(journal_path)
    records = journal.replay()
    replay_ok = journal_path.exists() and isinstance(records, list)
    phases.append({"name": "journal", "ok": replay_ok,
                   "records": len(records)})
    _progress(progress,
              f"journal: {len(records)} records replay cleanly")

    conservation_ok = sent == received
    report = {
        "kind": "serve_chaos_report",
        "seed": seed,
        "workers": workers,
        "n_clients": n_clients,
        "requests_sent": sent,
        "responses_received": received,
        "conservation_ok": conservation_ok,
        "phases": phases,
        "ok": conservation_ok and all(p["ok"] for p in phases),
    }
    return report


def _status_counts(responses: List[ServeResponse]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for r in responses:
        counts[r.status] = counts.get(r.status, 0) + 1
    return dict(sorted(counts.items()))


def render_serve_chaos(report: Dict[str, Any]) -> str:
    """Human-readable summary of a serve chaos report."""
    lines = [
        "serve chaos report",
        f"  seed {report['seed']}  workers {report['workers']}  "
        f"requests {report['requests_sent']} in / "
        f"{report['responses_received']} out",
    ]
    for phase in report["phases"]:
        flag = "ok " if phase["ok"] else "FAIL"
        detail = ", ".join(f"{k}={v}" for k, v in phase.items()
                           if k not in ("name", "ok"))
        lines.append(f"  [{flag}] {phase['name']:<9} {detail}")
    lines.append(f"  verdict: {'PASS' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)
