"""Bridge from canonical serve requests onto the campaign executor.

Every coalesced group executes as a single-task campaign through
:func:`repro.exec.executor.run_campaign`: the request key is the task
id, the request deadline is the task's watchdog ``timeout`` override,
and the executor's failure classification (skip / retry / quarantine)
becomes the response status.  With ``workers >= 1`` the task runs in a
spawned worker process — a crash or hang costs one worker, never the
server; ``workers=0`` runs inline in the calling thread (fast, no
isolation, used by unit tests and trusted deployments).

The backend also owns the read side of degraded mode: a bounded
in-memory LRU memo of recent results plus the characterisation disk
cache (:mod:`repro.characterize.cache`), both probed before any
execution is scheduled.

``execute`` blocks and is called from a worker thread; the memo and
counters take a lock.  ``probe`` is cheap (dict lookup + at most one
small file read) and safe from any thread.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..exec.campaign import (
    COMPLETED,
    QUARANTINED,
    SKIPPED,
    Campaign,
    TaskSpec,
)
from ..exec.executor import CampaignInterrupted, CampaignOptions, run_campaign
from ..exec.journal import Journal
from .protocol import ServeRequest

#: Task function behind each servable route.  ``demo`` and ``chaos``
#: are test/benchmark routes, only mounted when explicitly enabled.
ROUTE_FNS: Dict[str, str] = {
    "characterize": "repro.exec.tasks:characterize_task",
    "nvff": "repro.exec.tasks:nvff_task",
    "demo": "repro.exec.tasks:demo_task",
    "chaos": "repro.exec.tasks:chaos_task",
}

#: Routes whose results live in the characterisation disk cache.
_DISK_CACHED_ROUTES = ("characterize", "nvff")


@dataclass
class CacheHit:
    """A result served without executing anything."""

    payload: Dict[str, Any]
    age_s: Optional[float]
    source: str     # "memo" | "disk"


def _disk_cache_key(request: ServeRequest) -> Optional[str]:
    """The disk-cache key a characterisation task would use.

    Mirrors the runners' ``cache.cache_key`` calls exactly (dataclass
    instances, same keyword names), so a serve probe hits the entries
    that earlier sweeps or campaigns wrote.
    """
    if request.route not in _DISK_CACHED_ROUTES:
        return None
    from ..characterize import cache
    from ..exec.tasks import _cond, _domain, _fet, _mtj

    p = request.params
    if request.route == "characterize":
        return cache.cache_key(
            kind=p["kind"], cond=_cond(p["cond"]), domain=_domain(p["domain"]),
            nfet=_fet(p["nfet"]), pfet=_fet(p["pfet"]), mtj=_mtj(p["mtj"]))
    return cache.cache_key(
        kind="nvff", cond=_cond(p["cond"]),
        nfet=_fet(p["nfet"]), pfet=_fet(p["pfet"]), mtj=_mtj(p["mtj"]))


class ExecBackend:
    """Executor-backed request evaluation with memo + disk-cache reads."""

    def __init__(self, routes: Dict[str, str], *,
                 workers: int = 0,
                 max_retries: int = 1,
                 warmup_grace: float = 30.0,
                 journal: Optional[Union[Journal, str, Path]] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 forensics_dir: Optional[Union[str, Path]] = None,
                 memo_size: int = 512,
                 stop_level: Optional[Callable[[], int]] = None):
        self.routes = dict(routes)
        self.workers = int(workers)
        self.max_retries = int(max_retries)
        self.warmup_grace = float(warmup_grace)
        if journal is not None and not isinstance(journal, Journal):
            journal = Journal(journal)
        self.journal = journal
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.forensics_dir = forensics_dir
        self.memo_size = int(memo_size)
        self._stop_level = stop_level or (lambda: 0)
        self._lock = threading.Lock()
        # key -> (payload, stored_at monotonic); LRU bounded at memo_size
        self._memo: "OrderedDict[str, Tuple[Dict[str, Any], float]]" = (
            OrderedDict())
        self.executions = 0
        self.inflight = 0
        self.outcomes = {COMPLETED: 0, SKIPPED: 0, QUARANTINED: 0,
                         "interrupted": 0, "error": 0}

    # -- cache reads -----------------------------------------------------

    def memo_put(self, key: str, payload: Dict[str, Any]) -> None:
        with self._lock:
            self._memo[key] = (payload, time.monotonic())
            self._memo.move_to_end(key)
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)

    def probe(self, request: ServeRequest) -> Optional[CacheHit]:
        """Look for an already-computed result; never executes."""
        with self._lock:
            entry = self._memo.get(request.key)
            if entry is not None:
                self._memo.move_to_end(request.key)
                payload, stored_at = entry
                return CacheHit(payload=payload,
                                age_s=max(0.0, time.monotonic() - stored_at),
                                source="memo")
        if self.cache_dir is None:
            return None
        disk_key = _disk_cache_key(request)
        if disk_key is None:
            return None
        from ..characterize import cache

        payload = cache.load_payload(self.cache_dir, disk_key)
        if payload is None:
            return None
        age_s = cache.entry_age_s(self.cache_dir, disk_key)
        self.memo_put(request.key, payload)
        return CacheHit(payload=payload, age_s=age_s, source="disk")

    # -- execution -------------------------------------------------------

    def _campaign_for(self, request: ServeRequest,
                      timeout_s: Optional[float]) -> Campaign:
        params = dict(request.params)
        if request.route in _DISK_CACHED_ROUTES and self.cache_dir is not None:
            # execution policy, injected after canonicalisation so the
            # coalescing key never depends on where the cache lives
            params["cache_dir"] = str(self.cache_dir)
        task = TaskSpec(task_id=request.key, params=params,
                        label=f"serve:{request.route}:{request.key[:8]}",
                        timeout=timeout_s)
        return Campaign(name=f"serve-{request.route}",
                        fn=self.routes[request.route], tasks=[task])

    def execute(self, request: ServeRequest,
                timeout_s: Optional[float]) -> Dict[str, Any]:
        """Run one group to a terminal outcome dict.  Blocking.

        ``timeout_s`` becomes the task's watchdog override (pooled mode
        kills and retries/quarantines a worker that exceeds it).  The
        returned dict always carries a ``status`` from {``completed``,
        ``skipped``, ``quarantined``, ``interrupted``, ``error``}.
        """
        if timeout_s is not None and timeout_s <= 0:
            timeout_s = 0.001     # clamp: TaskSpec requires positive
        campaign = self._campaign_for(request, timeout_s)
        options = CampaignOptions(
            workers=self.workers,
            task_timeout=None,
            warmup_grace=self.warmup_grace,
            max_retries=self.max_retries,
            backoff_base=0.05,
            backoff_cap=1.0,
            drain_grace=2.0,
            forensics_dir=self.forensics_dir,
            # only a *hard* server stop interrupts an admitted
            # interactive execution; a graceful drain lets it finish
            stop_requested=lambda: 2 if self._stop_level() >= 2 else 0,
        )
        with self._lock:
            self.executions += 1
            self.inflight += 1
        try:
            try:
                result = run_campaign(campaign, journal=self.journal,
                                      options=options)
                outcome = result.outcome(request.key)
            except CampaignInterrupted as err:
                outcome = err.result.outcome(request.key)
                if outcome is None:
                    with self._lock:
                        self.outcomes["interrupted"] += 1
                    return {"status": "interrupted",
                            "detail": "server stopping"}
            except Exception as err:  # lint: skip=RV405 — a backend bug must still resolve the group; detail is preserved in the response
                with self._lock:
                    self.outcomes["error"] += 1
                return {"status": "error", "detail": repr(err)}
            if outcome is None:     # defensive; single task should be terminal
                with self._lock:
                    self.outcomes["error"] += 1
                return {"status": "error",
                        "detail": "executor returned no outcome"}
            with self._lock:
                self.outcomes[outcome.status] = (
                    self.outcomes.get(outcome.status, 0) + 1)
            summary = {
                "status": outcome.status,
                "attempts": outcome.attempts,
                "elapsed_s": outcome.elapsed,
            }
            if outcome.status == COMPLETED:
                payload = outcome.result
                if isinstance(payload, dict):
                    self.memo_put(request.key, payload)
                summary["result"] = payload
            elif outcome.status == SKIPPED:
                summary["skip"] = outcome.skip
            else:
                summary["failures"] = outcome.failures
            return summary
        finally:
            with self._lock:
                self.inflight -= 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "workers": self.workers,
                "executions": self.executions,
                "inflight": self.inflight,
                "outcomes": dict(self.outcomes),
                "memo_entries": len(self._memo),
                "memo_size": self.memo_size,
            }
