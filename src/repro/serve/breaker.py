"""Circuit breaker over backend quarantines.

When the executor starts quarantining tasks (worker crashes, hangs,
poison errors) faster than it completes them, hammering it with more
work only multiplies the damage.  The breaker watches a sliding window
of terminal backend outcomes and trips **open** once the failure rate
crosses a threshold, switching the server to cache-only degraded mode:
cached results are served stamped ``degraded: true``; novel requests
get ``503`` instead of a doomed execution.  After a cooldown the
breaker goes **half-open** and admits exactly one probe execution —
success closes it (window cleared), failure re-opens it for another
cooldown.

Skips do *not* count as failures: a deterministic analysis failure
means the backend is healthy and the input is bad.

All calls happen on the server's event loop; the injectable ``clock``
keeps the unit tests off the wall clock.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Dict, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Sliding-window failure-rate breaker with half-open probing."""

    def __init__(self, window: int = 16, min_samples: int = 4,
                 threshold: float = 0.5, cooldown_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not (0.0 < threshold <= 1.0):
            raise ValueError("threshold must be in (0, 1]")
        self.window = window
        self.min_samples = max(1, int(min_samples))
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._failures: deque = deque(maxlen=window)
        self._state = CLOSED
        self._opened_at: Optional[float] = None
        self._probe_inflight = False
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state; lazily moves open -> half-open after cooldown."""
        if (self._state == OPEN and self._opened_at is not None
                and self._clock() - self._opened_at >= self.cooldown_s):
            self._state = HALF_OPEN
            self._probe_inflight = False
        return self._state

    def allow_execution(self) -> bool:
        """May the caller start a backend execution right now?

        Closed: yes.  Open: no.  Half-open: yes for exactly one probe
        at a time — the caller must report it back via :meth:`record`.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def record(self, ok: bool) -> None:
        """Report one terminal backend outcome."""
        state = self.state
        if state == HALF_OPEN:
            self._probe_inflight = False
            if ok:
                self._close()
            else:
                self._trip()
            return
        self._failures.append(0 if ok else 1)
        if (state == CLOSED
                and len(self._failures) >= self.min_samples
                and self.failure_rate() >= self.threshold):
            self._trip()

    def failure_rate(self) -> float:
        if not self._failures:
            return 0.0
        return sum(self._failures) / len(self._failures)

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probe_inflight = False
        self.trips += 1

    def _close(self) -> None:
        self._state = CLOSED
        self._opened_at = None
        self._probe_inflight = False
        self._failures.clear()

    def snapshot(self) -> Dict[str, Any]:
        state = self.state     # settle any pending open -> half-open
        open_for = (None if self._opened_at is None
                    else max(0.0, self._clock() - self._opened_at))
        return {
            "state": state,
            "failure_rate": round(self.failure_rate(), 4),
            "samples": len(self._failures),
            "window": self.window,
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
            "open_for_s": open_for,
            "trips": self.trips,
        }
