"""Effect signatures: filesystem / process / queue effects per function.

The RV9xx band reasons about the repo's *durable-store protocols* — the
mkstemp→fsync→rename cache envelope, the append+fsync journal, spawn
workers fed by queues — so each function summary carries an **effect
signature** next to its purity atoms: what it opens, writes, renames
and fsyncs (with path provenance), which locks it holds, which queue
and process operations it issues in what order, and which module
globals it reads (visibility under ``spawn``).

Atoms are plain JSON 4-lists ``[kind, what, line, detail]``:

========== ============================================= =============
kind       what                                          detail
========== ============================================= =============
write      durable-path class (``cache``/``journal``/..) open mode
read       durable-path class                            ``""``
fsync      ``""``                                        ``""``
replace    durable-path class or ``""``                  ``""``
mkstemp    ``""``                                        ``""``
lock       lock expression                               ``""``
q_put      receiver                                      ``loop`` if in
                                                         a loop body
q_get      receiver                                      ``""``
q_join     receiver                                      ``""``
task_done  receiver                                      ``""``
p_join     receiver                                      ``""``
sig_reg    handler name (or ``<lambda>``)                signal expr
spawn_tgt  target name                                   ``nested`` if
                                                         not module
                                                         level
========== ============================================= =============

**Path provenance** is token-based with one level of local dataflow: a
path expression is *durable* when its source (or the right-hand side of
a local name it mentions, or the enclosing module's own name) contains
one of :data:`DURABLE_TOKENS`.  ``directory / f"{key}.json"`` with
``directory = Path(cache_dir)`` therefore classifies as ``cache``.
Heuristic by design — the band gates the repo's own stores, whose
paths are all named after what they are.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set

from . import dataflow

_WORD_RE = re.compile(r"[A-Za-z_]\w*")

#: Substrings that mark a path expression as one of the repo's durable
#: stores.  Matched lowercase against the expression source and the
#: RHS of local names it mentions.
DURABLE_TOKENS = ("journal", "cache", "baseline", "bench", "corpus",
                  "golden")

#: Constructor tails that make a local name queue-like / process-like.
_QUEUE_CTORS = frozenset({"Queue", "JoinableQueue", "SimpleQueue"})
_PROC_CTORS = frozenset({"Process", "Thread"})

#: Call tails acquiring an exclusive lock.
_LOCK_TAILS = frozenset({"flock", "lockf", "acquire"})

#: ``pathlib.Path`` write methods (text/bytes truncate-in-place).
_WRITE_TAILS = {"write_text": "text", "write_bytes": "bytes"}
_READ_TAILS = frozenset({"read_text", "read_bytes"})
_RENAME_TAILS = frozenset({"replace", "rename"})


def module_token(modname: str) -> str:
    """The durable-store class a module's *own name* implies, or ``""``.

    ``repro.exec.journal`` → ``journal``: paths built from ``self``
    attributes inside a store's own module classify by the module.
    """
    tail = modname.rsplit(".", 1)[-1].lower()
    for token in DURABLE_TOKENS:
        if token in tail:
            return token
    return ""


def module_data_names(tree: ast.Module) -> Set[str]:
    """Module-level *data* bindings (assignments, not defs/imports)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                            ast.Name):
            names.add(node.target.id)
    return names


class EffectCollector:
    """Effect atoms and global reads of one function body."""

    def __init__(self, func: ast.FunctionDef, resolver, class_ctx: str,
                 mod_token: str, data_names: Set[str],
                 locals_: Set[str]):
        self.resolver = resolver
        self.class_ctx = class_ctx
        self.mod_token = mod_token
        self.data_names = data_names
        self.locals = locals_
        self.atoms: List[List[object]] = []
        self.global_reads: List[List[object]] = []
        #: local name -> unparsed RHS of its (last) assignment, for the
        #: one-level provenance expansion in :meth:`_classify`.
        self._env: Dict[str, str] = {}
        self._queue_names: Set[str] = set()
        self._proc_names: Set[str] = set()
        self._nested_defs: Set[str] = set()
        self._collect_env(func)
        self._scan(func)

    # -- local environment -------------------------------------------------
    def _collect_env(self, func: ast.FunctionDef) -> None:
        args = func.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            self._env.setdefault(arg.arg, arg.arg)
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not func:
                self._nested_defs.add(node.name)
                continue
            if not isinstance(node, ast.Assign):
                continue
            try:
                rhs = ast.unparse(node.value)
            except (ValueError, RecursionError):  # pragma: no cover
                continue
            tail = ""
            if isinstance(node.value, ast.Call):
                dotted = dataflow._call_target(node.value)
                tail = (dotted or "").rsplit(".", 1)[-1]
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                self._env[target.id] = rhs
                if isinstance(node.value, ast.Lambda):
                    self._nested_defs.add(target.id)
                if tail in _QUEUE_CTORS:
                    self._queue_names.add(target.id)
                elif tail in _PROC_CTORS:
                    self._proc_names.add(target.id)

    # -- path provenance ---------------------------------------------------
    def _expand(self, name: str, depth: int, seen: Set[str],
                pieces: List[str]) -> None:
        """Append the RHS chain of a local name (bounded dataflow)."""
        if depth <= 0 or name in seen or len(pieces) >= 16:
            return
        seen.add(name)
        rhs = self._env.get(name)
        if rhs is None or rhs == name:
            return
        pieces.append(rhs.lower())
        for word in _WORD_RE.findall(rhs):
            if word != name:
                self._expand(word, depth - 1, seen, pieces)

    def _classify(self, expr: Optional[ast.AST]) -> str:
        """Durable-store class of a path expression, or ``""``."""
        if expr is None:
            return ""
        try:
            src = ast.unparse(expr).lower()
        except (ValueError, RecursionError):  # pragma: no cover
            return ""
        pieces = [src]
        seen: Set[str] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                self._expand(node.id, 3, seen, pieces)
            elif isinstance(node, ast.Attribute):
                base = node.value
                while isinstance(base, (ast.Attribute, ast.Subscript)):
                    base = base.value
                if isinstance(base, ast.Name) \
                        and base.id in ("self", "cls") and self.mod_token:
                    # self.path inside repro.exec.journal: classify by
                    # the store's own module name.
                    pieces.append(self.mod_token)
        blob = " ".join(pieces)
        for token in DURABLE_TOKENS:
            if token in blob:
                return token
        return ""

    def _is_queueish(self, recv: str) -> bool:
        head = recv.split(".", 1)[0]
        return (head in self._queue_names
                or "queue" in recv.rsplit(".", 1)[-1].lower())

    def _is_processish(self, recv: str) -> bool:
        head = recv.split(".", 1)[0]
        tail = recv.rsplit(".", 1)[-1].lower()
        return (head in self._proc_names
                or any(t in tail for t in ("process", "proc", "thread",
                                           "worker")))

    # -- scan --------------------------------------------------------------
    def _scan(self, func: ast.FunctionDef) -> None:
        loop_stack: List[ast.AST] = []

        def walk(node: ast.AST, in_loop: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    continue        # nested functions summarised alone
                child_in_loop = in_loop or isinstance(
                    child, (ast.For, ast.AsyncFor, ast.While))
                if isinstance(child, ast.Call):
                    self._scan_call(child, in_loop)
                elif isinstance(child, ast.With):
                    self._scan_with(child)
                elif isinstance(child, ast.Name) \
                        and isinstance(child.ctx, ast.Load):
                    self._scan_name(child)
                walk(child, child_in_loop)

        walk(func, False)

    def _scan_name(self, node: ast.Name) -> None:
        name = node.id
        if (name in self.data_names and name not in self.locals
                and len(self.global_reads) < 64):
            self.global_reads.append([name, node.lineno])

    def _scan_with(self, node: ast.With) -> None:
        for item in node.items:
            expr = item.context_expr
            src = ""
            try:
                src = ast.unparse(expr)
            except (ValueError, RecursionError):  # pragma: no cover
                pass
            if "lock" in src.lower():
                self._add("lock", src[:60], expr.lineno)

    def _add(self, kind: str, what: str, line: int,
             detail: str = "") -> None:
        self.atoms.append([kind, what, line, detail])

    def _scan_call(self, node: ast.Call, in_loop: bool) -> None:
        line = node.lineno
        dotted = dataflow._call_target(node)
        func = node.func
        tail = ""
        recv_node: Optional[ast.AST] = None
        if isinstance(func, ast.Attribute):
            tail = func.attr
            recv_node = func.value
        elif isinstance(func, ast.Name):
            tail = func.id
        recv = ""
        if dotted and "." in dotted:
            recv = dotted.rsplit(".", 1)[0]
        elif recv_node is not None:
            try:
                recv = ast.unparse(recv_node)[:60]
            except (ValueError, RecursionError):  # pragma: no cover
                recv = "(...)"

        resolved = dotted
        if dotted:
            resolved = self.resolver.resolve(dotted, self.class_ctx) \
                or dotted

        # filesystem -------------------------------------------------------
        if tail in _WRITE_TAILS and recv_node is not None:
            cls = self._classify(recv_node)
            if cls:
                self._add("write", cls, line, _WRITE_TAILS[tail])
            return
        if tail in _READ_TAILS and recv_node is not None:
            cls = self._classify(recv_node)
            if cls:
                self._add("read", cls, line)
            return
        if tail == "open" or dotted == "open":
            imports = getattr(self.resolver, "imports", {})
            if isinstance(func, ast.Name) \
                    or (recv and recv.split(".", 1)[0] in imports):
                # open(path, mode) / gzip.open(path, mode)
                target = node.args[0] if node.args else None
                mode = _open_mode(node, arg_index=1)
            else:
                # path.open(mode): the receiver is the path
                target = recv_node
                mode = _open_mode(node, arg_index=0)
            cls = self._classify(target)
            if cls and mode and any(f in mode for f in "wxa+"):
                self._add("write", cls, line, mode)
            elif cls:
                self._add("read", cls, line)
            return
        if resolved in ("os.fsync", "os.fdatasync"):
            self._add("fsync", "", line)
            return
        if resolved in ("os.replace", "os.rename") \
                or (tail in _RENAME_TAILS and recv_node is not None
                    and not isinstance(recv_node, ast.Constant)
                    and len(node.args) == 1 and not node.keywords):
            # the one-arg form distinguishes Path.replace(target) from
            # str.replace(old, new)
            target = node.args[-1] if node.args else None
            cls = self._classify(target) or self._classify(recv_node)
            self._add("replace", cls, line)
            return
        if resolved == "tempfile.mkstemp" or tail == "mkstemp":
            self._add("mkstemp", "", line)
            return
        if tail in _LOCK_TAILS and (recv or tail in ("flock", "lockf")):
            self._add("lock", dotted or tail, line)
            return

        # queues / processes ----------------------------------------------
        if tail in ("put", "put_nowait") and self._is_queueish(recv):
            self._add("q_put", recv, line, "loop" if in_loop else "")
            return
        if tail in ("get", "get_nowait") and self._is_queueish(recv):
            self._add("q_get", recv, line)
            return
        if tail == "task_done" and self._is_queueish(recv):
            self._add("task_done", recv, line)
            return
        if tail == "join" and recv:
            if self._is_queueish(recv) and not node.args:
                self._add("q_join", recv, line)
            elif self._is_processish(recv):
                self._add("p_join", recv, line)
            return

        # signal handlers / spawn targets ---------------------------------
        if resolved == "signal.signal" and len(node.args) >= 2:
            handler = node.args[1]
            name = ""
            if isinstance(handler, ast.Name):
                name = handler.id
            elif isinstance(handler, ast.Lambda):
                name = "<lambda>"
            if name:
                try:
                    signame = ast.unparse(node.args[0])[:40]
                except (ValueError, RecursionError):  # pragma: no cover
                    signame = ""
                self._add("sig_reg", name, line, signame)
            return
        if tail in _PROC_CTORS:
            for kw in node.keywords:
                if kw.arg == "target":
                    if tail != "Process":
                        # Thread targets run in this process and may
                        # close over local state freely; only Process
                        # targets must pickle by import path.
                        continue
                    if isinstance(kw.value, ast.Lambda):
                        self._add("spawn_tgt", "<lambda>", line, "nested")
                    elif isinstance(kw.value, ast.Name):
                        # module-level defs and imported names pickle
                        # by import path; only targets provably bound
                        # to nested defs/lambdas are closure state
                        # spawn cannot ship
                        nm = kw.value.id
                        self._add("spawn_tgt", nm, line,
                                  "nested" if nm in self._nested_defs
                                  else "")
            return


def _open_mode(node: ast.Call, arg_index: int = 1) -> Optional[str]:
    for keyword in node.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value,
                                                ast.Constant):
            return str(keyword.value.value)
    if len(node.args) > arg_index \
            and isinstance(node.args[arg_index], ast.Constant) \
            and isinstance(node.args[arg_index].value, str):
        return str(node.args[arg_index].value)
    if len(node.args) <= arg_index:
        return "r"
    return None


# ---------------------------------------------------------------------------
# queries over serialised effect lists (used by the RV9xx rules)
# ---------------------------------------------------------------------------


def effects_of(info: Dict[str, object]) -> List[Sequence[object]]:
    """All effect atoms of one function summary (empty if none)."""
    return list(info.get("effects") or ())


def atoms_of_kind(info: Dict[str, object],
                  *kinds: str) -> List[Sequence[object]]:
    """The function's effect atoms whose kind is one of ``kinds``."""
    return [a for a in effects_of(info) if a and a[0] in kinds]


def has_write_protocol(info: Dict[str, object]) -> bool:
    """Does this function implement stage-then-rename itself?"""
    return (bool(atoms_of_kind(info, "mkstemp"))
            and bool(atoms_of_kind(info, "replace")))
