"""Project symbol table, module summaries and the call graph.

This is the interprocedural substrate under the RV5xx/RV6xx/RV7xx rule
bands.  It has two halves with a deliberate seam between them:

* :func:`summarize_module` distils one parsed :class:`SourceModule`
  into a **module summary** — imports, the functions it defines, every
  call they make (with loop context), their purity atoms, their
  return-dimension expressions, and any ``"module:function"`` task
  references.  Summaries are plain JSON, which is what makes the
  incremental lint cache work: a warm run rebuilds the whole project
  view from cached summaries without touching a single AST;
* :class:`SourceProject` assembles the summaries of every module into a
  symbol table and call graph, then computes the **project facts** the
  rule bands consume: fixpoint return dimensions (units), task-root
  reachability with call chains (purity) and called-from-loop context
  (perf).  Per-module *fact slices* are content-hashed so the cache can
  tell "this module's findings are stale because a callee changed" from
  "nothing this module depends on moved" — dependency-aware
  invalidation through the call graph.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, Iterable, List, Optional, Set,
                    Tuple)

from ..units import CONSTANT_DIMENSIONS
from . import arrayflow, dataflow
from . import effects as effects_mod

if TYPE_CHECKING:  # a runtime import would be circular: source.py
    from .source import SourceModule  # builds projects out of this module

#: Summary format version; bump to invalidate every cached summary.
#: v2: per-function ``shape_returns`` (array-shape exprs for the RV8xx
#: band) and ``nonloop_allocs`` (dense allocations outside any loop,
#: consumed by the caller-side RV702 attribution).
#: v3: per-function ``effects`` (filesystem/queue/process effect
#: signatures) and ``global_reads`` (module data read under spawn) for
#: the RV9xx band.
SUMMARY_SCHEMA = 3

#: Dense-array constructors (numpy/scipy dotted tails); shared by the
#: RV7xx band, the summary extractor and the fix engine.
DENSE_ALLOC_TAILS = frozenset({
    "zeros", "ones", "empty", "full", "eye", "identity", "arange",
    "linspace", "zeros_like", "ones_like", "empty_like", "full_like",
    "diag", "vander", "meshgrid",
})

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)


def body_nodes(func: ast.FunctionDef):
    """Yield ``(node, enclosing_loops)`` over a function's own body.

    ``enclosing_loops`` is the tuple of loop statements whose *bodies*
    lexically contain the node — which is a per-iteration notion, not a
    purely lexical one: a ``for`` statement's iterable and target
    evaluate once per loop *entry*, so they belong to the enclosing
    context, while a ``while`` condition re-evaluates every iteration
    and belongs to its own loop.  Nested function/class definitions
    are skipped (they are analysed as their own functions).
    """
    def visit(node: ast.AST, loops: tuple):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            if isinstance(child, (ast.For, ast.AsyncFor)):
                yield child, loops
                for once in (child.target, child.iter):
                    yield once, loops
                    yield from visit(once, loops)
                inner = loops + (child,)
                for stmt in child.body + child.orelse:
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef,
                                         ast.ClassDef)):
                        continue
                    yield stmt, inner
                    yield from visit(stmt, inner)
            elif isinstance(child, ast.While):
                yield child, loops
                inner = loops + (child,)
                yield child.test, inner
                yield from visit(child.test, inner)
                for stmt in child.body + child.orelse:
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef,
                                         ast.ClassDef)):
                        continue
                    yield stmt, inner
                    yield from visit(stmt, inner)
            else:
                yield child, loops
                yield from visit(child, loops)

    yield from visit(func, ())


def loop_target_names(loops) -> Set[str]:
    """Names bound by the targets of the given enclosing loops."""
    names: Set[str] = set()
    for loop in loops:
        target = getattr(loop, "target", None)
        if target is not None:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names

#: ``"module:function"`` task references (the campaign contract).
TASK_REF_RE = re.compile(
    r"^[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)+"
    r":[A-Za-z_][A-Za-z0-9_]*$"
)

# ---------------------------------------------------------------------------
# purity atom tables
# ---------------------------------------------------------------------------

#: Container methods that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "remove", "discard", "clear", "setdefault", "sort",
})

#: Module-level ``random`` functions drawing from the global generator.
_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
    "choice", "choices", "shuffle", "sample", "betavariate", "expovariate",
    "seed", "triangular", "vonmisesvariate",
})

#: Legacy ``numpy.random`` module functions (global RandomState).
_NP_RANDOM_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "normal",
    "uniform", "choice", "shuffle", "permutation", "seed", "standard_normal",
    "exponential", "poisson",
})

#: Wall-clock reads (``time.sleep`` deliberately excluded — it delays,
#: it does not leak nondeterminism into results).
_CLOCK_FNS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

#: Filesystem-writing callables by resolved dotted name.
_FS_FNS = frozenset({
    "os.remove", "os.unlink", "os.rename", "os.replace", "os.makedirs",
    "os.mkdir", "os.rmdir", "os.removedirs", "os.symlink", "os.truncate",
    "shutil.copy", "shutil.copy2", "shutil.copyfile", "shutil.copytree",
    "shutil.move", "shutil.rmtree",
    "tempfile.mkstemp", "tempfile.mkdtemp", "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryDirectory",
})

#: ``pathlib.Path`` (and file-like) methods that write to disk.
_PATH_WRITERS = frozenset({
    "write_text", "write_bytes", "mkdir", "unlink", "rmdir", "touch",
    "rename", "replace", "symlink_to", "hardlink_to",
})


def module_name_for(path: "str | Path") -> str:
    """Dotted module name of a file, walking ``__init__.py`` packages up.

    ``src/repro/pg/energy.py`` -> ``repro.pg.energy``; a loose file (no
    enclosing package) is just its stem.
    """
    p = Path(path)
    parts: List[str] = [] if p.name == "__init__.py" else [p.stem]
    directory = p.parent
    while (directory / "__init__.py").exists():
        parts.append(directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(reversed(parts)) or p.stem


# ---------------------------------------------------------------------------
# summary extraction
# ---------------------------------------------------------------------------


def _import_map(tree: ast.Module, modname: str) -> Dict[str, str]:
    """Local alias -> fully dotted target for every top-level import."""
    package = modname.rsplit(".", 1)[0] if "." in modname else ""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    out[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = modname.split(".")
                # level 1 = the containing package, each extra level one up.
                cut = node.level if modname.count(".") >= 0 else 0
                base_parts = base_parts[:-cut] if cut else base_parts
                base = ".".join(base_parts)
            else:
                base = node.module or ""
            prefix = (f"{base}.{node.module}" if node.level and node.module
                      else (base if node.level else node.module or ""))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                out[local] = (f"{prefix}.{alias.name}"
                              if prefix else alias.name)
    return out


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (assignment targets and defs)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                            ast.Name):
            names.add(node.target.id)
    return names


class _Resolver:
    """Resolves local dotted names to project-global dotted names."""

    def __init__(self, modname: str, imports: Dict[str, str],
                 top_names: Set[str]):
        self.modname = modname
        self.imports = imports
        self.top_names = top_names

    def resolve(self, dotted: str, class_ctx: str = "") -> Optional[str]:
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls"):
            if class_ctx and rest:
                return f"{self.modname}.{class_ctx}.{rest}"
            return None
        if head in self.imports:
            target = self.imports[head]
            return f"{target}.{rest}" if rest else target
        if head in self.top_names:
            return f"{self.modname}.{dotted}"
        return dotted if "." in dotted else None


def _collect_functions(tree: ast.Module) -> List[Tuple[str, str,
                                                       ast.FunctionDef]]:
    """(qualname, enclosing class, node) for every function/method."""
    out: List[Tuple[str, str, ast.FunctionDef]] = []

    def visit(node: ast.AST, prefix: str, class_ctx: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                out.append((qual, class_ctx, child))
                visit(child, qual, class_ctx)
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                visit(child, qual, child.name if not class_ctx else qual)

    visit(tree, "", "")
    return out


class _CallCollector(ast.NodeVisitor):
    """Call sites of one function body, with loop-nesting context."""

    def __init__(self) -> None:
        self.calls: List[Tuple[str, int, bool]] = []
        self._loop_depth = 0

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def _visit_loop(self, node) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_FunctionDef(self, node) -> None:
        pass                        # nested functions summarised separately

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dataflow._call_target(node)
        if dotted is not None:
            self.calls.append((dotted, node.lineno, self._loop_depth > 0))
        self.generic_visit(node)


class _AtomCollector:
    """Purity atoms of one function body (for the RV6xx band)."""

    def __init__(self, func: ast.FunctionDef, resolver: _Resolver,
                 class_ctx: str):
        self.resolver = resolver
        self.class_ctx = class_ctx
        self.atoms: List[Tuple[str, str, int]] = []   # (kind, what, line)
        self.locals: Set[str] = set()
        self.globals_declared: Set[str] = set()
        self._collect_locals(func)
        self._scan(func)

    def _collect_locals(self, func: ast.FunctionDef) -> None:
        args = func.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            self.locals.add(arg.arg)
        if args.vararg:
            self.locals.add(args.vararg.arg)
        if args.kwarg:
            self.locals.add(args.kwarg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                self.globals_declared.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    # Only Store-context names bind: in SEEN[k] = v the
                    # container SEEN is a *load* of module state, not a
                    # new local.
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name) \
                                and isinstance(sub.ctx, ast.Store):
                            self.locals.add(sub.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        self.locals.add(sub.id)
            elif isinstance(node, ast.withitem) and node.optional_vars:
                for sub in ast.walk(node.optional_vars):
                    if isinstance(sub, ast.Name):
                        self.locals.add(sub.id)
            elif isinstance(node, ast.comprehension):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        self.locals.add(sub.id)
        self.locals -= self.globals_declared

    def _is_module_state(self, name: str) -> bool:
        return ((name in self.resolver.top_names
                 or name in self.resolver.imports)
                and name not in self.locals)

    def _scan(self, func: ast.FunctionDef) -> None:
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    self._scan_target(target, node.lineno)
            elif isinstance(node, ast.Call):
                self._scan_call(node)

    def _scan_target(self, target: ast.AST, lineno: int) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self.atoms.append(("global_write", target.id, lineno))
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls"):
                    return
                if self._is_module_state(base.id):
                    self.atoms.append(("module_mutation", base.id, lineno))
                elif (isinstance(base, ast.Name) and base.id == "globals"):
                    self.atoms.append(("global_write", "globals()", lineno))
            elif (isinstance(base, ast.Call)
                  and isinstance(base.func, ast.Name)
                  and base.func.id == "globals"):
                self.atoms.append(("global_write", "globals()", lineno))

    def _scan_call(self, node: ast.Call) -> None:
        dotted = dataflow._call_target(node)
        if dotted is None:
            # No dotted name means a computed receiver —
            # Path("x").write_text(...) style.  The writer-method name
            # alone is enough to classify the filesystem write.
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _PATH_WRITERS:
                self.atoms.append(
                    ("fs_write", f"(...).{node.func.attr}", node.lineno))
            return
        lineno = node.lineno
        head, _, _rest = dotted.partition(".")
        tail = dotted.rsplit(".", 1)[-1]

        # in-place mutation of module-level containers / registries
        if ("." in dotted and tail in _MUTATORS
                and self._is_module_state(head)):
            self.atoms.append(("module_mutation", dotted, lineno))

        resolved = self.resolver.resolve(dotted, self.class_ctx) or dotted

        if resolved.startswith("random.") and tail in _RANDOM_FNS:
            self.atoms.append(("nondet", resolved, lineno))
        elif ".random." in resolved or resolved.startswith("numpy.random"):
            np_tail = resolved.rsplit(".", 1)[-1]
            if np_tail in _NP_RANDOM_FNS:
                self.atoms.append(("nondet", resolved, lineno))
            elif np_tail == "default_rng" and not node.args \
                    and not node.keywords:
                self.atoms.append(
                    ("nondet", f"{resolved}() without a seed", lineno))
        elif resolved in _CLOCK_FNS:
            self.atoms.append(("clock", resolved, lineno))
        elif resolved in _FS_FNS:
            self.atoms.append(("fs_write", resolved, lineno))
        elif tail in _PATH_WRITERS and "." in dotted:
            self.atoms.append(("fs_write", dotted, lineno))
        elif tail == "open" or dotted == "open":
            mode = self._open_mode(node)
            if mode and any(flag in mode for flag in "wax+"):
                self.atoms.append(
                    ("fs_write", f"open(..., {mode!r})", lineno))

    @staticmethod
    def _open_mode(node: ast.Call) -> Optional[str]:
        for keyword in node.keywords:
            if keyword.arg == "mode" and isinstance(keyword.value,
                                                    ast.Constant):
                return str(keyword.value.value)
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) \
                and isinstance(node.args[1].value, str):
            return node.args[1].value
        return None


def _json_safe_default(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (str, int, float, bool, type(None)))
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return all(_json_safe_default(e) for e in node.elts)
    if isinstance(node, ast.Dict):
        return (all(k is not None and _json_safe_default(k)
                    for k in node.keys)
                and all(_json_safe_default(v) for v in node.values))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.USub, ast.UAdd)):
        return _json_safe_default(node.operand)
    return False


def _signature_info(func: ast.FunctionDef) -> Dict[str, object]:
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    names = [a.arg for a in positional if a.arg not in ("self", "cls")]
    n_defaults = len(args.defaults)
    required = len(names) - min(n_defaults, len(names))
    bad_defaults: List[Tuple[str, int, str]] = []
    defaulted = positional[len(positional) - n_defaults:]
    for arg, default in zip(defaulted, args.defaults):
        if not _json_safe_default(default):
            bad_defaults.append((arg.arg, default.lineno,
                                 ast.unparse(default)))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None and not _json_safe_default(default):
            bad_defaults.append((arg.arg, default.lineno,
                                 ast.unparse(default)))
    return {
        "params": names,
        "required": required,
        "vararg": args.vararg is not None,
        "kwarg": args.kwarg is not None,
        "kwonly_required": [a.arg for a, d in zip(args.kwonlyargs,
                                                  args.kw_defaults)
                            if d is None],
        "bad_defaults": bad_defaults,
    }


def _param_annotations(func: ast.FunctionDef) -> Dict[str, str]:
    """String literal annotations (``x: "J"``) by parameter name."""
    out: Dict[str, str] = {}
    args = func.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        ann = arg.annotation
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            out[arg.arg] = ann.value
    return out


def _task_refs(module: SourceModule) -> List[Tuple[str, int]]:
    """Every ``"module:function"`` string literal in the module."""
    if module.tree is None:
        return []
    refs: List[Tuple[str, int]] = []
    for node in ast.walk(module.tree):
        if (isinstance(node, ast.Constant) and isinstance(node.value, str)
                and TASK_REF_RE.match(node.value)):
            refs.append((node.value, node.lineno))
    return refs


def summarize_module(module: SourceModule, modname: str) -> Dict[str, object]:
    """Distil one parsed module into its serialisable project summary."""
    summary: Dict[str, object] = {
        "schema": SUMMARY_SCHEMA,
        "name": modname,
        "path": module.path,
        "functions": {},
        "task_refs": [],
        "imports": {},
    }
    if module.tree is None:
        return summary
    imports = _import_map(module.tree, modname)
    top_names = _module_level_names(module.tree)
    resolver = _Resolver(modname, imports, top_names)
    summary["imports"] = imports
    summary["task_refs"] = [[ref, line] for ref, line
                            in _task_refs(module)]
    mod_token = effects_mod.module_token(modname)
    data_names = effects_mod.module_data_names(module.tree)

    functions: Dict[str, Dict[str, object]] = {}
    for qual, class_ctx, func in _collect_functions(module.tree):
        collector = _CallCollector()
        for stmt in func.body:
            collector.visit(stmt)
        calls = []
        for dotted, line, in_loop in collector.calls:
            resolved = resolver.resolve(dotted, class_ctx)
            calls.append([resolved or dotted, line, in_loop])

        flow = dataflow.DimFlow(
            _units_resolver(resolver, class_ctx))
        returns = flow.run(func)

        annotations = _param_annotations(func)
        shape_flow = arrayflow.ShapeFlow(
            *_shape_callbacks(resolver, class_ctx),
            param_shapes=_annotation_shapes(annotations))
        shape_returns = shape_flow.run(func)

        atoms = _AtomCollector(func, resolver, class_ctx)
        eff = effects_mod.EffectCollector(
            func, resolver, class_ctx, mod_token, data_names,
            atoms.locals | atoms.globals_declared)
        functions[qual] = {
            "line": func.lineno,
            "calls": calls,
            "returns": returns[:8],      # cap pathological bodies
            "shape_returns": shape_returns[:6],
            "nonloop_allocs": _nonloop_allocs(func, resolver, class_ctx),
            "atoms": [[k, w, ln] for k, w, ln in atoms.atoms],
            "effects": eff.atoms,
            "global_reads": eff.global_reads,
            "signature": _signature_info(func),
            "annotations": annotations,
        }
    summary["functions"] = functions
    return summary


def _shape_callbacks(resolver: _Resolver, class_ctx: str):
    """(numpy_of, resolve_call) hooks binding a ShapeFlow to a module."""

    def numpy_of(dotted: str) -> Optional[str]:
        full = resolver.resolve(dotted, class_ctx)
        if full and (full.startswith("numpy.")
                     or full.startswith("scipy.")):
            return full.rsplit(".", 1)[-1]
        return None

    def resolve_call(dotted: str):
        full = resolver.resolve(dotted, class_ctx)
        if full is None:
            return None
        return arrayflow.call_expr(full)

    return numpy_of, resolve_call


def _annotation_shapes(annotations: Dict[str, str]):
    """Parameter shape seeds from ``"(n, n)"``-style annotations."""
    out: Dict[str, arrayflow.AShape] = {}
    for name, text in annotations.items():
        dims = arrayflow.parse_shape_annotation(text)
        if dims is not None:
            out[name] = arrayflow.AShape(dims=tuple(dims))
    return out


def _nonloop_allocs(func: ast.FunctionDef, resolver: _Resolver,
                    class_ctx: str) -> List[List[object]]:
    """Dense numpy/scipy allocations outside any loop: ``[[tail, line]]``.

    These are harmless where they sit — but a *caller* invoking this
    function from a loop turns each into a per-iteration allocation,
    which is what the caller-side RV702 attribution reports.
    """
    out: List[List[object]] = []
    for node, loops in body_nodes(func):
        if loops or not isinstance(node, ast.Call):
            continue
        dotted = dataflow._call_target(node)
        if dotted is None:
            continue
        tail = dotted.rsplit(".", 1)[-1]
        if tail not in DENSE_ALLOC_TAILS:
            continue
        resolved = resolver.resolve(dotted, class_ctx) or ""
        if resolved.startswith("numpy.") or resolved.startswith("scipy."):
            out.append([tail, node.lineno])
    return out[:16]


def _units_resolver(resolver: _Resolver, class_ctx: str):
    """DimFlow name-resolution hook bound to one module's imports."""

    def resolve(dotted: str):
        full = resolver.resolve(dotted, class_ctx)
        if full is None:
            return None
        tail = full.rsplit(".", 1)[-1]
        if ".units." in f".{full}" and tail in CONSTANT_DIMENSIONS:
            return dataflow.dim_expr(CONSTANT_DIMENSIONS[tail])
        return dataflow.call_expr(full)

    return resolve


# ---------------------------------------------------------------------------
# the assembled project
# ---------------------------------------------------------------------------


def _stable_digest(value: object) -> str:
    blob = json.dumps(value, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


class SourceProject:
    """Symbol table, call graph and interprocedural facts for one tree."""

    def __init__(self, summaries: Iterable[Dict[str, object]],
                 extra_task_refs: Iterable[str] = ()):
        self.modules: Dict[str, Dict[str, object]] = {}
        for summary in summaries:
            self.modules[str(summary["name"])] = summary
        #: fid ("mod:qual") -> function summary dict
        self.functions: Dict[str, Dict[str, object]] = {}
        #: global dotted name ("mod.qual") -> fid
        self._by_dotted: Dict[str, str] = {}
        for modname, summary in self.modules.items():
            for qual, info in summary.get("functions", {}).items():  # type: ignore[union-attr]
                fid = f"{modname}:{qual}"
                self.functions[fid] = info
                self._by_dotted[f"{modname}.{qual}"] = fid
        self._resolve_cache: Dict[str, Optional[str]] = {}
        self.callees: Dict[str, List[Tuple[str, int, bool]]] = {}
        self._build_edges()
        self.units_returns: Dict[str, Optional[Tuple[int, ...]]] = {}
        self._units_fixpoint()
        self.shape_returns: Dict[str, Optional[arrayflow.AShape]] = {}
        self._shapes_fixpoint()
        self.task_roots: Dict[str, List[Tuple[str, str, int]]] = {}
        self.unresolved_refs: Dict[str, List[Tuple[str, int]]] = {}
        self._collect_roots(extra_task_refs)
        self.reach: Dict[str, Dict[str, str]] = {}
        self._reachability()
        self.loop_called: Dict[str, Tuple[str, int]] = {}
        self._loop_context()

    # -- symbol resolution ------------------------------------------------
    def module_of(self, fid: str) -> str:
        return fid.partition(":")[0]

    def resolve_dotted(self, dotted: str,
                       _depth: int = 0) -> Optional[str]:
        """Resolve a global dotted name to a function id, or None.

        Follows package re-exports (``from .source import verify_source``
        in an ``__init__``) a bounded number of hops.
        """
        if dotted in self._resolve_cache:
            return self._resolve_cache[dotted]
        self._resolve_cache[dotted] = None       # cycle guard
        result = self._resolve_uncached(dotted, _depth)
        self._resolve_cache[dotted] = result
        return result

    def _resolve_uncached(self, dotted: str,
                          _depth: int) -> Optional[str]:
        if _depth > 5:
            return None
        fid = self._by_dotted.get(dotted)
        if fid is not None:
            return fid
        # split into the longest module prefix + remainder
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            summary = self.modules.get(mod)
            if summary is None:
                continue
            rest = parts[cut:]
            imports = summary.get("imports", {})
            head = rest[0]
            if head in imports:                   # re-export: follow it
                target = imports[head]            # type: ignore[index]
                tail = ".".join(rest[1:])
                full = f"{target}.{tail}" if tail else str(target)
                return self.resolve_dotted(full, _depth + 1)
            candidate = f"{mod}:{'.'.join(rest)}"
            if candidate in self.functions:
                return candidate
            return None
        return None

    # -- graph ------------------------------------------------------------
    def _build_edges(self) -> None:
        for fid, info in self.functions.items():
            edges: List[Tuple[str, int, bool]] = []
            for call in info.get("calls", ()):    # type: ignore[union-attr]
                target, line, in_loop = call[0], int(call[1]), bool(call[2])
                resolved = self.resolve_dotted(str(target))
                if resolved is not None:
                    edges.append((resolved, line, in_loop))
            self.callees[fid] = edges

    def internal_callees(self, fid: str) -> List[str]:
        return sorted({target for target, _line, _loop
                       in self.callees.get(fid, ())})

    # -- units facts ------------------------------------------------------
    def _param_dims(self, fid: str) -> Dict[str, Tuple[int, ...]]:
        info = self.functions[fid]
        annotations = info.get("annotations", {})
        out: Dict[str, Tuple[int, ...]] = {}
        for name in info.get("signature", {}).get("params", ()):  # type: ignore[union-attr]
            dim = (dataflow.seed_for_annotation(
                       annotations.get(name))     # type: ignore[union-attr]
                   or dataflow.seed_for_name(name))
            if dim is not None:
                out[name] = dim
        return out

    def _units_fixpoint(self) -> None:
        facts: Dict[str, Optional[Tuple[int, ...]]] = {
            fid: None for fid in self.functions}
        dotted_facts: Dict[str, Optional[Tuple[int, ...]]] = {}
        for _ in range(8):
            changed = False
            for fid, info in self.functions.items():
                returns = info.get("returns", ())
                if not returns:
                    continue
                params = self._param_dims(fid)
                dims = set()
                for expr in returns:              # type: ignore[union-attr]
                    value = dataflow.eval_dim(expr, params, dotted_facts)
                    dims.add(value if not isinstance(value, tuple)
                             else tuple(value))
                dims.discard(None)
                new = dims.pop() if len(dims) == 1 else None
                if new == "engstr":
                    new = None
                if new != facts[fid]:
                    facts[fid] = new              # type: ignore[assignment]
                    changed = True
            dotted_facts = self._dotted_facts(facts)
            if not changed:
                break
        self.units_returns = facts
        self._dotted_units = dotted_facts

    def _dotted_facts(self, facts) -> Dict[str, Optional[Tuple[int, ...]]]:
        out: Dict[str, Optional[Tuple[int, ...]]] = {}
        for dotted in list(self._resolve_cache) + list(self._by_dotted):
            fid = self.resolve_dotted(dotted)
            if fid is not None:
                out[dotted] = facts.get(fid)
        return out

    def units_facts_for_eval(self) -> Dict[str, Optional[Tuple[int, ...]]]:
        """Return-dim facts keyed by *dotted* name (DimExpr call leaves)."""
        return dict(self._dotted_units)

    # -- shape facts ------------------------------------------------------
    def param_shapes(self, fid: str) -> Dict[str, arrayflow.AShape]:
        """Shape seeds from a function's ``"(n, n)"`` annotations."""
        info = self.functions.get(fid, {})
        return _annotation_shapes(info.get("annotations", {}) or {})

    def _shapes_fixpoint(self) -> None:
        facts: Dict[str, Optional[arrayflow.AShape]] = {
            fid: None for fid in self.functions}
        dotted_facts: Dict[str, Optional[arrayflow.AShape]] = {}
        for _ in range(8):
            changed = False
            for fid, info in self.functions.items():
                returns = info.get("shape_returns", ())
                if not returns:
                    continue
                params = self.param_shapes(fid)
                values = set()
                for expr in returns:        # type: ignore[union-attr]
                    values.add(arrayflow.eval_shape(expr, params,
                                                    dotted_facts))
                values.discard(None)
                new = values.pop() if len(values) == 1 else None
                if new != facts[fid]:
                    facts[fid] = new
                    changed = True
            dotted_facts = self._dotted_facts(facts)
            if not changed:
                break
        self.shape_returns = facts
        self._dotted_shapes = dotted_facts

    def shape_facts_for_eval(self) -> Dict[str,
                                           Optional[arrayflow.AShape]]:
        """Return-shape facts keyed by *dotted* name (call leaves)."""
        return dict(self._dotted_shapes)

    # -- purity facts -----------------------------------------------------
    def _collect_roots(self, extra_task_refs: Iterable[str]) -> None:
        refs: Dict[str, List[Tuple[str, str, int]]] = {}
        for modname, summary in self.modules.items():
            for ref, line in summary.get("task_refs", ()):  # type: ignore[union-attr]
                mod, _, fn = str(ref).partition(":")
                if mod not in self.modules:
                    continue                      # external reference
                fid = f"{mod}:{fn}"
                if fid in self.functions:
                    refs.setdefault(fid, []).append(
                        (str(ref), modname, int(line)))
                else:
                    self.unresolved_refs.setdefault(modname, []).append(
                        (str(ref), int(line)))
        for ref in extra_task_refs:
            mod, _, fn = str(ref).partition(":")
            fid = f"{mod}:{fn}"
            if mod in self.modules and fid in self.functions:
                refs.setdefault(fid, []).append((str(ref), mod, 0))
        self.task_roots = refs

    def _reachability(self) -> None:
        reach: Dict[str, Dict[str, str]] = {}
        for root in sorted(self.task_roots):
            chains: Dict[str, str] = {root: root.rsplit(":", 1)[-1]}
            queue = [root]
            while queue:
                current = queue.pop(0)
                for target in self.internal_callees(current):
                    if target in chains:
                        continue
                    chains[target] = (f"{chains[current]} -> "
                                      f"{target.rsplit(':', 1)[-1]}")
                    queue.append(target)
            for fid, chain in chains.items():
                reach.setdefault(fid, {})[root] = chain
        self.reach = reach

    # -- perf facts -------------------------------------------------------
    def _loop_context(self) -> None:
        out: Dict[str, Tuple[str, int]] = {}
        for fid in sorted(self.callees):
            for target, line, in_loop in self.callees[fid]:
                if in_loop and target not in out:
                    out[target] = (fid, line)
        self.loop_called = out

    # -- per-module fact slices (cache invalidation keys) -----------------
    def fact_slice(self, modname: str) -> Dict[str, object]:
        """Everything a module's project findings depend on, hashable.

        A module needs re-linting exactly when this slice changes: the
        return dimensions and shapes of what it calls (units, RV8xx),
        the callees' declared parameter shapes and out-of-loop
        allocations (RV804, caller-side RV702), and the task-roots
        reaching its functions with their chains (purity).
        """
        summary = self.modules.get(modname, {})
        function_ids = [f"{modname}:{qual}"
                        for qual in summary.get("functions", {})]  # type: ignore[union-attr]
        callees: Set[str] = set()
        for fid in function_ids:
            callees.update(self.internal_callees(fid))
        units = {}
        shapes = {}
        callee_sigs = {}
        callee_allocs = {}
        effects = {}
        for callee in sorted(callees):
            dim = self.units_returns.get(callee)
            units[callee] = list(dim) if dim else None
            shape = self.shape_returns.get(callee)
            shapes[callee] = shape.to_json() if shape is not None else None
            info = self.functions.get(callee, {})
            callee_sigs[callee] = {
                "params": list(info.get("signature", {})
                               .get("params", ())),    # type: ignore[union-attr]
                "ann": dict(info.get("annotations", {}) or {}),
            }
            allocs = info.get("nonloop_allocs") or []
            if allocs:
                callee_allocs[callee] = [list(a) for a in allocs]
            callee_effects = info.get("effects") or []
            if callee_effects:
                effects[callee] = [list(a) for a in callee_effects]
        purity = {}
        for fid in function_ids:
            if fid in self.reach:
                purity[fid] = {root: chain for root, chain
                               in sorted(self.reach[fid].items())}
        roots_here = {fid: sorted(r[0] for r in refs)
                      for fid, refs in self.task_roots.items()
                      if self.module_of(fid) == modname}
        return {
            "units": units,
            "shapes": shapes,
            "callee_sigs": callee_sigs,
            "callee_allocs": callee_allocs,
            "callee_effects": effects,
            "purity": purity,
            "roots": roots_here,
            "unresolved": self.unresolved_refs.get(modname, []),
        }

    def fact_digest(self, modname: str) -> str:
        """Content hash of :meth:`fact_slice` for the lint cache."""
        return _stable_digest(self.fact_slice(modname))


class ProjectModule:
    """The target object handed to every ``scope="project"`` rule.

    Attributes
    ----------
    module:
        The parsed :class:`SourceModule` (AST available).
    name:
        Dotted module name.
    summary:
        This module's summary dict.
    project:
        The assembled :class:`SourceProject` with facts.
    """

    def __init__(self, module: SourceModule, name: str,
                 summary: Dict[str, object], project: SourceProject):
        self.module = module
        self.name = name
        self.summary = summary
        self.project = project
