"""Static analysis for netlists and SPICE decks (``repro lint``).

This package generalises the seed's ad-hoc circuit linter into a
rule-registry framework:

* :mod:`repro.verify.core` — rules, diagnostics, config, reports;
* :mod:`repro.verify.rules_circuit` — generic netlist hygiene (RV0xx);
* :mod:`repro.verify.rules_power` — power-gating structure (RV1xx):
  virtual-rail islands, orphaned MTJs, always-on store paths, bypassed
  power switches;
* :mod:`repro.verify.rules_mna` — structural MNA solvability (RV2xx);
* :mod:`repro.verify.rules_deck` — SPICE-deck text checks (RV3xx);
* :mod:`repro.verify.rules_source` — Python-source checks over the
  simulator itself (RV4xx): float equality on physical quantities,
  NaN/skip hazards over partial sweep results, stamp-contract drift,
  raw SPICE quantity strings, swallowed solver forensics, mutable
  default arguments;
* :mod:`repro.verify.callgraph` / :mod:`repro.verify.dataflow` — the
  interprocedural substrate: project symbol table, call graph, forward
  dimension dataflow, incremental fact digests;
* :mod:`repro.verify.rules_units` — RV5xx physical-units dataflow
  (dimension mixing, unit-API mismatches, format_eng string misuse)
  across module boundaries;
* :mod:`repro.verify.rules_purity` — RV6xx campaign-task purity
  (transitive state mutation, nondeterminism, stray filesystem writes,
  JSON-unsafe signatures);
* :mod:`repro.verify.rules_perf` — RV7xx hot-path inventory (per
  element stamping loops, dense allocations in loops, invariant
  reassembly) feeding the vectorization worklist;
* :mod:`repro.verify.arrayflow` / :mod:`repro.verify.rules_array` —
  RV8xx array semantics: a symbolic shape/dtype lattice catching
  provable broadcast mismatches, dtype demotion, unintended copies,
  in-place aliasing hazards and batch-axis drift across calls;
* :mod:`repro.verify.effects` / :mod:`repro.verify.rules_effects` —
  RV9xx concurrency & crash safety: per-function effect signatures
  (writes/renames/fsyncs with path provenance, queue and process
  ordering, spawn-visible global reads) enforcing the atomic-write,
  journal-append and signal-handler protocols, cross-validated
  dynamically by :mod:`repro.verify.crashcheck`
  (``repro chaos --crashpoints``);
* :mod:`repro.verify.fix` — finding-driven codemods (``repro fix``)
  that mechanically apply the RV702/RV703/RV803/RV900 rewrites;
* :mod:`repro.verify.baseline` — record-and-suppress of pre-existing
  findings so new bands gate only new regressions;
* :mod:`repro.verify.emit` — text / JSON / SARIF output.

Entry points: :func:`verify_circuit`, :func:`verify_deck`,
:func:`verify_deck_file`, :func:`verify_source`,
:func:`verify_source_file` produce a :class:`Report`;
:func:`assert_clean` is the lint-before-simulate hook used by the cell
builders and characterization runners (disable globally with
``REPRO_LINT=0``, per-rule with ``REPRO_LINT_DISABLE=RV104,...``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from ..errors import ReproError, VerificationError
from .core import (
    REGISTRY,
    Diagnostic,
    Finding,
    Report,
    Rule,
    RuleRegistry,
    Severity,
    SourceLocation,
    VerifyConfig,
    rule,
    run_rules,
)
# Importing the rule modules registers their rules with REGISTRY.
from . import rules_circuit   # noqa: F401  (registration side effect)
from . import rules_power     # noqa: F401
from . import rules_mna       # noqa: F401
from . import rules_deck      # noqa: F401
from . import rules_source    # noqa: F401
from . import rules_units     # noqa: F401
from . import rules_purity    # noqa: F401
from . import rules_perf      # noqa: F401
from . import rules_array     # noqa: F401
from . import rules_effects   # noqa: F401
from .baseline import (
    apply_baseline,
    baseline_fingerprint,
    load_baseline,
    prune_baseline,
    write_baseline,
)
from .callgraph import (
    ProjectModule,
    SourceProject,
    module_name_for,
    summarize_module,
)
from .emit import render_json, render_sarif, render_text
from .rules_deck import DeckSource
from .source import (
    SourceModule,
    default_source_paths,
    verify_source,
    verify_source_file,
    verify_source_text,
)
from .stampcheck import (
    StampCheckResult,
    assert_stamps_clean,
    check_circuit_stamps,
    check_element_stamp,
)

__all__ = [
    "REGISTRY",
    "DeckSource",
    "Diagnostic",
    "Finding",
    "ProjectModule",
    "Report",
    "Rule",
    "RuleRegistry",
    "Severity",
    "SourceLocation",
    "SourceModule",
    "SourceProject",
    "StampCheckResult",
    "VerificationError",
    "VerifyConfig",
    "apply_baseline",
    "assert_clean",
    "baseline_fingerprint",
    "assert_stamps_clean",
    "check_circuit_stamps",
    "check_element_stamp",
    "default_source_paths",
    "lint_enabled",
    "load_baseline",
    "module_name_for",
    "prune_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
    "run_rules",
    "summarize_module",
    "verify_circuit",
    "verify_deck",
    "verify_deck_file",
    "verify_source",
    "verify_source_file",
    "verify_source_text",
    "write_baseline",
]


def lint_enabled() -> bool:
    """False when the ``REPRO_LINT`` escape hatch disables the hooks.

    Set ``REPRO_LINT=0`` (or ``off``/``false``/``no``) to bypass the
    lint-before-simulate checks, e.g. to reproduce a known-broken
    configuration on purpose.
    """
    value = os.environ.get("REPRO_LINT", "1").strip().lower()
    return value not in ("0", "off", "false", "no")


def verify_circuit(circuit, config: Optional[VerifyConfig] = None,
                   target: str = "") -> Report:
    """Run all circuit-scope rules against ``circuit``."""
    if config is None:
        config = VerifyConfig.from_env()
    name = target or circuit.title or "circuit"
    return run_rules(circuit, "circuit", target_name=name, config=config)


def verify_deck(text: str, path: str = "",
                config: Optional[VerifyConfig] = None,
                include_circuit: bool = True) -> Report:
    """Lint SPICE deck ``text``: deck-level rules plus, when the deck
    parses, the circuit-scope rules on the flattened netlist."""
    if config is None:
        config = VerifyConfig.from_env()
    source = DeckSource(text, path=path)
    name = path or source.title or "deck"
    report = run_rules(source, "deck", target_name=name, config=config)
    if include_circuit:
        from ..spice.parser import parse_deck
        try:
            parsed = parse_deck(text)
        except ReproError:
            return report   # RV300 already reported the rejection
        report.extend(verify_circuit(parsed.circuit, config=config,
                                     target=name))
    return report


def verify_deck_file(path, config: Optional[VerifyConfig] = None,
                     include_circuit: bool = True) -> Report:
    """Lint the deck file at ``path`` (see :func:`verify_deck`)."""
    p = Path(path)
    return verify_deck(p.read_text(), path=str(p), config=config,
                       include_circuit=include_circuit)


def assert_clean(circuit, target: str = "",
                 config: Optional[VerifyConfig] = None) -> Report:
    """Lint ``circuit`` and raise on error findings.

    The lint-before-simulate hook: cell builders and characterization
    runners call this so a mis-wired power switch or orphaned MTJ fails
    fast with rule codes instead of surfacing later as a convergence
    failure or a silently wrong energy figure.  Honors
    :func:`lint_enabled` — with ``REPRO_LINT=0`` it returns an empty
    report without running anything.

    Raises
    ------
    repro.errors.VerificationError
        If any error-severity diagnostic is found.
    """
    if not lint_enabled():
        return Report(target=target)
    report = verify_circuit(circuit, config=config, target=target)
    report.raise_on_errors()
    return report
