"""Differential / metamorphic solver-equivalence harness.

The numerical-trust layer (:mod:`repro.analysis.trust`) certifies each
*individual* solve; this module certifies the *solver as a whole*
against two independent oracles:

1. **A frozen golden corpus** — DC operating points and transient
   store/restore traces of the paper's cells (6T, NV-SRAM, NVFF, and
   the power-gating rail testbench), committed as content-hashed JSON
   under ``equiv_corpus/``.  ``equiv run`` re-simulates every case and
   compares each extracted quantity against the golden value through a
   per-quantity-kind tolerance model.  Any future solver (e.g. a
   batched core) must reproduce this corpus before it can land.

2. **Metamorphic invariants** — transformations of a deck whose effect
   on the solution is known exactly: relabeling/permuting nodes (a row
   permutation of the MNA system), rescaling every impedance by a
   power of two (voltages invariant, source powers scale by 1/k),
   driving sources through ``Context.source_scale`` versus scaling the
   source levels themselves (identical for linear decks), and
   perturbing gmin within its floor decade (bounded voltage shift on a
   low-impedance deck).  These need no corpus: the deck is its own
   oracle.

Command line::

    python -m repro equiv run [--strict] [--case NAME]... [--json OUT]
    python -m repro equiv update [--case NAME]...
    python -m repro equiv diff [--case NAME]...

``run --strict`` is the CI gate: it fails on any tolerance violation,
any failed invariant, any missing/corrupt corpus entry, and any corpus
hash mismatch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..exec.atomicio import atomic_write_text

#: Corpus file format version; bump on incompatible layout changes.
CORPUS_SCHEMA = 1


class EquivError(ReproError):
    """The equivalence harness cannot run (bad case name, corrupt corpus)."""


# ---------------------------------------------------------------------------
# tolerance model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Tolerance:
    """Symmetric absolute + relative tolerance for one quantity kind."""

    atol: float
    rtol: float

    def allows(self, got: float, want: float) -> bool:
        if not (np.isfinite(got) and np.isfinite(want)):
            return False
        if got == want:
            return True
        return abs(got - want) <= self.atol + self.rtol * abs(want)

    def margin(self, got: float, want: float) -> float:
        """|got - want| as a multiple of the allowance (>1 = violation)."""
        allowance = self.atol + self.rtol * abs(want)
        if allowance == 0.0:
            return 0.0 if got == want else float("inf")
        return abs(got - want) / allowance


#: Per-quantity-kind tolerances.  Voltages are the primary observable
#: (node potentials at a settled operating point are robust to solver
#: reorderings); energies integrate an adaptive-timestep trace, so they
#: get a looser relative band; counts and flags must match exactly.
TOLERANCES: Dict[str, Tolerance] = {
    "voltage": Tolerance(atol=1e-5, rtol=1e-4),
    "power": Tolerance(atol=1e-14, rtol=1e-3),
    "energy": Tolerance(atol=1e-17, rtol=2e-3),
    "time": Tolerance(atol=5e-12, rtol=5e-3),
    "count": Tolerance(atol=0.0, rtol=0.0),
    "flag": Tolerance(atol=0.0, rtol=0.0),
}


@dataclass(frozen=True)
class Quantity:
    """One extracted observable: a value plus its tolerance kind."""

    value: float
    kind: str

    def __post_init__(self):
        if self.kind not in TOLERANCES:
            raise EquivError(f"unknown quantity kind {self.kind!r}")

    def to_dict(self) -> dict:
        return {"value": float(self.value), "kind": self.kind}


# ---------------------------------------------------------------------------
# corpus cases
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Case:
    """A reproducible simulation whose observables are frozen as golden."""

    name: str
    description: str
    runner: Callable[[], Dict[str, Quantity]]


def _supply_power(tb, sol) -> float:
    from ..characterize.testbench import SUPPLY_SOURCES

    return sum(tb.circuit[name].delivered_power(sol)
               for name in SUPPLY_SOURCES)


def _cell_dc_case(kind: str, mode_name: str) -> Dict[str, Quantity]:
    """Operating point of the single-cell testbench in one mode."""
    from ..characterize.testbench import build_cell_testbench
    from ..pg.modes import Mode
    from ..analysis import operating_point

    tb = build_cell_testbench(kind)
    mode = Mode(mode_name)
    tb.apply_mode(mode)
    if mode is Mode.SHUTDOWN:
        ic = None    # the latch holds no state when powered off
    else:
        rail = tb.cond.v_sleep_rail if mode is Mode.SLEEP else tb.cond.vdd
        ic = tb.core.initial_conditions(True, rail)
        ic["vvdd"] = rail
    sol = operating_point(tb.circuit, ic=ic)
    core = tb.core
    out = {
        f"v({node})": Quantity(sol.voltage(node), "voltage")
        for node in (core.q, core.qb, "vvdd", "bl", "blb")
    }
    out["p(supply)"] = Quantity(_supply_power(tb, sol), "power")
    return out


def _nvff_dc_case() -> Dict[str, Quantity]:
    """Operating point of the NV flip-flop bench holding a 1."""
    from ..characterize.ff_runner import _build_ff_bench
    from ..devices.mtj import MTJ_TABLE1
    from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
    from ..pg.modes import OperatingConditions
    from ..analysis import operating_point

    cond = OperatingConditions()
    circuit, ff = _build_ff_bench(cond, NFET_20NM_HP, PFET_20NM_HP,
                                  MTJ_TABLE1)
    ic = ff.initial_conditions(True, cond.vdd)
    ic["vvdd"] = cond.vdd
    sol = operating_point(circuit, ic=ic)
    return {
        f"v({node})": Quantity(sol.voltage(node), "voltage")
        for node in (ff.q, ff.s, ff.s3, "vvdd")
    } | {
        "p(vdd)": Quantity(circuit["vdd"].delivered_power(sol), "power"),
        "q-high": Quantity(float(ff.read_q(sol, cond.vdd)), "flag"),
    }


def _nv_store_case() -> Dict[str, Quantity]:
    """Two-step store transient of the NV-SRAM cell (H then L store)."""
    from ..characterize.testbench import SUPPLY_SOURCES, build_cell_testbench
    from ..pg.modes import Mode
    from ..pg.scheduler import Schedule, ScheduleStep
    from ..analysis import transient
    from ..analysis.transient import TransientOptions

    tb = build_cell_testbench("nv")
    cond = tb.cond
    schedule = Schedule(
        [
            ScheduleStep(Mode.STANDBY, 1e-9),
            ScheduleStep(Mode.STORE_H, cond.t_store_step),
            ScheduleStep(Mode.STORE_L, cond.t_store_step),
            ScheduleStep(Mode.SHUTDOWN, 2e-9),
        ],
        cond,
        volatile=False,
    )
    tb.apply_waveforms(schedule.line_waveforms())
    tb.set_mtj_data(False)   # both MTJs must flip during the store
    result = transient(
        tb.circuit, schedule.total_duration,
        ic=tb.initial_conditions(True),
        options=TransientOptions(
            dt_initial=min(20e-12, cond.t_cycle / 200.0),
            dt_max=schedule.total_duration / 40.0,
        ),
    )
    win_h = schedule.windows_of(Mode.STORE_H)[0]
    win_l = schedule.windows_of(Mode.STORE_L)[0]
    final = result.final_solution()
    return {
        "e(store_h)": Quantity(
            result.energy(SUPPLY_SOURCES, win_h.t_start, win_h.t_end),
            "energy"),
        "e(store_l)": Quantity(
            result.energy(SUPPLY_SOURCES, win_l.t_start, win_l.t_end),
            "energy"),
        "v(q,final)": Quantity(final.voltage(tb.core.q), "voltage"),
        "v(qb,final)": Quantity(final.voltage(tb.core.qb), "voltage"),
        "mtj-events": Quantity(float(len(result.events)), "count"),
        "stored-1": Quantity(
            float(tb.nv_cell.stored_data(tb.circuit) is True), "flag"),
    }


def _nv_restore_case() -> Dict[str, Quantity]:
    """Collapsed-rail wake-up recall of the NV-SRAM cell."""
    from ..characterize.testbench import SUPPLY_SOURCES, build_cell_testbench
    from ..pg.modes import Mode
    from ..pg.scheduler import Schedule, ScheduleStep
    from ..analysis import transient
    from ..analysis.transient import TransientOptions

    tb = build_cell_testbench("nv")
    cond = tb.cond
    schedule = Schedule(
        [
            ScheduleStep(Mode.SHUTDOWN, 2e-9),
            ScheduleStep(Mode.RESTORE, cond.t_restore),
            ScheduleStep(Mode.STANDBY, 3e-9),
        ],
        cond,
        volatile=False,
    )
    tb.apply_waveforms(schedule.line_waveforms())
    tb.set_mtj_data(True)
    result = transient(
        tb.circuit, schedule.total_duration,
        ic={tb.core.q: 0.0, tb.core.qb: 0.0, "vvdd": 0.0},
        options=TransientOptions(
            dt_initial=min(20e-12, cond.t_cycle / 200.0),
            dt_max=schedule.total_duration / 40.0,
        ),
    )
    window = schedule.windows_of(Mode.RESTORE)[0]
    final = result.final_solution()
    return {
        "e(restore)": Quantity(
            result.energy(SUPPLY_SOURCES, window.t_start, window.t_end),
            "energy"),
        "v(q,final)": Quantity(final.voltage(tb.core.q), "voltage"),
        "v(qb,final)": Quantity(final.voltage(tb.core.qb), "voltage"),
        "restored-1": Quantity(
            float(tb.core.read_data(final, cond.vdd)), "flag"),
    }


def _pg_rail_case() -> Dict[str, Quantity]:
    """Virtual-rail decay after a super-cutoff shutdown (6T bench).

    The floating-VVDD trace is the conditioning-hostile corner the
    trust layer defends; freezing it pins both the rail dynamics and
    the DC leakage divider a batched solver must reproduce.
    """
    from ..characterize.testbench import build_cell_testbench
    from ..circuit.waveforms import PiecewiseLinear
    from ..pg.modes import Mode
    from ..analysis import transient
    from ..analysis.transient import TransientOptions

    tb = build_cell_testbench("6t")
    cond = tb.cond
    tb.apply_mode(Mode.STANDBY)
    # Super-cutoff the header switch 1 ns in (100 ps gate ramp).
    tb.circuit["vpg"].set_waveform(PiecewiseLinear(
        [(0.0, 0.0), (1e-9, 0.0), (1.1e-9, cond.v_pg_super)]))
    ic = tb.core.initial_conditions(True, cond.vdd)
    ic["vvdd"] = cond.vdd
    result = transient(tb.circuit, 8e-9, ic=ic,
                       options=TransientOptions(dt_max=0.2e-9))
    out = {
        f"v(vvdd,{t * 1e9:g}ns)": Quantity(
            float(result.sample("vvdd", t)), "voltage")
        for t in (0.5e-9, 2e-9, 4e-9, 8e-9)
    }
    out["v(q,final)"] = Quantity(
        result.final_solution().voltage(tb.core.q), "voltage")
    return out


CASES: Dict[str, Case] = {
    case.name: case for case in (
        Case("6t-standby-op",
             "6T cell testbench, normal-mode operating point",
             lambda: _cell_dc_case("6t", "standby")),
        Case("6t-sleep-op",
             "6T cell testbench, 0.7 V retention-sleep operating point",
             lambda: _cell_dc_case("6t", "sleep")),
        Case("nv-standby-op",
             "NV-SRAM cell testbench, normal-mode operating point",
             lambda: _cell_dc_case("nv", "standby")),
        Case("nv-shutdown-op",
             "NV-SRAM cell testbench, super-cutoff floating-VVDD point",
             lambda: _cell_dc_case("nv", "shutdown")),
        Case("nvff-op",
             "NV flip-flop bench, powered operating point holding a 1",
             _nvff_dc_case),
        Case("nv-store-tran",
             "NV-SRAM two-step store transient (both MTJs flip)",
             _nv_store_case),
        Case("nv-restore-tran",
             "NV-SRAM collapsed-rail restore transient",
             _nv_restore_case),
        Case("pg-rail-tran",
             "6T bench virtual-rail decay after super-cutoff shutdown",
             _pg_rail_case),
    )
}


# ---------------------------------------------------------------------------
# corpus storage
# ---------------------------------------------------------------------------

def default_corpus_dir() -> Path:
    """The committed golden corpus shipped inside the package."""
    return Path(__file__).resolve().parent / "equiv_corpus"


def content_hash(payload: Dict[str, object]) -> str:
    """sha256 of the canonical JSON encoding (sans the hash field)."""
    body = {k: payload[k] for k in sorted(payload) if k != "hash"}
    blob = json.dumps(body, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def golden_payload(case: Case,
                   quantities: Dict[str, Quantity]) -> Dict[str, object]:
    """Serialisable corpus entry for ``case``, content hash included."""
    payload: Dict[str, object] = {
        "schema": CORPUS_SCHEMA,
        "case": case.name,
        "description": case.description,
        "quantities": {name: q.to_dict()
                       for name, q in sorted(quantities.items())},
    }
    payload["hash"] = content_hash(payload)
    return payload


def load_golden(name: str, corpus_dir: Path) -> Dict[str, Quantity]:
    """Read and integrity-check one golden corpus entry."""
    path = corpus_dir / f"{name}.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise EquivError(f"no golden corpus entry for {name!r} "
                         f"(expected {path}); run 'repro equiv update'")
    except json.JSONDecodeError as exc:
        raise EquivError(f"corrupt corpus entry {path}: {exc}") from exc
    if payload.get("schema") != CORPUS_SCHEMA:
        raise EquivError(f"{path}: corpus schema "
                         f"{payload.get('schema')!r} != {CORPUS_SCHEMA}")
    if payload.get("hash") != content_hash(payload):
        raise EquivError(f"{path}: content hash mismatch — the golden "
                         "entry was edited by hand or truncated; "
                         "regenerate it with 'repro equiv update'")
    return {
        name_: Quantity(float(entry["value"]), str(entry["kind"]))
        for name_, entry in payload.get("quantities", {}).items()
    }


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Delta:
    """One quantity compared against its golden value."""

    name: str
    kind: str
    got: float
    want: float
    ok: bool
    margin: float

    def render(self) -> str:
        status = "ok  " if self.ok else "FAIL"
        return (f"    {status} {self.name:<22} got {self.got: .9g}  "
                f"want {self.want: .9g}  ({self.kind}, "
                f"{self.margin:.2f}x allowance)")


@dataclass
class CaseReport:
    """Outcome of one corpus case: drift deltas or a harness error."""

    case: str
    deltas: List[Delta] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and all(d.ok for d in self.deltas)

    @property
    def failures(self) -> List[Delta]:
        return [d for d in self.deltas if not d.ok]


def compare(quantities: Dict[str, Quantity],
            golden: Dict[str, Quantity]) -> List[Delta]:
    """Per-quantity deltas; quantities added/removed fail exactly."""
    deltas: List[Delta] = []
    for name in sorted(set(quantities) | set(golden)):
        got = quantities.get(name)
        want = golden.get(name)
        if got is None or want is None:
            present = got or want
            deltas.append(Delta(
                name=name, kind=present.kind,
                got=float("nan") if got is None else got.value,
                want=float("nan") if want is None else want.value,
                ok=False, margin=float("inf"),
            ))
            continue
        tol = TOLERANCES[want.kind]
        deltas.append(Delta(
            name=name, kind=want.kind, got=got.value, want=want.value,
            ok=tol.allows(got.value, want.value),
            margin=tol.margin(got.value, want.value),
        ))
    return deltas


# ---------------------------------------------------------------------------
# metamorphic invariants
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CheckResult:
    name: str
    ok: bool
    detail: str


def _ladder_deck(rename: Callable[[str], str], scale: float = 1.0):
    """A fixed five-resistor ladder with a FinFET follower.

    ``rename`` maps every internal node name (relabeling invariance);
    ``scale`` multiplies every impedance — resistances up, the FinFET's
    specific current down — so the whole deck, nonlinearity included,
    is exactly rescale-invariant in its node voltages.  The element mix
    (linear ladder + one nonlinear device) exercises both the LU path
    and the Newton linearisation.
    """
    from ..circuit import Circuit, Resistor, VoltageSource
    from ..devices import FinFET, NFET_20NM_HP

    c = Circuit("equiv-ladder")
    n = [rename(name) for name in ("a", "b", "mid", "tail", "out")]
    card = NFET_20NM_HP.with_(i_spec=NFET_20NM_HP.i_spec / scale)
    c.add(VoltageSource("vs", n[0], "0", dc=0.9))
    c.add(Resistor("r1", n[0], n[1], 1e3 * scale))
    c.add(Resistor("r2", n[1], n[2], 2e3 * scale))
    c.add(Resistor("r3", n[2], "0", 4e3 * scale))
    c.add(Resistor("r4", n[2], n[3], 8e3 * scale))
    c.add(Resistor("r5", n[3], "0", 1e3 * scale))
    c.add(FinFET("m1", n[4], n[2], "0", card))
    c.add(Resistor("rload", n[0], n[4], 20e3 * scale))
    return c, n


def _check_relabel() -> CheckResult:
    """Renaming every node permutes MNA rows; voltages must not move."""
    from ..analysis import operating_point

    base, nodes = _ladder_deck(lambda s: s)
    # Reversed-sorting names permutes the compiled node order.
    relabeled, renamed = _ladder_deck(lambda s: f"zz_{s[::-1]}")
    sol_a = operating_point(base)
    sol_b = operating_point(relabeled)
    worst = max(abs(sol_a.voltage(a) - sol_b.voltage(b))
                for a, b in zip(nodes, renamed))
    return CheckResult("node-relabel", worst <= 1e-9,
                       f"worst voltage shift {worst:.3g} V (<= 1e-9)")


def _check_unit_rescale() -> CheckResult:
    """x1024 impedance rescale: voltages fixed, source power / 1024."""
    from ..analysis import operating_point

    k = 1024.0
    base, nodes = _ladder_deck(lambda s: s)
    scaled, _ = _ladder_deck(lambda s: s, scale=k)
    sol_a = operating_point(base)
    sol_b = operating_point(scaled)
    worst_v = max(abs(sol_a.voltage(n) - sol_b.voltage(n)) for n in nodes)
    p_a = base["vs"].delivered_power(sol_a)
    p_b = scaled["vs"].delivered_power(sol_b)
    # gmin does not rescale (it is the solver's own floor): on the
    # scaled 20 MOhm branch it injects ~V*gmin/g ~ 2e-5 V, bounding the
    # attainable exactness.  These bands still catch any real unit bug.
    power_ok = abs(p_b * k - p_a) <= 1e-3 * abs(p_a)
    ok = worst_v <= 5e-5 and power_ok
    return CheckResult(
        "unit-rescale", ok,
        f"worst voltage shift {worst_v:.3g} V (<= 5e-5); "
        f"power ratio {p_a / p_b if p_b else float('inf'):.1f} (want ~{k:g})")


def _check_supply_scale() -> CheckResult:
    """``Context.source_scale`` must equal scaling the levels directly."""
    from ..analysis import operating_point
    from ..analysis.mna import Context
    from ..analysis.solver import newton_solve

    alpha = 0.5
    deck, nodes = _ladder_deck(lambda s: s)
    deck.compile()
    ctx = Context(source_scale=alpha)
    x = newton_solve(deck, ctx, np.zeros(deck.size))

    manual, _ = _ladder_deck(lambda s: s)
    manual["vs"].set_level(0.9 * alpha)
    sol = operating_point(manual)
    worst = max(abs(x[deck.index_of(n)] - sol.voltage(n)) for n in nodes)
    return CheckResult("supply-scale", worst <= 1e-6,
                       f"worst voltage shift {worst:.3g} V (<= 1e-6)")


def _check_gmin_perturbation() -> CheckResult:
    """A decade of gmin must not move a low-impedance deck's voltages."""
    from ..analysis.mna import Context
    from ..analysis.solver import NewtonOptions, newton_solve

    deck, nodes = _ladder_deck(lambda s: s)
    deck.compile()
    x_lo = newton_solve(deck, Context(), np.zeros(deck.size),
                        NewtonOptions(gmin=1e-12))
    x_hi = newton_solve(deck, Context(), np.zeros(deck.size),
                        NewtonOptions(gmin=1e-11))
    worst = max(abs(x_lo[deck.index_of(n)] - x_hi[deck.index_of(n)])
                for n in nodes)
    # Bound: dV <= V * R_node * dgmin; kOhm nodes at 0.9 V give ~1e-8.
    return CheckResult("gmin-perturbation", worst <= 1e-6,
                       f"worst voltage shift {worst:.3g} V (<= 1e-6)")


METAMORPHIC_CHECKS: Tuple[Callable[[], CheckResult], ...] = (
    _check_relabel,
    _check_unit_rescale,
    _check_supply_scale,
    _check_gmin_perturbation,
)


def run_metamorphic_checks() -> List[CheckResult]:
    """Run every metamorphic invariant; needs no golden data."""
    return [check() for check in METAMORPHIC_CHECKS]


# ---------------------------------------------------------------------------
# suite driver
# ---------------------------------------------------------------------------

@dataclass
class EquivReport:
    """Full outcome of an ``equiv run``/``diff`` invocation."""

    cases: List[CaseReport] = field(default_factory=list)
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (all(c.ok for c in self.cases)
                and all(c.ok for c in self.checks))

    def render(self, verbose: bool = False) -> str:
        lines = ["solver-equivalence gate"]
        for report in self.cases:
            if report.error is not None:
                lines.append(f"  ERROR {report.case}: {report.error}")
                continue
            n_fail = len(report.failures)
            status = "ok" if report.ok else f"{n_fail} FAILING"
            lines.append(f"  {'ok  ' if report.ok else 'FAIL'} "
                         f"{report.case:<18} "
                         f"{len(report.deltas)} quantities, {status}")
            shown = report.deltas if verbose else report.failures
            lines.extend(d.render() for d in shown)
        for check in self.checks:
            lines.append(f"  {'ok  ' if check.ok else 'FAIL'} "
                         f"{check.name:<18} {check.detail}")
        lines.append("gate: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        # bool()/float() coercion: comparison results computed from numpy
        # scalars arrive as np.bool_/np.float64, which json.dumps rejects.
        return {
            "ok": bool(self.ok),
            "cases": [
                {
                    "case": r.case,
                    "ok": bool(r.ok),
                    "error": r.error,
                    "deltas": [
                        {"name": d.name, "kind": d.kind,
                         "got": float(d.got), "want": float(d.want),
                         "ok": bool(d.ok), "margin": float(d.margin)}
                        for d in r.deltas
                    ],
                }
                for r in self.cases
            ],
            "checks": [
                {"name": c.name, "ok": bool(c.ok), "detail": c.detail}
                for c in self.checks
            ],
        }


def select_cases(names: Optional[Sequence[str]] = None) -> List[Case]:
    """Resolve case names to :class:`Case` objects (all when empty)."""
    if not names:
        return list(CASES.values())
    missing = [n for n in names if n not in CASES]
    if missing:
        known = ", ".join(sorted(CASES))
        raise EquivError(f"unknown case(s) {missing}; known: {known}")
    return [CASES[n] for n in names]


def run_suite(case_names: Optional[Sequence[str]] = None,
              corpus_dir: Optional[Path] = None,
              checks: bool = True) -> EquivReport:
    """Re-simulate the selected cases and diff them against the corpus.

    Harness-level problems (missing/corrupt corpus entries, a case that
    raises) land in :attr:`CaseReport.error` rather than aborting the
    whole run, so one broken case cannot hide drift in the others.
    """
    corpus = corpus_dir or default_corpus_dir()
    report = EquivReport()
    for case in select_cases(case_names):
        entry = CaseReport(case=case.name)
        report.cases.append(entry)
        try:
            golden = load_golden(case.name, corpus)
            quantities = case.runner()
        except (EquivError, ReproError) as exc:
            entry.error = str(exc)
            continue
        entry.deltas = compare(quantities, golden)
    if checks:
        report.checks = run_metamorphic_checks()
    return report


def update_corpus(case_names: Optional[Sequence[str]] = None,
                  corpus_dir: Optional[Path] = None) -> List[Path]:
    """Re-simulate the selected cases and (re)write their golden files."""
    corpus = corpus_dir or default_corpus_dir()
    corpus.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for case in select_cases(case_names):
        payload = golden_payload(case, case.runner())
        path = corpus / f"{case.name}.json"
        atomic_write_text(path,
                          json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
        written.append(path)
    return written
