"""RV7xx: hot-path performance inventory (project scope).

ROADMAP item 1 replaces the per-element Python stamping loops with a
vectorized batched solver.  This band *inventories* the work: every
Python-level loop that stamps into MNA ndarrays, every dense ndarray
allocation executed per Newton iteration or sweep point (lexically
inside a loop, or — via the call graph — inside a function that some
caller invokes from a loop), and every reassembly of topology-invariant
structure inside a loop.  Findings are informational by design: they
are a worklist, not defects, and ``python -m repro lint-source
--format json`` is the machine-readable form the refactor consumes.

======  =========================  =================================
code    name                       finding
======  =========================  =================================
RV701   per-element-stamp-loop     a Python loop stamping elements or
                                   filling A/b entry-by-entry
RV702   dense-alloc-in-loop        a dense ndarray allocation inside a
                                   loop, or in a function called from
                                   a loop elsewhere in the project
RV703   invariant-reassembly       topology-invariant structure
                                   (compile/stamp_pattern/row_labels)
                                   rebuilt inside a loop
======  =========================  =================================
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from . import callgraph, dataflow
from .core import Finding, rule

#: Stamper-object primitives (see ``analysis/stamps.py``): a call to one
#: of these on a receiver whose name mentions "stamp", inside a loop,
#: is per-element matrix filling.
_STAMP_PRIMS = frozenset({"conductance", "current", "vccs", "matrix",
                          "rhs"})

#: Dense-array constructors (numpy dotted tails).
_DENSE_ALLOCS = frozenset({
    "zeros", "ones", "empty", "full", "eye", "identity", "arange",
    "linspace", "zeros_like", "ones_like", "empty_like", "full_like",
    "diag", "vander", "meshgrid",
})

#: Topology-invariant assembly: same result every iteration for a fixed
#: circuit, so a loop re-calling them is wasted work.
_INVARIANT_TAILS = frozenset({"compile", "stamp_pattern", "row_labels"})

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _body_nodes(func: ast.FunctionDef) -> Iterator[
        Tuple[ast.AST, Optional[ast.AST]]]:
    """(node, innermost enclosing loop) for the function's own body.

    Nested function/class definitions are skipped — they are analysed
    as their own functions.
    """
    def visit(node: ast.AST, loop: Optional[ast.AST]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            yield child, loop
            child_loop = child if isinstance(child, _LOOPS) else loop
            yield from visit(child, child_loop)

    yield from visit(func, None)


def _is_matrix_fill(node: ast.AugAssign) -> bool:
    """``A[i, j] += g`` / ``b[k] -= i`` style per-entry system fill."""
    target = node.target
    if not isinstance(target, ast.Subscript):
        return False
    base = target.value
    name = None
    if isinstance(base, ast.Name):
        name = base.id
    elif isinstance(base, ast.Attribute):
        name = base.attr
    return name in ("A", "b", "G", "rhs", "jacobian")


class _PerfScan:
    """One pass over a module's functions collecting RV7xx findings."""

    def __init__(self, pm: "callgraph.ProjectModule"):
        self.pm = pm
        self.findings: List[Tuple[str, Finding]] = []
        self._seen: Set[Tuple[str, int]] = set()

    def run(self) -> List[Tuple[str, Finding]]:
        tree = self.pm.module.tree
        if tree is None:
            return []
        imports = callgraph._import_map(tree, self.pm.name)
        top = callgraph._module_level_names(tree)
        for qual, class_ctx, func in callgraph._collect_functions(tree):
            resolver = callgraph._Resolver(self.pm.name, imports, top)
            self._scan_function(qual, class_ctx, func, resolver)
        return self.findings

    def _emit(self, code: str, subject: str, node: ast.AST,
              message: str) -> None:
        line = getattr(node, "lineno", 0)
        if (code, line) in self._seen:
            return
        self._seen.add((code, line))
        self.findings.append((code, Finding(
            subject=subject, message=message,
            location=self.pm.module.loc(node))))

    def _scan_function(self, qual: str, class_ctx: str,
                       func: ast.FunctionDef,
                       resolver: "callgraph._Resolver") -> None:
        fid = f"{self.pm.name}:{qual}"
        stamp_loops: Set[ast.AST] = set()
        loop_reason: dict = {}

        for node, loop in _body_nodes(func):
            if isinstance(node, ast.Call):
                dotted = dataflow._call_target(node)
                self._scan_call(fid, node, dotted, loop, resolver,
                                class_ctx, stamp_loops, loop_reason)
            elif isinstance(node, ast.AugAssign) and loop is not None \
                    and _is_matrix_fill(node):
                stamp_loops.add(loop)
                loop_reason.setdefault(
                    loop, "fills the system matrix entry-by-entry")

        for loop in sorted(stamp_loops, key=lambda n: n.lineno):
            self._emit(
                "RV701", fid, loop,
                f"per-element Python stamping loop ({loop_reason[loop]}); "
                "vectorization worklist for the batched solver")

    def _scan_call(self, fid, node, dotted, loop, resolver, class_ctx,
                   stamp_loops, loop_reason) -> None:
        if dotted is None:
            return
        tail = dotted.rsplit(".", 1)[-1]
        receiver = dotted.rsplit(".", 1)[0] if "." in dotted else ""

        if loop is not None:
            if tail == "stamp":
                stamp_loops.add(loop)
                loop_reason.setdefault(
                    loop, "calls element .stamp() per element")
            elif tail in _STAMP_PRIMS and "stamp" in receiver.lower():
                stamp_loops.add(loop)
                loop_reason.setdefault(
                    loop, f"drives stamper primitive .{tail}() per entry")
            if tail in _INVARIANT_TAILS:
                self._emit(
                    "RV703", fid, node,
                    f"topology-invariant call .{tail}() inside a loop; "
                    "hoist it — the result is identical every iteration")

        if tail in _DENSE_ALLOCS:
            resolved = resolver.resolve(dotted, class_ctx) or ""
            if not (resolved.startswith("numpy.")
                    or resolved.startswith("scipy.")):
                return
            if loop is not None:
                self._emit(
                    "RV702", fid, node,
                    f"dense allocation {tail}() inside a loop; "
                    "preallocate outside and fill in place")
            else:
                caller = self.pm.project.loop_called.get(fid)
                if caller is not None:
                    self._emit(
                        "RV702", fid, node,
                        f"dense allocation {tail}() in a function called "
                        f"from a loop ({caller[0]} line {caller[1]}); "
                        "allocates once per iteration across the call")


def _perf_findings(pm, code: str) -> Iterator[Finding]:
    cached = getattr(pm, "_rv7_findings", None)
    if cached is None:
        cached = _PerfScan(pm).run()
        pm._rv7_findings = cached
    for found_code, finding in cached:
        if found_code == code:
            yield finding


@rule("RV701", "per-element-stamp-loop", "project", "info",
      "a Python loop stamps elements or fills the MNA system "
      "entry-by-entry",
      rationale="each transient step re-runs these loops; they are the "
                "inventory ROADMAP item 1's vectorized batched solver "
                "must eliminate.")
def check_stamp_loops(pm) -> Iterator[Finding]:
    """RV701: per-element stamping loops (the vectorization worklist)."""
    yield from _perf_findings(pm, "RV701")


@rule("RV702", "dense-alloc-in-loop", "project", "info",
      "a dense ndarray is allocated inside a loop (directly or via a "
      "loop-called function)",
      rationale="Newton iterations and sweep points dominate runtime; "
                "per-iteration allocation churns the allocator and "
                "defeats cache reuse.")
def check_dense_alloc(pm) -> Iterator[Finding]:
    """RV702: dense ndarray allocations executed per loop iteration."""
    yield from _perf_findings(pm, "RV702")


@rule("RV703", "invariant-reassembly", "project", "info",
      "topology-invariant structure is rebuilt inside a loop",
      rationale="compile()/stamp_pattern()/row_labels() depend only on "
                "the circuit; rebuilding them per iteration is pure "
                "overhead.")
def check_invariant_reassembly(pm) -> Iterator[Finding]:
    """RV703: topology-invariant structure rebuilt inside loops."""
    yield from _perf_findings(pm, "RV703")
