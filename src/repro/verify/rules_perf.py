"""RV7xx: hot-path performance inventory (project scope).

ROADMAP item 1 replaces the per-element Python stamping loops with a
vectorized batched solver.  This band *inventories* the work: every
Python-level loop that stamps into MNA ndarrays, every dense ndarray
allocation executed per Newton iteration or sweep point (lexically
inside a loop, or — via the call graph — behind a call some loop makes
into an allocating function), and every reassembly of topology-
invariant structure inside a loop.  Findings are informational by
design: they are a worklist, not defects, and ``python -m repro
lint-source --format json`` is the machine-readable form the refactor
(and the ``repro fix`` codemod engine) consumes.

======  =========================  =================================
code    name                       finding
======  =========================  =================================
RV701   per-element-stamp-loop     a Python loop stamping elements or
                                   filling A/b entry-by-entry
RV702   dense-alloc-in-loop        a dense ndarray allocation inside a
                                   loop — reported at the allocation,
                                   or (for allocations hidden in a
                                   callee) at the calling loop with
                                   the callee named in the message
RV703   invariant-reassembly       topology-invariant structure
                                   (compile/stamp_pattern/row_labels/
                                   elements) rebuilt inside a loop
======  =========================  =================================

Loop attribution is per-iteration, not lexical: a ``for`` statement's
iterable evaluates once per loop *entry*, so ``for e in c.elements()``
only counts as in-loop work when an *outer* loop re-executes it; a
``while`` condition re-evaluates every iteration and counts as its
own loop's work.  RV703 additionally skips calls whose receiver is
bound by an enclosing loop target (``for e in ...: e.stamp_pattern()``
varies per iteration — nothing to hoist).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from . import callgraph, dataflow
from .callgraph import DENSE_ALLOC_TAILS as _DENSE_ALLOCS
from .callgraph import body_nodes, loop_target_names
from .core import Finding, rule

#: Stamper-object primitives (see ``analysis/stamps.py``): a call to one
#: of these on a receiver whose name mentions "stamp", inside a loop,
#: is per-element matrix filling.
_STAMP_PRIMS = frozenset({"conductance", "current", "vccs", "matrix",
                          "rhs"})

#: Topology-invariant assembly: same result every iteration for a fixed
#: circuit, so a loop re-calling them is wasted work.
_INVARIANT_TAILS = frozenset({"compile", "stamp_pattern", "row_labels",
                              "elements"})


def _is_matrix_fill(node: ast.AugAssign) -> bool:
    """``A[i, j] += g`` / ``b[k] -= i`` style per-entry system fill."""
    target = node.target
    if not isinstance(target, ast.Subscript):
        return False
    base = target.value
    name = None
    if isinstance(base, ast.Name):
        name = base.id
    elif isinstance(base, ast.Attribute):
        name = base.attr
    return name in ("A", "b", "G", "rhs", "jacobian")


def _receiver_names(node: ast.Call) -> Set[str]:
    """Root names the call's receiver expression reads."""
    if not isinstance(node.func, ast.Attribute):
        return set()
    return {sub.id for sub in ast.walk(node.func.value)
            if isinstance(sub, ast.Name)}


class _PerfScan:
    """One pass over a module's functions collecting RV7xx findings."""

    def __init__(self, pm: "callgraph.ProjectModule"):
        self.pm = pm
        self.findings: List[Tuple[str, Finding]] = []
        self._seen: Set[Tuple[str, int]] = set()

    def run(self) -> List[Tuple[str, Finding]]:
        tree = self.pm.module.tree
        if tree is None:
            return []
        imports = callgraph._import_map(tree, self.pm.name)
        top = callgraph._module_level_names(tree)
        for qual, class_ctx, func in callgraph._collect_functions(tree):
            resolver = callgraph._Resolver(self.pm.name, imports, top)
            self._scan_function(qual, class_ctx, func, resolver)
        return self.findings

    def _emit(self, code: str, subject: str, node: ast.AST,
              message: str) -> None:
        line = getattr(node, "lineno", 0)
        if (code, line) in self._seen:
            return
        self._seen.add((code, line))
        self.findings.append((code, Finding(
            subject=subject, message=message,
            location=self.pm.module.loc(node))))

    def _scan_function(self, qual: str, class_ctx: str,
                       func: ast.FunctionDef,
                       resolver: "callgraph._Resolver") -> None:
        fid = f"{self.pm.name}:{qual}"
        stamp_loops: Set[ast.AST] = set()
        loop_reason: dict = {}

        for node, loops in body_nodes(func):
            loop = loops[-1] if loops else None
            if isinstance(node, ast.Call):
                dotted = dataflow._call_target(node)
                self._scan_call(fid, node, dotted, loop, loops, resolver,
                                class_ctx, stamp_loops, loop_reason)
            elif isinstance(node, ast.AugAssign) and loop is not None \
                    and _is_matrix_fill(node):
                stamp_loops.add(loop)
                loop_reason.setdefault(
                    loop, "fills the system matrix entry-by-entry")

        for loop in sorted(stamp_loops, key=lambda n: n.lineno):
            self._emit(
                "RV701", fid, loop,
                f"per-element Python stamping loop ({loop_reason[loop]}); "
                "vectorization worklist for the batched solver")

    def _scan_call(self, fid, node, dotted, loop, loops, resolver,
                   class_ctx, stamp_loops, loop_reason) -> None:
        if dotted is None:
            return
        tail = dotted.rsplit(".", 1)[-1]
        receiver = dotted.rsplit(".", 1)[0] if "." in dotted else ""

        if loop is not None:
            if tail == "stamp":
                stamp_loops.add(loop)
                loop_reason.setdefault(
                    loop, "calls element .stamp() per element")
            elif tail in _STAMP_PRIMS and "stamp" in receiver.lower():
                stamp_loops.add(loop)
                loop_reason.setdefault(
                    loop, f"drives stamper primitive .{tail}() per entry")
            if tail in _INVARIANT_TAILS \
                    and not (_receiver_names(node)
                             & loop_target_names(loops)):
                self._emit(
                    "RV703", fid, node,
                    f"topology-invariant call .{tail}() inside a loop; "
                    "hoist it — the result is identical every iteration")
            self._scan_loop_called_alloc(fid, node, dotted, loop,
                                         resolver, class_ctx)

        if tail in _DENSE_ALLOCS:
            resolved = resolver.resolve(dotted, class_ctx) or ""
            if not (resolved.startswith("numpy.")
                    or resolved.startswith("scipy.")):
                return
            if loop is not None:
                self._emit(
                    "RV702", fid, node,
                    f"dense allocation {tail}() inside a loop; "
                    "preallocate outside and fill in place")

    def _scan_loop_called_alloc(self, fid, node, dotted, loop,
                                resolver, class_ctx) -> None:
        """Caller-side RV702: this loop calls a function whose body
        allocates dense arrays (outside its own loops) — so the loop
        pays one allocation per iteration.  Reported at the calling
        loop, like RV701, with the callee in the message."""
        resolved = resolver.resolve(dotted, class_ctx)
        if resolved is None:
            return
        target = self.pm.project.resolve_dotted(resolved)
        if target is None:
            return
        allocs = self.pm.project.functions.get(target, {}) \
            .get("nonloop_allocs") or []
        if not allocs:
            return
        described = ", ".join(f"{tail}() at line {line}"
                              for tail, line in list(allocs)[:3])
        self._emit(
            "RV702", fid, loop,
            f"loop calls {target} per iteration, which allocates "
            f"{described} in its body; hoist the allocation or pass a "
            "buffer in")


def _perf_findings(pm, code: str) -> Iterator[Finding]:
    cached = getattr(pm, "_rv7_findings", None)
    if cached is None:
        cached = _PerfScan(pm).run()
        pm._rv7_findings = cached
    for found_code, finding in cached:
        if found_code == code:
            yield finding


@rule("RV701", "per-element-stamp-loop", "project", "info",
      "a Python loop stamps elements or fills the MNA system "
      "entry-by-entry",
      rationale="each transient step re-runs these loops; they are the "
                "inventory ROADMAP item 1's vectorized batched solver "
                "must eliminate.")
def check_stamp_loops(pm) -> Iterator[Finding]:
    """RV701: per-element stamping loops (the vectorization worklist)."""
    yield from _perf_findings(pm, "RV701")


@rule("RV702", "dense-alloc-in-loop", "project", "info",
      "a dense ndarray is allocated inside a loop (directly, or in a "
      "callee some loop invokes per iteration)",
      rationale="Newton iterations and sweep points dominate runtime; "
                "per-iteration allocation churns the allocator and "
                "defeats cache reuse.")
def check_dense_alloc(pm) -> Iterator[Finding]:
    """RV702: dense ndarray allocations executed per loop iteration."""
    yield from _perf_findings(pm, "RV702")


@rule("RV703", "invariant-reassembly", "project", "info",
      "topology-invariant structure is rebuilt inside a loop",
      rationale="compile()/stamp_pattern()/row_labels()/elements() "
                "depend only on the circuit; rebuilding them per "
                "iteration is pure overhead.")
def check_invariant_reassembly(pm) -> Iterator[Finding]:
    """RV703: topology-invariant structure rebuilt inside loops."""
    yield from _perf_findings(pm, "RV703")
