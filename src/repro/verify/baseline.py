"""Baseline files: suppress pre-existing findings, fail only on new ones.

Landing a new rule band on a mature tree normally forces a choice
between a mass-cleanup commit and leaving the band advisory.  A
baseline file is the third option: record today's findings once
(``repro lint-source --update-baseline lint-baseline.json``), commit
the file, and from then on ``--baseline lint-baseline.json`` drops
exactly those findings from the report — anything *new* still fails
``--strict`` CI.  Shrink the baseline as violations get fixed;
:func:`apply_baseline` reports unmatched (stale) fingerprints so the
file never silently rots.

Fingerprints hash ``code | target | subject | message`` — deliberately
**line-number-free**, so unrelated edits that shift a finding down the
file do not resurrect it.  The trade-off is honest: changing a
finding's message text (or moving the function to another module)
produces a new fingerprint, which is exactly when a human should look
again.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Set, Tuple

from ..exec.atomicio import atomic_write_text
from .core import Diagnostic, Report, Severity

#: Bump when the fingerprint recipe changes (stale baselines must fail
#: loudly, not silently match nothing).
BASELINE_SCHEMA = 1


def baseline_fingerprint(diag: Diagnostic) -> str:
    """Stable, line-number-free fingerprint of one diagnostic."""
    blob = "|".join((diag.code, diag.target, diag.subject, diag.message))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def write_baseline(path: "str | Path", report: Report) -> int:
    """Record ``report``'s findings as the new baseline; returns count.

    The file keeps a human-auditable entry per fingerprint (code,
    target, subject, message) alongside the hash — reviewers can see
    *what* was baselined without replaying the lint run.  Info-severity
    findings are never recorded: they are inventories (RV7xx), cannot
    fail a gate, and baselining them would only rot.
    """
    entries = {}
    for diag in report.diagnostics:
        if diag.severity is Severity.INFO:
            continue
        fingerprint = baseline_fingerprint(diag)
        entries[fingerprint] = {
            "code": diag.code,
            "target": diag.target,
            "subject": diag.subject,
            "message": diag.message,
        }
    payload = {
        "schema": BASELINE_SCHEMA,
        "count": len(entries),
        "entries": {k: entries[k] for k in sorted(entries)},
    }
    atomic_write_text(Path(path),
                      json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)


def load_baseline(path: "str | Path") -> Set[str]:
    """Fingerprints recorded in a baseline file.

    Raises
    ------
    ValueError
        On unparseable files or a schema mismatch — a stale or corrupt
        baseline must not silently un-suppress (or over-suppress) a
        strict CI gate.
    """
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise ValueError(f"cannot read baseline {path}: {err}") from err
    if not isinstance(data, dict) \
            or data.get("schema") != BASELINE_SCHEMA \
            or not isinstance(data.get("entries"), dict):
        raise ValueError(
            f"baseline {path} has schema {data.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA}; regenerate with "
            "--update-baseline")
    return set(data["entries"])


def prune_baseline(path: "str | Path", report: Report) -> int:
    """Delete stale fingerprints from the baseline at ``path``.

    A fingerprint is stale when it matches nothing in ``report`` — the
    violation was fixed but its entry lingers.  Unlike
    :func:`write_baseline` this never *adds* entries, so a regression
    introduced since the baseline was recorded stays visible (pruning
    is safe to run blindly; re-recording is not).  Returns the number
    of entries removed.

    Raises
    ------
    ValueError
        On unreadable/mismatched baseline files (same contract as
        :func:`load_baseline`).
    """
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise ValueError(f"cannot read baseline {path}: {err}") from err
    if not isinstance(data, dict) \
            or data.get("schema") != BASELINE_SCHEMA \
            or not isinstance(data.get("entries"), dict):
        raise ValueError(
            f"baseline {path} has schema {data.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA}; regenerate with "
            "--update-baseline")
    live = {baseline_fingerprint(diag) for diag in report.diagnostics}
    entries = data["entries"]
    stale = [fp for fp in entries if fp not in live]
    for fp in stale:
        del entries[fp]
    payload = {
        "schema": BASELINE_SCHEMA,
        "count": len(entries),
        "entries": {k: entries[k] for k in sorted(entries)},
    }
    atomic_write_text(Path(path),
                      json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(stale)


def apply_baseline(report: Report,
                   fingerprints: Iterable[str]) -> Tuple[Report, int, int]:
    """Drop baselined findings from ``report``.

    Returns ``(filtered report, suppressed count, stale count)`` where
    *stale* counts baseline fingerprints that matched nothing — fixed
    violations whose entries should be pruned from the file.
    """
    wanted = set(fingerprints)
    kept = []
    matched: Set[str] = set()
    for diag in report.diagnostics:
        fingerprint = baseline_fingerprint(diag)
        if fingerprint in wanted:
            matched.add(fingerprint)
        else:
            kept.append(diag)
    filtered = Report(target=report.target, diagnostics=kept)
    return filtered, len(report.diagnostics) - len(kept), \
        len(wanted - matched)
