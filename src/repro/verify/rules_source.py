"""RV4xx rules: ``ast``-based checks over the simulator's own source.

Netlist lint (RV0xx–RV3xx) guards what the simulator is *given*; these
rules guard what the simulator *is*.  Each rule encodes a failure mode
this codebase has by construction:

* RV400 — the module does not parse (owns the finding; the other rules
  skip modules whose AST is unavailable);
* RV401 — float ``==``/``!=`` against a non-zero float literal.
  Physical quantities (volts, amps, seconds) are never exactly equal
  after arithmetic; comparisons to literal ``0.0`` (sentinel / exact
  default checks) and the ``x != x`` NaN idiom are whitelisted;
* RV402 — NaN/skip hazards: ``dc_sweep(on_error="skip")`` renders
  failed points as NaN in every accessor, and ``min``/``max``/
  ``argmin``/ordering comparisons silently mis-rank NaN.  Reductions
  over sweep-accessor data in functions that neither use a ``nan*``
  reduction nor consult the skip accounting are flagged;
* RV403 — stamp-contract drift: every matrix entry an ``Element``
  subclass writes in ``stamp()`` must be declared by its
  ``stamp_pattern()`` — the same contract the RV201 structural-
  singularity check consumes, cross-checked symbolically on the AST;
* RV404 — raw SPICE quantity strings (``"10n"``, ``"1.5meg"``) used
  where floats are expected instead of going through
  :func:`repro.units.parse_quantity`;
* RV405 — bare or overbroad ``except`` that swallows
  ``ConvergenceError``/``TimestepError`` forensics without re-raising;
* RV406 — mutable default arguments in public APIs.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import Finding, Severity, rule
from .source import SourceModule

# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _scope_index(tree: ast.Module) -> List[Tuple[int, int, str]]:
    """``(start, end, qualname)`` for every def/class, innermost-resolvable.

    Used to attach findings to the function or class they live in.
    """
    spans: List[Tuple[int, int, str]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                spans.append((child.lineno,
                              child.end_lineno or child.lineno, qual))
                visit(child, qual)
            else:
                visit(child, prefix)

    visit(tree, "")
    return spans


def _scope_of(spans: Sequence[Tuple[int, int, str]], lineno: int) -> str:
    """Qualname of the innermost def/class containing ``lineno``."""
    best = "module"
    best_span = None
    for start, end, qual in spans:
        if start <= lineno <= end:
            span = end - start
            if best_span is None or span <= best_span:
                best, best_span = qual, span
    return best


def _functions(tree: ast.Module) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Every (qualname, function node), classes included in the name."""

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                yield qual, child
                yield from visit(child, qual)
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                yield from visit(child, qual)
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")  # type: ignore[misc]


# ---------------------------------------------------------------------------
# RV400 — syntax
# ---------------------------------------------------------------------------


@rule("RV400", "source-syntax", "source", "error",
      "The module does not parse as Python",
      "A module the package ships but cannot import is dead code at "
      "best and an ImportError landmine at worst; surfacing the parse "
      "failure as a located diagnostic keeps the rest of the source "
      "lint honest (every other RV4xx rule skips unparseable modules).")
def check_source_syntax(module: SourceModule) -> Iterator[Finding]:
    """Report the ``SyntaxError`` from :func:`ast.parse`, if any."""
    if module.syntax_error is None:
        return
    exc = module.syntax_error
    lineno = exc.lineno or 1
    from .core import SourceLocation
    yield Finding(
        subject=module.path or "module",
        message=f"syntax error: {exc.msg}",
        location=SourceLocation(line=lineno, text=module.line_text(lineno)),
    )


# ---------------------------------------------------------------------------
# RV401 — float equality on physical quantities
# ---------------------------------------------------------------------------


def _is_nonzero_float_literal(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value == node.value      # not NaN
            and node.value != 0.0)


@rule("RV401", "float-equality", "source", "warning",
      "== / != against a non-zero float literal",
      "Physical quantities (volts, amps, seconds) never compare exactly "
      "equal after arithmetic: 'v == 0.65' silently misses the solved "
      "0.6499999 V rail and the branch it guards goes untested.  Use a "
      "tolerance (math.isclose, abs(a-b) < tol).  Comparisons to "
      "literal 0.0 (exact-default / sentinel checks) and the 'x != x' "
      "NaN idiom are whitelisted.")
def check_float_equality(module: SourceModule) -> Iterator[Finding]:
    """Flag ``Eq``/``NotEq`` comparisons with non-zero float literals."""
    if module.tree is None:
        return
    spans = _scope_index(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if ast.dump(lhs) == ast.dump(rhs):
                continue   # x != x NaN idiom (and the degenerate x == x)
            literal = next((c for c in (lhs, rhs)
                            if _is_nonzero_float_literal(c)), None)
            if literal is None:
                continue
            symbol = "==" if isinstance(op, ast.Eq) else "!="
            yield Finding(
                subject=_scope_of(spans, node.lineno),
                message=(f"exact float {symbol} against "
                         f"{literal.value!r}: physical quantities never "
                         "compare exactly equal after arithmetic; use a "
                         "tolerance (math.isclose / abs(a-b) < tol)"),
                location=module.loc(node),
            )


# ---------------------------------------------------------------------------
# RV402 — NaN/skip hazards over partial sweep results
# ---------------------------------------------------------------------------

#: SweepResult accessors that render skipped points as NaN.
_SWEEP_ACCESSORS = frozenset({"measure", "voltage", "branch_current"})

#: Functions that create partial-result sweeps.
_SWEEP_MAKERS = frozenset({"dc_sweep"})

#: Any reference to these names/attributes marks the function as
#: NaN-aware (it guards, or it consults the skip accounting).
_NAN_GUARDS = frozenset({
    "isnan", "isfinite", "nanmin", "nanmax", "nanargmin", "nanargmax",
    "nan_to_num", "nansum", "nanmean", "num_skipped", "skips",
})

_HAZARD_BUILTINS = frozenset({"min", "max", "sorted"})
_HAZARD_ATTRS = frozenset({"min", "max", "argmin", "argmax",
                           "amin", "amax"})
_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _is_sweep_maker(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in _SWEEP_MAKERS
    if isinstance(func, ast.Attribute):
        return func.attr in _SWEEP_MAKERS
    return False


def _function_is_nan_aware(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id in _NAN_GUARDS:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _NAN_GUARDS:
            return True
    return False


class _SweepTaint:
    """Forward taint over one function body: sweep -> accessor -> arrays."""

    def __init__(self, func: ast.AST):
        self.sweep_vars: Set[str] = set()
        self.tainted_names: Set[str] = set()
        self._seed(func)

    def _seed(self, func: ast.AST) -> None:
        # Two passes reach the common assignment chains
        # (sweep = dc_sweep(...); x = sweep.measure(...); y = np.abs(x)).
        for _ in range(3):
            changed = False
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign):
                    continue
                targets = [t.id for t in node.targets
                           if isinstance(t, ast.Name)]
                if not targets:
                    continue
                if (isinstance(node.value, ast.Call)
                        and _is_sweep_maker(node.value)):
                    for name in targets:
                        if name not in self.sweep_vars:
                            self.sweep_vars.add(name)
                            changed = True
                elif self.expr_tainted(node.value):
                    for name in targets:
                        if name not in self.tainted_names:
                            self.tainted_names.add(name)
                            changed = True
            if not changed:
                break

    def _is_accessor_call(self, node: ast.AST) -> bool:
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SWEEP_ACCESSORS):
            return False
        receiver = node.func.value
        if isinstance(receiver, ast.Name):
            return receiver.id in self.sweep_vars
        if isinstance(receiver, ast.Call):
            return _is_sweep_maker(receiver)
        return False

    def expr_tainted(self, expr: ast.AST) -> bool:
        """True when any subexpression carries sweep-accessor data."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in self.tainted_names:
                return True
            if self._is_accessor_call(node):
                return True
        return False


@rule("RV402", "nan-skip-hazard", "source", "error",
      "NaN-unsafe reduction/comparison over partial sweep results",
      "dc_sweep(on_error='skip') renders every failed point as NaN in "
      "the accessors (.measure/.voltage/.branch_current).  np.min/np.max "
      "propagate NaN, np.argmin/argmax and ordering comparisons silently "
      "ignore or mis-rank it — the easiest way to corrupt an E_cyc or "
      "BET figure without an error message.  Use the nan* reductions or "
      "consult .skips/.num_skipped first.")
def check_nan_skip_hazard(module: SourceModule) -> Iterator[Finding]:
    """Taint sweep accessors; flag unguarded reductions/comparisons."""
    if module.tree is None:
        return
    for qualname, func in _functions(module.tree):
        taint = _SweepTaint(func)
        if not taint.sweep_vars:
            continue
        if _function_is_nan_aware(func):
            continue
        for node in ast.walk(func):
            hazard: Optional[str] = None
            if isinstance(node, ast.Call):
                fn = node.func
                if (isinstance(fn, ast.Name)
                        and fn.id in _HAZARD_BUILTINS
                        and any(taint.expr_tainted(a) for a in node.args)):
                    hazard = f"{fn.id}()"
                elif isinstance(fn, ast.Attribute) and \
                        fn.attr in _HAZARD_ATTRS and (
                            taint.expr_tainted(fn.value)
                            or any(taint.expr_tainted(a)
                                   for a in node.args)):
                    hazard = f".{fn.attr}()"
            elif isinstance(node, ast.Compare) and any(
                    isinstance(op, _ORDERING_OPS) for op in node.ops):
                sides = [node.left] + list(node.comparators)
                if any(taint.expr_tainted(s) for s in sides):
                    hazard = "ordering comparison"
            if hazard is not None:
                yield Finding(
                    subject=qualname,
                    message=(f"{hazard} over sweep-accessor data without "
                             "a NaN guard: on_error='skip' points are "
                             "NaN and will be dropped or mis-ranked "
                             "silently; use np.nanmin/np.nanmax/"
                             "np.nanargmin or check .num_skipped/"
                             "np.isnan first"),
                    location=module.loc(node),
                )


# ---------------------------------------------------------------------------
# RV403 — stamp()/stamp_pattern() contract drift
# ---------------------------------------------------------------------------

#: Symbolic value of an index expression: ("node", i) is
#: self.node_index[i], ("branch", i) is self.branch_index[i],
#: ("const", v) a literal.
_SymVal = Tuple[str, object]
_SymSet = Set[_SymVal]
_Env = Dict[str, Optional[_SymSet]]


def _render_sym(val: _SymVal) -> str:
    kind, idx = val
    if kind == "const":
        return repr(idx)
    return f"{kind}_index[{idx}]"


def _resolve(expr: ast.AST, env: _Env) -> Optional[_SymSet]:
    """Symbolic value-set of an index expression, or None if unknown."""
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return {("const", expr.value)}
    if (isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub)
            and isinstance(expr.operand, ast.Constant)
            and isinstance(expr.operand.value, int)):
        return {("const", -expr.operand.value)}
    return None


def _resolve_pair(rexpr: ast.AST, cexpr: ast.AST,
                  env: _Env) -> Optional[Set[Tuple[_SymVal, _SymVal]]]:
    rows = _resolve(rexpr, env)
    cols = _resolve(cexpr, env)
    if rows is None or cols is None:
        return None
    return {(r, c) for r in rows for c in cols}


def _seed_unpack(stmt: ast.Assign, env: _Env) -> bool:
    """Bind ``p, n = self.node_index`` style unpackings into ``env``."""
    value = stmt.value
    if not (isinstance(value, ast.Attribute)
            and value.attr in ("node_index", "branch_index")):
        return False
    source = "node" if value.attr == "node_index" else "branch"
    for target in stmt.targets:
        if isinstance(target, ast.Tuple) and all(
                isinstance(e, ast.Name) for e in target.elts):
            for position, elt in enumerate(target.elts):
                env[elt.id] = {(source, position)}  # type: ignore[union-attr]
            return True
    return False


def _conductance_block(
        args: Sequence[ast.AST],
        env: _Env) -> Optional[Set[Tuple[_SymVal, _SymVal]]]:
    """The four entries of ``stamper.conductance(p, n, g)``."""
    if len(args) < 2:
        return None
    p = _resolve(args[0], env)
    n = _resolve(args[1], env)
    if p is None or n is None:
        return None
    nodes = p | n
    return {(r, c) for r in nodes for c in nodes}


class _StampWrites:
    """Collect matrix entries written by a ``stamp()`` body."""

    def __init__(self) -> None:
        self.entries: Set[Tuple[_SymVal, _SymVal]] = set()
        self.locations: Dict[Tuple[_SymVal, _SymVal], ast.AST] = {}
        self.unresolved: List[ast.AST] = []

    def _add(self, pairs: Optional[Set[Tuple[_SymVal, _SymVal]]],
             node: ast.AST) -> None:
        if pairs is None:
            self.unresolved.append(node)
            return
        for pair in pairs:
            self.entries.add(pair)
            self.locations.setdefault(pair, node)

    def walk(self, stmts: Sequence[ast.stmt], env: _Env) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                if not _seed_unpack(stmt, env):
                    for target in stmt.targets:
                        self._maybe_subscript_write(target, env, stmt)
                        if isinstance(target, ast.Name):
                            env[target.id] = None   # opaque local
            elif isinstance(stmt, ast.AugAssign):
                self._maybe_subscript_write(stmt.target, env, stmt)
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value,
                                                           ast.Call):
                self._call(stmt.value, env)
            elif isinstance(stmt, ast.For):
                self.walk(stmt.body, self._loop_env(stmt, env))
                self.walk(stmt.orelse, env)
            elif isinstance(stmt, ast.If):
                self.walk(stmt.body, env)
                self.walk(stmt.orelse, env)
            elif isinstance(stmt, (ast.With, ast.While)):
                self.walk(stmt.body, env)
            elif isinstance(stmt, ast.Try):
                self.walk(stmt.body, env)
                for handler in stmt.handlers:
                    self.walk(handler.body, env)
                self.walk(stmt.finalbody, env)

    def _loop_env(self, stmt: ast.For, env: _Env) -> _Env:
        """Bind loop targets over a literal tuple/list of alternatives."""
        inner = dict(env)
        iterable = stmt.iter
        target = stmt.target
        if not isinstance(iterable, (ast.Tuple, ast.List)):
            self._clear_targets(target, inner)
            return inner
        if isinstance(target, ast.Name):
            union = self._union(iterable.elts, env)
            inner[target.id] = union
            return inner
        if isinstance(target, ast.Tuple) and all(
                isinstance(t, ast.Name) for t in target.elts):
            for position, name in enumerate(target.elts):
                members = []
                for elt in iterable.elts:
                    if (isinstance(elt, (ast.Tuple, ast.List))
                            and position < len(elt.elts)):
                        members.append(elt.elts[position])
                inner[name.id] = self._union(members, env)  # type: ignore
            return inner
        self._clear_targets(target, inner)
        return inner

    @staticmethod
    def _union(exprs: Sequence[ast.AST], env: _Env) -> Optional[_SymSet]:
        out: _SymSet = set()
        for expr in exprs:
            resolved = _resolve(expr, env)
            if resolved is None:
                return None
            out |= resolved
        return out or None

    @staticmethod
    def _clear_targets(target: ast.AST, env: _Env) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                env[node.id] = None

    def _call(self, call: ast.Call, env: _Env) -> None:
        if not isinstance(call.func, ast.Attribute):
            return
        method = call.func.attr
        args = call.args
        if method == "conductance":
            self._add(_conductance_block(args, env), call)
        elif method == "matrix" and len(args) >= 2:
            self._add(_resolve_pair(args[0], args[1], env), call)
        elif method == "vccs" and len(args) >= 4:
            rows = self._union(args[0:2], env)
            cols = self._union(args[2:4], env)
            if rows is None or cols is None:
                self._add(None, call)
            else:
                self._add({(r, c) for r in rows for c in cols}, call)
        # current()/rhs() touch only the RHS vector: no matrix entries.

    def _maybe_subscript_write(self, target: ast.AST, env: _Env,
                               stmt: ast.stmt) -> None:
        """``stamper.A[r, c] += ...`` raw matrix writes."""
        if not (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "A"):
            return
        index = target.slice
        if isinstance(index, ast.Tuple) and len(index.elts) == 2:
            self._add(_resolve_pair(index.elts[0], index.elts[1], env),
                      stmt)
        else:
            self._add(None, stmt)


def _eval_pattern_expr(
        expr: ast.AST, env: _Env,
        listvars: Dict[str, Optional[Set[Tuple[_SymVal, _SymVal]]]],
) -> Optional[Set[Tuple[_SymVal, _SymVal]]]:
    """Entries described by a stamp_pattern expression, or None."""
    if isinstance(expr, ast.Name):
        return listvars.get(expr.id)
    if isinstance(expr, ast.Call) and (
            (isinstance(expr.func, ast.Name)
             and expr.func.id == "conductance_pattern")
            or (isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "conductance_pattern")):
        return _conductance_block(expr.args, env)
    if isinstance(expr, (ast.List, ast.Tuple)):
        out: Set[Tuple[_SymVal, _SymVal]] = set()
        for elt in expr.elts:
            if isinstance(elt, (ast.Tuple, ast.List)) and len(elt.elts) == 2:
                pairs = _resolve_pair(elt.elts[0], elt.elts[1], env)
                if pairs is None:
                    return None
                out |= pairs
            else:
                return None
        return out
    if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
        return _expand_comprehension(expr, env)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        left = _eval_pattern_expr(expr.left, env, listvars)
        right = _eval_pattern_expr(expr.right, env, listvars)
        if left is None or right is None:
            return None
        return left | right
    return None


def _expand_comprehension(
        comp: "ast.ListComp | ast.GeneratorExp",
        env: _Env) -> Optional[Set[Tuple[_SymVal, _SymVal]]]:
    """Expand ``[(r, c) for r in (...) for c in (...)]`` symbolically.

    ``if`` clauses are ignored, which can only over-declare — safe for
    the "written must be subset of declared" direction of the check.
    """
    elt = comp.elt
    if not (isinstance(elt, (ast.Tuple, ast.List)) and len(elt.elts) == 2):
        return None

    def expand(generators: Sequence[ast.comprehension],
               scope: _Env) -> Optional[Set[Tuple[_SymVal, _SymVal]]]:
        if not generators:
            return _resolve_pair(elt.elts[0], elt.elts[1], scope)
        gen = generators[0]
        if not (isinstance(gen.iter, (ast.Tuple, ast.List))
                and isinstance(gen.target, ast.Name)):
            return None
        out: Set[Tuple[_SymVal, _SymVal]] = set()
        for member in gen.iter.elts:
            value = _resolve(member, scope)
            if value is None:
                return None
            inner = dict(scope)
            inner[gen.target.id] = value
            sub = expand(generators[1:], inner)
            if sub is None:
                return None
            out |= sub
        return out

    return expand(comp.generators, env)


def _declared_entries(
        func: ast.FunctionDef) -> Optional[Set[Tuple[_SymVal, _SymVal]]]:
    """Union of entries over every ``return`` in ``stamp_pattern()``.

    None means the body is beyond this symbolic evaluator — the class
    is skipped rather than guessed at (no false positives).
    """
    env: _Env = {}
    listvars: Dict[str, Optional[Set[Tuple[_SymVal, _SymVal]]]] = {}
    declared: Set[Tuple[_SymVal, _SymVal]] = set()
    ok = True

    def walk(stmts: Sequence[ast.stmt]) -> None:
        nonlocal ok
        for stmt in stmts:
            if not ok:
                return
            if isinstance(stmt, ast.Assign):
                if _seed_unpack(stmt, env):
                    continue
                if len(stmt.targets) == 1 and isinstance(stmt.targets[0],
                                                         ast.Name):
                    name = stmt.targets[0].id
                    listvars[name] = _eval_pattern_expr(stmt.value, env,
                                                        listvars)
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value,
                                                           ast.Call):
                call = stmt.value
                if (isinstance(call.func, ast.Attribute)
                        and isinstance(call.func.value, ast.Name)
                        and call.func.value.id in listvars):
                    name = call.func.value.id
                    current = listvars.get(name)
                    if call.func.attr == "extend" and len(call.args) == 1:
                        extra = _eval_pattern_expr(call.args[0], env,
                                                   listvars)
                        listvars[name] = (None if current is None
                                          or extra is None
                                          else current | extra)
                    elif call.func.attr == "append" and len(call.args) == 1:
                        arg = call.args[0]
                        if (isinstance(arg, (ast.Tuple, ast.List))
                                and len(arg.elts) == 2):
                            pairs = _resolve_pair(arg.elts[0], arg.elts[1],
                                                  env)
                        else:
                            pairs = None
                        listvars[name] = (None if current is None
                                          or pairs is None
                                          else current | pairs)
                    else:
                        listvars[name] = None
            elif isinstance(stmt, ast.Return):
                if stmt.value is None:
                    ok = False
                    return
                entries = _eval_pattern_expr(stmt.value, env, listvars)
                if entries is None:
                    ok = False
                    return
                declared.update(entries)
            elif isinstance(stmt, ast.If):
                walk(stmt.body)
                walk(stmt.orelse)
            elif isinstance(stmt, (ast.For, ast.While, ast.With, ast.Try)):
                ok = False   # beyond the evaluator; skip the class
                return

    walk(func.body)
    return declared if ok else None


@rule("RV403", "stamp-contract-drift", "source", "error",
      "stamp() writes a matrix entry stamp_pattern() does not declare",
      "The RV201 structural-singularity check and the sparse-analysis "
      "tooling trust stamp_pattern() as the set of entries stamp() may "
      "touch.  An undeclared write makes RV201 report solvable circuits "
      "as singular (or miss singular ones) and silently invalidates "
      "every consumer of the declared sparsity.  The dynamic sanitizer "
      "(tests/devices/test_stamp_sanitizer.py) enforces the same "
      "contract numerically.")
def check_stamp_contract(module: SourceModule) -> Iterator[Finding]:
    """Cross-check stamp() AST writes against stamp_pattern() entries."""
    if module.tree is None:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {child.name: child for child in node.body
                   if isinstance(child, ast.FunctionDef)}
        stamp = methods.get("stamp")
        pattern = methods.get("stamp_pattern")
        if stamp is None or pattern is None:
            continue
        declared = _declared_entries(pattern)
        if declared is None:
            continue   # beyond the symbolic evaluator: do not guess
        writes = _StampWrites()
        writes.walk(stamp.body, {})
        for entry in sorted(writes.entries - declared):
            row, col = entry
            where = writes.locations[entry]
            yield Finding(
                subject=node.name,
                message=(f"stamp() writes matrix entry "
                         f"({_render_sym(row)}, {_render_sym(col)}) that "
                         "stamp_pattern() never declares; RV201 and "
                         "every sparsity consumer will be wrong about "
                         "this element"),
                location=module.loc(where),
            )


# ---------------------------------------------------------------------------
# RV404 — raw SPICE quantity strings where floats are expected
# ---------------------------------------------------------------------------

_QUANTITY_RE = re.compile(
    r"^[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?"
    r"(?:meg|[tgkmunpfaµ])$",
    re.IGNORECASE,
)

#: Calls whose arguments are floats in this codebase (element and
#: waveform constructors plus the builtin coercion).
_FLOAT_SINKS = frozenset({
    "Resistor", "Capacitor", "VoltageSource", "CurrentSource",
    "FinFET", "MTJ", "VoltageControlledSwitch",
    "Constant", "Pulse", "PiecewiseLinear", "float",
})

_ARITH_OPS = (ast.Sub, ast.Div, ast.Pow)


def _is_quantity_string(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and bool(_QUANTITY_RE.match(node.value)))


def _call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@rule("RV404", "raw-spice-quantity", "source", "error",
      "A raw SPICE quantity string is used where a float is expected",
      "'10n' is a string: passed to an element constructor or used in "
      "arithmetic it raises at best and, via duck-typing accidents, "
      "silently computes nonsense at worst.  Route SPICE-style values "
      "through repro.units.parse_quantity, which is where the "
      "multiplier table lives.")
def check_raw_quantity_strings(module: SourceModule) -> Iterator[Finding]:
    """Flag SPICE quantity strings in float-expecting positions."""
    if module.tree is None:
        return
    spans = _scope_index(module.tree)

    def finding(node: ast.AST, value: str, context: str) -> Finding:
        return Finding(
            subject=_scope_of(spans, node.lineno),
            message=(f"SPICE quantity string {value!r} {context}; "
                     "convert it with units.parse_quantity(...) instead"),
            location=module.loc(node),
        )

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and _call_name(node) in _FLOAT_SINKS:
            name = _call_name(node)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if _is_quantity_string(arg):
                    yield finding(arg, arg.value,  # type: ignore[attr-defined]
                                  f"passed to {name}(), which expects "
                                  "floats")
        elif isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS):
            for side in (node.left, node.right):
                if _is_quantity_string(side):
                    yield finding(side, side.value,  # type: ignore
                                  "used in arithmetic")
        elif isinstance(node, ast.Compare):
            sides = [node.left] + list(node.comparators)
            numeric = any(isinstance(s, ast.Constant)
                          and isinstance(s.value, (int, float))
                          and not isinstance(s.value, bool)
                          for s in sides)
            if not numeric:
                continue
            for side in sides:
                if _is_quantity_string(side):
                    yield finding(side, side.value,  # type: ignore
                                  "compared against a number")


# ---------------------------------------------------------------------------
# RV405 — swallowed solver forensics
# ---------------------------------------------------------------------------

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _broad_exception_name(type_node: Optional[ast.AST]) -> Optional[str]:
    if type_node is None:
        return None   # bare except is handled separately
    candidates: List[ast.AST] = (list(type_node.elts)
                                 if isinstance(type_node, ast.Tuple)
                                 else [type_node])
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and \
                candidate.id in _BROAD_EXCEPTIONS:
            return candidate.id
        if isinstance(candidate, ast.Attribute) and \
                candidate.attr in _BROAD_EXCEPTIONS:
            return candidate.attr
    return None


@rule("RV405", "swallowed-forensics", "source", "warning",
      "A bare/overbroad except swallows solver forensics",
      "ConvergenceError and TimestepError carry the recovery-ladder "
      "forensics (rung traces, residual history) that repro.recovery "
      "renders for diagnosis.  'except:' or 'except Exception:' without "
      "a re-raise absorbs them (and KeyboardInterrupt, for the bare "
      "form) into silence; catch the specific error or re-raise.")
def check_swallowed_forensics(module: SourceModule) -> Iterator[Finding]:
    """Flag bare/broad handlers with no ``raise`` in the body."""
    if module.tree is None:
        return
    spans = _scope_index(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            reraises = any(isinstance(inner, ast.Raise)
                           for inner in ast.walk(handler))
            if handler.type is None:
                if not reraises:
                    yield Finding(
                        subject=_scope_of(spans, handler.lineno),
                        message=("bare 'except:' swallows everything "
                                 "including ConvergenceError/"
                                 "TimestepError forensics and "
                                 "KeyboardInterrupt; catch the specific "
                                 "error or re-raise"),
                        severity=Severity.ERROR,
                        location=module.loc(handler),
                    )
                continue
            broad = _broad_exception_name(handler.type)
            if broad is not None and not reraises:
                yield Finding(
                    subject=_scope_of(spans, handler.lineno),
                    message=(f"'except {broad}:' without re-raise "
                             "swallows ConvergenceError/TimestepError "
                             "forensics; catch the specific error or "
                             "re-raise after handling"),
                    location=module.loc(handler),
                )


# ---------------------------------------------------------------------------
# RV406 — mutable default arguments in public APIs
# ---------------------------------------------------------------------------


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set") and not node.args
    return False


@rule("RV406", "mutable-default", "source", "warning",
      "A public function has a mutable default argument",
      "Default values are evaluated once at def time: a list/dict/set "
      "default is shared across every call, so one caller's append "
      "leaks into the next — state that survives between "
      "characterisation runs is exactly the bug class this simulator "
      "cannot afford.  Use None and create the container inside.")
def check_mutable_defaults(module: SourceModule) -> Iterator[Finding]:
    """Flag ``def f(x=[])``-style defaults on public functions."""
    if module.tree is None:
        return
    for qualname, func in _functions(module.tree):
        if any(part.startswith("_") for part in qualname.split(".")):
            continue
        defaults = list(func.args.defaults) + [
            d for d in func.args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_default(default):
                yield Finding(
                    subject=qualname,
                    message=("mutable default argument "
                             f"'{ast.unparse(default)}' is shared across "
                             "calls; default to None and build the "
                             "container in the body"),
                    location=module.loc(default),
                )
