"""Generic netlist-hygiene rules (RV0xx).

These are the five checks of the seed linter
(:mod:`repro.circuit.lint`), migrated onto the rule registry, plus the
compile gate.  The voltage-source topology checks now operate on the
*multigraph* directly, fixing the seed bug where two distinct sources
between the same node pair collapsed into one edge and their loops with
a third path went unreported.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import networkx as nx

from ..circuit.netlist import Circuit
from ..circuit.passives import Capacitor
from ..circuit.sources import VoltageSource
from ..errors import NetlistError
from .core import Finding, rule
from .topology import canon


@rule("RV006", "netlist-compile", "circuit", "error",
      "The circuit fails to compile (no ground, empty netlist...)",
      "Nothing downstream is meaningful if node indices cannot be "
      "assigned; surfacing the compile error as a diagnostic lets deck "
      "lint report it alongside other findings instead of crashing.")
def check_compile(circuit: Circuit) -> Iterator[Finding]:
    """Report :class:`~repro.errors.NetlistError` from compilation."""
    try:
        circuit.compile()
    except NetlistError as exc:
        yield Finding(subject=circuit.title or "circuit", message=str(exc))


def _compiles(circuit: Circuit) -> bool:
    """True when the circuit compiles; rules below skip when it cannot."""
    try:
        circuit.compile()
    except NetlistError:
        return False
    return True


@rule("RV001", "floating-node", "circuit", "warning",
      "A node touches only one element terminal",
      "A single-terminal node is almost always a typo'd net name; the "
      "solver's gmin will pin it to an arbitrary level instead of "
      "failing loudly.")
def check_floating_nodes(circuit: Circuit) -> Iterator[Finding]:
    """Flag nodes with exactly one element terminal attached."""
    if not _compiles(circuit):
        return
    counts: Dict[str, int] = {}
    for element in circuit.elements():
        for node in element.node_names:
            counts[node] = counts.get(node, 0) + 1
    for node in circuit.node_names():
        if counts.get(node, 0) == 1:
            touching = circuit.nodes_touching(node)
            culprit = touching[0].name if touching else "?"
            yield Finding(
                subject=node,
                message=(f"node {node!r} touches only one terminal "
                         f"(element {culprit}); likely a typo"),
            )


@rule("RV002", "no-dc-path", "circuit", "warning",
      "A node has only capacitive connections",
      "With every connection capacitive the node's DC level is set by "
      "gmin alone; legitimate for dynamic nodes, usually a missing "
      "leaker or typo.")
def check_no_dc_path(circuit: Circuit) -> Iterator[Finding]:
    """Flag nodes whose every connection is a capacitor."""
    if not _compiles(circuit):
        return
    for node in circuit.node_names():
        touching = circuit.nodes_touching(node)
        if touching and all(isinstance(e, Capacitor) for e in touching):
            yield Finding(
                subject=node,
                message=(f"node {node!r} has only capacitive connections; "
                         "its DC level is defined by gmin alone"),
            )


@rule("RV003", "shorted-element", "circuit", "warning",
      "Both main terminals of an element share one node",
      "A self-shorted element contributes nothing but usually signals a "
      "copy-paste error in a cell builder or deck.")
def check_shorted_elements(circuit: Circuit) -> Iterator[Finding]:
    """Flag two-terminal elements wired node-to-same-node."""
    if not _compiles(circuit):
        return
    for element in circuit.elements():
        names = element.node_names
        if len(names) >= 2 and len({canon(n) for n in names[:2]}) == 1:
            yield Finding(
                subject=element.name,
                message=(f"element {element.name} has both main terminals "
                         f"on node {names[0]!r}"),
            )


def _voltage_source_multigraph(circuit: Circuit) -> "nx.MultiGraph":
    """Multigraph of ideal voltage sources (ground aliases merged)."""
    graph = nx.MultiGraph()
    for element in circuit.elements():
        if isinstance(element, VoltageSource):
            p, n = (canon(x) for x in element.node_names)
            graph.add_edge(p, n, name=element.name)
    return graph


def _parallel_groups(graph: "nx.MultiGraph") -> Dict[Tuple[str, str],
                                                     List[str]]:
    """Node pairs joined by two or more distinct sources."""
    pairs: Dict[Tuple[str, str], List[str]] = {}
    for p, n, data in graph.edges(data=True):
        if p == n:
            continue
        pairs.setdefault(tuple(sorted((p, n))), []).append(data["name"])
    return {pair: sorted(names) for pair, names in pairs.items()
            if len(names) > 1}


@rule("RV004", "voltage-loop", "circuit", "error",
      "Ideal voltage sources form a closed loop",
      "A pure voltage-source cycle over-determines the branch currents: "
      "the MNA system is numerically singular no matter what gmin does.")
def check_voltage_loops(circuit: Circuit) -> Iterator[Finding]:
    """Flag every independent cycle in the voltage-source multigraph.

    The cycle space of the multigraph decomposes into (a) self-loop
    sources, (b) one loop per extra parallel source on a node pair, and
    (c) simple cycles of three or more nodes.  Group (b) is reported by
    ``parallel-sources`` (RV005), so here it is only *counted*, keeping
    the two rules deduplicated while no loop goes unreported — the seed
    linter collapsed the multigraph and silently dropped group (a) and
    miscounted (b).
    """
    if not _compiles(circuit):
        return
    graph = _voltage_source_multigraph(circuit)

    # (a) self-loops: a source with both terminals on one node.
    for p, n, data in graph.edges(data=True):
        if p == n:
            yield Finding(
                subject=data["name"],
                message=(f"voltage source {data['name']} is shorted on "
                         f"node {p!r}: a one-element voltage loop"),
            )

    # (c) simple cycles of length >= 3 on the collapsed graph.  Parallel
    # pairs (group (b)) are RV005's findings and are not repeated here.
    collapsed = nx.Graph(
        (p, n) for p, n in graph.edges() if p != n
    )
    try:
        cycles = nx.cycle_basis(collapsed)
    except nx.NetworkXError:   # pragma: no cover - defensive
        cycles = []
    for cycle in cycles:
        if len(cycle) >= 3:
            members = sorted(cycle)
            yield Finding(
                subject=members[0],
                message=("voltage sources form a loop through nodes "
                         + " -> ".join(repr(n) for n in cycle)),
            )


@rule("RV005", "parallel-sources", "circuit", "error",
      "Two or more voltage sources share one node pair",
      "Parallel ideal sources make the branch-current split "
      "indeterminate (singular MNA rows) even when their levels agree.")
def check_parallel_sources(circuit: Circuit) -> Iterator[Finding]:
    """Flag groups of sources wired across the same two nodes."""
    if not _compiles(circuit):
        return
    graph = _voltage_source_multigraph(circuit)
    for (p, n), names in sorted(_parallel_groups(graph).items()):
        yield Finding(
            subject=names[0],
            message=(f"voltage sources {', '.join(names)} are in "
                     f"parallel between {p!r} and {n!r}"),
        )
