"""RV6xx: campaign task purity (project scope).

PR 4's executor guarantees bit-identical results across serial,
parallel and resumed runs — but only if every task function shipped to
a worker is *pure enough*: deterministic given its params, free of
module-state mutation, and writing nothing outside the journal/cache
APIs.  This band turns that tested property into a statically enforced
contract: task roots are every function referenced by a
``"module:function"`` string (the :class:`repro.exec.campaign.Campaign`
``fn`` contract) plus the named builders in
:mod:`repro.exec.registry`, and each check walks the call graph
*transitively* — an impure helper three calls deep is reported in the
helper's module, with the root and call chain in the message.

======  =====================  =====================================
code    name                   finding
======  =====================  =====================================
RV600   unresolved-task-ref    a ``"module:function"`` reference into
                               a linted module that has no such
                               function
RV601   task-state-mutation    a task-reachable function mutates a
                               global or module-level object
RV602   task-nondeterminism    a task-reachable function draws from
                               the global ``random``/legacy
                               ``numpy.random`` generators, calls
                               ``default_rng()`` unseeded, or reads
                               the wall clock
RV603   task-fs-write          a task-reachable function writes to the
                               filesystem outside the journal/cache
                               modules
RV604   task-signature         a task root's signature is not "one
                               JSON dict param": extra required
                               params, ``*args``/``**kwargs``, or
                               non-JSON-safe defaults
======  =====================  =====================================
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from .core import Finding, SourceLocation, rule

#: Modules whose filesystem writes are the sanctioned persistence layer.
#: Matching is by dotted-name suffix so the rule works on fixture trees.
FS_EXEMPT_SUFFIXES = ("exec.journal", "exec.atomicio",
                      "characterize.cache", "verify.cache")

_ATOM_LABELS = {
    "global_write": "writes global {what}",
    "module_mutation": "mutates module-level state via {what}",
    "nondet": "draws nondeterminism from {what}",
    "clock": "reads the wall clock via {what}",
    "fs_write": "writes to the filesystem via {what}",
}


def _loc(pm, line: int) -> SourceLocation:
    return SourceLocation(line=line, text=pm.module.line_text(line))


def _reachable_atoms(pm, kinds: Tuple[str, ...]) -> Iterator[
        Tuple[str, str, str, int, str]]:
    """(fid, kind, what, line, chain) for task-reachable atoms here."""
    project = pm.project
    for qual in sorted(pm.summary.get("functions", ())):
        fid = f"{pm.name}:{qual}"
        roots = project.reach.get(fid)
        if not roots:
            continue
        root, chain = sorted(roots.items())[0]
        info = project.functions[fid]
        for atom in info.get("atoms", ()):
            kind, what, line = str(atom[0]), str(atom[1]), int(atom[2])
            if kind in kinds:
                yield fid, kind, what, line, chain


def _atom_findings(pm, kinds: Tuple[str, ...]) -> Iterator[Finding]:
    for fid, kind, what, line, chain in _reachable_atoms(pm, kinds):
        detail = _ATOM_LABELS[kind].format(what=what)
        via = f" (task entry: {chain})" if " -> " in chain else \
            " (this is a task entry point)"
        yield Finding(
            subject=fid,
            message=f"task-reachable function {detail}{via}; campaign "
                    "results must be a pure function of the task params",
            location=_loc(pm, line),
        )


@rule("RV600", "unresolved-task-ref", "project", "error",
      "a 'module:function' task reference points at a function that "
      "does not exist",
      rationale="a campaign whose fn string dangles fails only at "
                "dispatch time, inside a worker; resolve it statically.")
def check_unresolved_task_ref(pm) -> Iterator[Finding]:
    """RV600: dangling 'module:function' task references."""
    for ref, line in pm.project.unresolved_refs.get(pm.name, ()):
        yield Finding(
            subject=str(ref),
            message=f"task reference {ref!r} names a module in this tree "
                    "but no such function exists there",
            location=_loc(pm, int(line)),
        )


@rule("RV601", "task-state-mutation", "project", "error",
      "a function reachable from a campaign task mutates global or "
      "module-level state",
      rationale="workers sharing a process would see each other's "
                "mutations; resume would replay against drifted state — "
                "the bit-identical serial/parallel/resume guarantee dies.")
def check_task_state_mutation(pm) -> Iterator[Finding]:
    """RV601: task-reachable global/module-state mutation."""
    yield from _atom_findings(pm, ("global_write", "module_mutation"))


@rule("RV602", "task-nondeterminism", "project", "error",
      "a function reachable from a campaign task draws unseeded "
      "randomness or reads the wall clock",
      rationale="every sample in the paper's Monte-Carlo yield figures "
                "must be reproducible from (task id, seed); global RNGs "
                "and clocks make reruns silently diverge.")
def check_task_nondeterminism(pm) -> Iterator[Finding]:
    """RV602: task-reachable unseeded randomness or clock reads."""
    yield from _atom_findings(pm, ("nondet", "clock"))


@rule("RV603", "task-fs-write", "project", "error",
      "a function reachable from a campaign task writes to the "
      "filesystem outside the journal/cache APIs",
      rationale="two workers writing the same side file race; resumed "
                "runs double-write.  All task persistence goes through "
                "the append-only journal or the hardened cache.")
def check_task_fs_write(pm) -> Iterator[Finding]:
    """RV603: task-reachable filesystem writes outside journal/cache."""
    if pm.name.endswith(FS_EXEMPT_SUFFIXES):
        return
    yield from _atom_findings(pm, ("fs_write",))


@rule("RV604", "task-signature", "project", "warning",
      "a campaign task function does not take exactly one JSON-safe "
      "params argument",
      rationale="the executor calls fn(params) with a dict decoded from "
                "the journal; extra required params or exotic defaults "
                "fail only on dispatch.")
def check_task_signature(pm) -> Iterator[Finding]:
    """RV604: task roots whose signature breaks the params contract."""
    project = pm.project
    for fid in sorted(project.task_roots):
        if project.module_of(fid) != pm.name:
            continue
        info = project.functions[fid]
        sig = info.get("signature", {})
        line = int(info.get("line", 0))
        problems: List[str] = []
        if int(sig.get("required", 0)) != 1:
            problems.append(
                f"takes {sig.get('required', 0)} required positional "
                "parameter(s), the executor passes exactly one params dict")
        if sig.get("vararg") or sig.get("kwarg"):
            problems.append("*args/**kwargs cannot be populated from a "
                            "journaled params dict")
        for name in sig.get("kwonly_required", ()):
            problems.append(f"keyword-only parameter {name!r} has no "
                            "default")
        for bad in sig.get("bad_defaults", ()):
            problems.append(f"default {bad[2]} for {bad[0]!r} is not "
                            "JSON-safe")
        for problem in problems:
            yield Finding(subject=fid,
                          message=f"task function {problem}",
                          location=_loc(pm, line))
