"""SPICE-deck text-level rules (RV3xx).

These rules work on a :class:`DeckSource` — a *tolerant* scan of the
deck text that keeps physical line numbers through ``+`` continuations
and never raises.  That lets the linter report several problems at once
(and point at lines), where the strict parser in
:mod:`repro.spice.parser` stops at the first error.  RV300 still runs
the strict parser so anything it rejects surfaces as a diagnostic
rather than a crash.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .core import Finding, SourceLocation, rule

#: Element-card letters the strict parser understands.
KNOWN_CARD_LETTERS = frozenset("rcvismyx")

#: Directives the strict parser understands.
KNOWN_DIRECTIVES = frozenset({
    ".end", ".subckt", ".ends", ".param", ".model", ".ic",
    ".tran", ".dc", ".op", ".measure", ".meas",
})

#: Unit names accepted verbatim after a number (multiplier one); any
#: other non-multiplier suffix is RV306-suspicious ("10x" is the classic
#:  HSPICE trap: silently parsed as 10).
UNIT_SUFFIXES = frozenset({
    "v", "volt", "volts", "s", "sec", "hz", "ohm", "ohms", "w", "j",
})

#: SPICE multiplier prefixes recognised by :func:`repro.units.parse_quantity`.
_MULTIPLIER_PREFIXES = ("meg", "t", "g", "k", "m", "u", "µ", "n", "p",
                       "f", "a")

_NUMERIC_TOKEN_RE = re.compile(
    r"^[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?([a-zA-Zµ]+)$"
)

_PARAM_REF_RE = re.compile(r"\{\s*([A-Za-z_]\w*)\s*\}")


@dataclass(frozen=True)
class DeckCard:
    """One logical card: joined continuations, first physical line."""

    line: int
    text: str

    def tokens(self) -> List[str]:
        """Paren-aware token split; falls back to plain whitespace split
        when parentheses are unbalanced (the fallback keeps the scanner
        tolerant — RV300 reports the imbalance via the strict parser).
        """
        tokens: List[str] = []
        buf = ""
        depth = 0
        for ch in self.text:
            if ch == "(":
                depth += 1
                buf += ch
            elif ch == ")":
                depth -= 1
                buf += ch
            elif ch.isspace() and depth == 0:
                if buf:
                    tokens.append(buf)
                    buf = ""
            else:
                buf += ch
        if depth != 0:
            return self.text.split()
        if buf:
            tokens.append(buf)
        return tokens


class DeckSource:
    """Tolerantly-scanned deck text, the target object of RV3xx rules.

    Attributes
    ----------
    text:
        The raw deck text (fed to the strict parser by RV300).
    path:
        Display name of the deck (file path or a synthetic label).
    title:
        First logical line.
    cards:
        All logical cards after the title, with line numbers.
    """

    def __init__(self, text: str, path: str = ""):
        self.text = text
        self.path = path
        self.title, self.cards = self._scan(text)

    @staticmethod
    def _scan(text: str) -> Tuple[str, List[DeckCard]]:
        logical: List[DeckCard] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split(";")[0].split("$")[0].rstrip()
            stripped = line.strip()
            if not stripped or stripped.startswith("*"):
                continue
            if stripped.startswith("+") and logical:
                prev = logical[-1]
                logical[-1] = DeckCard(prev.line,
                                       prev.text + " " + stripped[1:].strip())
            else:
                logical.append(DeckCard(lineno, stripped.lstrip("+").strip()))
        if not logical:
            return "", []
        title = logical[0].text
        return title, logical[1:]

    # -- structured views used by several rules -------------------------
    def subckt_defs(self) -> Dict[str, Tuple[DeckCard, List[str]]]:
        """``name -> (defining card, port list)`` for every ``.subckt``."""
        out: Dict[str, Tuple[DeckCard, List[str]]] = {}
        for card in self.cards:
            tokens = card.tokens()
            if tokens and tokens[0].lower() == ".subckt" and len(tokens) >= 2:
                out[tokens[1].lower()] = (card, [t.lower()
                                                for t in tokens[2:]])
        return out

    def instances(self) -> List[Tuple[DeckCard, str, List[str]]]:
        """``(card, subckt name, node list)`` for every ``X`` card."""
        out = []
        for card in self.cards:
            tokens = card.tokens()
            if tokens and tokens[0][0].lower() == "x" and len(tokens) >= 2:
                out.append((card, tokens[-1].lower(),
                            [t.lower() for t in tokens[1:-1]]))
        return out

    def element_cards(self) -> Iterator[Tuple[DeckCard, str, List[str]]]:
        """``(card, scope, tokens)`` for every element card.

        ``scope`` is ``""`` at top level or the enclosing subcircuit
        name inside ``.subckt``/``.ends`` blocks.
        """
        scope = ""
        for card in self.cards:
            tokens = card.tokens()
            if not tokens:
                continue
            head = tokens[0].lower()
            if head == ".subckt":
                scope = tokens[1].lower() if len(tokens) > 1 else "?"
            elif head == ".ends":
                scope = ""
            elif not head.startswith("."):
                yield card, scope, tokens


def _loc(card: DeckCard) -> SourceLocation:
    """Shorthand for a card's source location."""
    return SourceLocation(line=card.line, text=card.text)


@rule("RV300", "parse-error", "deck", "error",
      "The strict parser rejects the deck",
      "Everything the simulator would refuse to load is a lint error "
      "too; routing the parser exception through the report lets it "
      "appear next to the text-level findings instead of aborting them.")
def check_parse(deck: DeckSource) -> Iterator[Finding]:
    """Run the strict parser; report its rejection, if any."""
    from ..errors import ReproError
    from ..spice.parser import parse_deck
    try:
        parse_deck(deck.text)
    except ReproError as exc:
        yield Finding(subject=deck.path or "deck", message=str(exc))


@rule("RV301", "undefined-subckt", "deck", "error",
      "An X card instantiates a subcircuit that is never defined",
      "The parser stops at the first unknown subcircuit; scanning all "
      "instances reports every stale name after a rename in one pass.")
def check_undefined_subckt(deck: DeckSource) -> Iterator[Finding]:
    """Flag X cards whose subcircuit name has no ``.subckt``."""
    defined = set(deck.subckt_defs())
    for card, sub_name, _nodes in deck.instances():
        if sub_name not in defined:
            yield Finding(
                subject=card.tokens()[0].lower(),
                message=(f"instance {card.tokens()[0]} references "
                         f"undefined subcircuit {sub_name!r}"),
                location=_loc(card),
            )


@rule("RV302", "unused-subckt", "deck", "warning",
      "A .SUBCKT definition is never instantiated",
      "Dead subcircuit definitions usually mean an instance card was "
      "deleted or renamed but the definition was forgotten — noise that "
      "hides real topology during deck review.")
def check_unused_subckt(deck: DeckSource) -> Iterator[Finding]:
    """Flag ``.subckt`` definitions with zero X instances."""
    used = {sub for _, sub, _ in deck.instances()}
    for name, (card, _ports) in sorted(deck.subckt_defs().items()):
        if name not in used:
            yield Finding(
                subject=name,
                message=f"subcircuit {name!r} is defined but never "
                        "instantiated",
                location=_loc(card),
            )


@rule("RV303", "subckt-arity", "deck", "error",
      "An X card's node count does not match the subcircuit's ports",
      "Port-count mismatches scramble every connection of the instance; "
      "catching them with both line numbers beats the parser's "
      "one-at-a-time error.")
def check_subckt_arity(deck: DeckSource) -> Iterator[Finding]:
    """Flag X cards whose node list length differs from the port list."""
    defs = deck.subckt_defs()
    for card, sub_name, nodes in deck.instances():
        if sub_name not in defs:
            continue   # RV301's finding
        _def_card, ports = defs[sub_name]
        if len(nodes) != len(ports):
            yield Finding(
                subject=card.tokens()[0].lower(),
                message=(f"instance {card.tokens()[0]} passes "
                         f"{len(nodes)} node(s) to {sub_name!r}, which "
                         f"declares {len(ports)} port(s): "
                         f"{' '.join(ports)}"),
                location=_loc(card),
            )


@rule("RV304", "duplicate-element", "deck", "error",
      "Two element cards in one scope share a name",
      "The netlist builder rejects the second card; reporting both "
      "occurrences with line numbers makes copy-paste slips obvious.")
def check_duplicate_elements(deck: DeckSource) -> Iterator[Finding]:
    """Flag repeated element names within one (sub)circuit scope."""
    seen: Dict[Tuple[str, str], DeckCard] = {}
    for card, scope, tokens in deck.element_cards():
        name = tokens[0].lower()
        key = (scope, name)
        if key in seen:
            where = f" inside .subckt {scope}" if scope else ""
            yield Finding(
                subject=name,
                message=(f"element {name!r} defined again{where}; first "
                         f"defined on line {seen[key].line}"),
                location=_loc(card),
            )
        else:
            seen[key] = card
    # Unknown card letters are a parse error (RV300) but deserve a
    # location, which the strict parser cannot give.
    for card, _scope, tokens in deck.element_cards():
        if tokens[0][0].lower() not in KNOWN_CARD_LETTERS:
            yield Finding(
                subject=tokens[0].lower(),
                message=(f"unknown element card letter "
                         f"{tokens[0][0]!r} in {tokens[0]!r}"),
                location=_loc(card),
            )


@rule("RV305", "unused-param", "deck", "warning",
      "A .PARAM is defined but never referenced",
      "An unused parameter often means a {braced} reference was "
      "overwritten by a literal during debugging and never restored — "
      "the deck silently stops following the parameter sweep.")
def check_unused_params(deck: DeckSource) -> Iterator[Finding]:
    """Flag ``.param`` names with no ``{name}`` reference anywhere."""
    defined: Dict[str, DeckCard] = {}
    for card in deck.cards:
        tokens = card.tokens()
        if tokens and tokens[0].lower() == ".param":
            for token in tokens[1:]:
                key, _, value = token.partition("=")
                if value:
                    defined.setdefault(key.lower(), card)
    if not defined:
        return
    referenced = {m.group(1).lower()
                  for card in deck.cards
                  for m in _PARAM_REF_RE.finditer(card.text)}
    for name, card in sorted(defined.items()):
        if name not in referenced:
            yield Finding(
                subject=name,
                message=f"parameter {name!r} is defined but never "
                        "referenced",
                location=_loc(card),
            )


def _suspicious_suffix(token: str) -> Optional[str]:
    """The unrecognised suffix of a numeric token, or None if fine."""
    match = _NUMERIC_TOKEN_RE.match(token)
    if match is None:
        return None
    suffix = match.group(1).lower()
    if suffix in UNIT_SUFFIXES:
        return None
    if any(suffix.startswith(p) for p in _MULTIPLIER_PREFIXES):
        return None
    return suffix


@rule("RV306", "suspicious-suffix", "deck", "warning",
      "A numeric value carries an unrecognised suffix",
      "SPICE silently treats an unknown suffix as a unit name with "
      "multiplier one, so '10x' parses as 10 — a classic way to be off "
      "by orders of magnitude without any error message.")
def check_suspicious_suffixes(deck: DeckSource) -> Iterator[Finding]:
    """Flag numeric tokens whose suffix is neither multiplier nor unit.

    Element cards and value-carrying directives (``.tran 10x`` is just
    as silent a trap as ``r1 a b 10x``) are both scanned; ``.subckt``
    and ``.ends`` are skipped since their tokens are names, not values.
    """
    for card in deck.cards:
        tokens = card.tokens()
        if not tokens or tokens[0].lower() in (".subckt", ".ends"):
            continue
        for token in tokens[1:]:
            # Look inside key=value pairs and fn( ... ) groups too.
            candidates = [token.partition("=")[2] or token]
            inner = re.match(r"\w+\((.*)\)$", candidates[0], re.S)
            if inner:
                candidates = [t for t in
                              re.split(r"[\s,]+", inner.group(1)) if t]
            for value in candidates:
                suffix = _suspicious_suffix(value)
                if suffix is not None:
                    yield Finding(
                        subject=tokens[0].lower(),
                        message=(f"value {value!r} on card "
                                 f"{tokens[0]} has unrecognised suffix "
                                 f"{suffix!r}; it parses as multiplier "
                                 "1, which is rarely intended"),
                        location=_loc(card),
                    )


@rule("RV307", "unknown-model", "deck", "error",
      "A device card references a model that is never defined",
      "The parser reports only the first unknown model; checking all "
      "M/Y cards against .MODEL definitions and the built-in cards "
      "reports every stale reference at once, with line numbers.")
def check_unknown_models(deck: DeckSource) -> Iterator[Finding]:
    """Flag M/Y cards whose model has no ``.model`` and is not built in."""
    from ..spice.parser import BUILTIN_MODELS
    defined: Set[str] = set(BUILTIN_MODELS)
    for card in deck.cards:
        tokens = card.tokens()
        if tokens and tokens[0].lower() == ".model" and len(tokens) >= 2:
            defined.add(tokens[1].lower())
    for card, _scope, tokens in deck.element_cards():
        letter = tokens[0][0].lower()
        model: Optional[str] = None
        if letter == "m" and len(tokens) >= 5:
            model = tokens[4].lower()
        elif letter == "y" and len(tokens) >= 4 and "=" not in tokens[3]:
            model = tokens[3].lower()
        if model is not None and model not in defined:
            yield Finding(
                subject=tokens[0].lower(),
                message=(f"device {tokens[0]} references unknown model "
                         f"{model!r}"),
                location=_loc(card),
            )
