"""Symbolic array shape/dtype dataflow for the RV8xx band.

This is the second abstract interpreter built on the walker idiom of
:mod:`repro.verify.dataflow` — where that module propagates *physical
dimensions*, this one propagates **array semantics**: a serialisable
shape expression whose leaves are numpy constructors (``np.zeros``,
``np.arange``), function parameters (seeded from ``"(n,n)"``-style
string annotations), and calls into other project functions (resolved
against the project's fixpoint return-shape facts).

The abstract value of an expression is a ShapeExpr — a plain-JSON tree
— and evaluation (:func:`eval_shape`) lowers a tree to an
:class:`AShape`: a dim tuple (ints, symbolic names, or ``None`` for an
unknown extent), a dtype from a small promotion lattice, and a
``unique`` flag tracking whether an integer array provably has no
repeated values (``arange`` yes, ``np.array([0, 1, 0])`` no) — the
fact RV803's aliasing check runs on.

Like the units lattice, this one is **optimistic**: unknowns stay
unknown instead of poisoning everything, and the RV8xx rules only fire
on *provable* facts (both ranks known, both extents concrete, dtype
transitions explicit).  Control-flow joins keep per-dim agreement and
widen disagreeing extents to unknown; loop bodies are walked twice —
a muted pass to discover what the back edge changes, a widened pass
that fires hooks — so a data-dependent shape (``x = np.stack([x, y])``
in a loop) widens to ⊤ rather than producing a false RV800.
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Dict, List, Optional, Tuple

# ---------------------------------------------------------------------------
# shape expressions (serialisable)
# ---------------------------------------------------------------------------
#
# A ShapeExpr is a plain-JSON tree:
#   {"k": "top"}                          no information
#   {"k": "num"}                          a python/numpy scalar
#   {"k": "arr", "dims": [...], "dtype": dt, "u": bool}
#                                         a concrete array; dims entries
#                                         are int, symbolic str, or None
#   {"k": "param", "n": "A"}              a parameter's shape
#   {"k": "call", "id": "mod.fn"}         a project function's return
#   {"k": "bcast", "op": o, "l": e, "r": e}   elementwise combine
#   {"k": "mat", "l": e, "r": e}          matmul / np.dot
#   {"k": "cmp", "l": e, "r": e}          comparison (bool mask)
#   {"k": "idx", "b": e, "spec": [...]}   subscript (see _index_spec)
#   {"k": "t", "b": e}                    transpose
#   {"k": "red", "b": e, "ax": i|None, "f": bool}  reduction (f: to float)
#   {"k": "reshape", "b": e, "dims": [...]}
#   {"k": "stack", "b": e, "n": i|None}   new leading axis
#   {"k": "cat", "b": e, "ax": i}         concatenate along an axis
#   {"k": "cast", "b": e, "dtype": dt}    astype
#   {"k": "join", "l": e, "r": e}         control-flow merge

TOP: Dict[str, object] = {"k": "top"}
NUM: Dict[str, object] = {"k": "num"}

#: Promotion lattice rank for the dtypes the band reasons about.
DTYPE_RANK = {
    "bool": 0,
    "int8": 1, "uint8": 1, "int16": 2, "uint16": 2,
    "int32": 3, "uint32": 3, "int64": 4, "uint64": 4, "int": 4,
    "float16": 5, "float32": 6,
    "float64": 7, "float": 7, "double": 7,
    "complex64": 8, "complex128": 9, "complex": 9,
}

#: Canonical spelling by rank (for messages).
_CANON = {0: "bool", 1: "int8", 2: "int16", 3: "int32", 4: "int64",
          5: "float16", 6: "float32", 7: "float64", 8: "complex64",
          9: "complex128"}

_INT_RANKS = frozenset({1, 2, 3, 4})
_SHAPE_ANN_RE = re.compile(r"^\(\s*(.*?)\s*,?\s*\)$")

#: Max join-tree depth before a control-flow merge collapses to ⊤ —
#: the loop-widening backstop.
_JOIN_CAP = 4


class AShape:
    """Evaluated abstract array value.

    ``dims`` is a tuple whose entries are ``int`` (known extent),
    ``str`` (symbolic extent — equal only to itself), or ``None``
    (unknown extent); ``dims is None`` means the rank itself is
    unknown.  ``dims == ()`` with ``scalar`` set is a python/0-d
    scalar.  ``unique`` marks an integer array with provably distinct
    values (safe on the left of a fancy ``+=``).
    """

    __slots__ = ("dims", "dtype", "unique", "scalar")

    def __init__(self, dims: Optional[Tuple] = None,
                 dtype: Optional[str] = None, unique: bool = False,
                 scalar: bool = False):
        self.dims = tuple(dims) if dims is not None else None
        self.dtype = dtype
        self.unique = unique
        self.scalar = scalar

    @property
    def rank(self) -> Optional[int]:
        return None if self.dims is None else len(self.dims)

    def to_json(self) -> Dict[str, object]:
        return {"dims": list(self.dims) if self.dims is not None else None,
                "dtype": self.dtype, "u": self.unique, "s": self.scalar}

    @classmethod
    def from_json(cls, data) -> Optional["AShape"]:
        if not isinstance(data, dict):
            return None
        dims = data.get("dims")
        return cls(dims=tuple(dims) if dims is not None else None,
                   dtype=data.get("dtype"), unique=bool(data.get("u")),
                   scalar=bool(data.get("s")))

    def render(self) -> str:
        if self.scalar:
            return f"scalar[{self.dtype or '?'}]"
        if self.dims is None:
            body = "?"
        else:
            body = ", ".join("?" if d is None else str(d)
                             for d in self.dims)
        return f"({body})" + (f"[{self.dtype}]" if self.dtype else "")

    def __repr__(self) -> str:          # pragma: no cover - debugging aid
        return f"AShape{self.render()}"

    def __eq__(self, other) -> bool:
        return (isinstance(other, AShape) and self.dims == other.dims
                and self.dtype == other.dtype
                and self.unique == other.unique
                and self.scalar == other.scalar)

    def __hash__(self) -> int:
        return hash((self.dims, self.dtype, self.unique, self.scalar))


SCALAR = AShape(dims=(), scalar=True)


def arr_expr(dims, dtype: Optional[str] = None,
             unique: bool = False) -> Dict[str, object]:
    """Leaf node for a literally-constructed array."""
    return {"k": "arr", "dims": list(dims), "dtype": dtype,
            "u": unique}


def param_expr(name: str) -> Dict[str, object]:
    """Leaf node for a dimension tied to a function parameter."""
    return {"k": "param", "n": name}


def call_expr(function_id: str) -> Dict[str, object]:
    """Leaf node for the (as yet unresolved) shape a callee returns."""
    return {"k": "call", "id": function_id}


def join_expr(left, right) -> Dict[str, object]:
    """Optimistic merge of two shape expressions (control-flow join).

    Identical expressions stay exact; nested joins deeper than
    ``_JOIN_CAP`` widen to ``TOP`` so fixpoints terminate.
    """
    if left == right:
        return left
    if _join_depth(left) >= _JOIN_CAP or _join_depth(right) >= _JOIN_CAP:
        return TOP
    return {"k": "join", "l": left, "r": right}


def _join_depth(expr) -> int:
    if isinstance(expr, dict) and expr.get("k") == "join":
        return 1 + max(_join_depth(expr.get("l")),
                       _join_depth(expr.get("r")))
    return 0


def parse_shape_annotation(text: Optional[str]) -> Optional[List]:
    """``"(n, n)"`` -> ``["n", "n"]``; ``"(b, 4, 4)"`` -> ``["b", 4, 4]``.

    Returns None for annotations that are not shape declarations (the
    RV5xx units annotations like ``"J"`` pass through untouched).
    """
    if not text:
        return None
    match = _SHAPE_ANN_RE.match(text.strip())
    if match is None:
        return None
    inner = match.group(1)
    if not inner:
        return []
    dims: List = []
    for piece in inner.split(","):
        piece = piece.strip()
        if not piece:
            continue
        if re.fullmatch(r"\d+", piece):
            dims.append(int(piece))
        elif re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", piece):
            dims.append(piece)
        else:
            dims.append(None)
    return dims


# ---------------------------------------------------------------------------
# dtype algebra
# ---------------------------------------------------------------------------


def dtype_rank(dtype: Optional[str]) -> Optional[int]:
    """Position of ``dtype`` on the promotion ladder (None = unknown)."""
    if dtype is None:
        return None
    return DTYPE_RANK.get(dtype)


def promote(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Numpy-style result dtype of combining two *array* dtypes."""
    ra, rb = dtype_rank(a), dtype_rank(b)
    if ra is None or rb is None:
        return None
    return _CANON[max(ra, rb)]


def is_demotion(store: Optional[str], value: Optional[str]) -> bool:
    """True when storing ``value`` into ``store`` provably drops
    precision (float64 into float32, complex into float, ...)."""
    rs, rv = dtype_rank(store), dtype_rank(value)
    if rs is None or rv is None:
        return False
    return rv > rs and rs >= 5      # demotion among float/complex kinds


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------


def broadcast_dims(a: Optional[Tuple],
                   b: Optional[Tuple]) -> Optional[Tuple]:
    """Broadcast two dim tuples; None on unknown rank or on conflict
    (the *checker* decides conflicts via :func:`broadcast_conflict` —
    evaluation just goes quiet)."""
    if a is None or b is None:
        return None
    if broadcast_conflict(a, b) is not None:
        return None
    out: List = []
    for da, db in _aligned(a, b):
        if da == 1:
            out.append(db)
        elif db == 1 or da == db:
            out.append(da)
        elif da is None or db is None or isinstance(da, str) \
                or isinstance(db, str):
            out.append(None)
        else:
            return None
    return tuple(out)


def broadcast_conflict(a: Tuple, b: Tuple) -> Optional[Tuple]:
    """The provably incompatible ``(dim_a, dim_b)`` pair, or None.

    Conservative by construction: only two *known, concrete* extents
    that differ with neither equal to 1 — or two distinct symbolic
    extents of which one is a known non-1 int — count as provable.
    """
    for da, db in _aligned(a, b):
        if isinstance(da, int) and isinstance(db, int) \
                and da != db and da != 1 and db != 1:
            return (da, db)
    return None


def _aligned(a: Tuple, b: Tuple):
    """Right-aligned dim pairs, shorter side padded with 1."""
    la, lb = len(a), len(b)
    n = max(la, lb)
    for i in range(n):
        da = a[la - n + i] if la - n + i >= 0 else 1
        db = b[lb - n + i] if lb - n + i >= 0 else 1
        yield da, db


def matmul_dims(a: AShape, b: AShape) -> Optional[AShape]:
    """Result shape of ``a @ b`` (numpy semantics), or None."""
    if a.dims is None or b.dims is None:
        return None
    da, db = a.dims, b.dims
    dtype = promote(a.dtype, b.dtype)
    if len(da) == 0 or len(db) == 0:
        return None                 # scalar @ is a TypeError anyway
    if len(da) == 1 and len(db) == 1:
        return AShape(dims=(), dtype=dtype, scalar=True)
    if len(da) == 1:
        return AShape(dims=db[:-2] + (db[-1],), dtype=dtype)
    if len(db) == 1:
        return AShape(dims=da[:-1], dtype=dtype)
    batch = broadcast_dims(da[:-2], db[:-2])
    if batch is None:
        batch = (None,) * (max(len(da), len(db)) - 2)
    return AShape(dims=tuple(batch) + (da[-2], db[-1]), dtype=dtype)


def matmul_inner_conflict(a: AShape, b: AShape) -> Optional[Tuple]:
    """Provably mismatched inner dims of ``a @ b``, or None."""
    if a.dims is None or b.dims is None or not a.dims or not b.dims:
        return None
    inner_a = a.dims[-1]
    inner_b = b.dims[-2] if len(b.dims) >= 2 else b.dims[-1]
    if isinstance(inner_a, int) and isinstance(inner_b, int) \
            and inner_a != inner_b:
        return (inner_a, inner_b)
    return None


def _join_vals(a: Optional[AShape],
               b: Optional[AShape]) -> Optional[AShape]:
    """Value-level join: per-dim agreement kept, disagreement widened."""
    if a is None or b is None:
        return None
    if a == b:
        return a
    if a.scalar != b.scalar:
        return None
    if a.dims is None or b.dims is None or len(a.dims) != len(b.dims):
        return None                 # rank disagreement: widen to ⊤
    dims = tuple(da if da == db else None
                 for da, db in zip(a.dims, b.dims))
    dtype = a.dtype if a.dtype == b.dtype else None
    return AShape(dims=dims, dtype=dtype,
                  unique=a.unique and b.unique, scalar=a.scalar)


def eval_shape(expr, param_shapes: Optional[Dict[str, AShape]] = None,
               return_facts: Optional[Dict[str, Optional[AShape]]] = None,
               _depth: int = 0) -> Optional[AShape]:
    """Evaluate a ShapeExpr to an :class:`AShape`, or None (unknown)."""
    if not isinstance(expr, dict) or _depth > 40:
        return None
    kind = expr.get("k")
    if kind == "top":
        return None
    if kind == "num":
        return SCALAR
    if kind == "arr":
        dims = tuple(d if isinstance(d, (int, str)) else None
                     for d in expr.get("dims", ()))
        return AShape(dims=dims, dtype=expr.get("dtype"),
                      unique=bool(expr.get("u")))
    if kind == "param":
        if param_shapes is None:
            return None
        return param_shapes.get(str(expr.get("n")))
    if kind == "call":
        if return_facts is None:
            return None
        return return_facts.get(str(expr.get("id")))
    sub = (lambda e: eval_shape(e, param_shapes, return_facts, _depth + 1))
    if kind == "join":
        return _join_vals(sub(expr.get("l")), sub(expr.get("r")))
    if kind == "cast":
        base = sub(expr.get("b"))
        dtype = expr.get("dtype")
        if base is None:
            return AShape(dims=None, dtype=dtype)
        return AShape(dims=base.dims, dtype=dtype, unique=base.unique,
                      scalar=base.scalar)
    if kind == "t":
        base = sub(expr.get("b"))
        if base is None or base.dims is None:
            return None
        return AShape(dims=tuple(reversed(base.dims)), dtype=base.dtype)
    if kind == "reshape":
        base = sub(expr.get("b"))
        dims = tuple(d if isinstance(d, (int, str)) else None
                     for d in expr.get("dims", ()))
        return AShape(dims=dims,
                      dtype=base.dtype if base is not None else None)
    if kind == "stack":
        base = sub(expr.get("b"))
        count = expr.get("n") if isinstance(expr.get("n"), int) else None
        if base is None or base.dims is None:
            return AShape(dims=None,
                          dtype=base.dtype if base else None)
        return AShape(dims=(count,) + base.dims, dtype=base.dtype)
    if kind == "cat":
        base = sub(expr.get("b"))
        axis = expr.get("ax")
        if base is None or base.dims is None:
            return None
        dims = list(base.dims)
        if isinstance(axis, int) and -len(dims) <= axis < len(dims):
            dims[axis] = None
        else:
            return AShape(dims=None, dtype=base.dtype)
        return AShape(dims=tuple(dims), dtype=base.dtype)
    if kind == "red":
        base = sub(expr.get("b"))
        axis = expr.get("ax")
        to_float = bool(expr.get("f"))
        if base is None:
            return None
        dtype = "float64" if to_float and dtype_rank(base.dtype) not in (
            6, 8) else (base.dtype if not to_float else base.dtype)
        if axis is None:
            return AShape(dims=(), dtype=dtype, scalar=True)
        if base.dims is None:
            return AShape(dims=None, dtype=dtype)
        dims = list(base.dims)
        if -len(dims) <= axis < len(dims):
            del dims[axis]
            return AShape(dims=tuple(dims), dtype=dtype)
        return AShape(dims=None, dtype=dtype)
    if kind == "cmp":
        left, right = sub(expr.get("l")), sub(expr.get("r"))
        if left is None and right is None:
            return None
        dims_l = left.dims if left is not None else ()
        dims_r = right.dims if right is not None else ()
        dims = broadcast_dims(dims_l, dims_r)
        # A bool mask indexes each position at most once: unique.
        return AShape(dims=dims, dtype="bool", unique=True,
                      scalar=(dims == () and (left is None
                                              or left.scalar)
                              and (right is None or right.scalar)))
    if kind == "mat":
        left, right = sub(expr.get("l")), sub(expr.get("r"))
        if left is None or right is None:
            return None
        return matmul_dims(left, right)
    if kind == "bcast":
        left, right = sub(expr.get("l")), sub(expr.get("r"))
        op = expr.get("op")
        if left is None and right is None:
            return None
        if left is None or right is None:
            known = left if left is not None else right
            if known.scalar:
                return None
            return AShape(dims=known.dims, dtype=None)
        if left.scalar and right.scalar:
            return SCALAR
        # scalars combine "weakly": the array side's dtype wins
        if left.scalar:
            dims, dtype = right.dims, right.dtype
        elif right.scalar:
            dims, dtype = left.dims, left.dtype
        else:
            dims = broadcast_dims(left.dims, right.dims)
            dtype = promote(left.dtype, right.dtype)
        if op == "div" and dtype is not None \
                and dtype_rank(dtype) is not None \
                and dtype_rank(dtype) < 5:
            dtype = "float64"       # true division promotes ints
        return AShape(dims=dims, dtype=dtype)
    if kind == "idx":
        return _eval_index(expr, param_shapes, return_facts, _depth)
    return None


def _eval_index(expr, param_shapes, return_facts,
                _depth: int) -> Optional[AShape]:
    base = eval_shape(expr.get("b"), param_shapes, return_facts,
                      _depth + 1)
    if base is None:
        return None
    spec = expr.get("spec", [])
    if base.dims is None:
        return AShape(dims=None, dtype=base.dtype)
    dims = list(base.dims)
    out: List = []
    cursor = 0
    fancy_seen = 0
    for item in spec:
        tag = item[0] if isinstance(item, (list, tuple)) else item
        if tag == "n":              # np.newaxis
            out.append(1)
            continue
        if cursor >= len(dims):
            return None             # over-indexing: go quiet
        if tag == "i":              # scalar index: dim consumed
            cursor += 1
        elif tag == "S":            # full slice: dim preserved
            out.append(dims[cursor])
            cursor += 1
        elif tag == "s":            # partial slice: extent unknown
            out.append(None)
            cursor += 1
        elif tag == "f":            # fancy index
            fancy_seen += 1
            if fancy_seen > 1:
                return AShape(dims=None, dtype=base.dtype)
            sub = eval_shape(item[1] if len(item) > 1 else None,
                             param_shapes, return_facts, _depth + 1)
            if sub is None or sub.dims is None:
                out.append(None)
                cursor += 1
            elif sub.dtype == "bool":
                consumed = len(sub.dims)
                out.append(None)    # mask selects a data-dependent count
                cursor += consumed
            else:
                out.extend(sub.dims)
                cursor += 1
        else:
            return None
    out.extend(dims[cursor:])
    return AShape(dims=tuple(out), dtype=base.dtype)


# ---------------------------------------------------------------------------
# the forward walker
# ---------------------------------------------------------------------------

#: numpy constructors the walker seeds shapes from.
_CTOR_FILL = frozenset({"zeros", "ones", "empty", "full"})
_CTOR_LIKE = frozenset({"zeros_like", "ones_like", "empty_like",
                        "full_like"})
_CTOR_EYE = frozenset({"eye", "identity"})
_REDUCERS = frozenset({"sum", "prod", "min", "max", "amin", "amax",
                       "nansum", "nanmin", "nanmax"})
_FLOAT_REDUCERS = frozenset({"mean", "std", "var", "median", "nanmean"})
_ELEMENTWISE = frozenset({
    "abs", "absolute", "exp", "log", "log10", "sqrt", "sin", "cos",
    "tan", "tanh", "clip", "maximum", "minimum", "where",
    "nan_to_num", "sign", "real", "imag", "conj", "negative",
})
_PASS_FIRST = frozenset({"ascontiguousarray", "asfortranarray", "copy",
                         "atleast_1d", "sort", "flipud", "fliplr",
                         "ravel"} | _ELEMENTWISE)

_DTYPE_TAILS = frozenset(DTYPE_RANK)


class ShapeFlow:
    """Forward shape/dtype propagation over one function body.

    Parameters
    ----------
    numpy_of:
        Callback mapping a *dotted name as written* to the numpy/scipy
        function tail when it resolves into numpy-land (``"np.zeros"``
        -> ``"zeros"``), else None.
    resolve_call:
        Callback mapping a dotted name to a ShapeExpr leaf for project
        functions (:func:`call_expr`), else None.
    param_shapes:
        Parameter name -> :class:`AShape` seeds (from annotations);
        used both to seed the environment and by the checking hooks.
    on_binop / on_call / on_augassign / on_store / on_subscript:
        Optional checking hooks (None when extracting summaries).
        ``loop_depth`` on the walker tells hooks whether the current
        node sits inside a loop; during the muted discovery pass of a
        loop body ``muted`` is True and hooks must not be called
        (the walker enforces this).
    """

    def __init__(self, numpy_of: Callable[[str], Optional[str]],
                 resolve_call: Callable[[str], Optional[Dict[str, object]]],
                 param_shapes: Optional[Dict[str, AShape]] = None,
                 on_binop=None, on_call=None, on_augassign=None,
                 on_store=None):
        self.numpy_of = numpy_of
        self.resolve_call = resolve_call
        self.param_shapes = dict(param_shapes or {})
        self.on_binop = on_binop
        self.on_call = on_call
        self.on_augassign = on_augassign
        self.on_store = on_store
        self.env: Dict[str, Dict[str, object]] = {}
        self.returns: List[Dict[str, object]] = []
        self.loop_depth = 0
        self.muted = False

    # -- entry point ------------------------------------------------------
    def run(self, func: ast.FunctionDef) -> List[Dict[str, object]]:
        for arg in (list(func.args.posonlyargs) + list(func.args.args)
                    + list(func.args.kwonlyargs)):
            if arg.arg in ("self", "cls"):
                continue
            self.env[arg.arg] = param_expr(arg.arg)
        self._walk(func.body)
        return self.returns

    # -- statements -------------------------------------------------------
    def _walk(self, stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            elif isinstance(stmt, ast.Assign):
                value = self.expr(stmt.value)
                for target in stmt.targets:
                    self._store(stmt, target, value)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._store(stmt, stmt.target, self.expr(stmt.value))
            elif isinstance(stmt, ast.AugAssign):
                self._augassign(stmt)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    self.returns.append(self.expr(stmt.value))
            elif isinstance(stmt, ast.Expr):
                self.expr(stmt.value)
            elif isinstance(stmt, ast.If):
                self._branch(stmt.body, stmt.orelse, [stmt.test])
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self.expr(stmt.iter)
                self._clear(stmt.target)
                self._loop([stmt], stmt.orelse)
            elif isinstance(stmt, ast.While):
                self._loop([stmt], stmt.orelse, test=stmt.test)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    self.expr(item.context_expr)
                    if item.optional_vars is not None:
                        self._clear(item.optional_vars)
                self._walk(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body)
                for handler in stmt.handlers:
                    self._walk(handler.body)
                self._walk(stmt.orelse)
                self._walk(stmt.finalbody)
            elif isinstance(stmt, (ast.Raise, ast.Assert)):
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self.expr(child)

    def _loop(self, loop_stmts, orelse, test=None) -> None:
        """Two-pass loop handling with widening.

        Pass 1 walks the body muted from the pre-loop environment to
        discover what the back edge changes; every changed binding is
        widened via a join (per-dim agreement survives, disagreement
        evaluates to unknown, deep join chains collapse to ⊤).  Pass 2
        re-walks the body from the widened environment with hooks
        live, so checks see loop-stable shapes only.
        """
        loop = loop_stmts[0]
        body = loop.body
        pre = dict(self.env)
        was_muted, self.muted = self.muted, True
        self.loop_depth += 1
        try:
            if test is not None:
                self.expr(test)
            self._walk(body)
        finally:
            self.muted = was_muted
            self.loop_depth -= 1
        post = self.env
        widened: Dict[str, Dict[str, object]] = {}
        for name in set(pre) | set(post):
            a = pre.get(name, TOP)
            b = post.get(name, TOP)
            widened[name] = join_expr(a, b)
        self.env = widened
        self.loop_depth += 1
        try:
            if test is not None:
                self.expr(test)
            if isinstance(loop, (ast.For, ast.AsyncFor)):
                self._clear(loop.target)
            self._walk(body)
        finally:
            self.loop_depth -= 1
        # the loop may run zero times: join the exit env with the entry
        exit_env = self.env
        merged: Dict[str, Dict[str, object]] = {}
        for name in set(pre) | set(exit_env):
            merged[name] = join_expr(pre.get(name, TOP),
                                     exit_env.get(name, TOP))
        self.env = merged
        self._walk(orelse)

    def _branch(self, body, orelse, tests) -> None:
        for test in tests:
            self.expr(test)
        before = dict(self.env)
        self._walk(body)
        after_body = self.env
        self.env = dict(before)
        self._walk(orelse)
        joined: Dict[str, Dict[str, object]] = {}
        for name in set(after_body) | set(self.env):
            a = after_body.get(name)
            b = self.env.get(name)
            if a is not None and b is not None:
                joined[name] = join_expr(a, b)
            elif a is not None and name not in before:
                joined[name] = a
            elif b is not None and name not in before:
                joined[name] = b
            else:
                joined[name] = (a or b) or TOP
        self.env = joined

    def _store(self, stmt, target, value) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Subscript):
            base = self.expr(target.value)
            index = self._index_exprs(target.slice)
            self.expr(target.slice)
            if self.on_store is not None and not self.muted:
                self.on_store(stmt, target, base, index, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._clear(elt)

    def _augassign(self, stmt: ast.AugAssign) -> None:
        value = self.expr(stmt.value)
        target = stmt.target
        if isinstance(target, ast.Name):
            current = self.env.get(target.id, TOP)
            if self.on_augassign is not None and not self.muted:
                self.on_augassign(stmt, current, None, value)
            op = _BIN_TAGS.get(type(stmt.op))
            if op == "mat":
                self.env[target.id] = {"k": "mat", "l": current,
                                       "r": value}
            elif op is not None:
                self.env[target.id] = {"k": "bcast", "op": op,
                                       "l": current, "r": value}
            else:
                self.env[target.id] = TOP
        elif isinstance(target, ast.Subscript):
            base = self.expr(target.value)
            index = self._index_exprs(target.slice)
            self.expr(target.slice)
            if self.on_augassign is not None and not self.muted:
                self.on_augassign(stmt, base, index, value)

    def _clear(self, target: ast.AST) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.env[node.id] = TOP

    # -- expressions ------------------------------------------------------
    def eval(self, expr_tree) -> Optional[AShape]:
        """Evaluate a ShapeExpr under this walker's parameter seeds."""
        return eval_shape(expr_tree, self.param_shapes,
                          self._return_facts)

    #: Injected by the checking rule (dotted name -> AShape); summary
    #: extraction leaves it empty.
    _return_facts: Optional[Dict[str, Optional[AShape]]] = None

    def expr(self, node: ast.AST) -> Dict[str, object]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, TOP)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float, complex, bool)):
                return NUM
            return TOP
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.expr(node.operand)
        if isinstance(node, ast.Compare):
            left = self.expr(node.left)
            rights = [self.expr(c) for c in node.comparators]
            return {"k": "cmp", "l": left, "r": rights[0]}
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            self.expr(node.test)
            return join_expr(self.expr(node.body), self.expr(node.orelse))
        if isinstance(node, ast.Subscript):
            base = self.expr(node.value)
            spec = self._index_spec(node.slice)
            if spec is None:
                self._walk_children(node.slice)
                return TOP
            return {"k": "idx", "b": base, "spec": spec}
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.expr(elt)
            return TOP
        if isinstance(node, ast.Dict):
            for value in node.values:
                self.expr(value)
            return TOP
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.expr(value)
            return TOP
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.expr(value.value)
            return TOP
        if isinstance(node, ast.Starred):
            return self.expr(node.value)
        return TOP

    def _walk_children(self, node) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child)

    def _attribute(self, node: ast.Attribute) -> Dict[str, object]:
        if node.attr == "T":
            return {"k": "t", "b": self.expr(node.value)}
        if node.attr in ("shape", "ndim", "size", "dtype", "real",
                         "imag"):
            base = self.expr(node.value)
            if node.attr in ("real", "imag"):
                return base
            return NUM if node.attr in ("ndim", "size") else TOP
        self.expr(node.value)
        return TOP

    def _binop(self, node: ast.BinOp) -> Dict[str, object]:
        left = self.expr(node.left)
        right = self.expr(node.right)
        tag = _BIN_TAGS.get(type(node.op))
        if tag is None:
            return TOP
        if self.on_binop is not None and not self.muted:
            self.on_binop(node, tag, left, right)
        if tag == "mat":
            return {"k": "mat", "l": left, "r": right}
        return {"k": "bcast", "op": tag, "l": left, "r": right}

    # -- indexing ---------------------------------------------------------
    def _index_spec(self, slice_node) -> Optional[List]:
        items = (list(slice_node.elts)
                 if isinstance(slice_node, ast.Tuple) else [slice_node])
        spec: List = []
        for item in items:
            if isinstance(item, ast.Slice):
                full = (item.lower is None and item.upper is None
                        and item.step is None)
                for sub in (item.lower, item.upper, item.step):
                    if sub is not None:
                        self.expr(sub)
                spec.append(["S"] if full else ["s"])
            elif isinstance(item, ast.Constant):
                if item.value is None:
                    spec.append(["n"])
                elif item.value is Ellipsis:
                    return None
                else:
                    spec.append(["i"])
            elif isinstance(item, (ast.List, ast.Tuple)) \
                    and all(isinstance(e, ast.Constant)
                            and isinstance(e.value, int)
                            for e in item.elts):
                values = [e.value for e in item.elts]
                spec.append(["f", arr_expr(
                    [len(values)], "int64",
                    unique=len(set(values)) == len(values))])
            else:
                sub = self.expr(item)
                value = self.eval(sub)
                if value is not None and not value.scalar \
                        and value.dims is not None and value.dims != ():
                    spec.append(["f", sub])
                else:
                    spec.append(["i"])
        return spec

    def _index_exprs(self, slice_node) -> List:
        spec = self._index_spec(slice_node)
        return spec if spec is not None else []

    # -- calls ------------------------------------------------------------
    def _call(self, node: ast.Call) -> Dict[str, object]:
        from .dataflow import _call_target
        arg_exprs = [self.expr(a) for a in node.args]
        kw_exprs = {kw.arg: self.expr(kw.value) for kw in node.keywords}
        dotted = _call_target(node)
        if self.on_call is not None and not self.muted:
            self.on_call(node, dotted, arg_exprs)
        if dotted is None:
            return TOP
        tail = dotted.rsplit(".", 1)[-1]
        np_tail = self.numpy_of(dotted)
        if np_tail is not None:
            return self._numpy_call(node, np_tail, arg_exprs, kw_exprs)
        # array methods on a computed receiver: a.reshape(...), a.sum()
        if isinstance(node.func, ast.Attribute):
            recv = self.expr(node.func.value)
            method = self._method_call(node, tail, recv, arg_exprs,
                                       kw_exprs)
            if method is not None:
                return method
        if tail == "len":
            return TOP
        if dotted == "float" or dotted == "int" or dotted == "abs":
            return arg_exprs[0] if arg_exprs else NUM
        resolved = self.resolve_call(dotted)
        if resolved is not None:
            return resolved
        return TOP

    def _dtype_of(self, node: ast.Call,
                  kw_exprs) -> Optional[str]:
        for kw in node.keywords:
            if kw.arg == "dtype":
                return _dtype_token(kw.value)
        return None

    def _shape_dims(self, arg: ast.AST) -> Optional[List]:
        """Dims list from a shape argument (int, Name, or tuple)."""
        if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
            return [arg.value]
        if isinstance(arg, ast.Name):
            return [arg.id]
        if isinstance(arg, (ast.Tuple, ast.List)):
            dims: List = []
            for elt in arg.elts:
                if isinstance(elt, ast.Constant) \
                        and isinstance(elt.value, int):
                    dims.append(elt.value)
                elif isinstance(elt, ast.Name):
                    dims.append(elt.id)
                elif isinstance(elt, ast.UnaryOp) \
                        and isinstance(elt.op, ast.USub) \
                        and isinstance(elt.operand, ast.Constant):
                    dims.append(None)
                else:
                    dims.append(_symbolic_dim(elt))
            return dims
        if isinstance(arg, ast.Attribute):
            return [_symbolic_dim(arg)]
        return None

    def _numpy_call(self, node, tail, arg_exprs, kw_exprs):
        dtype = self._dtype_of(node, kw_exprs)
        args = node.args
        if tail in _CTOR_FILL:
            dims = self._shape_dims(args[0]) if args else None
            if dims is None:
                dims_val: List = [None]
            else:
                dims_val = dims
            if dtype is None and tail != "full":
                dtype = "float64"
            if dtype is None and tail == "full" and len(args) >= 2:
                dtype = _literal_dtype(args[1])
            return arr_expr(dims_val, dtype)
        if tail in _CTOR_LIKE:
            base = arg_exprs[0] if arg_exprs else TOP
            if dtype is not None:
                return {"k": "cast", "b": base, "dtype": dtype}
            return base if base.get("k") != "num" else TOP
        if tail in _CTOR_EYE:
            n = self._shape_dims(args[0]) if args else None
            first = n[0] if n else None
            second = first
            if tail == "eye" and len(args) >= 2:
                m = self._shape_dims(args[1])
                second = m[0] if m else None
            return arr_expr([first, second], dtype or "float64")
        if tail == "arange":
            if dtype is None:
                consts = [a.value for a in args
                          if isinstance(a, ast.Constant)]
                if consts and len(consts) == len(args):
                    dtype = ("float64" if any(isinstance(c, float)
                                              for c in consts)
                             else "int64")
            return arr_expr([None], dtype, unique=True)
        if tail == "linspace":
            count: object = None
            if len(args) >= 3 and isinstance(args[2], ast.Constant) \
                    and isinstance(args[2].value, int):
                count = args[2].value
            return arr_expr([count], dtype or "float64")
        if tail in ("array", "asarray"):
            if args and isinstance(args[0], (ast.List, ast.Tuple)):
                lit = _literal_array(args[0], dtype)
                if lit is not None:
                    return lit
            base = arg_exprs[0] if arg_exprs else TOP
            if dtype is not None:
                return {"k": "cast", "b": base, "dtype": dtype}
            return base
        if tail == "reshape":
            # np.reshape(a, shape)
            base = arg_exprs[0] if arg_exprs else TOP
            dims = self._shape_dims(args[1]) if len(args) >= 2 else None
            return {"k": "reshape", "b": base,
                    "dims": dims if dims is not None else [None]}
        if tail in ("stack", "vstack", "hstack", "concatenate",
                    "column_stack", "dstack"):
            elems = (args[0].elts
                     if args and isinstance(args[0], (ast.List, ast.Tuple))
                     else None)
            first = (self.expr(elems[0]) if elems else
                     (arg_exprs[0] if arg_exprs else TOP))
            if elems is not None:
                for extra in elems[1:]:
                    self.expr(extra)
            if tail == "stack":
                return {"k": "stack", "b": first,
                        "n": len(elems) if elems is not None else None}
            axis = 0 if tail in ("vstack", "concatenate") else -1
            for kw in node.keywords:
                if kw.arg == "axis" and isinstance(kw.value, ast.Constant)\
                        and isinstance(kw.value.value, int):
                    axis = kw.value.value
            return {"k": "cat", "b": first, "ax": axis}
        if tail in ("dot", "matmul"):
            if len(arg_exprs) >= 2:
                return {"k": "mat", "l": arg_exprs[0],
                        "r": arg_exprs[1]}
            return TOP
        if tail == "solve":             # np.linalg.solve(A, b)
            if len(arg_exprs) >= 2:
                return {"k": "bcast", "op": "div", "l": arg_exprs[1],
                        "r": {"k": "num"}}
            return TOP
        if tail == "transpose":
            return {"k": "t", "b": arg_exprs[0]} if arg_exprs else TOP
        if tail == "astype":
            return TOP
        if tail in _REDUCERS or tail in _FLOAT_REDUCERS:
            axis = _axis_of(node)
            base = arg_exprs[0] if arg_exprs else TOP
            return {"k": "red", "b": base, "ax": axis,
                    "f": tail in _FLOAT_REDUCERS}
        if tail in _PASS_FIRST:
            if tail == "where" and len(arg_exprs) == 3:
                return {"k": "bcast", "op": "add", "l": arg_exprs[1],
                        "r": arg_exprs[2]}
            return arg_exprs[0] if arg_exprs else TOP
        if tail in _DTYPE_TAILS:        # np.float32(x) style cast
            base = arg_exprs[0] if arg_exprs else NUM
            return {"k": "cast", "b": base, "dtype": tail}
        if tail == "unique":
            return arr_expr([None], None, unique=True)
        return TOP

    def _method_call(self, node, tail, recv, arg_exprs, kw_exprs):
        """Array-method semantics for ``a.reshape(...)`` etc; None when
        the method means nothing to the shape analysis."""
        if tail == "reshape":
            dims: List = []
            if len(node.args) == 1:
                got = self._shape_dims(node.args[0])
                dims = got if got is not None else [None]
            else:
                for arg in node.args:
                    got = self._shape_dims(arg)
                    dims.append(got[0] if got else None)
            dims = [None if d == -1 else d for d in dims]
            return {"k": "reshape", "b": recv, "dims": dims}
        if tail == "astype":
            dtype = None
            if node.args:
                dtype = _dtype_token(node.args[0])
            if dtype is None:
                dtype = self._dtype_of(node, kw_exprs)
            return {"k": "cast", "b": recv, "dtype": dtype}
        if tail == "transpose":
            return {"k": "t", "b": recv}
        if tail == "copy":
            # explicit copies drop index provenance (they are *meant*
            # to be copies — RV802 must stay quiet)
            value = self.eval(recv)
            if value is not None and value.dims is not None:
                return arr_expr(list(value.dims), value.dtype,
                                unique=value.unique)
            return TOP
        if tail in _REDUCERS or tail in _FLOAT_REDUCERS:
            return {"k": "red", "b": recv, "ax": _axis_of(node),
                    "f": tail in _FLOAT_REDUCERS}
        if tail in ("ravel", "flatten"):
            return {"k": "reshape", "b": recv, "dims": [None]}
        if tail == "dot":
            if arg_exprs:
                return {"k": "mat", "l": recv, "r": arg_exprs[0]}
            return TOP
        if tail == "item":
            return NUM
        return None


_BIN_TAGS = {
    ast.Add: "add", ast.Sub: "add", ast.Mult: "mul", ast.Div: "div",
    ast.FloorDiv: "div", ast.Mod: "add", ast.Pow: "mul",
    ast.MatMult: "mat", ast.BitAnd: "add", ast.BitOr: "add",
    ast.BitXor: "add",
}


def _axis_of(node: ast.Call) -> Optional[int]:
    for kw in node.keywords:
        if kw.arg == "axis" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, int):
            return kw.value.value
    return None


def _symbolic_dim(node: ast.AST) -> Optional[str]:
    """Stable symbolic name for a dim expression (``a.size`` etc)."""
    try:
        text = ast.unparse(node)
    except (ValueError, RecursionError):   # pragma: no cover
        return None
    if len(text) <= 24 and re.fullmatch(r"[A-Za-z0-9_.()\[\] +*-]+",
                                        text):
        return text
    return None


def _dtype_token(node: ast.AST) -> Optional[str]:
    """The dtype named by an AST expression, normalised to the lattice."""
    name: Optional[str] = None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    if name is None:
        return None
    rank = DTYPE_RANK.get(name)
    return _CANON[rank] if rank is not None else None


def _literal_dtype(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool):
            return "bool"
        if isinstance(node.value, int):
            return "int64"
        if isinstance(node.value, float):
            return "float64"
        if isinstance(node.value, complex):
            return "complex128"
    return None


def _literal_array(node, dtype: Optional[str]):
    """ShapeExpr of ``np.array([...])`` list literals (1-D / 2-D)."""
    elts = node.elts
    if all(isinstance(e, ast.Constant)
           and isinstance(e.value, (int, float, bool)) for e in elts):
        values = [e.value for e in elts]
        if dtype is None:
            if any(isinstance(v, float) for v in values):
                dtype = "float64"
            elif all(isinstance(v, bool) for v in values):
                dtype = "bool"
            else:
                dtype = "int64"
        unique = (dtype in ("int64", "bool") or dtype is None) \
            and len(set(values)) == len(values) \
            and all(isinstance(v, (int, bool)) for v in values)
        return arr_expr([len(values)], dtype, unique=unique)
    if elts and all(isinstance(e, (ast.List, ast.Tuple)) for e in elts):
        widths = {len(e.elts) for e in elts}
        width = widths.pop() if len(widths) == 1 else None
        inner_float = any(
            isinstance(c, ast.Constant) and isinstance(c.value, float)
            for e in elts for c in e.elts)
        return arr_expr([len(elts), width],
                        dtype or ("float64" if inner_float else None))
    return None
