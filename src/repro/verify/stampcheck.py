"""Dynamic stamp-contract sanitizer: finite differences vs. stamps.

RV403 cross-checks ``stamp()`` against ``stamp_pattern()`` on the AST;
this module enforces the same contract *numerically*, plus the part no
static check can see — that the stamped conductances really are the
Jacobian of the element's currents.

The check rests on the residual trick the Newton solver relies on: a
correctly linearised stamp makes ``F(x) = A(x) @ x - b(x)`` the exact
device current balance, so ``dF/dx`` equals the analytic derivatives
the element wrote into ``A``.  Central finite differences of ``F``
therefore recover ``A`` to truncation error, and any mismatch is a
wrong hand-derived derivative — the bug class that degrades Newton to
a slow (or diverging) fixed-point iteration without ever raising.

Per element, :func:`check_element_stamp` verifies:

1. **declared sparsity** — every nonzero of the stamped ``A`` lies in
   ``stamp_pattern(mode)`` (ground rows/columns excluded);
2. **observed sparsity** — every numerically significant entry of the
   finite-difference Jacobian lies in the pattern too (catches current
   that *flows* through an undeclared coupling even if ``A`` is zero
   there at this iterate);
3. **Jacobian consistency** — ``|J_fd - A| <= atol + rtol * |A|``
   entrywise.

``tests/devices/test_stamp_sanitizer.py`` runs this over every shipped
device (FinFET n/p, MTJ P/AP, passives, sources, switches) at several
bias points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.mna import Context, Stamper

#: FD entries below this magnitude (siemens) are treated as zero when
#: checking observed sparsity against the declared pattern.
FD_SPARSITY_FLOOR = 1e-9


@dataclass
class StampCheckResult:
    """Outcome of sanitising one element at one bias point."""

    element: str
    mode: str
    #: Entries of the stamped matrix outside ``stamp_pattern()``.
    pattern_violations: List[Tuple[int, int]] = field(default_factory=list)
    #: FD-Jacobian entries outside ``stamp_pattern()``.
    fd_violations: List[Tuple[int, int]] = field(default_factory=list)
    #: Entries where the FD Jacobian disagrees with the stamped ``A``.
    jacobian_mismatches: List[Tuple[int, int, float, float]] = \
        field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the element honours its stamp contract here."""
        return not (self.pattern_violations or self.fd_violations
                    or self.jacobian_mismatches)

    def describe(self) -> str:
        """Human-readable failure summary (empty string when ok)."""
        parts: List[str] = []
        if self.pattern_violations:
            parts.append(f"stamped entries outside stamp_pattern(): "
                         f"{self.pattern_violations}")
        if self.fd_violations:
            parts.append(f"FD-Jacobian entries outside stamp_pattern(): "
                         f"{self.fd_violations}")
        for row, col, fd, analytic in self.jacobian_mismatches[:5]:
            parts.append(f"dF[{row}]/dx[{col}]: FD {fd:.6g} vs "
                         f"stamped {analytic:.6g}")
        if not parts:
            return ""
        return f"{self.element} ({self.mode}): " + "; ".join(parts)


def _stamp_alone(element, size: int, ctx: Context) -> Stamper:
    """A system containing only ``element``'s contribution."""
    stamper = Stamper(size)
    element.stamp(stamper, ctx)
    return stamper


def _declared(element, mode: str) -> set:
    """Non-ground entries of the element's declared pattern."""
    return {(row, col) for row, col in element.stamp_pattern(mode)
            if row >= 0 and col >= 0}


def check_element_stamp(
    element,
    size: int,
    x: np.ndarray,
    mode: str = "dc",
    dt: float = 0.0,
    method: str = "be",
    rtol: float = 1e-4,
    atol: float = 1e-8,
    step: float = 1e-7,
    make_ctx: Optional[Callable[[np.ndarray], Context]] = None,
) -> StampCheckResult:
    """Sanitise one element's stamp at the iterate ``x``.

    ``size`` is the full MNA system size (the element's node/branch
    indices must already be assigned, i.e. the circuit compiled).
    ``make_ctx`` overrides context construction for exotic cases; the
    default builds ``Context(mode, dt, method, x)``.
    """
    if make_ctx is None:
        def make_ctx(xv: np.ndarray) -> Context:
            return Context(mode=mode, dt=dt, method=method, x=xv)

    result = StampCheckResult(element=element.name, mode=mode)
    declared = _declared(element, mode)

    analytic = _stamp_alone(element, size, make_ctx(x)).A
    stamped = {(int(r), int(c))
               for r, c in zip(*np.nonzero(analytic))}
    result.pattern_violations = sorted(stamped - declared)

    jacobian = np.zeros_like(analytic)
    for col in range(size):
        h = step * max(1.0, abs(float(x[col])))
        x_plus = np.array(x, dtype=float)
        x_minus = np.array(x, dtype=float)
        x_plus[col] += h
        x_minus[col] -= h
        s_plus = _stamp_alone(element, size, make_ctx(x_plus))
        s_minus = _stamp_alone(element, size, make_ctx(x_minus))
        f_plus = s_plus.A @ x_plus - s_plus.b
        f_minus = s_minus.A @ x_minus - s_minus.b
        jacobian[:, col] = (f_plus - f_minus) / (2.0 * h)

    fd_nonzero = {(int(r), int(c))
                  for r, c in zip(*np.nonzero(
                      np.abs(jacobian) > FD_SPARSITY_FLOOR))}
    result.fd_violations = sorted(fd_nonzero - declared)

    error = np.abs(jacobian - analytic)
    bound = atol + rtol * np.abs(analytic)
    for row, col in zip(*np.nonzero(error > bound)):
        result.jacobian_mismatches.append(
            (int(row), int(col), float(jacobian[row, col]),
             float(analytic[row, col])))
    return result


def check_circuit_stamps(
    circuit,
    x: Optional[np.ndarray] = None,
    mode: str = "dc",
    dt: float = 0.0,
    method: str = "be",
    rtol: float = 1e-4,
    atol: float = 1e-8,
    names: Optional[Sequence[str]] = None,
) -> List[StampCheckResult]:
    """Sanitise every element of ``circuit`` (or just ``names``).

    The circuit is compiled first; ``x`` defaults to the zero vector.
    Returns one :class:`StampCheckResult` per element checked — callers
    assert ``all(r.ok for r in results)`` and print ``describe()`` on
    failure.
    """
    circuit.compile()
    if x is None:
        x = np.zeros(circuit.size)
    x = np.asarray(x, dtype=float)
    wanted = set(names) if names is not None else None
    results: List[StampCheckResult] = []
    for element in circuit.elements():
        if wanted is not None and element.name not in wanted:
            continue
        results.append(check_element_stamp(
            element, circuit.size, x, mode=mode, dt=dt, method=method,
            rtol=rtol, atol=atol))
    return results


def assert_stamps_clean(results: Sequence[StampCheckResult]) -> None:
    """Raise ``AssertionError`` listing every failed check."""
    failures = [r.describe() for r in results if not r.ok]
    if failures:
        raise AssertionError(
            "stamp-contract sanitizer failures:\n  "
            + "\n  ".join(failures))
