"""Source-level static analysis: lint the simulator's own Python code.

``repro.verify.source`` turns the rule registry inward, in two layers:

* **per-module** (``scope="source"``): RV4xx rules run Python-``ast``
  checks over one module at a time — float equality on physical
  quantities, NaN-unsafe reductions, stamp-contract drift, raw SPICE
  quantity strings, swallowed solver forensics, mutable defaults;
* **whole-program** (``scope="project"``): RV5xx units dataflow, RV6xx
  campaign purity and RV7xx perf inventory run each module against the
  assembled project symbol table, call graph and interprocedural facts
  (:mod:`repro.verify.callgraph`).

The engine is incremental: with a ``cache_dir``, every module's summary
and diagnostics persist keyed by content + policy hash
(:mod:`repro.verify.cache`); a warm run over an unchanged tree parses
nothing, and after an edit only the edited module *and the modules
whose interprocedural facts it shifted* (callers seeing a changed
return dimension, functions newly reachable from a task) are
re-checked.  Parsing of cold modules fans out over a thread pool.

The target object handed to every ``scope="source"`` rule is a
:class:`SourceModule`: the module text, its parsed AST and the
``# lint: skip=RVnnn`` pragma lines.  Entry points mirror the deck
linter: :func:`verify_source_text` / :func:`verify_source_file` lint
one module (as a single-module project, so the interprocedural bands
run there too), :func:`verify_source` walks files and directories and
returns one merged :class:`~repro.verify.core.Report` whose per-file
diagnostics keep their own ``target`` (so SARIF locations point at the
right artifact).

Suppressing a finding:

* inline, for one line: ``x = spice_magic()  # lint: skip=RV404`` (use
  sparingly — the pragma is the audit trail for a deliberate violation);
* by policy, for a path: a ``"RV404:src/repro/legacy/*"`` entry in the
  shared ``suppress`` list (see :mod:`repro.verify.config`);
* run-over-run, for a whole tree: a baseline file
  (:mod:`repro.verify.baseline`) recording today's findings so only
  *new* ones fail CI.
"""

from __future__ import annotations

import ast
import os
import re
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import (Any, Dict, Iterable, Iterator, List, Optional, Sequence,
                    Set, Tuple)

from . import cache as lint_cache
from .core import (
    Diagnostic,
    Report,
    Severity,
    SourceLocation,
    VerifyConfig,
    run_rules,
)

#: Inline suppression pragma: ``# lint: skip=RV401`` or
#: ``# lint: skip=RV401,RV403`` at the end of the offending line.
_PRAGMA_RE = re.compile(r"#\s*lint:\s*skip=([A-Za-z0-9_,\s]+)")


class SourceModule:
    """One Python module under analysis — the RV4xx rule target.

    Attributes
    ----------
    text:
        Raw module source.
    path:
        Display path of the module (report target, SARIF artifact URI).
    lines:
        ``text`` split into physical lines (1-based access via
        :meth:`line_text`).
    tree:
        Parsed AST, or ``None`` when the module does not parse —
        RV400 owns that finding and every other rule skips the module.
    syntax_error:
        The ``SyntaxError`` raised by :func:`ast.parse`, if any.
    pragmas:
        ``{line number: {rule codes}}`` of inline skip pragmas.
    """

    def __init__(self, text: str, path: str = ""):
        self.text = text
        self.path = path
        self.lines = text.splitlines()
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(text)
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = exc
        self.pragmas = self._scan_pragmas(self.lines)

    @staticmethod
    def _scan_pragmas(lines: Sequence[str]) -> Dict[int, Set[str]]:
        out: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(lines, start=1):
            match = _PRAGMA_RE.search(line)
            if match is not None:
                codes = {tok.strip().upper()
                         for tok in match.group(1).split(",") if tok.strip()}
                if codes:
                    out[lineno] = codes
        return out

    def line_text(self, lineno: int) -> str:
        """Physical line ``lineno`` (1-based), or empty when out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def loc(self, node: ast.AST) -> SourceLocation:
        """Source location of an AST node, with the line's text."""
        lineno = getattr(node, "lineno", 0) or 0
        return SourceLocation(line=lineno, text=self.line_text(lineno))

    def suppressed_at(self, code: str, lineno: Optional[int]) -> bool:
        """True when a ``# lint: skip=`` pragma covers ``code`` there."""
        if lineno is None:
            return False
        return code.upper() in self.pragmas.get(lineno, ())


def iter_source_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files and directories into sorted ``*.py`` module paths.

    Directories are walked recursively; duplicate paths (a file listed
    directly and again via its directory) are yielded once.
    """
    seen: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


# ---------------------------------------------------------------------------
# diagnostic (de)serialisation for the incremental cache
# ---------------------------------------------------------------------------


def _diag_to_json(diag: Diagnostic) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "code": diag.code, "name": diag.name,
        "severity": diag.severity.value, "message": diag.message,
        "subject": diag.subject, "target": diag.target,
    }
    if diag.location is not None:
        out["line"] = diag.location.line
        out["text"] = diag.location.text
    return out


def _diag_from_json(data: Dict[str, Any]) -> Diagnostic:
    location = None
    if "line" in data:
        location = SourceLocation(line=int(data["line"]),
                                  text=str(data.get("text", "")))
    return Diagnostic(
        code=str(data["code"]), name=str(data["name"]),
        severity=Severity.parse(str(data["severity"])),
        message=str(data["message"]), subject=str(data["subject"]),
        target=str(data.get("target", "")), location=location,
    )


def _filter_pragmas(report: Report, module: SourceModule) -> None:
    if module.pragmas:
        report.diagnostics = [
            d for d in report.diagnostics
            if not module.suppressed_at(
                d.code, d.location.line if d.location else None)
        ]


# ---------------------------------------------------------------------------
# the incremental whole-program engine
# ---------------------------------------------------------------------------


class _Entry:
    """Per-module working state for one :func:`verify_source` run."""

    __slots__ = ("path", "text", "key", "name", "module", "summary",
                 "source_diags", "cached_project", "project_diags",
                 "dirty")

    def __init__(self, path: Path, text: str, key: str, name: str):
        self.path = path
        self.text = text
        self.key = key
        self.name = name
        self.module: Optional[SourceModule] = None
        self.summary: Optional[Dict[str, Any]] = None
        self.source_diags: List[Diagnostic] = []
        #: ``(facts_digest, [diag json])`` from the cache, if any.
        self.cached_project: Optional[Tuple[str, List[Dict[str, Any]]]] = None
        self.project_diags: List[Diagnostic] = []
        self.dirty = False      # needs a cache write at the end

    def ensure_parsed(self) -> SourceModule:
        if self.module is None:
            self.module = SourceModule(self.text, path=str(self.path))
        return self.module


def _analyse_cold(entry: _Entry, config: VerifyConfig) -> None:
    """Parse + summarise + source-scope lint one cache-missing module."""
    from .callgraph import summarize_module
    module = entry.ensure_parsed()
    entry.summary = summarize_module(module, entry.name)
    report = run_rules(module, "source", target_name=str(entry.path),
                       config=config)
    _filter_pragmas(report, module)
    entry.source_diags = report.diagnostics
    entry.dirty = True


def verify_source(paths: Iterable[str],
                  config: Optional[VerifyConfig] = None,
                  *,
                  cache_dir: Optional[Path] = None,
                  jobs: Optional[int] = None,
                  extra_task_refs: Iterable[str] = (),
                  project_rules: bool = True) -> Report:
    """Lint every module under ``paths``; one merged report.

    Runs the per-module ``source`` band and then the whole-program
    ``project`` bands over the assembled call graph.  Each diagnostic
    keeps its own module path as ``target``, so the merged report
    renders and serialises with correct per-file locations.

    Parameters
    ----------
    cache_dir:
        Directory for the incremental result cache; ``None`` (the
        default) disables caching.  The CLI passes
        :func:`repro.verify.cache.default_lint_cache_dir`.
    jobs:
        Worker threads for parsing cold modules (default: CPU count,
        capped at 8).
    extra_task_refs:
        Additional ``"module:function"`` task roots for the RV6xx band
        (the CLI seeds :func:`repro.exec.registry.task_function_refs`).
    project_rules:
        Set ``False`` to run only the per-module band (used by tools
        that lint snippets with no project context).
    """
    from .callgraph import SourceProject, ProjectModule, module_name_for

    if config is None:
        config = VerifyConfig.from_env()
    roots = [str(p) for p in paths]
    files: List[Path] = list(iter_source_files(roots))
    config_digest = config.digest() + f"|refs={sorted(extra_task_refs)!r}"

    entries: List[_Entry] = []
    for path in files:
        text = path.read_text()
        key = lint_cache.entry_key(text, config_digest)
        entries.append(_Entry(path, text, key, module_name_for(path)))

    # 1. probe the cache; rebuild summaries/diags for hits without parsing
    cold: List[_Entry] = []
    for entry in entries:
        payload = lint_cache.load(cache_dir, entry.key)
        if payload is not None and isinstance(payload.get("summary"), dict):
            entry.summary = payload["summary"]
            entry.source_diags = [_diag_from_json(d)
                                  for d in payload.get("source_diags", ())]
            project = payload.get("project")
            if isinstance(project, dict):
                entry.cached_project = (
                    str(project.get("facts_digest", "")),
                    list(project.get("diags", ())))
        else:
            cold.append(entry)

    # 2. parse + summarise + source-lint the cold modules, in parallel
    if cold:
        workers = jobs or min(8, os.cpu_count() or 1)
        if workers > 1 and len(cold) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                list(pool.map(lambda e: _analyse_cold(e, config), cold))
        else:
            for entry in cold:
                _analyse_cold(entry, config)

    merged = Report(
        target=f"{', '.join(roots) or 'source'} ({len(files)} modules)")
    for entry in entries:
        merged.diagnostics.extend(entry.source_diags)

    # 3. assemble the project from summaries and run the whole-program
    #    bands on modules whose relevant facts changed
    if project_rules:
        project = SourceProject(
            [e.summary for e in entries if e.summary is not None],
            extra_task_refs=extra_task_refs)
        for entry in entries:
            if entry.summary is None:
                continue        # unreadable / unsummarisable module
            facts_digest = project.fact_digest(entry.name)
            if entry.cached_project is not None \
                    and entry.cached_project[0] == facts_digest \
                    and not entry.dirty:
                entry.project_diags = [_diag_from_json(d)
                                       for d in entry.cached_project[1]]
            else:
                module = entry.ensure_parsed()
                pm = ProjectModule(module, entry.name, entry.summary,
                                   project)
                report = run_rules(pm, "project",
                                   target_name=str(entry.path),
                                   config=config)
                _filter_pragmas(report, module)
                entry.project_diags = report.diagnostics
                entry.cached_project = (
                    facts_digest,
                    [_diag_to_json(d) for d in entry.project_diags])
                entry.dirty = True
            merged.diagnostics.extend(entry.project_diags)

    # 4. persist updated entries
    if cache_dir is not None:
        for entry in entries:
            if not entry.dirty or entry.summary is None:
                continue
            payload: Dict[str, Any] = {
                "path": str(entry.path),
                "name": entry.name,
                "summary": entry.summary,
                "source_diags": [_diag_to_json(d)
                                 for d in entry.source_diags],
            }
            if entry.cached_project is not None:
                payload["project"] = {
                    "facts_digest": entry.cached_project[0],
                    "diags": entry.cached_project[1],
                }
            lint_cache.store(cache_dir, entry.key, payload)

    merged.diagnostics.sort(key=Diagnostic.sort_key)
    return merged


def verify_source_text(text: str, path: str = "",
                       config: Optional[VerifyConfig] = None,
                       project_rules: bool = True) -> Report:
    """Lint one module's text: the ``source`` band plus, when the
    module parses, the ``project`` bands over a single-module project.

    Interprocedural facts are naturally thinner with one module — cross
    module findings need :func:`verify_source` — but units checks,
    signature checks and lexical perf findings all fire, which is what
    the per-rule fixture tests exercise.
    """
    from .callgraph import SourceProject, ProjectModule, summarize_module

    if config is None:
        config = VerifyConfig.from_env()
    module = SourceModule(text, path=path)
    target = path or "<source>"
    report = run_rules(module, "source", target_name=target, config=config)
    if project_rules and module.tree is not None:
        name = Path(path).stem if path else "<module>"
        summary = summarize_module(module, name)
        project = SourceProject([summary])
        pm = ProjectModule(module, name, summary, project)
        report.extend(run_rules(pm, "project", target_name=target,
                                config=config))
    _filter_pragmas(report, module)
    return report


def verify_source_file(path, config: Optional[VerifyConfig] = None) -> Report:
    """Lint the Python module at ``path`` (see :func:`verify_source_text`)."""
    p = Path(path)
    return verify_source_text(p.read_text(), path=str(p), config=config)


def default_source_paths() -> List[str]:
    """The package's own source tree — what ``lint-source`` lints bare."""
    return [str(Path(__file__).resolve().parent.parent)]
