"""Source-level static analysis: lint the simulator's own Python code.

``repro.verify.source`` turns the rule registry inward: RV4xx rules run
Python-``ast`` checks over ``src/repro`` itself, catching the contract
and unit drift that netlist lint cannot see — float equality on
physical quantities, NaN-unsafe reductions over partial sweep results,
``stamp()``/``stamp_pattern()`` contract drift, raw SPICE quantity
strings bypassing :func:`repro.units.parse_quantity`, swallowed solver
forensics, and mutable default arguments in public APIs.

The target object handed to every ``scope="source"`` rule is a
:class:`SourceModule`: the module text, its parsed AST and the
``# lint: skip=RV4xx`` pragma lines.  Entry points mirror the deck
linter: :func:`verify_source_text` / :func:`verify_source_file` lint
one module, :func:`verify_source` walks files and directories and
returns one merged :class:`~repro.verify.core.Report` whose per-file
diagnostics keep their own ``target`` (so SARIF locations point at the
right artifact).

Suppressing a finding:

* inline, for one line: ``x = spice_magic()  # lint: skip=RV404`` (use
  sparingly — the pragma is the audit trail for a deliberate violation);
* by policy, for a path: a ``"RV404:src/repro/legacy/*"`` entry in the
  shared ``suppress`` list (see :mod:`repro.verify.config`).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from .core import (
    Report,
    SourceLocation,
    VerifyConfig,
    run_rules,
)

#: Inline suppression pragma: ``# lint: skip=RV401`` or
#: ``# lint: skip=RV401,RV403`` at the end of the offending line.
_PRAGMA_RE = re.compile(r"#\s*lint:\s*skip=([A-Za-z0-9_,\s]+)")


class SourceModule:
    """One Python module under analysis — the RV4xx rule target.

    Attributes
    ----------
    text:
        Raw module source.
    path:
        Display path of the module (report target, SARIF artifact URI).
    lines:
        ``text`` split into physical lines (1-based access via
        :meth:`line_text`).
    tree:
        Parsed AST, or ``None`` when the module does not parse —
        RV400 owns that finding and every other rule skips the module.
    syntax_error:
        The ``SyntaxError`` raised by :func:`ast.parse`, if any.
    pragmas:
        ``{line number: {rule codes}}`` of inline skip pragmas.
    """

    def __init__(self, text: str, path: str = ""):
        self.text = text
        self.path = path
        self.lines = text.splitlines()
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(text)
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = exc
        self.pragmas = self._scan_pragmas(self.lines)

    @staticmethod
    def _scan_pragmas(lines: Sequence[str]) -> Dict[int, Set[str]]:
        out: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(lines, start=1):
            match = _PRAGMA_RE.search(line)
            if match is not None:
                codes = {tok.strip().upper()
                         for tok in match.group(1).split(",") if tok.strip()}
                if codes:
                    out[lineno] = codes
        return out

    def line_text(self, lineno: int) -> str:
        """Physical line ``lineno`` (1-based), or empty when out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def loc(self, node: ast.AST) -> SourceLocation:
        """Source location of an AST node, with the line's text."""
        lineno = getattr(node, "lineno", 0) or 0
        return SourceLocation(line=lineno, text=self.line_text(lineno))

    def suppressed_at(self, code: str, lineno: Optional[int]) -> bool:
        """True when a ``# lint: skip=`` pragma covers ``code`` there."""
        if lineno is None:
            return False
        return code.upper() in self.pragmas.get(lineno, ())


def iter_source_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files and directories into sorted ``*.py`` module paths.

    Directories are walked recursively; duplicate paths (a file listed
    directly and again via its directory) are yielded once.
    """
    seen: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def verify_source_text(text: str, path: str = "",
                       config: Optional[VerifyConfig] = None) -> Report:
    """Run every ``scope="source"`` rule over one module's text."""
    if config is None:
        config = VerifyConfig.from_env()
    module = SourceModule(text, path=path)
    report = run_rules(module, "source", target_name=path or "<source>",
                       config=config)
    if module.pragmas:
        report.diagnostics = [
            d for d in report.diagnostics
            if not module.suppressed_at(
                d.code, d.location.line if d.location else None)
        ]
    return report


def verify_source_file(path, config: Optional[VerifyConfig] = None) -> Report:
    """Lint the Python module at ``path`` (see :func:`verify_source_text`)."""
    p = Path(path)
    return verify_source_text(p.read_text(), path=str(p), config=config)


def verify_source(paths: Iterable[str],
                  config: Optional[VerifyConfig] = None) -> Report:
    """Lint every module under ``paths``; one merged report.

    Each diagnostic keeps its own module path as ``target``, so the
    merged report renders and serialises with correct per-file
    locations.  The merged report's own ``target`` names the lint run.
    """
    if config is None:
        config = VerifyConfig.from_env()
    roots = [str(p) for p in paths]
    files: List[Path] = list(iter_source_files(roots))
    merged = Report(
        target=f"{', '.join(roots) or 'source'} ({len(files)} modules)")
    for path in files:
        merged.extend(verify_source_file(path, config=config))
    return merged


def default_source_paths() -> List[str]:
    """The package's own source tree — what ``lint-source`` lints bare."""
    return [str(Path(__file__).resolve().parent.parent)]
