"""Forward dataflow over ``ast`` for the interprocedural rule bands.

This module is the analysis substrate under the RV5xx units band (and
the summary extraction that feeds every project-scope rule): a small
forward abstract interpreter over one function body, where the abstract
value of an expression is a **dimension expression** — a serialisable
tree whose leaves are physical dimensions (seeded from
:mod:`repro.units`), function parameters, and calls into other project
functions.

Two consumers drive the same walker:

* **summary extraction** (:mod:`repro.verify.callgraph`) runs it with no
  hooks and keeps the dimension expressions of every ``return``
  statement.  Those trees are JSON-serialisable, so they live in the
  incremental lint cache and the warm path never needs the AST;
* **checking** (:mod:`repro.verify.rules_units`) runs it with hooks that
  evaluate operand trees against the project's return-dimension facts
  and yield findings on dimension-mixing arithmetic.

The dimension lattice is deliberately optimistic about unknowns: a
numeric literal or an unseeded variable multiplies through as
"dimensionless scalar" (``n * e_store`` stays an energy), and findings
fire only when *both* sides of an addition/comparison carry known,
different, non-dimensionless dimensions.  Optimism keeps the band
useful on real energy-accounting code — the pessimistic reading turns
every product into "unknown" and the band finds nothing.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Tuple

from ..units import (
    DIMENSIONLESS,
    DIM_CAPACITANCE,
    DIM_CHARGE,
    DIM_CURRENT,
    DIM_ENERGY,
    DIM_FREQUENCY,
    DIM_POWER,
    DIM_RESISTANCE,
    DIM_TIME,
    DIM_VOLTAGE,
    dimension_name,
)

Dim = Tuple[int, int, int, int]

# ---------------------------------------------------------------------------
# dimension expressions (serialisable)
# ---------------------------------------------------------------------------
#
# A DimExpr is a plain-JSON tree:
#   {"k": "dim", "d": [m, l, t, i]}      a known dimension
#   {"k": "param", "n": "t_sl"}          the named parameter's dimension
#   {"k": "call", "id": "mod:qual"}      a project function's return dim
#   {"k": "bin", "op": "mul"|"div"|"add", "l": ..., "r": ...}
#   {"k": "pow", "b": ..., "e": 2}       integer power
#   {"k": "engstr"}                      a format_eng string
#   {"k": "unknown"}                     no information

UNKNOWN: Dict[str, object] = {"k": "unknown"}
ENG_STR: Dict[str, object] = {"k": "engstr"}

#: Evaluated abstract value: a Dim tuple, the string "engstr", or None
#: (unknown).
AbsVal = Optional[object]


def dim_expr(dim: Dim) -> Dict[str, object]:
    """Leaf node for a known dimension."""
    return {"k": "dim", "d": list(dim)}


def param_expr(name: str) -> Dict[str, object]:
    """Leaf node for a function parameter's (call-site-independent) dim."""
    return {"k": "param", "n": name}


def call_expr(function_id: str) -> Dict[str, object]:
    """Leaf node for a project function's return dimension."""
    return {"k": "call", "id": function_id}


def bin_expr(op: str, left: Dict[str, object],
             right: Dict[str, object]) -> Dict[str, object]:
    """Binary arithmetic node (``mul``/``div``/``add``)."""
    return {"k": "bin", "op": op, "l": left, "r": right}


def pow_expr(base: Dict[str, object], exponent: int) -> Dict[str, object]:
    """Integer power node."""
    return {"k": "pow", "b": base, "e": exponent}


def _combine(op: str, left: AbsVal, right: AbsVal) -> AbsVal:
    """Dimension algebra for one binary operation.

    ``None`` (unknown) and literals behave as dimensionless scalars
    under ``mul``/``div`` — the optimistic choice documented above.
    """
    if left == "engstr" or right == "engstr":
        return "engstr"
    if op == "mul":
        if left is None and right is None:
            return None
        a = left if left is not None else DIMENSIONLESS
        b = right if right is not None else DIMENSIONLESS
        return tuple(x + y for x, y in zip(a, b))
    if op == "div":
        if left is None and right is None:
            return None
        a = left if left is not None else DIMENSIONLESS
        b = right if right is not None else DIMENSIONLESS
        return tuple(x - y for x, y in zip(a, b))
    # add/sub/mod and joins: agreement propagates, disagreement is the
    # checker's business (it sees both operands before combining).
    if left is not None and right is not None and tuple(left) == tuple(right):
        return tuple(left)
    if left is not None and right is None:
        return tuple(left)
    if right is not None and left is None:
        return tuple(right)
    return None


def eval_dim(expr: Optional[Dict[str, object]],
             param_dims: Optional[Dict[str, Dim]] = None,
             return_facts: Optional[Dict[str, Optional[Dim]]] = None,
             _depth: int = 0) -> AbsVal:
    """Evaluate a DimExpr to a Dim tuple, ``"engstr"`` or ``None``.

    ``param_dims`` maps parameter names to seeded dimensions;
    ``return_facts`` maps project function ids to their (fixpoint)
    return dimensions.  Missing entries evaluate to unknown.
    """
    if expr is None or _depth > 32:
        return None
    kind = expr.get("k")
    if kind == "dim":
        return tuple(expr["d"])  # type: ignore[arg-type]
    if kind == "engstr":
        return "engstr"
    if kind == "unknown":
        return None
    if kind == "param":
        if param_dims is None:
            return None
        return param_dims.get(str(expr.get("n")))
    if kind == "call":
        if return_facts is None:
            return None
        return return_facts.get(str(expr.get("id")))
    if kind == "pow":
        base = eval_dim(expr.get("b"), param_dims, return_facts, _depth + 1)
        if base is None or base == "engstr":
            return None
        exponent = expr.get("e")
        if not isinstance(exponent, int):
            return None
        return tuple(x * exponent for x in base)  # type: ignore[union-attr]
    if kind == "bin":
        left = eval_dim(expr.get("l"), param_dims, return_facts, _depth + 1)
        right = eval_dim(expr.get("r"), param_dims, return_facts, _depth + 1)
        return _combine(str(expr.get("op")), left, right)
    return None


def render_dim(value: AbsVal) -> str:
    """Readable rendering of an evaluated abstract value."""
    if value == "engstr":
        return "format_eng string"
    if value is None:
        return "unknown"
    return dimension_name(tuple(value))  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# parameter / attribute seeding
# ---------------------------------------------------------------------------

#: Name fragments that mark a variable as a pure number even when a
#: dimension prefix/suffix also matches (``t_ratio`` is not a time).
_NONDIM_WORDS = (
    "ratio", "factor", "count", "index", "frac", "scale", "name",
    "label", "mode", "kind", "id", "flag", "bits", "steps", "iters",
)

#: (prefixes, suffixes, exact names) seeding each dimension.  Prefixes
#: are deliberately few — single-letter prefixes collide with MNA node
#: indices (``p``, ``n``) and loop variables.
_NAME_SEEDS: Tuple[Tuple[Tuple[str, ...], Tuple[str, ...],
                         Tuple[str, ...], Dim], ...] = (
    (("e_",), ("_energy",), ("energy",), DIM_ENERGY),
    (("t_",), ("_time", "_duration", "_window"), ("bet", "dt", "tau"),
     DIM_TIME),
    ((), ("_power",), ("power",), DIM_POWER),
    ((), ("_current",), ("ic", "i_c"), DIM_CURRENT),
    ((), ("_voltage",), ("vdd", "vss", "drv"), DIM_VOLTAGE),
    ((), ("_frequency",), ("frequency", "freq"), DIM_FREQUENCY),
    ((), ("_capacitance",), (), DIM_CAPACITANCE),
    ((), ("_resistance",), (), DIM_RESISTANCE),
    ((), ("_charge",), (), DIM_CHARGE),
)

#: String annotations accepted on parameters: ``def f(e: "J")``.
_ANNOTATION_DIMS = {
    "s": DIM_TIME, "Hz": DIM_FREQUENCY, "J": DIM_ENERGY, "W": DIM_POWER,
    "A": DIM_CURRENT, "V": DIM_VOLTAGE, "F": DIM_CAPACITANCE,
    "Ohm": DIM_RESISTANCE, "C": DIM_CHARGE,
}


def seed_for_name(name: str) -> Optional[Dim]:
    """Dimension implied by a variable/attribute/parameter name.

    The conventions mirror this repo's naming (``e_store``, ``t_sl``,
    ``saving_power``, ``leakage_current``); names carrying a
    counting/ratio word are never seeded.
    """
    lowered = name.lower()
    if any(word in lowered for word in _NONDIM_WORDS):
        return None
    for prefixes, suffixes, exacts, dim in _NAME_SEEDS:
        if lowered in exacts:
            return dim
        if any(lowered.startswith(p) and len(lowered) > len(p)
               for p in prefixes):
            return dim
        if any(lowered.endswith(s) for s in suffixes):
            return dim
    return None


def seed_for_annotation(annotation: Optional[str]) -> Optional[Dim]:
    """Dimension from a string parameter annotation (``x: "J"``)."""
    if annotation is None:
        return None
    return _ANNOTATION_DIMS.get(annotation)


# ---------------------------------------------------------------------------
# the forward walker
# ---------------------------------------------------------------------------

#: Pass-through callables: the result has its argument's dimension.
_PASSTHROUGH = frozenset({
    "abs", "fabs", "float", "copysign", "nan_to_num", "nanmin", "nanmax",
    "nansum", "nanmean", "mean", "minimum", "maximum",
})


class DimFlow:
    """Forward dimension propagation over one function body.

    Parameters
    ----------
    resolve_name:
        Callback mapping a dotted name (``"units.NS"`` as written in the
        module, already alias-resolved by the caller) to a DimExpr leaf,
        or ``None`` when the name means nothing to the units analysis.
        This is where :mod:`repro.verify.callgraph` injects project
        symbols (``call_expr``) and :mod:`repro.units` constants
        (``dim_expr``).
    on_binop / on_compare / on_call:
        Optional checking hooks, called with the AST node and the
        operand DimExprs.  Summary extraction passes none.
    """

    def __init__(self, resolve_name: Callable[[str],
                                              Optional[Dict[str, object]]],
                 on_binop=None, on_compare=None, on_call=None):
        self.resolve_name = resolve_name
        self.on_binop = on_binop
        self.on_compare = on_compare
        self.on_call = on_call
        self.env: Dict[str, Dict[str, object]] = {}
        self.returns: List[Dict[str, object]] = []

    # -- entry point ------------------------------------------------------
    def run(self, func: ast.FunctionDef) -> List[Dict[str, object]]:
        """Walk ``func``'s body; returns the return-value DimExprs."""
        for arg in (list(func.args.posonlyargs) + list(func.args.args)
                    + list(func.args.kwonlyargs)):
            if arg.arg in ("self", "cls"):
                continue
            self.env[arg.arg] = param_expr(arg.arg)
        self._walk(func.body)
        return self.returns

    # -- statements -------------------------------------------------------
    def _walk(self, stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue            # nested scopes are summarised separately
            elif isinstance(stmt, ast.Assign):
                value = self.expr(stmt.value)
                for target in stmt.targets:
                    self._bind(target, value)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._bind(stmt.target, self.expr(stmt.value))
            elif isinstance(stmt, ast.AugAssign):
                current = (self.env.get(stmt.target.id, UNKNOWN)
                           if isinstance(stmt.target, ast.Name) else UNKNOWN)
                op = _BINOPS.get(type(stmt.op))
                value = self.expr(stmt.value)
                if op in ("add", "sub") and self.on_binop is not None:
                    self.on_binop(stmt, current, value)
                if isinstance(stmt.target, ast.Name):
                    combined = (bin_expr(_EVAL_OP.get(op, "add"),
                                         current, value)
                                if op else UNKNOWN)
                    self.env[stmt.target.id] = combined
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    self.returns.append(self.expr(stmt.value))
            elif isinstance(stmt, ast.Expr):
                self.expr(stmt.value)
            elif isinstance(stmt, ast.If):
                self._branch(stmt.body, stmt.orelse, [stmt.test])
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._clear_bindings(stmt.target)
                self.expr(stmt.iter)
                self._branch(stmt.body, stmt.orelse, [])
            elif isinstance(stmt, ast.While):
                self._branch(stmt.body, stmt.orelse, [stmt.test])
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    self.expr(item.context_expr)
                self._walk(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body)
                for handler in stmt.handlers:
                    self._walk(handler.body)
                self._walk(stmt.orelse)
                self._walk(stmt.finalbody)
            elif isinstance(stmt, (ast.Raise, ast.Assert)):
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self.expr(child)

    def _branch(self, body, orelse, tests) -> None:
        """Walk both arms of a branch and join the environments."""
        for test in tests:
            self.expr(test)
        before = dict(self.env)
        self._walk(body)
        after_body = self.env
        self.env = dict(before)
        self._walk(orelse)
        joined: Dict[str, Dict[str, object]] = {}
        for name in set(after_body) | set(self.env):
            a = after_body.get(name)
            b = self.env.get(name)
            if a is not None and b is not None and a == b:
                joined[name] = a
            elif a is not None and b is None and name not in before:
                joined[name] = a
            elif b is not None and a is None and name not in before:
                joined[name] = b
            else:
                joined[name] = UNKNOWN if a != b else (a or UNKNOWN)
        self.env = joined

    def _bind(self, target: ast.AST, value: Dict[str, object]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._clear_bindings(elt)

    def _clear_bindings(self, target: ast.AST) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.env[node.id] = UNKNOWN

    # -- expressions ------------------------------------------------------
    def expr(self, node: ast.AST) -> Dict[str, object]:
        """DimExpr of one expression (walking children for hook firing)."""
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return self.resolve_name(node.id) or UNKNOWN
        if isinstance(node, ast.Constant):
            return UNKNOWN          # literals are polymorphic scalars
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.expr(node.operand)
        if isinstance(node, ast.Compare):
            operands = [self.expr(node.left)] + [
                self.expr(comparator) for comparator in node.comparators]
            if self.on_compare is not None:
                self.on_compare(node, operands)
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            self.expr(node.test)
            left = self.expr(node.body)
            right = self.expr(node.orelse)
            return left if left == right else UNKNOWN
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.expr(elt)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for value in node.values:
                self.expr(value)
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            self.expr(node.value)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.expr(value.value)
            return UNKNOWN
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.expr(value)
            return UNKNOWN
        return UNKNOWN

    def _attribute(self, node: ast.Attribute) -> Dict[str, object]:
        dotted = _dotted_name(node)
        if dotted is not None:
            resolved = self.resolve_name(dotted)
            if resolved is not None:
                return resolved
        self.expr(node.value)       # keep walking for hooks
        seed = seed_for_name(node.attr)
        if seed is not None:
            return dim_expr(seed)
        return UNKNOWN

    def _binop(self, node: ast.BinOp) -> Dict[str, object]:
        op = _BINOPS.get(type(node.op))
        left = self.expr(node.left)
        right = self.expr(node.right)
        if op is None:
            return UNKNOWN
        if op in ("add", "sub") and self.on_binop is not None:
            self.on_binop(node, left, right)
        if op == "pow":
            if (isinstance(node.right, ast.Constant)
                    and isinstance(node.right.value, int)):
                return pow_expr(left, node.right.value)
            return UNKNOWN
        return bin_expr(_EVAL_OP[op], left, right)

    def _call(self, node: ast.Call) -> Dict[str, object]:
        args = [self.expr(arg) for arg in node.args]
        for keyword in node.keywords:
            self.expr(keyword.value)
        name = _call_target(node)
        if self.on_call is not None:
            self.on_call(node, name, args)
        if name is None:
            return UNKNOWN
        tail = name.rsplit(".", 1)[-1]
        if tail == "format_eng":
            return ENG_STR
        if tail in _PASSTHROUGH and args:
            return args[0]
        resolved = self.resolve_name(name)
        if resolved is not None:
            return resolved
        return UNKNOWN


_BINOPS = {
    ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul", ast.Div: "div",
    ast.FloorDiv: "div", ast.Mod: "add", ast.Pow: "pow",
}

#: Operation used when *evaluating* the stored tree ("sub"/"mod" reuse
#: the agreement semantics of "add").
_EVAL_OP = {"add": "add", "sub": "add", "mul": "mul", "div": "div"}


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for nested attribute chains rooted at a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_target(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee, or None for computed callees."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return _dotted_name(node.func)
    return None
