"""Netlist topology views shared by the power-gating-aware rules.

These helpers look at a compiled :class:`~repro.circuit.netlist.Circuit`
through the lens the power-gating checks need:

* *hard rails* — nodes pinned to ground through chains of ideal voltage
  sources (the testbench-owned supply/control lines);
* the *conduction graph* — element edges that can carry DC current
  (capacitors and current sources excluded), each tagged with whether a
  control terminal can turn it off (FinFET channels, VC switches);
* *power switches* — gating elements whose channel joins a hard rail to
  an undriven node (the virtual rail) under a driven control node;
* *storage nodes* — nodes that both drive FinFET gates and sit on FinFET
  channels, i.e. the cross-coupled latch nodes a retention branch must
  tap through a PS-FinFET.

All functions normalise ground-alias spellings to ``"0"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..circuit.netlist import Circuit, Element, is_ground
from ..circuit.passives import Capacitor, Resistor
from ..circuit.sources import CurrentSource, VoltageSource
from ..circuit.switches import VoltageControlledSwitch
from ..devices.finfet import FinFET
from ..devices.mtj import MTJ

#: Canonical spelling used for every ground alias in graph node sets.
GROUND = "0"


def canon(node: str) -> str:
    """Collapse every ground alias onto :data:`GROUND`."""
    return GROUND if is_ground(node) else node


@dataclass(frozen=True)
class ConductionEdge:
    """One DC-capable connection between two nodes.

    ``gateable`` is True when a control terminal can cut the path
    (FinFET channel, voltage-controlled switch); a non-gateable edge
    (resistor, MTJ, voltage source) conducts unconditionally.
    """

    a: str
    b: str
    element: Element
    gateable: bool


def conduction_edges(circuit: Circuit) -> List[ConductionEdge]:
    """Edges of the DC conduction graph, ground-normalised.

    Capacitors (open at DC) and current sources (infinite DC impedance)
    contribute no edge.
    """
    edges: List[ConductionEdge] = []
    for element in circuit.elements():
        if isinstance(element, (Capacitor, CurrentSource)):
            continue
        if isinstance(element, FinFET):
            d, _, s = element.node_names
            edges.append(ConductionEdge(canon(d), canon(s), element, True))
        elif isinstance(element, VoltageControlledSwitch):
            p, n = element.node_names[:2]
            edges.append(ConductionEdge(canon(p), canon(n), element, True))
        elif isinstance(element, (Resistor, VoltageSource, MTJ)):
            p, n = element.node_names[:2]
            edges.append(ConductionEdge(canon(p), canon(n), element, False))
        else:
            # Unknown element kinds are assumed to conduct (conservative:
            # fewer false "island" findings) and to be non-gateable.
            names = [canon(n) for n in element.node_names[:2]]
            if len(names) == 2:
                edges.append(ConductionEdge(names[0], names[1],
                                            element, False))
    return edges


def adjacency(edges: Iterable[ConductionEdge],
              gateable_ok: bool = True) -> Dict[str, List[ConductionEdge]]:
    """Node -> incident edges map (optionally non-gateable edges only)."""
    adj: Dict[str, List[ConductionEdge]] = {}
    for edge in edges:
        if not gateable_ok and edge.gateable:
            continue
        adj.setdefault(edge.a, []).append(edge)
        adj.setdefault(edge.b, []).append(edge)
    return adj


def hard_rail_nodes(circuit: Circuit) -> Set[str]:
    """Nodes tied to ground through voltage sources alone.

    These are the "driven" nodes: supplies and ideal control lines whose
    potential the testbench pins directly.  Ground itself is excluded
    from the returned set.
    """
    adj: Dict[str, Set[str]] = {}
    for element in circuit.elements():
        if isinstance(element, VoltageSource):
            p, n = (canon(x) for x in element.node_names)
            adj.setdefault(p, set()).add(n)
            adj.setdefault(n, set()).add(p)
    seen = {GROUND}
    frontier = [GROUND]
    while frontier:
        node = frontier.pop()
        for peer in adj.get(node, ()):
            if peer not in seen:
                seen.add(peer)
                frontier.append(peer)
    seen.discard(GROUND)
    return seen


def reachable(start: str, adj: Dict[str, List[ConductionEdge]],
              stop_at: Set[str],
              skip_elements: Tuple[Element, ...] = ()) -> Set[str]:
    """Nodes reachable from ``start`` without expanding through
    ``stop_at`` nodes or traversing ``skip_elements`` edges.

    ``stop_at`` nodes are *not* included in the result and are not
    expanded: they bound the region (rails keep their own supply, so a
    region that touches one ends there).
    """
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for edge in adj.get(node, ()):
            if edge.element in skip_elements:
                continue
            peer = edge.b if edge.a == node else edge.a
            if peer in seen or peer in stop_at or peer == GROUND:
                continue
            seen.add(peer)
            frontier.append(peer)
    return seen


def storage_nodes(circuit: Circuit) -> Set[str]:
    """Nodes that are both a FinFET gate and a FinFET channel terminal.

    In every cell of this project that combination identifies the
    bistable latch nodes (Q/QB and the slave-latch nodes of the NV-FF):
    the cross-coupled inverters put each latch node on the channel of its
    own devices and on the gate of the opposite pair.
    """
    gates: Set[str] = set()
    channels: Set[str] = set()
    for element in circuit.elements():
        if isinstance(element, FinFET):
            d, g, s = (canon(n) for n in element.node_names)
            gates.add(g)
            channels.update((d, s))
    out = gates & channels
    out.discard(GROUND)
    return out


@dataclass(frozen=True)
class PowerSwitchInfo:
    """A detected power-gating element.

    Attributes
    ----------
    element:
        The gating element (header FinFET or VC switch).
    rail:
        The hard-rail node on the supply side.
    virtual:
        The undriven node on the gated side (the virtual rail).
    """

    element: Element
    rail: str
    virtual: str


def power_switches(circuit: Circuit,
                   rails: Optional[Set[str]] = None) -> List[PowerSwitchInfo]:
    """Detect power-switch-style gating elements.

    A FinFET qualifies when exactly one channel terminal is a non-ground
    hard rail, the other is undriven, and its gate is driven; a
    voltage-controlled switch qualifies likewise via its control node.
    (Cell pass-gates never qualify: neither of their channel terminals
    is a hard rail.)
    """
    rails = hard_rail_nodes(circuit) if rails is None else rails
    out: List[PowerSwitchInfo] = []
    for element in circuit.elements():
        if isinstance(element, FinFET):
            d, g, s = (canon(n) for n in element.node_names)
            pair, control = (d, s), g
        elif isinstance(element, VoltageControlledSwitch):
            p, n, cp, _ = (canon(x) for x in element.node_names)
            pair, control = (p, n), cp
        else:
            continue
        if control not in rails and control != GROUND:
            continue
        a, b = pair
        a_rail = a in rails
        b_rail = b in rails
        if a_rail == b_rail or GROUND in pair:
            continue
        rail, virtual = (a, b) if a_rail else (b, a)
        out.append(PowerSwitchInfo(element=element, rail=rail,
                                   virtual=virtual))
    return out


def mtjs(circuit: Circuit) -> List[MTJ]:
    """All MTJ elements of the circuit."""
    return [e for e in circuit.elements() if isinstance(e, MTJ)]


def finfets(circuit: Circuit) -> List[FinFET]:
    """All FinFET elements of the circuit."""
    return [e for e in circuit.elements() if isinstance(e, FinFET)]
